"""Unit tests for latency and consistency metrics."""

import pytest

from repro.metrics.consistency import ConsistencyTracker, duplicate_stable_values, eventually_consistent
from repro.metrics.collector import MetricsCollector
from repro.metrics.latency import LatencySummary, LatencyTracker, proc_new
from repro.spe.tuples import StreamTuple


def test_latency_tracker_counts_only_new_tuples():
    tracker = LatencyTracker()
    tracker.observe(arrival_time=1.0, stime=0.8, tuple_type="insertion")
    tracker.observe(arrival_time=2.0, stime=1.8, tuple_type="tentative")
    # A correction for an old stime is not new output.
    record = tracker.observe(arrival_time=10.0, stime=0.9, tuple_type="insertion")
    assert not record.is_new
    assert tracker.new_tuples == 2
    assert tracker.proc_new == pytest.approx(0.2)


def test_latency_tracker_max_gap():
    tracker = LatencyTracker()
    tracker.observe(1.0, 0.9, "insertion")
    tracker.observe(4.0, 3.9, "insertion")
    assert tracker.max_gap == pytest.approx(3.0)


def test_delay_new_subtracts_normal_processing():
    tracker = LatencyTracker()
    tracker.observe(3.0, 0.0, "tentative")
    assert tracker.delay_new(normal_latency=0.5) == pytest.approx(2.5)
    assert tracker.delay_new(normal_latency=10.0) == 0.0


def test_proc_new_helper_and_average():
    tracker = LatencyTracker()
    tracker.observe(1.0, 0.5, "insertion")
    tracker.observe(2.0, 1.0, "insertion")
    assert proc_new(tracker.records) == pytest.approx(1.0)
    assert tracker.average_latency() == pytest.approx(0.75)


def test_latency_summary_statistics():
    summary = LatencySummary.from_values([0.01, 0.02, 0.03])
    assert summary.count == 3
    assert summary.minimum == pytest.approx(0.01)
    assert summary.maximum == pytest.approx(0.03)
    assert summary.average == pytest.approx(0.02)
    scaled = summary.scaled(1000.0)
    assert scaled.average == pytest.approx(20.0)
    empty = LatencySummary.from_values([])
    assert empty.count == 0 and empty.maximum == 0.0


def test_consistency_tracker_counts_and_ledger():
    tracker = ConsistencyTracker()
    tracker.observe(StreamTuple.insertion(0, 0.0, {"seq": 0}))
    tracker.observe(StreamTuple.tentative(1, 0.1, {"seq": 1}))
    tracker.observe(StreamTuple.tentative(2, 0.2, {"seq": 2}))
    assert tracker.total_tentative == 2 and tracker.n_tentative == 2
    tracker.observe(StreamTuple.undo(3, 0.2, undo_from_id=0))
    assert tracker.n_tentative == 0
    assert tracker.stable_values("seq") == [0]
    tracker.observe(StreamTuple.insertion(4, 0.1, {"seq": 1}))
    tracker.observe(StreamTuple.rec_done(5, 0.3))
    assert tracker.stable_values("seq") == [0, 1]
    assert tracker.total_undos == 1 and tracker.total_rec_done == 1
    assert not tracker.has_pending_tentative()


def test_undo_with_no_stable_prefix_clears_ledger():
    tracker = ConsistencyTracker()
    tracker.observe(StreamTuple.tentative(0, 0.0, {"seq": 0}))
    tracker.observe(StreamTuple.undo(1, 0.0, undo_from_id=-1))
    assert tracker.ledger == []


def test_eventual_consistency_comparison():
    reference = [StreamTuple.insertion(i, i * 0.1, {"seq": i}) for i in range(3)]
    received = [StreamTuple.insertion(i + 10, i * 0.1, {"seq": i}) for i in range(3)]
    assert eventually_consistent(received, reference, "seq")
    assert not eventually_consistent(received[:-1], reference, "seq")


def test_duplicate_stable_values_detection():
    items = [
        StreamTuple.insertion(0, 0.0, {"seq": 1}),
        StreamTuple.insertion(1, 0.1, {"seq": 1}),
        StreamTuple.tentative(2, 0.2, {"seq": 1}),
    ]
    assert duplicate_stable_values(items, "seq") == [1]


def test_metrics_collector_combines_trackers():
    collector = MetricsCollector(stream="out")
    collector.observe(StreamTuple.insertion(0, 0.5, {"seq": 0}), now=1.0)
    collector.observe(StreamTuple.tentative(1, 1.5, {"seq": 1}), now=2.0)
    collector.observe(StreamTuple.undo(2, 1.5, undo_from_id=0), now=2.1)
    summary = collector.summary()
    assert summary["total_stable"] == 1
    assert summary["total_tentative"] == 1
    assert summary["total_undos"] == 1
    assert summary["proc_new"] == pytest.approx(0.5)
    assert len(collector.trace) == 3
