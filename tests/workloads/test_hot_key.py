"""The zipfian hot-key workload generator (the rebalancer's raison d'etre)."""

import pytest

from repro.sharding import ShardPlanner, ShardSpec, bucket_loads_from_keys
from repro.workloads.generators import hot_key_payload_factory, hot_key_sequence


def test_key_is_constant_across_a_tie_group():
    n_streams = 3
    generators = [hot_key_sequence(i, n_streams) for i in range(n_streams)]
    for tick in range(200):
        keys = {gen(tick, tick * 0.01)["key"] for gen in generators}
        assert len(keys) == 1, f"tick {tick} straddles keys {keys}"


def test_seq_attribute_stays_the_interleaved_global_sequence():
    n_streams = 3
    generators = [hot_key_sequence(i, n_streams) for i in range(n_streams)]
    seqs = sorted(
        gen(tick, 0.0)["seq"] for tick in range(50) for gen in generators
    )
    assert seqs == list(range(150))


def test_generator_is_deterministic_across_instances():
    a = hot_key_sequence(0, 3, seed=5)
    b = hot_key_sequence(0, 3, seed=5)
    assert [a(t, 0.0) for t in range(100)] == [b(t, 0.0) for t in range(100)]
    c = hot_key_sequence(0, 3, seed=6)
    assert [a(t, 0.0) for t in range(100)] != [c(t, 0.0) for t in range(100)]


def test_skew_concentrates_load_enough_to_trigger_the_planner():
    gen = hot_key_sequence(0, 1, skew=1.2, keys=64)
    keys = [gen(t, 0.0)["key"] for t in range(3000)]
    counts = {}
    for key in keys:
        counts[key] = counts.get(key, 0) + 1
    # The hot key dominates...
    hot_share = counts[0] / len(keys)
    assert hot_share > 0.2
    # ...and the induced bucket loads are skewed enough that the planner has
    # real moves to emit for the default contiguous assignment.
    spec = ShardSpec(shards=4, key="key", group=1)
    loads = bucket_loads_from_keys(spec, keys)
    planner = ShardPlanner(spec)
    assignment = planner.plan()
    assert assignment.imbalance(loads) > 1.2
    plan = planner.rebalance(assignment, loads, tolerance=0.10)
    assert plan.moves
    assert plan.imbalance_after < plan.imbalance_before


def test_factory_binds_skew_and_seed():
    factory = hot_key_payload_factory(skew=1.5, keys=8, seed=2)
    gen = factory(1, 3)
    payload = gen(0, 0.0)
    assert set(payload) == {"seq", "value", "stream", "key"}
    assert 0 <= payload["key"] < 8


def test_parameter_validation():
    with pytest.raises(ValueError):
        hot_key_sequence(3, 3)
    with pytest.raises(ValueError):
        hot_key_sequence(0, 3, skew=0.0)
    with pytest.raises(ValueError):
        hot_key_sequence(0, 3, keys=0)


def test_non_numeric_key_requires_tie_group_one():
    from repro.errors import ConfigurationError

    spec = ShardSpec(shards=2, key="name", group=3)
    with pytest.raises(ConfigurationError, match="group == 1"):
        spec.key_of({"name": "alice"})
    # With group=1 opaque keys route fine.
    assert ShardSpec(shards=2, key="name", group=1).key_of({"name": "alice"}) == "alice"
