"""Unit tests for workload generators and failure scenarios."""

import pytest

from repro.sim.cluster import build_single_node_cluster
from repro.workloads.generators import (
    interleaved_sequence,
    network_monitoring,
    sensor_readings,
    sequential_sequence,
)
from repro.workloads.scenarios import FailureSpec, Scenario, single_failure


def test_sequential_sequence():
    generate = sequential_sequence()
    assert generate(0, 0.0)["seq"] == 0
    assert generate(5, 0.5)["seq"] == 5


def test_interleaved_sequence_covers_all_integers():
    generators = [interleaved_sequence(i, 3) for i in range(3)]
    values = sorted(g(k, 0.0)["seq"] for k in range(4) for g in generators)
    assert values == list(range(12))


def test_interleaved_sequence_validates_index():
    with pytest.raises(ValueError):
        interleaved_sequence(3, 3)


def test_network_monitoring_is_deterministic_per_seed():
    a = network_monitoring(0, 3, seed=1)
    b = network_monitoring(0, 3, seed=1)
    assert [a(i, 0.0) for i in range(10)] == [b(i, 0.0) for i in range(10)]
    record = a(0, 0.0)
    assert {"src", "dst", "dst_port", "bytes", "suspicious"} <= set(record)


def test_sensor_readings_shape():
    generate = sensor_readings(1, 3, seed=2)
    record = generate(0, 0.0)
    assert {"sensor", "location", "temperature", "co2"} <= set(record)
    assert record["sensor"] == 1


def test_scenario_total_duration():
    scenario = Scenario(warmup=5.0, settle=10.0, failures=[FailureSpec("silence", 5.0, 20.0)])
    assert scenario.total_duration() == 35.0
    assert Scenario(warmup=5.0, settle=10.0).total_duration() == 15.0


def test_single_failure_helper():
    scenario = single_failure(kind="disconnect", start=3.0, duration=4.0, settle=6.0)
    assert scenario.failures[0].kind == "disconnect"
    assert scenario.total_duration() == 13.0


def test_scenario_rejects_unknown_failure_kind():
    cluster = build_single_node_cluster(aggregate_rate=30.0)
    scenario = Scenario(failures=[FailureSpec("meteor", 1.0, 1.0)])
    with pytest.raises(ValueError):
        scenario.inject(cluster)


def test_scenario_inject_schedules_failures():
    cluster = build_single_node_cluster(aggregate_rate=30.0)
    scenario = Scenario(
        warmup=1.0,
        settle=1.0,
        failures=[
            FailureSpec("disconnect", 1.0, 1.0, stream_index=0),
            FailureSpec("silence", 1.5, 1.0, stream_index=1),
        ],
    )
    records = scenario.inject(cluster)
    assert len(records) >= 2
    assert cluster.simulator.pending_events > 0


# --------------------------------------------------------------------------- rate profiles
def test_bursty_rate_square_wave():
    from repro.workloads.generators import bursty_rate

    profile = bursty_rate(period=60.0, burst_length=10.0, burst_factor=4.0)
    assert profile(0.0) == 4.0
    assert profile(9.9) == 4.0
    assert profile(10.0) == 1.0
    assert profile(59.9) == 1.0
    assert profile(60.0) == 4.0  # periodic


def test_diurnal_rate_oscillates_around_one():
    from repro.workloads.generators import diurnal_rate

    profile = diurnal_rate(day_length=600.0, amplitude=0.5)
    assert profile(0.0) == pytest.approx(1.0)
    assert profile(150.0) == pytest.approx(1.5)
    assert profile(450.0) == pytest.approx(0.5)
    assert min(profile(t * 10.0) for t in range(120)) > 0.0


def test_rate_profile_validation():
    from repro.workloads.generators import bursty_rate, diurnal_rate

    with pytest.raises(ValueError):
        bursty_rate(period=0.0)
    with pytest.raises(ValueError):
        bursty_rate(period=10.0, burst_length=10.0)
    with pytest.raises(ValueError):
        bursty_rate(burst_factor=0.0)
    with pytest.raises(ValueError):
        diurnal_rate(day_length=-1.0)
    with pytest.raises(ValueError):
        diurnal_rate(amplitude=1.0)


def test_bursty_source_produces_more_tuples_during_bursts():
    from repro.sim.event_loop import Simulator
    from repro.sim.network import Network
    from repro.sim.sources import DataSource
    from repro.workloads.generators import bursty_rate

    def produced(profile):
        simulator = Simulator()
        network = Network(simulator)
        source = DataSource(
            "s", "s1", simulator, network, rate=100.0, rate_profile=profile
        )
        source.start()
        simulator.run_until(20.0)
        return source.tuples_produced

    flat = produced(None)
    bursty = produced(bursty_rate(period=10.0, burst_length=5.0, burst_factor=3.0))
    # Half the time at 3x, half at 1x -> ~2x the flat tuple count.
    assert bursty > flat * 1.5
