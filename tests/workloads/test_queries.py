"""Tests for the pre-built application query diagrams."""

import pytest

from repro.spe.engine import LocalEngine
from repro.spe.tuples import StreamTuple
from repro.workloads.queries import (
    intrusion_detection_diagram,
    intrusion_detection_factory,
    sensor_alert_diagram,
    sensor_alert_factory,
    traffic_rollup_diagram,
    traffic_rollup_factory,
)


def push_with_boundaries(engine, stream, tuples, boundary_stime):
    """Push data tuples followed by a closing boundary on ``stream``."""
    outputs = engine.push(stream, tuples)
    closing = engine.push(stream, [StreamTuple.boundary(tuple_id=10_000, stime=boundary_stime)])
    merged = {}
    for source in (outputs, closing):
        for name, items in source.items():
            merged.setdefault(name, []).extend(items)
    return merged


def connection(tuple_id, stime, src, suspicious, bytes_=100, stream_offset=0):
    return StreamTuple.insertion(
        tuple_id=tuple_id,
        stime=stime,
        values={
            "seq": tuple_id + stream_offset,
            "src": src,
            "dst": "10.0.0.9",
            "dst_port": 22 if suspicious else 40000,
            "bytes": bytes_,
            "suspicious": suspicious,
        },
    )


# --------------------------------------------------------------------------- intrusion detection
def test_intrusion_detection_diagram_validates_and_has_expected_shape():
    diagram = intrusion_detection_diagram("n1", ["s1", "s2", "s3"], "alerts")
    assert diagram.input_streams == ["s1", "s2", "s3"]
    assert diagram.output_streams == ["alerts"]
    assert len(diagram) == 5


def test_intrusion_detection_counts_probes_per_source():
    diagram = intrusion_detection_diagram("n1", ["s1"], "alerts", window=10.0, min_probes=2)
    engine = LocalEngine(diagram)
    tuples = [
        connection(0, 1.0, "172.16.0.1", True),
        connection(1, 2.0, "172.16.0.1", True, bytes_=300),
        connection(2, 3.0, "10.0.0.5", False),
        connection(3, 4.0, "172.16.0.2", True),
    ]
    outputs = push_with_boundaries(engine, "s1", tuples, boundary_stime=20.0)
    alerts = [t for t in outputs["alerts"] if t.is_data]
    # Only the host with two suspicious probes clears the min_probes=2 bar.
    assert len(alerts) == 1
    alert = alerts[0]
    assert alert.value("src") == "172.16.0.1"
    assert alert.value("probes") == 2
    assert alert.value("bytes") == 400
    assert alert.is_stable


def test_intrusion_detection_tentative_input_gives_tentative_alerts():
    diagram = intrusion_detection_diagram("n1", ["s1"], "alerts", window=10.0)
    engine = LocalEngine(diagram)
    tuples = [
        connection(0, 1.0, "172.16.0.1", True),
        StreamTuple.tentative(
            tuple_id=1,
            stime=2.0,
            values={"seq": 1, "src": "172.16.0.1", "dst_port": 22, "bytes": 10, "suspicious": True},
        ),
    ]
    outputs = push_with_boundaries(engine, "s1", tuples, boundary_stime=20.0)
    alerts = [t for t in outputs["alerts"] if t.is_data]
    assert alerts
    assert all(t.is_tentative for t in alerts)


def test_intrusion_detection_factory_matches_builder_signature():
    factory = intrusion_detection_factory(window=7.5, min_probes=3)
    diagram = factory("node1", ["a", "b"], "out")
    assert diagram.output_streams == ["out"]
    per_source = diagram.operator("node1.per_source")
    assert per_source.window.size == 7.5


# --------------------------------------------------------------------------- sensor monitoring
def reading(tuple_id, stime, location, temperature, co2=450.0):
    return StreamTuple.insertion(
        tuple_id=tuple_id,
        stime=stime,
        values={"seq": tuple_id, "sensor": 0, "location": location, "temperature": temperature, "co2": co2},
    )


def test_sensor_alert_diagram_raises_alert_for_hot_zone_only():
    diagram = sensor_alert_diagram("n1", ["s1"], "alerts", window=10.0, temperature_threshold=30.0)
    engine = LocalEngine(diagram)
    tuples = [
        reading(0, 1.0, "zone-0", 21.0),
        reading(1, 2.0, "zone-0", 22.0),
        reading(2, 3.0, "zone-1", 35.0),
        reading(3, 4.0, "zone-1", 36.0),
    ]
    outputs = push_with_boundaries(engine, "s1", tuples, boundary_stime=20.0)
    alerts = [t for t in outputs["alerts"] if t.is_data]
    assert len(alerts) == 1
    alert = alerts[0]
    assert alert.value("location") == "zone-1"
    assert alert.value("avg_temperature") == pytest.approx(35.5)
    assert alert.value("readings") == 2


def test_sensor_alert_factory_threshold():
    factory = sensor_alert_factory(temperature_threshold=50.0)
    diagram = factory("node1", ["s1"], "out")
    engine = LocalEngine(diagram)
    outputs = push_with_boundaries(
        engine, "s1", [reading(0, 1.0, "zone-0", 40.0)], boundary_stime=20.0
    )
    assert [t for t in outputs["out"] if t.is_data] == []


# --------------------------------------------------------------------------- traffic rollups
def test_traffic_rollup_counts_per_window():
    diagram = traffic_rollup_diagram("n1", ["s1", "s2"], "rollup", window=5.0)
    engine = LocalEngine(diagram)
    stream1 = [connection(i, float(i), "10.0.0.1", False, bytes_=100) for i in range(4)]
    stream2 = [connection(i, float(i) + 0.5, "10.0.0.2", False, bytes_=50, stream_offset=100) for i in range(4)]
    engine.push("s1", stream1)
    engine.push("s2", stream2)
    outputs = {}
    for stream in ("s1", "s2"):
        for name, items in engine.push(
            stream, [StreamTuple.boundary(tuple_id=9_999, stime=10.0)]
        ).items():
            outputs.setdefault(name, []).extend(items)
    rollups = [t for t in outputs.get("rollup", []) if t.is_data]
    assert rollups
    first_window = rollups[0]
    assert first_window.value("connections") == 8
    assert first_window.value("bytes") == 4 * 100 + 4 * 50


def test_traffic_rollup_factory():
    diagram = traffic_rollup_factory(window=2.0)("node1", ["s1"], "out")
    assert diagram.operator("node1.rollup").window.size == 2.0


# --------------------------------------------------------------------------- windowed rollup
def test_windowed_rollup_stamps_gap_free_window_sequence():
    from repro.workloads.queries import windowed_rollup_diagram

    diagram = windowed_rollup_diagram("n1", ["s1"], "out", size=1.0, slide=0.25)
    engine = LocalEngine(diagram)
    tuples = [
        StreamTuple.insertion(i, i * 0.1, {"seq": i, "value": float(i)}) for i in range(40)
    ]
    out = push_with_boundaries(engine, "s1", tuples, boundary_stime=10.0)["out"]
    data = [t for t in out if t.is_data]
    assert data, "rollup emitted nothing"
    seqs = [t.values["seq"] for t in data]
    assert seqs == sorted(seqs)
    assert seqs == list(range(min(seqs), max(seqs) + 1))
    # A full window [0.75, 1.75) holds 10 tuples at 0.1 s spacing.
    full = [t for t in data if t.values["n"] == 10]
    assert full
    checked = full[0]
    assert checked.values["hi"] - checked.values["lo"] == 9.0


def test_windowed_rollup_pane_and_naive_paths_agree():
    from repro.workloads.queries import windowed_rollup_diagram

    def run(incremental):
        diagram = windowed_rollup_diagram(
            "n1", ["s1"], "out", size=1.0, slide=0.25, incremental=incremental
        )
        engine = LocalEngine(diagram)
        tuples = [
            StreamTuple.insertion(i, i * 0.07, {"seq": i, "value": float(i)})
            for i in range(60)
        ]
        out = push_with_boundaries(engine, "s1", tuples, boundary_stime=20.0)["out"]
        return [(t.stime, tuple(sorted(t.values.items()))) for t in out if t.is_data]

    assert run(None) == run(False)
