"""compile(Topology) -> Placement: plan shape, inspection, and diffing."""

import pytest

from repro import deploy
from repro.errors import ConfigurationError
from repro.topology import Topology


def test_chain_placement_plans_entry_and_relays():
    placement = deploy.compile(Topology.chain(3), replicas_per_node=2)
    assert [plan.name for plan in placement.nodes] == ["node1", "node2", "node3"]
    assert placement.node_plan("node1").fragment == deploy.FRAGMENT_ENTRY
    assert placement.node_plan("node2").fragment == deploy.FRAGMENT_RELAY
    assert placement.node_plan("node1").stateful
    assert not placement.node_plan("node2").stateful
    assert placement.node_plan("node1").replica_names == ("node1", "node1'")
    assert [c.name for c in placement.clients] == ["client"]
    assert placement.filtered_subscriptions() == []
    assert placement.shard_producer is None


def test_diamond_placement_plans_fanin_merge():
    placement = deploy.compile(Topology.diamond())
    assert placement.node_plan("merge").fragment == deploy.FRAGMENT_FANIN
    assert placement.node_plan("left").fragment == deploy.FRAGMENT_RELAY
    # Egress selects stay in the fragment: no filtered subscriptions.
    assert placement.filtered_subscriptions() == []


def test_shard_placement_plans_filtered_subscriptions():
    placement = deploy.compile(Topology.shard(4))
    assert placement.shard_fragments == ("shard1", "shard2", "shard3", "shard4")
    assert placement.shard_producer == "split"
    filtered = placement.filtered_subscriptions()
    assert [edge.consumer for edge in filtered] == ["shard1", "shard2", "shard3", "shard4"]
    assert all(edge.producer == "split" for edge in filtered)
    assert all(edge.filter_name == f"{edge.consumer}.slice" for edge in filtered)
    # The fragments themselves are plain relays (slice cut at the producer).
    for name in placement.shard_fragments:
        assert placement.node_plan(name).fragment == deploy.FRAGMENT_RELAY
        assert placement.node_plan(name).stateful


def test_multicast_compilation_keeps_ingress_filters():
    placement = deploy.compile(Topology.shard(2), filtered_routing=False)
    assert placement.filtered_subscriptions() == []
    for name in placement.shard_fragments:
        assert placement.node_plan(name).fragment == deploy.FRAGMENT_INGRESS_FILTER


def test_describe_is_plain_data():
    import json

    placement = deploy.compile(Topology.shard(2))
    rendered = json.dumps(placement.describe(), sort_keys=True)
    assert "shard1.slice" in rendered
    assert "filtered_routing" in rendered


def test_diff_reports_structural_changes():
    a = deploy.compile(Topology.shard(2))
    b = deploy.compile(Topology.shard(2))
    assert a.diff(b) == []
    c = deploy.compile(Topology.shard(3))
    changes = "\n".join(a.diff(c))
    assert "shard3" in changes and "added" in changes
    d = deploy.compile(Topology.shard(2), replicas_per_node=3)
    assert any("replicas 2 -> 3" in line for line in a.diff(d))
    e = deploy.compile(Topology.shard(2), filtered_routing=False)
    assert any("filtered True -> False" in line for line in a.diff(e))


def test_compile_validates_replicas():
    with pytest.raises(ConfigurationError):
        deploy.compile(Topology.chain(1), replicas_per_node=0)


def test_deploy_materializes_the_plan():
    placement = deploy.compile(Topology.shard(2), replicas_per_node=1)
    deployment = placement.deploy(aggregate_rate=90.0, seed=1)
    cluster = deployment.cluster
    assert set(cluster.node_groups) == {"split", "shard1", "shard2", "merge"}
    assert cluster.deployment is deployment
    assert set(deployment.subscription_filters) == {"shard1", "shard2"}
    # The shared filter object is referenced by the consumer's monitor and by
    # the producer-side subscription of the initial upstream replica.
    filt = deployment.subscription_filters["shard1"]
    monitor = deployment.node("shard1").cm.monitor("split.out")
    assert monitor.subscription_filter is filt
