"""The legacy builders are byte-identical shims over compile().deploy().

``build_dag_cluster`` / ``build_chain_cluster`` survive as the one-shot API;
they must produce exactly the same deployments -- byte-identical run
summaries across seeds and topology shapes -- as the layered
``repro.deploy.compile(...).deploy(...)`` path they delegate to.
"""

import json

import pytest

from repro import deploy
from repro.sim.cluster import build_chain_cluster, build_dag_cluster
from repro.topology import Topology
from repro.workloads.scenarios import Scenario, single_failure


def run_and_summarize(cluster, scenario):
    scenario.run(cluster)
    return json.dumps(cluster.summary(), sort_keys=True, default=str)


def scenarios():
    return Scenario(warmup=4.0, settle=6.0)


@pytest.mark.parametrize("seed", [None, 1, 7])
def test_chain_builder_matches_compile_deploy(seed):
    scenario = scenarios()
    shim = run_and_summarize(
        build_chain_cluster(chain_depth=2, aggregate_rate=90.0, seed=seed), scenario
    )
    layered = run_and_summarize(
        deploy.compile(Topology.chain(2), replicas_per_node=2)
        .deploy(aggregate_rate=90.0, seed=seed)
        .cluster,
        scenarios(),
    )
    assert shim == layered


@pytest.mark.parametrize("seed", [1, 2])
def test_shard_builder_matches_compile_deploy(seed):
    topology = Topology.shard(2)
    shim = run_and_summarize(
        build_dag_cluster(topology, aggregate_rate=90.0, seed=seed), scenarios()
    )
    layered = run_and_summarize(
        deploy.compile(Topology.shard(2)).deploy(aggregate_rate=90.0, seed=seed).cluster,
        scenarios(),
    )
    assert shim == layered


def test_diamond_builder_matches_under_failure():
    scenario = single_failure("disconnect", start=4.0, duration=4.0, settle=10.0)
    shim = run_and_summarize(
        build_dag_cluster(Topology.diamond(), aggregate_rate=90.0, seed=3), scenario
    )
    layered = run_and_summarize(
        deploy.compile(Topology.diamond()).deploy(aggregate_rate=90.0, seed=3).cluster,
        single_failure("disconnect", start=4.0, duration=4.0, settle=10.0),
    )
    assert shim == layered


def test_multicast_flag_round_trips_through_the_shim():
    cluster = build_dag_cluster(
        Topology.shard(2), aggregate_rate=90.0, seed=1, filtered_routing=False
    )
    assert cluster.deployment is not None
    assert not cluster.deployment.placement.filtered_routing
    assert cluster.deployment.subscription_filters == {}
