"""Elastic scale-out / scale-in and the hardened (priced, abortable) handoff.

Covers the elasticity control plane end to end: the autoscaler loop scales a
live deployment out under a load surge and back in when it subsides with a
gap-free ledger across seeds; scale-out attaches fragments to the *running*
cluster (seeded cursors, widened merge fan-in); scale-in actually
decommissions (merge arity rewired down, endpoints unregistered); and a
crash landing between the filter cut and the priced state transfer aborts
the handoff cleanly -- restoring the extracted state to the old owner and
re-arming -- instead of leaving the moved buckets' state in limbo.
"""

import pytest

from repro.config import DPCConfig
from repro.deploy import AutoscalePolicy
from repro.errors import ConfigurationError, SimulationError
from repro.runtime import ScenarioSpec
from repro.sharding import ShardPlanner


def priced_spec(seed=1, *, shards=2, warmup=12.0, settle=22.0, rate=120.0, **changes):
    """A skewed sharded deployment with priced (two-phase) handoffs."""
    return ScenarioSpec.sharded(
        shards=shards,
        skew=1.2,
        aggregate_rate=rate,
        warmup=warmup,
        settle=settle,
        seed=seed,
        config=changes.pop("config", DPCConfig(handoff_pricing=True)),
        **changes,
    )


def running(spec, until):
    runtime = spec.build()
    runtime.start()
    runtime.run_for(until)
    return runtime


def assert_ledger_clean(runtime):
    for client in runtime.clients:
        sequence = client.stable_sequence
        assert sequence == sorted(sequence)
        assert len(set(sequence)) == len(sequence)
        assert set(range(min(sequence), max(sequence) + 1)) == set(sequence)


def merge_arity(runtime):
    node = runtime.node_group("merge")[0]
    return node.diagram.operator(f"{node.name}.sunion").arity


# --------------------------------------------------------------------------- the headline property
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_autoscale_surge_scales_out_and_back_with_clean_ledgers(seed):
    from repro.experiments.shards import autoscale_run

    result = autoscale_run(seed)
    autoscale = result.extra["autoscale"]
    # The surge doubles the load: 2 shards -> 4; the subsidence drains back.
    assert autoscale["peak_shards"] == 4
    assert autoscale["final_shards"] == 2
    # Failure-free schedule: every handoff completes, nothing aborts.
    assert autoscale["handoff_aborts"] == 0
    assert autoscale["handoffs_completed"] >= 3
    assert autoscale["state_tuples_shipped"] > 0
    # And elasticity loses and duplicates nothing.
    assert result.eventually_consistent


def test_autoscale_summary_is_surfaced_only_on_elastic_runs():
    from repro.experiments.shards import autoscale_run  # noqa: F401 - shape ref

    spec = priced_spec(1, warmup=4.0, settle=4.0)
    plain = spec.run().summary()
    assert "autoscale" not in plain
    policy = AutoscalePolicy(min_shards=2, max_shards=4, high_watermark=1e9, low_watermark=1.0)
    elastic = (
        spec.with_overrides(autoscale=policy, name="autoscale-smoke").run().summary()
    )
    assert "autoscale" in elastic
    assert elastic["autoscale"]["final_shards"] == 2
    assert elastic["autoscale"]["policy"]["max_shards"] == 4


# --------------------------------------------------------------------------- scale-out
def test_scale_out_attaches_a_live_fragment():
    runtime = running(priced_spec(1), 12.0)
    deployment = runtime.deployment
    arity_before = merge_arity(runtime)
    record = deployment.scale_out(count=1)
    assert record["scale_out"]["added"] == ["shard3"]
    assert deployment.active_shards() == 3
    assert "shard3" in runtime.cluster.node_groups
    assert "shard3" in deployment.subscription_filters
    assert merge_arity(runtime) == arity_before + 1
    # The expansion cut buckets onto the new shard and priced the transfer.
    assert not record["noop"]
    assert any(move["target"] == 2 for move in record["moves"])
    runtime.run_for(15.0)
    assert record["completed"]
    assert record["state_tuples_shipped"] > 0
    assert "transfer_delay" in record
    # The new fragment genuinely routes data (not just punctuation).
    stable = sum(
        stats["stable"]
        for node in runtime.cluster.node_groups["shard3"]
        for stats in node.statistics()["outputs"].values()
    )
    assert stable > 0
    assert_ledger_clean(runtime)


def test_scale_out_requires_the_deploy_placement_context():
    runtime = running(
        priced_spec(1, warmup=4.0, settle=4.0, filtered_routing=False), 4.0
    )
    with pytest.raises(ConfigurationError, match="filtered"):
        runtime.deployment.scale_out()


def test_subscribe_live_replays_the_uncovered_suffix():
    runtime = running(priced_spec(1), 12.0)
    deployment = runtime.deployment
    deployment.scale_out(count=1)
    new_node = runtime.cluster.node_groups["shard3"][0]
    split_name = deployment.placement.shard_producer
    split_stream = deployment.placement.node_plan(split_name).output_stream
    # Re-subscribe through the live path: drop the build-time wiring, then
    # send a real SUBSCRIBE quoting the seeded cursor.
    split0 = runtime.node_group(split_name)[0]
    split0.data_path.output(split_stream).unsubscribe(new_node.endpoint)
    monitor = new_node.cm.monitor(split_stream)
    new_node.subscribe_live(split_stream)
    assert monitor.awaiting_replay
    runtime.run_for(1.0)
    assert not monitor.awaiting_replay
    assert new_node.endpoint in split0.data_path.output(split_stream).subscribers()
    runtime.run_for(14.0)
    assert_ledger_clean(runtime)


# --------------------------------------------------------------------------- scale-in
def test_scale_in_decommissions_the_drained_fragment():
    runtime = running(priced_spec(1, shards=3, rate=90.0), 12.0)
    deployment = runtime.deployment
    arity_before = merge_arity(runtime)
    split_name = deployment.placement.shard_producer
    split_stream = deployment.placement.node_plan(split_name).output_stream
    retired_endpoints = [n.endpoint for n in runtime.cluster.node_groups["shard3"]]
    record = deployment.scale_in(2)
    assert record["scale_in"] == {"retired": "shard3", "shards": 2}
    runtime.run_for(15.0)
    assert record["completed"]
    assert "decommissioned_at" in record
    # The fragment is actually gone, not a punctuation-relaying ghost.
    assert deployment.active_shards() == 2
    assert "shard3" not in runtime.cluster.node_groups
    assert all(node._retired for node in deployment.retired_groups["shard3"])
    assert merge_arity(runtime) == arity_before - 1
    for split_node in runtime.node_group(split_name):
        remaining = split_node.data_path.output(split_stream).subscribers()
        assert not set(retired_endpoints) & set(remaining)
    if deployment.registry is not None:
        for endpoint in retired_endpoints:
            assert endpoint not in deployment.registry._nodes
    runtime.run_for(7.0)
    assert_ledger_clean(runtime)


def test_scale_in_validates_its_target():
    runtime = running(priced_spec(1, shards=2, rate=90.0), 12.0)
    deployment = runtime.deployment
    with pytest.raises(ConfigurationError, match="out of range"):
        deployment.scale_in(5)
    deployment.scale_in(1)
    runtime.run_for(10.0)
    assert 1 in deployment.decommissioned
    with pytest.raises(ConfigurationError, match="already decommissioned"):
        deployment.scale_in(1)
    with pytest.raises(ConfigurationError, match="last active shard"):
        deployment.scale_in(0)
    runtime.run_for(5.0)
    assert_ledger_clean(runtime)


def test_scale_out_after_scale_in_reuses_no_retired_slot():
    runtime = running(priced_spec(1, shards=2, rate=90.0), 12.0)
    deployment = runtime.deployment
    deployment.scale_in(1)
    runtime.run_for(10.0)
    record = deployment.scale_out(count=1)
    # The retired slot (index 1) stays retired; the new fragment takes a
    # fresh index so positional shard addressing never aliases.
    assert record["scale_out"]["added"] == ["shard3"]
    assert deployment.active_shards() == 2
    assert 1 in deployment.decommissioned
    runtime.run_for(12.0)
    assert record["completed"]
    assert_ledger_clean(runtime)


# --------------------------------------------------------------------------- handoff hardening
def test_second_reconfiguration_is_rejected_while_a_handoff_is_pending():
    runtime = running(priced_spec(1), 12.0)
    deployment = runtime.deployment
    record = deployment.rebalance()
    assert not record["completed"]
    with pytest.raises(SimulationError, match="pending"):
        deployment.rebalance()
    with pytest.raises(SimulationError, match="pending"):
        deployment.scale_out()
    with pytest.raises(SimulationError, match="pending"):
        deployment.scale_in(0)
    runtime.run_for(10.0)
    assert record["completed"]
    # Resolved: the control plane accepts new plans again.
    deployment.rebalance()


def test_noop_and_applied_records_share_one_schema():
    runtime = running(priced_spec(1, warmup=6.0, settle=6.0), 6.0)
    deployment = runtime.deployment
    plan = ShardPlanner(deployment.current_assignment.spec).rebalance(
        deployment.current_assignment, {}, tolerance=10.0
    )
    record = deployment.apply(plan)
    assert record["noop"]
    for key, value in {
        "cut_stime": None,
        "state_handoff_at": None,
        "completed": True,
        "state_tuples_shipped": 0,
    }.items():
        assert record[key] == value
    assert "completed_at" in record and "drained" in record
    # Downstream consumers can read the same keys off either record shape.
    applied = deployment.rebalance()
    runtime.run_for(10.0)
    missing = {
        "cut_stime",
        "drained",
        "state_handoff_at",
        "completed",
        "completed_at",
        "state_tuples_shipped",
    } - set(applied)
    assert not missing


def test_crash_of_the_old_owner_between_cut_and_handoff_retries_then_completes():
    runtime = running(priced_spec(1), 12.0)
    deployment = runtime.deployment
    record = deployment.rebalance()
    source = record["moves"][0]["source"]
    name = deployment.placement.shard_fragments[source]
    victim = runtime.cluster.node_groups[name][0]
    now = runtime.simulator.now
    runtime.cluster.failures.crash_processing_node(victim, start=now + 0.01, duration=0.6)
    runtime.run_for(15.0)
    # The handoff refused to extract state while the deployment was unstable
    # (a recovering old owner would rebuild the shipped buckets from replay),
    # then completed once it re-stabilized.
    assert record.get("handoff_retries", 0) >= 1
    assert record["completed"]
    assert record["state_tuples_shipped"] > 0
    assert_ledger_clean(runtime)


def test_crash_of_the_new_owner_mid_transfer_aborts_and_rearms():
    runtime = running(priced_spec(1), 12.0)
    deployment = runtime.deployment
    record = deployment.rebalance()
    target = record["moves"][0]["target"]
    name = deployment.placement.shard_fragments[target]
    # Step to the instant the state has been extracted and is in flight...
    while "transfer_started_at" not in record:
        runtime.run_for(0.02)
    assert not record["completed"]
    # ...then kill every replica of the new owner inside the transfer window.
    now = runtime.simulator.now
    for victim in runtime.cluster.node_groups[name]:
        runtime.cluster.failures.crash_processing_node(
            victim, start=now + 0.001, duration=2.0
        )
    runtime.run_for(18.0)
    # The transfer aborted: the extracted state went back to the old owner
    # (not into limbo -- restored_tuples counts what was re-admitted there),
    # and the handoff re-armed and eventually completed.  By then the moved
    # buckets' pre-cut tuples may have aged out of the bounded join window,
    # so the final shipment can legitimately be empty; what must never
    # happen is a lost or duplicated ledger entry.
    aborts = record["aborts"]
    assert aborts and aborts[0]["restored_tuples"] > 0
    assert "crashed mid-transfer" in aborts[0]["reason"]
    assert record["completed"]
    assert record["state_tuples_shipped"] >= 0
    assert_ledger_clean(runtime)


def test_priced_records_count_trimmed_state_and_warn():
    runtime = running(priced_spec(1, join_state_size=50), 12.0)
    deployment = runtime.deployment
    record = deployment.rebalance()
    with pytest.warns(RuntimeWarning, match="trimmed"):
        runtime.run_for(10.0)
    assert record["completed"]
    assert record["state_tuples_trimmed"] > 0
    assert deployment.handoff_trimmed_total >= record["state_tuples_trimmed"]
    assert_ledger_clean(runtime)


# --------------------------------------------------------------------------- load observation
def test_observed_bucket_loads_survive_a_truncated_replica_buffer():
    runtime = running(priced_spec(1, warmup=10.0, settle=10.0), 10.0)
    deployment = runtime.deployment
    full = deployment.observed_bucket_loads()
    assert sum(full.values()) > 0
    split_name = deployment.placement.shard_producer
    stream = deployment.placement.node_plan(split_name).output_stream
    manager = runtime.node_group(split_name)[0].data_path.output(stream)
    # A replica that recovered through checkpoint adoption retains only a
    # suffix; reading it blindly would undercount every bucket's history.
    manager._drop_oldest(manager.buffered_tuples // 2)
    assert deployment.observed_bucket_loads() == full


def test_observed_bucket_loads_skip_crashed_replicas():
    runtime = running(priced_spec(1, warmup=10.0, settle=10.0), 10.0)
    deployment = runtime.deployment
    full = deployment.observed_bucket_loads()
    runtime.node_group(deployment.placement.shard_producer)[0].crash()
    assert deployment.observed_bucket_loads() == full


# --------------------------------------------------------------------------- spec validation
def test_autoscale_requires_a_sharded_topology():
    with pytest.raises(ConfigurationError, match="sharded"):
        ScenarioSpec.chain(1, autoscale=AutoscalePolicy()).validate()


def test_autoscale_requires_filtered_routing():
    with pytest.raises(ConfigurationError, match="filtered_routing"):
        priced_spec(1, filtered_routing=False, autoscale=AutoscalePolicy()).validate()


def test_autoscale_floor_cannot_exceed_the_deployed_shards():
    with pytest.raises(ConfigurationError, match="min_shards"):
        priced_spec(1, shards=2, autoscale=AutoscalePolicy(min_shards=3)).validate()


def test_autoscale_policy_validates_its_watermarks():
    with pytest.raises(ConfigurationError, match="watermarks"):
        AutoscalePolicy(high_watermark=10.0, low_watermark=20.0).validate()
    with pytest.raises(ConfigurationError, match="period"):
        AutoscalePolicy(period=0.0).validate()
    with pytest.raises(ConfigurationError, match="shard bounds"):
        AutoscalePolicy(min_shards=4, max_shards=2).validate()


def test_autoscale_forces_priced_handoffs():
    spec = ScenarioSpec.sharded(shards=2, autoscale=AutoscalePolicy())
    assert spec.dpc_config().handoff_pricing
    assert not ScenarioSpec.sharded(shards=2).dpc_config().handoff_pricing
