"""Live reconfiguration: Deployment.apply on a running sharded deployment.

Covers the acceptance properties of the control-plane redesign: a mid-run
rebalance of a genuinely skewed workload moves buckets, ships join state,
and leaves the merged ledger gap-free / duplicate-free / ordered across
seeds; drained shards reject later kill events; invalid applications are
refused with clear errors.
"""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.runtime import ScenarioSpec
from repro.sharding import ShardPlanner, ShardSpec
from repro.spe.operators import SJoin
from repro.topology import NodeSpec, Topology


def skewed_spec(seed, *, shards=4, rebalance_at=16.0, settle=18.0, **changes):
    return ScenarioSpec.sharded(
        shards=shards,
        skew=1.2,
        aggregate_rate=changes.pop("aggregate_rate", 120.0),
        warmup=rebalance_at,
        settle=settle,
        seed=seed,
        rebalance_at=rebalance_at,
        **changes,
    )


# --------------------------------------------------------------------------- the headline property
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_midrun_rebalance_stays_consistent_across_seeds(seed):
    runtime = skewed_spec(seed).run()
    record = runtime.deployment.rebalances[0]
    # The skewed load gives the planner real work...
    assert not record["noop"]
    assert len(record["moves"]) > 0
    assert record["imbalance_after"] < record["imbalance_before"]
    # ...the handoff completes (join state shipped at the drained boundary)...
    assert record["completed"]
    assert record["state_tuples_shipped"] > 0
    # ...and the merged ledger survives the handoff gap-free, duplicate-free,
    # and ordered.
    assert runtime.eventually_consistent()
    sequence = runtime.client.stable_sequence
    assert sequence == sorted(sequence)
    assert len(set(sequence)) == len(sequence)
    assert set(range(min(sequence), max(sequence) + 1)) == set(sequence)


def test_rebalance_reroutes_the_moved_buckets():
    runtime = skewed_spec(1).run()
    deployment = runtime.deployment
    record = deployment.rebalances[0]
    assignment = deployment.current_assignment
    before = deployment.placement.topology.shard_assignment
    assert assignment != before
    for move in record["moves"]:
        assert assignment.shard_of_bucket(move["bucket"]) == move["target"]
        assert before.shard_of_bucket(move["bucket"]) == move["source"]


def test_summary_reports_the_rebalance():
    runtime = skewed_spec(1).run()
    summary = runtime.summary()
    assert summary["eventually_consistent"]
    assert len(summary["rebalances"]) == 1
    assert summary["rebalances"][0]["moves"]


# --------------------------------------------------------------------------- drain + kill guard
def drained_runtime(kill_start=None, settle=20.0):
    spec = ScenarioSpec.sharded(
        shards=3, aggregate_rate=90.0, warmup=10.0, settle=settle, seed=1
    )
    if kill_start is not None:
        spec = spec.with_shard_kill(3, duration=4.0, start=kill_start)
    runtime = spec.build()
    runtime.start()
    runtime.run_for(10.0)
    plan = runtime.deployment.plan_drain(2)
    record = runtime.deployment.apply(plan)
    return runtime, record


def test_drain_marks_the_fragment_and_stops_routing_data():
    runtime, record = drained_runtime()
    assert record["drained"] == ["shard3"]
    assert runtime.deployment.is_drained("shard3")
    stable_before = sum(
        stats["stable"]
        for node in runtime.node_group("shard3")
        for stats in node.statistics()["outputs"].values()
    )
    runtime.run_for(10.0)
    stable_after = sum(
        stats["stable"]
        for node in runtime.node_group("shard3")
        for stats in node.statistics()["outputs"].values()
    )
    # A handful of pre-cut tuples may still drain through; beyond that the
    # drained shard contributes punctuation only.
    assert stable_after - stable_before < 60
    assert runtime.eventually_consistent()


def test_kill_of_a_drained_shard_is_rejected_at_fire_time():
    runtime, _record = drained_runtime(kill_start=15.0)
    with pytest.raises(ConfigurationError, match="drained"):
        runtime.run_for(20.0)


def test_repopulating_a_drained_shard_makes_it_a_legal_kill_target_again():
    runtime, _record = drained_runtime()
    deployment = runtime.deployment
    runtime.run_for(5.0)
    # Move a bucket back onto the evacuated shard: it routes data again.
    from repro.sharding import RebalancePlan, ShardMove

    assignment = deployment.current_assignment
    bucket = assignment.buckets_by_shard[0][0]
    refill = assignment.move(bucket, 2)
    plan = RebalancePlan(
        before=assignment,
        after=refill,
        moves=(ShardMove(bucket=bucket, source=0, target=2),),
        imbalance_before=1.0,
        imbalance_after=1.0,
    )
    deployment.apply(plan)
    assert not deployment.is_drained("shard3")
    runtime.cluster.assert_kill_target_live("shard3")  # no raise


def test_state_handoff_with_unequal_replica_counts_neither_duplicates_nor_drops():
    """Source shard has 2 replicas, target has 1 (and vice versa): every
    target replica receives exactly one copy of the moved join state."""
    shard_spec = ShardSpec(shards=2, key="seq", buckets=8, group=3)
    assignment = ShardPlanner(shard_spec).plan()
    nodes = [
        NodeSpec(name="split", inputs=("s1", "s2", "s3"), stateful=False),
        NodeSpec(
            name="shard1",
            inputs=("split",),
            select=assignment.predicate(0),
            select_at="ingress",
            stateful=True,
            replicas=2,
        ),
        NodeSpec(
            name="shard2",
            inputs=("split",),
            select=assignment.predicate(1),
            select_at="ingress",
            stateful=True,
            replicas=1,
        ),
        NodeSpec(name="merge", inputs=("shard1", "shard2")),
    ]
    topology = Topology(nodes, name="uneven-shard")
    topology.shard_assignment = assignment
    from repro import deploy

    deployment = deploy.compile(topology).deploy(aggregate_rate=90.0, seed=1)
    deployment.start()
    deployment.run_for(10.0)
    # Move one shard1 bucket (2 source replicas) to shard2 (1 target replica).
    from repro.sharding import RebalancePlan, ShardMove

    bucket = next(
        b
        for b in assignment.buckets_by_shard[0]
        if any(
            item.stime < 10.1
            and shard_spec.bucket_of(shard_spec.key_of(item.values)) == b
            for op in deployment.node("shard1").diagram
            if isinstance(op, SJoin)
            for item in op._state
        )
    )
    plan = RebalancePlan(
        before=assignment,
        after=assignment.move(bucket, 1),
        moves=(ShardMove(bucket=bucket, source=0, target=1),),
        imbalance_before=1.0,
        imbalance_after=1.0,
    )
    record = deployment.apply(plan)
    deployment.run_for(5.0)
    assert record["completed"]
    assert record["state_tuples_shipped"] > 0
    # The single target replica holds each shipped tuple exactly once.
    [target_join] = [
        op for op in deployment.node("shard2").diagram if isinstance(op, SJoin)
    ]
    keys = [(item.stime, item.values.get("seq")) for item in target_join._state]
    assert len(keys) == len(set(keys)), "moved join state was duplicated"
    # And both source replicas gave the moved bucket's pre-cut state up.
    for replica in deployment.node_group("shard1"):
        for op in replica.diagram:
            if isinstance(op, SJoin):
                assert not any(
                    item.stime < record["cut_stime"]
                    and shard_spec.bucket_of(shard_spec.key_of(item.values)) == bucket
                    for item in op._state
                )
    # The merged ledger survives the uneven handoff.
    sequence = deployment.clients[0].stable_sequence
    assert sequence == sorted(sequence)
    assert len(set(sequence)) == len(sequence)


def test_kill_before_the_drain_is_still_legal():
    spec = ScenarioSpec.sharded(
        shards=3, aggregate_rate=90.0, warmup=10.0, settle=25.0, seed=1
    ).with_shard_kill(2, duration=4.0, start=10.0)
    runtime = spec.run()
    assert runtime.eventually_consistent()


# --------------------------------------------------------------------------- validation
def test_apply_rejects_stale_plans():
    runtime = skewed_spec(1).build()
    runtime.start()
    runtime.run_for(16.5)  # the scheduled rebalance has fired
    deployment = runtime.deployment
    stale = ShardPlanner(deployment.current_assignment.spec).plan()
    loads = deployment.observed_bucket_loads()
    plan = ShardPlanner(deployment.current_assignment.spec).rebalance(stale, loads)
    if plan.before != deployment.current_assignment:
        with pytest.raises(ConfigurationError, match="different assignment"):
            deployment.apply(plan)


def test_apply_requires_a_sharded_deployment():
    runtime = ScenarioSpec.chain(1, warmup=2.0, settle=2.0).build()
    with pytest.raises(ConfigurationError, match="not sharded"):
        runtime.deployment.plan_rebalance()


def test_apply_requires_filtered_routing():
    spec = ScenarioSpec.sharded(
        shards=2, aggregate_rate=60.0, warmup=4.0, settle=4.0, filtered_routing=False
    )
    runtime = spec.build()
    runtime.start()
    runtime.run_for(4.0)
    deployment = runtime.deployment
    plan = ShardPlanner(deployment.current_assignment.spec).drain(
        deployment.current_assignment, 1
    )
    with pytest.raises(ConfigurationError, match="filtered"):
        deployment.apply(plan)


def test_apply_refuses_mid_failure():
    spec = ScenarioSpec.sharded(
        shards=2, aggregate_rate=90.0, warmup=6.0, settle=25.0, seed=1
    ).with_shard_kill(1, duration=8.0, start=6.0)
    runtime = spec.build()
    runtime.start()
    runtime.run_for(11.0)  # mid-failure: shard1 down, merge handling it
    deployment = runtime.deployment
    plan = deployment.plan_drain(0)
    with pytest.raises(SimulationError, match="failure"):
        deployment.apply(plan)


def test_noop_plan_is_recorded_without_reconfiguring():
    spec = ScenarioSpec.sharded(shards=2, aggregate_rate=90.0, warmup=6.0, settle=4.0, seed=1)
    runtime = spec.build()
    runtime.start()
    runtime.run_for(6.0)
    deployment = runtime.deployment
    plan = ShardPlanner(deployment.current_assignment.spec).rebalance(
        deployment.current_assignment, {}, tolerance=10.0
    )
    record = deployment.apply(plan)
    assert record["noop"]
    assert deployment.subscription_filters["shard1"].epochs == 1


# --------------------------------------------------------------------------- spec validation
def test_rebalance_at_requires_sharded_topology():
    with pytest.raises(ConfigurationError, match="sharded"):
        ScenarioSpec.chain(1, rebalance_at=5.0).validate()


def test_rebalance_at_requires_filtered_routing():
    with pytest.raises(ConfigurationError, match="filtered_routing"):
        skewed_spec(1, filtered_routing=False).validate()


def test_rebalance_at_must_fall_inside_the_run():
    with pytest.raises(ConfigurationError, match="beyond the run"):
        skewed_spec(1).with_overrides(rebalance_at=500.0).validate()


def test_rebalance_without_handoff_slack_is_rejected():
    # 16 + 18 = 34s run: a rebalance at 33.9s is inside the run but would
    # switch routing without the state handoff ever draining before the end.
    with pytest.raises(ConfigurationError, match="drain slack"):
        skewed_spec(1).with_overrides(rebalance_at=33.9).validate()


def test_rebalance_at_inside_a_failure_window_is_rejected():
    spec = skewed_spec(1, settle=30.0).with_shard_kill(1, duration=8.0, start=14.0)
    # rebalance_at=16 lands inside [14, 22): rejected up front instead of
    # dying mid-simulation on the quiesce check.
    with pytest.raises(ConfigurationError, match="failure window"):
        spec.validate()
    # Before the failure starts (or after it ends) is fine.
    spec.with_overrides(rebalance_at=10.0, warmup=10.0).validate()
