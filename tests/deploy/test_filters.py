"""Unit tests for SubscriptionFilter: epochs, control passthrough, keys."""

import pytest

from repro.deploy import SubscriptionFilter
from repro.errors import ConfigurationError
from repro.spe.tuples import StreamTuple


def even(values):
    return values["seq"] % 2 == 0


def odd(values):
    return values["seq"] % 2 == 1


def stable(seq, stime):
    return StreamTuple.insertion(tuple_id=seq, stime=stime, values={"seq": seq})


def test_initial_epoch_governs_everything():
    filt = SubscriptionFilter(even, name="shard1.slice")
    assert filt.passes(stable(2, 0.5))
    assert not filt.passes(stable(3, 99.0))
    assert filt.epochs == 1


def test_control_tuples_always_pass():
    filt = SubscriptionFilter(lambda values: False, name="never")
    assert filt.passes(StreamTuple.boundary(tuple_id=0, stime=1.0))
    assert filt.passes(StreamTuple.undo(tuple_id=1, stime=1.0, undo_from_id=0))
    assert filt.passes(StreamTuple.rec_done(tuple_id=2, stime=1.0))
    assert not filt.passes(stable(0, 1.0))


def test_advance_installs_predicate_from_cut_stime():
    filt = SubscriptionFilter(even, name="shard1.slice")
    filt.advance(10.0, odd)
    # Below the cut the old epoch still routes; at and above, the new one.
    assert filt.passes(stable(2, 9.999))
    assert not filt.passes(stable(3, 9.999))
    assert filt.passes(stable(3, 10.0))
    assert not filt.passes(stable(2, 10.0))
    assert filt.epochs == 2


def test_tentative_tuples_use_their_stime_epoch():
    filt = SubscriptionFilter(even, name="s")
    filt.advance(5.0, odd)
    tentative_old = StreamTuple.tentative(tuple_id=0, stime=4.0, values={"seq": 2})
    tentative_new = StreamTuple.tentative(tuple_id=1, stime=6.0, values={"seq": 2})
    assert filt.passes(tentative_old)
    assert not filt.passes(tentative_new)


def test_key_changes_on_advance_so_batches_never_mix_epochs():
    filt = SubscriptionFilter(even, name="shard1.slice")
    before = filt.key
    filt.advance(3.0, odd)
    assert filt.key != before


def test_cut_must_move_forward():
    filt = SubscriptionFilter(even, name="s")
    filt.advance(5.0, odd)
    with pytest.raises(ConfigurationError, match="advance"):
        filt.advance(5.0, even)
    with pytest.raises(ConfigurationError, match="advance"):
        filt.advance(4.0, even)


def test_name_required():
    with pytest.raises(ConfigurationError):
        SubscriptionFilter(even, name="")
