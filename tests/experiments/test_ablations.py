"""Tests for the ablation experiment runners.

These are integration-level tests: each one spins up a small simulated
deployment.  Durations and rates are kept low so the whole module runs in a
few seconds.
"""

import pytest

from repro.experiments.ablations import (
    buffer_bound_run,
    crash_failover,
    detection_sweep,
    granularity_run,
    replica_sweep,
)


@pytest.fixture(scope="module")
def replica_results():
    return replica_sweep(
        (1, 2), failure_duration=8.0, aggregate_rate=90.0, settle=25.0
    )


def test_replica_sweep_two_replicas_meet_bound(replica_results):
    by_label = {result.label: result for result in replica_results}
    replicated = by_label["2 replicas"]
    assert replicated.eventually_consistent
    assert replicated.proc_new < 3.75


def test_replica_sweep_single_replica_is_worse(replica_results):
    by_label = {result.label: result for result in replica_results}
    single = by_label["1 replica"]
    replicated = by_label["2 replicas"]
    # With a single replica the node itself must stop serving new data while
    # it reconciles, so its worst-case latency is at least as bad as the
    # replicated deployment's.
    assert single.proc_new >= replicated.proc_new - 0.25
    assert single.eventually_consistent


def test_detection_sweep_reports_monotone_cost():
    results = detection_sweep(
        (0.1, 0.5), failure_duration=6.0, aggregate_rate=90.0, settle=25.0
    )
    assert len(results) == 2
    fast, slow = results
    assert fast.keepalive_period < slow.keepalive_period
    for result in results:
        assert result.eventually_consistent
    # With the paper's 100 ms keepalive, detection is cheap enough that the
    # availability bound still holds.
    assert fast.proc_new < 3.75
    # A slower detection can only delay the reaction, never speed it up; with
    # a 500 ms keepalive the detection timeout eats visibly into the budget
    # (the paper's assumption that detection is much faster than X).
    assert slow.max_gap >= fast.max_gap - 0.3
    assert slow.proc_new >= fast.proc_new - 0.3
    assert "keepalive" in fast.row()


def test_crash_failover_masks_the_crash():
    result = crash_failover(
        crash_duration=10.0, aggregate_rate=90.0, warmup=4.0, settle=25.0
    )
    assert result.eventually_consistent
    # The surviving replica keeps serving: the crash must not show up as a
    # latency spike beyond the availability bound.
    assert result.proc_new < 3.75
    assert result.extra["switches"] >= 1
    assert result.n_undos == 0 or result.n_tentative >= 0  # crash introduces no inconsistency
    assert result.n_tentative == 0


def test_buffer_bound_blocking_overflows():
    result = buffer_bound_run(
        max_output_tuples=200, block_on_full=True, aggregate_rate=120.0, duration=20.0
    )
    assert result.overflowed
    assert result.buffered_tuples <= 200


def test_buffer_bound_dropping_keeps_running():
    result = buffer_bound_run(
        max_output_tuples=200, block_on_full=False, aggregate_rate=120.0, duration=20.0
    )
    assert not result.overflowed
    assert result.buffered_tuples <= 200
    assert result.client_stable > 0
    assert "bound" in result.row()


def test_buffer_unbounded_with_truncation_stays_small():
    bounded = buffer_bound_run(
        max_output_tuples=None,
        block_on_full=True,
        aggregate_rate=120.0,
        duration=20.0,
        truncate_period=1.0,
        label="unbounded + truncation",
    )
    unbounded = buffer_bound_run(
        max_output_tuples=None, block_on_full=True, aggregate_rate=120.0, duration=20.0
    )
    assert not bounded.overflowed and not unbounded.overflowed
    assert bounded.buffered_tuples < unbounded.buffered_tuples / 5
    # Truncation must not change what the client receives.
    assert abs(bounded.client_stable - unbounded.client_stable) <= 0.05 * unbounded.client_stable


@pytest.mark.parametrize("per_stream", [False, True])
def test_granularity_run_is_consistent(per_stream):
    result = granularity_run(
        per_stream, failure_duration=6.0, aggregate_rate=90.0, settle=25.0
    )
    assert result.eventually_consistent
    assert result.proc_new < 3.75
