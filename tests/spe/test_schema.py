"""Unit tests for stream schemas."""

import pytest

from repro.errors import SchemaError
from repro.spe.schema import ANY_SCHEMA, Field, Schema, validate_stream_prefix
from repro.spe.tuples import StreamTuple


def test_schema_of_builds_typed_fields():
    schema = Schema.of(seq="int", value="float", name="str")
    assert schema.names == ("seq", "value", "name")
    assert len(schema) == 3
    assert "seq" in schema


def test_field_rejects_unknown_type():
    with pytest.raises(SchemaError):
        Field("x", "complex128")


def test_field_rejects_empty_name():
    with pytest.raises(SchemaError):
        Field("", "int")


def test_validate_values_accepts_matching_tuple():
    schema = Schema.of(seq="int", value="float")
    schema.validate_values({"seq": 1, "value": 2.5})
    schema.validate_values({"seq": 1, "value": 2})  # int is acceptable for float


def test_validate_values_rejects_missing_and_extra():
    schema = Schema.of(seq="int")
    with pytest.raises(SchemaError):
        schema.validate_values({})
    with pytest.raises(SchemaError):
        schema.validate_values({"seq": 1, "other": 2})


def test_validate_values_rejects_bool_for_int():
    schema = Schema.of(seq="int")
    with pytest.raises(SchemaError):
        schema.validate_values({"seq": True})


def test_validate_tuple_ignores_non_data():
    schema = Schema.of(seq="int")
    schema.validate_tuple(StreamTuple.boundary(0, 1.0))  # must not raise


def test_project_and_merge():
    schema = Schema.of(a="int", b="float", c="str")
    projected = schema.project(["a", "c"])
    assert projected.names == ("a", "c")
    with pytest.raises(SchemaError):
        schema.project(["missing"])
    merged = Schema.of(x="int").merge(Schema.of(x="int"), prefix_self="l_", prefix_other="r_")
    assert merged.names == ("l_x", "r_x")
    with pytest.raises(SchemaError):
        Schema.of(x="int").merge(Schema.of(x="int"))


def test_any_schema_accepts_everything():
    validate_stream_prefix(ANY_SCHEMA, [StreamTuple.insertion(0, 0.0, {"anything": object()})])


def test_field_lookup():
    schema = Schema.of(a="int")
    assert schema.field("a").type_name == "int"
    with pytest.raises(SchemaError):
        schema.field("zzz")
