"""Unit tests for the mergeable accumulators behind pane aggregation."""

import pytest

from repro.errors import OperatorError
from repro.spe.accumulators import (
    AvgAccumulator,
    BufferingAccumulator,
    CountAccumulator,
    MaxAccumulator,
    MinAccumulator,
    SumAccumulator,
    is_incremental,
    make_accumulator,
)


def test_registry_covers_exactly_the_builtins():
    assert all(is_incremental(name) for name in ("count", "sum", "avg", "min", "max"))
    assert not is_incremental("median")
    assert isinstance(make_accumulator("sum", sum), SumAccumulator)
    assert isinstance(make_accumulator("median", lambda vs: vs[0]), BufferingAccumulator)


@pytest.mark.parametrize(
    "factory, values, expected",
    [
        (CountAccumulator, [5, 3, 9], 3),
        (SumAccumulator, [5, 3, 9], 17),
        (AvgAccumulator, [5, 3, 10], 6.0),
        (MinAccumulator, [5, 3, 9], 3),
        (MaxAccumulator, [5, 3, 9], 9),
    ],
)
def test_sequential_adds_match_the_buffered_builtin(factory, values, expected):
    acc = factory()
    for value in values:
        acc.add(value)
    assert acc.result() == expected


def test_merge_equals_adding_the_concatenation():
    for factory in (CountAccumulator, SumAccumulator, AvgAccumulator, MinAccumulator, MaxAccumulator):
        left, right, reference = factory(), factory(), factory()
        for value in (4, 1):
            left.add(value)
            reference.add(value)
        for value in (7, 2):
            right.add(value)
            reference.add(value)
        left.merge(right)
        assert left.result() == reference.result()


def test_empty_edge_cases_match_legacy_semantics():
    assert SumAccumulator().result() == 0
    assert AvgAccumulator().result() == 0.0
    with pytest.raises(ValueError):
        MinAccumulator().result()
    with pytest.raises(ValueError):
        MaxAccumulator().result()


def test_min_max_merge_skips_empty_partials():
    acc = MinAccumulator()
    acc.add(4)
    acc.merge(MinAccumulator())
    assert acc.result() == 4


def test_buffering_accumulator_applies_the_callable():
    acc = BufferingAccumulator(lambda vs: max(vs) - min(vs))
    for value in (5, 9, 7):
        acc.add(value)
    other = BufferingAccumulator(lambda vs: 0)
    other.add(1)
    acc.merge(other)
    assert acc.result() == 8


def test_snapshot_restore_round_trip():
    for factory in (CountAccumulator, SumAccumulator, AvgAccumulator, MinAccumulator, MaxAccumulator):
        acc = factory()
        acc.add(3)
        acc.add(8)
        restored = factory()
        restored.restore(acc.snapshot())
        assert restored.result() == acc.result()
    buffering = BufferingAccumulator(sum)
    buffering.add(2)
    restored = BufferingAccumulator(sum)
    restored.restore(buffering.snapshot())
    assert restored.result() == 2


def test_restore_rejects_kind_mismatch():
    snapshot = SumAccumulator().snapshot()
    with pytest.raises(OperatorError):
        CountAccumulator().restore(snapshot)
