"""Unit tests for the windowed Aggregate operator."""

import pytest

from repro.errors import OperatorError
from repro.spe.operators import Aggregate, AggregateSpec
from repro.spe.tuples import StreamTuple
from repro.spe.windows import WindowSpec


def feed(op, values, tentative=False):
    """Feed (stime, payload) pairs followed by a closing boundary."""
    out = []
    for i, (stime, payload) in enumerate(values):
        factory = StreamTuple.tentative if tentative else StreamTuple.insertion
        out += op.process(0, factory(i, stime, payload))
    return out


def test_aggregate_requires_specs_and_attribute():
    with pytest.raises(OperatorError):
        Aggregate("a", WindowSpec.tumbling(10.0), aggregates=[])
    with pytest.raises(OperatorError):
        AggregateSpec("avg_x", "avg", None)
    with pytest.raises(OperatorError):
        AggregateSpec("x", "median", "v")


def test_tumbling_count_and_sum():
    op = Aggregate(
        "a",
        WindowSpec.tumbling(10.0),
        aggregates=[("n", "count", None), ("total", "sum", "v"), ("avg", "avg", "v")],
    )
    feed(op, [(1.0, {"v": 1}), (2.0, {"v": 2}), (11.0, {"v": 10})])
    out = op.process(0, StreamTuple.boundary(99, 20.0))
    data = [t for t in out if t.is_data]
    assert len(data) == 2
    first, second = data
    assert first.values["n"] == 2 and first.values["total"] == 3 and first.values["avg"] == 1.5
    assert first.stime == 10.0  # window end, deterministic
    assert second.values["n"] == 1 and second.values["total"] == 10


def test_windows_only_emit_once_watermark_passes_them():
    op = Aggregate("a", WindowSpec.tumbling(10.0), aggregates=[("n", "count", None)])
    feed(op, [(1.0, {"v": 1})])
    assert [t for t in op.process(0, StreamTuple.boundary(9, 5.0)) if t.is_data] == []
    out = [t for t in op.process(0, StreamTuple.boundary(10, 10.0)) if t.is_data]
    assert len(out) == 1


def test_group_by_emits_one_tuple_per_group():
    op = Aggregate(
        "a",
        WindowSpec.tumbling(10.0),
        aggregates=[("n", "count", None)],
        group_by=("room",),
    )
    feed(op, [(1.0, {"room": "a", "v": 1}), (2.0, {"room": "b", "v": 2}), (3.0, {"room": "a", "v": 3})])
    out = [t for t in op.process(0, StreamTuple.boundary(9, 10.0)) if t.is_data]
    assert len(out) == 2
    by_room = {t.values["room"]: t.values["n"] for t in out}
    assert by_room == {"a": 2, "b": 1}


def test_tentative_input_marks_window_output_tentative():
    op = Aggregate("a", WindowSpec.tumbling(10.0), aggregates=[("n", "count", None)])
    op.process(0, StreamTuple.insertion(0, 1.0, {"v": 1}))
    op.process(0, StreamTuple.tentative(1, 2.0, {"v": 2}))
    out = [t for t in op.process(0, StreamTuple.boundary(9, 10.0)) if t.is_data]
    assert out[0].is_tentative


def test_sliding_window_counts_tuples_in_overlapping_windows():
    op = Aggregate("a", WindowSpec.sliding(size=10.0, slide=5.0), aggregates=[("n", "count", None)])
    feed(op, [(6.0, {"v": 1})])
    out = [t for t in op.process(0, StreamTuple.boundary(9, 30.0)) if t.is_data]
    # stime 6 falls into windows [0,10) and [5,15): two emissions with count 1.
    assert len(out) == 2
    assert all(t.values["n"] == 1 for t in out)


def test_custom_aggregate_function():
    op = Aggregate(
        "a",
        WindowSpec.tumbling(10.0),
        aggregates=[AggregateSpec("spread", lambda vs: max(vs) - min(vs), "v")],
    )
    feed(op, [(1.0, {"v": 5}), (2.0, {"v": 9})])
    out = [t for t in op.process(0, StreamTuple.boundary(9, 10.0)) if t.is_data]
    assert out[0].values["spread"] == 4


def test_checkpoint_restore_preserves_open_windows():
    op = Aggregate("a", WindowSpec.tumbling(10.0), aggregates=[("n", "count", None)])
    feed(op, [(1.0, {"v": 1}), (2.0, {"v": 2})])
    snapshot = op.checkpoint()
    feed(op, [(3.0, {"v": 3})])
    op.restore(snapshot)
    assert op.open_window_count == 1
    out = [t for t in op.process(0, StreamTuple.boundary(9, 10.0)) if t.is_data]
    assert out[0].values["n"] == 2


def test_determinism_same_input_same_output():
    def run():
        op = Aggregate("a", WindowSpec.tumbling(5.0), aggregates=[("n", "count", None), ("m", "max", "v")])
        out = feed(op, [(i * 0.7, {"v": i}) for i in range(20)])
        out += op.process(0, StreamTuple.boundary(99, 100.0))
        return [(t.stime, tuple(sorted(t.values.items()))) for t in out if t.is_data]

    assert run() == run()
