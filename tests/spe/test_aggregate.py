"""Unit tests for the windowed Aggregate operator."""

import pytest

from repro.errors import OperatorError
from repro.spe.operators import Aggregate, AggregateSpec
from repro.spe.tuples import StreamTuple
from repro.spe.windows import WindowSpec


def feed(op, values, tentative=False):
    """Feed (stime, payload) pairs followed by a closing boundary."""
    out = []
    for i, (stime, payload) in enumerate(values):
        factory = StreamTuple.tentative if tentative else StreamTuple.insertion
        out += op.process(0, factory(i, stime, payload))
    return out


def test_aggregate_requires_specs_and_attribute():
    with pytest.raises(OperatorError):
        Aggregate("a", WindowSpec.tumbling(10.0), aggregates=[])
    with pytest.raises(OperatorError):
        AggregateSpec("avg_x", "avg", None)
    with pytest.raises(OperatorError):
        AggregateSpec("x", "median", "v")


def test_tumbling_count_and_sum():
    op = Aggregate(
        "a",
        WindowSpec.tumbling(10.0),
        aggregates=[("n", "count", None), ("total", "sum", "v"), ("avg", "avg", "v")],
    )
    feed(op, [(1.0, {"v": 1}), (2.0, {"v": 2}), (11.0, {"v": 10})])
    out = op.process(0, StreamTuple.boundary(99, 20.0))
    data = [t for t in out if t.is_data]
    assert len(data) == 2
    first, second = data
    assert first.values["n"] == 2 and first.values["total"] == 3 and first.values["avg"] == 1.5
    assert first.stime == 10.0  # window end, deterministic
    assert second.values["n"] == 1 and second.values["total"] == 10


def test_windows_only_emit_once_watermark_passes_them():
    op = Aggregate("a", WindowSpec.tumbling(10.0), aggregates=[("n", "count", None)])
    feed(op, [(1.0, {"v": 1})])
    assert [t for t in op.process(0, StreamTuple.boundary(9, 5.0)) if t.is_data] == []
    out = [t for t in op.process(0, StreamTuple.boundary(10, 10.0)) if t.is_data]
    assert len(out) == 1


def test_group_by_emits_one_tuple_per_group():
    op = Aggregate(
        "a",
        WindowSpec.tumbling(10.0),
        aggregates=[("n", "count", None)],
        group_by=("room",),
    )
    feed(op, [(1.0, {"room": "a", "v": 1}), (2.0, {"room": "b", "v": 2}), (3.0, {"room": "a", "v": 3})])
    out = [t for t in op.process(0, StreamTuple.boundary(9, 10.0)) if t.is_data]
    assert len(out) == 2
    by_room = {t.values["room"]: t.values["n"] for t in out}
    assert by_room == {"a": 2, "b": 1}


def test_tentative_input_marks_window_output_tentative():
    op = Aggregate("a", WindowSpec.tumbling(10.0), aggregates=[("n", "count", None)])
    op.process(0, StreamTuple.insertion(0, 1.0, {"v": 1}))
    op.process(0, StreamTuple.tentative(1, 2.0, {"v": 2}))
    out = [t for t in op.process(0, StreamTuple.boundary(9, 10.0)) if t.is_data]
    assert out[0].is_tentative


def test_sliding_window_counts_tuples_in_overlapping_windows():
    op = Aggregate("a", WindowSpec.sliding(size=10.0, slide=5.0), aggregates=[("n", "count", None)])
    feed(op, [(6.0, {"v": 1})])
    out = [t for t in op.process(0, StreamTuple.boundary(9, 30.0)) if t.is_data]
    # stime 6 falls into windows [0,10) and [5,15): two emissions with count 1.
    assert len(out) == 2
    assert all(t.values["n"] == 1 for t in out)


def test_custom_aggregate_function():
    op = Aggregate(
        "a",
        WindowSpec.tumbling(10.0),
        aggregates=[AggregateSpec("spread", lambda vs: max(vs) - min(vs), "v")],
    )
    feed(op, [(1.0, {"v": 5}), (2.0, {"v": 9})])
    out = [t for t in op.process(0, StreamTuple.boundary(9, 10.0)) if t.is_data]
    assert out[0].values["spread"] == 4


def test_checkpoint_restore_preserves_open_windows():
    op = Aggregate("a", WindowSpec.tumbling(10.0), aggregates=[("n", "count", None)])
    feed(op, [(1.0, {"v": 1}), (2.0, {"v": 2})])
    snapshot = op.checkpoint()
    feed(op, [(3.0, {"v": 3})])
    op.restore(snapshot)
    assert op.open_window_count == 1
    out = [t for t in op.process(0, StreamTuple.boundary(9, 10.0)) if t.is_data]
    assert out[0].values["n"] == 2


def test_determinism_same_input_same_output():
    def run():
        op = Aggregate("a", WindowSpec.tumbling(5.0), aggregates=[("n", "count", None), ("m", "max", "v")])
        out = feed(op, [(i * 0.7, {"v": i}) for i in range(20)])
        out += op.process(0, StreamTuple.boundary(99, 100.0))
        return [(t.stime, tuple(sorted(t.values.items()))) for t in out if t.is_data]

    assert run() == run()


def test_pane_mode_selected_for_builtin_specs_only():
    pane_op = Aggregate("a", WindowSpec.sliding(10.0, 5.0), aggregates=[("n", "count", None)])
    assert pane_op.pane_mode
    custom = Aggregate(
        "a",
        WindowSpec.sliding(10.0, 5.0),
        aggregates=[AggregateSpec("spread", lambda vs: max(vs) - min(vs), "v")],
    )
    assert not custom.pane_mode
    # A callable shadowing a builtin's name must not get incremental treatment.
    shadowing = Aggregate(
        "a", WindowSpec.tumbling(10.0), aggregates=[AggregateSpec("total", sum, "v")]
    )
    assert not shadowing.pane_mode
    undecomposable = Aggregate(
        "a", WindowSpec.sliding(0.3, 0.1), aggregates=[("n", "count", None)]
    )
    assert not undecomposable.pane_mode


def test_forcing_incremental_on_unsupported_specs_raises():
    with pytest.raises(OperatorError):
        Aggregate(
            "a",
            WindowSpec.sliding(0.3, 0.1),
            aggregates=[("n", "count", None)],
            incremental=True,
        )
    with pytest.raises(OperatorError):
        Aggregate(
            "a",
            WindowSpec.tumbling(10.0),
            aggregates=[AggregateSpec("spread", lambda vs: max(vs) - min(vs), "v")],
            incremental=True,
        )


def test_naive_reference_path_can_be_forced():
    op = Aggregate(
        "a",
        WindowSpec.sliding(10.0, 5.0),
        aggregates=[("n", "count", None)],
        incremental=False,
    )
    assert not op.pane_mode
    feed(op, [(6.0, {"v": 1})])
    out = [t for t in op.process(0, StreamTuple.boundary(9, 30.0)) if t.is_data]
    assert len(out) == 2


def test_pane_and_naive_paths_agree_on_a_sliding_window():
    def run(incremental):
        op = Aggregate(
            "a",
            WindowSpec.sliding(6.0, 2.0),
            aggregates=[("n", "count", None), ("total", "sum", "v"), ("lo", "min", "v")],
            group_by=("g",),
            incremental=incremental,
        )
        out = feed(op, [(i * 0.5, {"v": i, "g": i % 3}) for i in range(30)])
        out += op.process(0, StreamTuple.boundary(99, 50.0))
        return [(t.stime, tuple(sorted(t.values.items()))) for t in out if t.is_data]

    assert run(None) == run(False)


def test_grouped_empty_windows_emit_nothing_even_with_emit_empty_windows():
    # Explicit contract: emit_empty_windows only applies to the ungrouped
    # form -- an empty grouped window has no group key to attach a row to.
    grouped = Aggregate(
        "a",
        WindowSpec.tumbling(10.0),
        aggregates=[("n", "count", None)],
        group_by=("room",),
        emit_empty_windows=True,
    )
    out = [t for t in grouped.process(0, StreamTuple.boundary(9, 30.0)) if t.is_data]
    assert out == []
    ungrouped = Aggregate(
        "a",
        WindowSpec.tumbling(10.0),
        aggregates=[("n", "count", None), ("total", "sum", "v")],
        emit_empty_windows=True,
    )
    out = [t for t in ungrouped.process(0, StreamTuple.boundary(9, 30.0)) if t.is_data]
    assert len(out) == 3
    assert all(t.values["n"] == 0 and t.values["total"] is None for t in out)


def test_checkpoint_round_trip_is_byte_identical_mid_stream():
    def make():
        return Aggregate(
            "a",
            WindowSpec.sliding(6.0, 2.0),
            aggregates=[("n", "count", None), ("total", "sum", "v"), ("hi", "max", "v")],
            group_by=("g",),
        )

    def canonical(tuples):
        return [(t.stime, t.tuple_type, tuple(sorted(t.values.items()))) for t in tuples if t.is_data]

    head = [(i * 0.7, {"v": i, "g": i % 2}) for i in range(12)]
    tail = [(i * 0.7, {"v": i, "g": i % 2}) for i in range(12, 24)]

    reference = make()
    expected = feed(reference, head + tail)
    expected += reference.process(0, StreamTuple.boundary(99, 50.0))

    op = make()
    feed(op, head)
    snapshot = op.checkpoint()
    feed(op, [(100.0, {"v": 999, "g": 0})])  # diverge, then roll back
    op.restore(snapshot)
    resumed = feed(op, tail)
    resumed += op.process(0, StreamTuple.boundary(99, 50.0))
    assert canonical(resumed) == canonical(expected)


def test_restore_rejects_checkpoints_from_the_other_mode():
    pane_op = Aggregate("a", WindowSpec.tumbling(10.0), aggregates=[("n", "count", None)])
    naive_op = Aggregate(
        "a", WindowSpec.tumbling(10.0), aggregates=[("n", "count", None)], incremental=False
    )
    feed(pane_op, [(1.0, {"v": 1})])
    with pytest.raises(OperatorError):
        naive_op.restore(pane_op.checkpoint())


def test_pane_state_is_bounded_by_groups_times_panes():
    op = Aggregate(
        "a",
        WindowSpec.sliding(10.0, 1.0),
        aggregates=[("n", "count", None)],
        group_by=("g",),
    )
    groups = 3
    for i in range(400):
        stime = i * 0.25
        op.process(0, StreamTuple.insertion(i, stime, {"v": i, "g": i % groups}))
        if i % 40 == 39:
            op.process(0, StreamTuple.boundary(1000 + i, stime))
            # Live panes span at most the window size plus the pane not yet
            # closed: groups * (panes_per_window + 1) cells.
            assert op.open_cell_count <= groups * (op.window.pane.per_window + 1)


def test_process_batch_matches_tuple_at_a_time_processing():
    items = [StreamTuple.insertion(i, i * 0.3, {"v": i, "g": i % 2}) for i in range(40)]
    items.append(StreamTuple.boundary(99, 20.0))

    def canonical(tuples):
        return [(t.stime, tuple(sorted(t.values.items()))) for t in tuples if t.is_data]

    def make():
        return Aggregate(
            "a",
            WindowSpec.sliding(3.0, 1.0),
            aggregates=[("n", "count", None), ("total", "sum", "v")],
            group_by=("g",),
        )

    batched = make().process_batch(0, items)
    one_at_a_time: list = []
    op = make()
    for item in items:
        one_at_a_time += op.process(0, item)
    assert canonical(batched) == canonical(one_at_a_time)
