"""Unit tests for query-diagram construction, validation, and the DPC transform."""

import pytest

from repro.errors import DiagramError
from repro.spe.operators import Filter, Join, Map, SOutput, SUnion, Union
from repro.spe.query_diagram import QueryDiagram, linear_diagram


def simple_diagram():
    diagram = QueryDiagram("q")
    f = Filter("f", predicate=lambda v: True)
    m = Map("m", transform=dict)
    diagram.add_operator(f)
    diagram.add_operator(m)
    diagram.connect(f, m)
    diagram.bind_input("in", f)
    diagram.bind_output("out", m)
    return diagram


def test_valid_diagram_passes_validation():
    simple_diagram().validate()


def test_duplicate_operator_name_rejected():
    diagram = QueryDiagram("q")
    diagram.add_operator(Filter("f", predicate=lambda v: True))
    with pytest.raises(DiagramError):
        diagram.add_operator(Map("f", transform=dict))


def test_connect_unknown_operator_rejected():
    diagram = QueryDiagram("q")
    diagram.add_operator(Filter("f", predicate=lambda v: True))
    with pytest.raises(DiagramError):
        diagram.connect("f", "ghost")


def test_unfed_port_rejected():
    diagram = QueryDiagram("q")
    diagram.add_operator(Union("u", arity=2))
    diagram.bind_input("a", "u", 0)
    diagram.bind_output("out", "u")
    with pytest.raises(DiagramError):
        diagram.validate()


def test_doubly_fed_port_rejected():
    diagram = QueryDiagram("q")
    diagram.add_operator(Filter("f", predicate=lambda v: True))
    diagram.bind_input("a", "f", 0)
    diagram.bind_input("b", "f", 0)
    diagram.bind_output("out", "f")
    with pytest.raises(DiagramError):
        diagram.validate()


def test_cycle_detection():
    diagram = QueryDiagram("q")
    a = Map("a", transform=dict)
    b = Map("b", transform=dict)
    diagram.add_operator(a)
    diagram.add_operator(b)
    diagram.connect(a, b)
    diagram.connect(b, a)
    diagram.bind_output("out", b)
    with pytest.raises(DiagramError):
        diagram.topological_order()


def test_dangling_operator_rejected():
    diagram = simple_diagram()
    diagram.add_operator(Filter("dangling", predicate=lambda v: True))
    diagram.bind_input("x", "dangling")
    with pytest.raises(DiagramError):
        diagram.validate()


def test_topological_order_respects_edges():
    diagram = simple_diagram()
    order = diagram.topological_order()
    assert order.index("f") < order.index("m")


def test_linear_diagram_helper():
    diagram = linear_diagram(
        "lin",
        [Filter("f", predicate=lambda v: True), Map("m", transform=dict)],
        input_stream="in",
        output_stream="out",
    )
    assert diagram.input_streams == ["in"]
    assert diagram.output_streams == ["out"]


def test_make_fault_tolerant_replaces_union_and_appends_soutput():
    diagram = QueryDiagram("q")
    union = Union("u", arity=2)
    diagram.add_operator(union)
    diagram.bind_input("a", union, 0)
    diagram.bind_input("b", union, 1)
    diagram.bind_output("out", union)
    ft = diagram.make_fault_tolerant(bucket_size=0.5)
    names = set(ft.operators)
    assert any(isinstance(op, SUnion) for op in ft)
    assert any(isinstance(op, SOutput) for op in ft)
    assert "u" not in names  # the Union itself was replaced
    ft.validate()


def test_make_fault_tolerant_serializes_join_inputs():
    diagram = QueryDiagram("q")
    join = Join("j", window=1.0)
    diagram.add_operator(join)
    diagram.bind_input("a", join, 0)
    diagram.bind_input("b", join, 1)
    diagram.bind_output("out", join)
    ft = diagram.make_fault_tolerant()
    sunions = [op for op in ft if isinstance(op, SUnion)]
    assert len(sunions) == 2  # one serializer per Join input port
    ft.validate()


def test_make_fault_tolerant_keeps_existing_soutput():
    diagram = QueryDiagram("q")
    m = Map("m", transform=dict)
    so = SOutput("so")
    diagram.add_operator(m)
    diagram.add_operator(so)
    diagram.connect(m, so)
    diagram.bind_input("in", m)
    diagram.bind_output("out", so)
    ft = diagram.make_fault_tolerant()
    assert sum(1 for op in ft if isinstance(op, SOutput)) == 1
