"""Unit tests for the DPC-extended tuple data model."""

import pytest

from repro.spe.tuples import (
    StreamTuple,
    TupleType,
    count_stable,
    count_tentative,
    data_only,
    max_stime,
)


def test_insertion_is_stable_data():
    t = StreamTuple.insertion(3, 1.5, {"seq": 7})
    assert t.is_data and t.is_stable and not t.is_tentative
    assert t.tuple_type is TupleType.INSERTION
    assert t.value("seq") == 7
    assert t.value("missing", "default") == "default"


def test_tentative_tuple_flags():
    t = StreamTuple.tentative(1, 0.5, {"seq": 1})
    assert t.is_data and t.is_tentative and not t.is_stable


def test_boundary_undo_recdone_are_not_data():
    b = StreamTuple.boundary(0, 2.0)
    u = StreamTuple.undo(1, 2.0, undo_from_id=5)
    r = StreamTuple.rec_done(2, 2.0)
    assert not b.is_data and b.is_boundary
    assert not u.is_data and u.is_undo and u.undo_from_id == 5
    assert not r.is_data and r.is_rec_done


def test_as_tentative_and_as_stable_round_trip():
    stable = StreamTuple.insertion(1, 1.0, {"x": 1})
    tentative = stable.as_tentative()
    assert tentative.is_tentative
    assert tentative.values == stable.values
    assert tentative.as_stable().is_stable


def test_as_tentative_on_control_tuple_is_identity():
    boundary = StreamTuple.boundary(0, 1.0)
    assert boundary.as_tentative() is boundary
    assert boundary.as_stable() is boundary


def test_with_id_preserves_everything_else():
    t = StreamTuple.insertion(1, 1.0, {"x": 1}).with_stable_seq(9)
    t2 = t.with_id(42)
    assert t2.tuple_id == 42
    assert t2.stime == t.stime
    assert t2.values == t.values
    assert t2.stable_seq == 9


def test_with_values_replaces_payload():
    t = StreamTuple.insertion(1, 1.0, {"x": 1})
    t2 = t.with_values({"y": 2})
    assert t2.values == {"y": 2}
    assert t2.tuple_id == t.tuple_id


def test_counting_helpers():
    items = [
        StreamTuple.insertion(0, 0.0, {}),
        StreamTuple.tentative(1, 0.1, {}),
        StreamTuple.tentative(2, 0.2, {}),
        StreamTuple.boundary(3, 0.3),
    ]
    assert count_stable(items) == 1
    assert count_tentative(items) == 2
    assert len(data_only(items)) == 3
    assert max_stime(items) == pytest.approx(0.3)
    assert max_stime([]) == float("-inf")


def test_tuples_reject_foreign_attributes():
    """``__slots__``: no per-instance dict, no accidental attribute growth."""
    t = StreamTuple.insertion(0, 0.0, {"x": 1})
    with pytest.raises(AttributeError):
        t.not_a_field = 5.0
    assert not hasattr(t, "__dict__")


def test_tuples_are_unhashable():
    """Payload mappings are mutable, so tuples must not silently hash."""
    with pytest.raises(TypeError):
        hash(StreamTuple.insertion(0, 0.0, {"x": 1}))


def test_predicate_flags_match_tuple_type():
    cases = {
        TupleType.INSERTION: "is_stable",
        TupleType.TENTATIVE: "is_tentative",
        TupleType.BOUNDARY: "is_boundary",
        TupleType.UNDO: "is_undo",
        TupleType.REC_DONE: "is_rec_done",
    }
    for tuple_type, flag in cases.items():
        t = StreamTuple(tuple_type, 0, 0.0, undo_from_id=0)
        assert getattr(t, flag), tuple_type
        others = set(cases.values()) - {flag}
        assert not any(getattr(t, other) for other in others), tuple_type
        assert t.is_data == (tuple_type in (TupleType.INSERTION, TupleType.TENTATIVE))


def test_equality_matches_field_comparison():
    a = StreamTuple.insertion(1, 2.0, {"x": 1})
    b = StreamTuple.insertion(1, 2.0, {"x": 1})
    assert a == b
    assert a != b.with_stable_seq(0)
    assert a != StreamTuple.tentative(1, 2.0, {"x": 1})
    assert a != "not a tuple"


def test_deepcopy_round_trips_slots():
    """Checkpoint containers deep-copy buffered tuples; slots must survive."""
    import copy

    original = StreamTuple.insertion(7, 1.25, {"seq": 7}).with_stable_seq(3)
    clone = copy.deepcopy(original)
    assert clone == original
    assert clone.values == original.values and clone.values is not original.values
    assert clone.is_stable and clone.stable_seq == 3


# --------------------------------------------------------------------------- relabeling semantics
def test_as_tentative_drops_stable_seq_and_undo_from_id():
    """A relabeled copy is a new fact: positional metadata must not survive.

    ``stable_seq`` names a position in a producer's logical *stable* stream;
    a tentative copy has no such position (only stable tuples are numbered).
    Regression-pinned so the slotted rewrite (and any future one) cannot
    silently start leaking the ancestor's position onto corrections.
    """
    stamped = StreamTuple.insertion(4, 2.0, {"seq": 9}).with_stable_seq(17)
    downgraded = stamped.as_tentative()
    assert downgraded.is_tentative
    assert downgraded.stable_seq is None
    assert downgraded.undo_from_id is None
    assert downgraded.tuple_id == 4 and downgraded.stime == 2.0


def test_as_stable_drops_stable_seq_and_undo_from_id():
    """Upgrades must not inherit a position stamped on the tentative ancestor."""
    stamped = StreamTuple.tentative(4, 2.0, {"seq": 9}).with_stable_seq(17)
    upgraded = stamped.as_stable()
    assert upgraded.is_stable
    assert upgraded.stable_seq is None
    assert upgraded.undo_from_id is None


def test_relabeled_copies_share_the_payload_mapping():
    """Allocation-free transforms: the payload is shared, never copied."""
    stable = StreamTuple.insertion(1, 1.0, {"x": 1})
    assert stable.as_tentative().values is stable.values
    assert stable.as_tentative().as_stable().values is stable.values
    assert stable.with_id(9).values is stable.values
    assert stable.with_stable_seq(2).values is stable.values
    # with_values still copies: the caller's mapping stays caller-owned.
    replacement = {"y": 2}
    assert stable.with_values(replacement).values is not replacement
