"""Unit tests for the DPC-extended tuple data model."""

import pytest

from repro.spe.tuples import (
    StreamTuple,
    TupleType,
    count_stable,
    count_tentative,
    data_only,
    max_stime,
)


def test_insertion_is_stable_data():
    t = StreamTuple.insertion(3, 1.5, {"seq": 7})
    assert t.is_data and t.is_stable and not t.is_tentative
    assert t.tuple_type is TupleType.INSERTION
    assert t.value("seq") == 7
    assert t.value("missing", "default") == "default"


def test_tentative_tuple_flags():
    t = StreamTuple.tentative(1, 0.5, {"seq": 1})
    assert t.is_data and t.is_tentative and not t.is_stable


def test_boundary_undo_recdone_are_not_data():
    b = StreamTuple.boundary(0, 2.0)
    u = StreamTuple.undo(1, 2.0, undo_from_id=5)
    r = StreamTuple.rec_done(2, 2.0)
    assert not b.is_data and b.is_boundary
    assert not u.is_data and u.is_undo and u.undo_from_id == 5
    assert not r.is_data and r.is_rec_done


def test_as_tentative_and_as_stable_round_trip():
    stable = StreamTuple.insertion(1, 1.0, {"x": 1})
    tentative = stable.as_tentative()
    assert tentative.is_tentative
    assert tentative.values == stable.values
    assert tentative.as_stable().is_stable


def test_as_tentative_on_control_tuple_is_identity():
    boundary = StreamTuple.boundary(0, 1.0)
    assert boundary.as_tentative() is boundary
    assert boundary.as_stable() is boundary


def test_with_id_preserves_everything_else():
    t = StreamTuple.insertion(1, 1.0, {"x": 1}).with_stable_seq(9)
    t2 = t.with_id(42)
    assert t2.tuple_id == 42
    assert t2.stime == t.stime
    assert t2.values == t.values
    assert t2.stable_seq == 9


def test_with_values_replaces_payload():
    t = StreamTuple.insertion(1, 1.0, {"x": 1})
    t2 = t.with_values({"y": 2})
    assert t2.values == {"y": 2}
    assert t2.tuple_id == t.tuple_id


def test_counting_helpers():
    items = [
        StreamTuple.insertion(0, 0.0, {}),
        StreamTuple.tentative(1, 0.1, {}),
        StreamTuple.tentative(2, 0.2, {}),
        StreamTuple.boundary(3, 0.3),
    ]
    assert count_stable(items) == 1
    assert count_tentative(items) == 2
    assert len(data_only(items)) == 3
    assert max_stime(items) == pytest.approx(0.3)
    assert max_stime([]) == float("-inf")


def test_tuples_are_immutable():
    t = StreamTuple.insertion(0, 0.0, {"x": 1})
    with pytest.raises(AttributeError):
        t.stime = 5.0
