"""Unit tests for the SOutput stabilizing operator."""

from repro.spe.operators import SOutput
from repro.spe.tuples import StreamTuple, TupleType


def stable(i, stime=None):
    return StreamTuple.insertion(i, stime if stime is not None else i * 0.1, {"seq": i})


def tentative(i, stime=None):
    return StreamTuple.tentative(i, stime if stime is not None else i * 0.1, {"seq": i})


def test_pass_through_relabels_with_own_ids():
    op = SOutput("so")
    out = op.process_batch(0, [stable(10), stable(20)])
    assert [t.tuple_id for t in out] == [0, 1]
    assert op.last_stable_out_id == 1
    assert op.stable_forwarded == 2


def test_tracks_tentative_since_stable():
    op = SOutput("so")
    op.process(0, stable(0))
    op.process_batch(0, [tentative(1), tentative(2)])
    assert op.tentative_forwarded == 2


def test_reconciliation_drops_duplicates_and_emits_undo():
    op = SOutput("so")
    op.note_checkpoint()
    # After the checkpoint: two stable tuples, then a tentative suffix.
    op.process_batch(0, [stable(0), stable(1)])
    op.process_batch(0, [tentative(2), tentative(3)])
    op.begin_reconciliation()
    # The redo regenerates the two stable tuples (duplicates) and corrections.
    out = op.process_batch(0, [stable(0), stable(1), stable(2, 0.2), stable(3, 0.3)])
    types = [t.tuple_type for t in out]
    # duplicates dropped, an UNDO precedes the first correction
    assert types[0] is TupleType.UNDO
    assert out[0].undo_from_id == 1  # last stable id before the tentative suffix
    assert [t.value("seq") for t in out if t.is_data] == [2, 3]
    tail = op.end_reconciliation(stime=1.0)
    assert tail[-1].tuple_type is TupleType.REC_DONE
    assert not op.is_reconciling


def test_no_undo_when_no_tentative_was_forwarded():
    op = SOutput("so")
    op.note_checkpoint()
    op.process(0, stable(0))
    op.begin_reconciliation()
    out = op.process_batch(0, [stable(0), stable(1)])
    assert all(t.tuple_type is not TupleType.UNDO for t in out)
    assert [t.value("seq") for t in out if t.is_data] == [1]


def test_undo_emitted_at_end_if_no_corrections_arrived():
    op = SOutput("so")
    op.note_checkpoint()
    op.process(0, stable(0))
    op.process(0, tentative(1))
    op.begin_reconciliation()
    tail = op.end_reconciliation(stime=5.0)
    assert tail[0].tuple_type is TupleType.UNDO
    assert tail[1].tuple_type is TupleType.REC_DONE


def test_downgrade_to_tentative_flag():
    op = SOutput("so")
    op.downgrade_to_tentative = True
    out = op.process(0, stable(0))
    assert out[0].is_tentative
    assert op.stable_forwarded == 0 and op.tentative_forwarded == 1
    op.downgrade_to_tentative = False
    out = op.process(0, stable(1))
    assert out[0].is_stable


def test_rec_done_from_upstream_is_forwarded():
    op = SOutput("so")
    out = op.process(0, StreamTuple.rec_done(0, 1.0))
    assert out[0].tuple_type is TupleType.REC_DONE


def test_boundary_forwarding():
    op = SOutput("so")
    out = op.process(0, StreamTuple.boundary(0, 2.0))
    assert out[0].tuple_type is TupleType.BOUNDARY and out[0].stime == 2.0


def test_survives_restore_flag_set():
    assert SOutput("so").survives_restore is True
