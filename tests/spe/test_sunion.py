"""Unit tests for the SUnion serializing operator."""

from repro.spe.operators import SUnion
from repro.spe.tuples import StreamTuple, TupleType


def boundary(stime, tid=0):
    return StreamTuple.boundary(tid, stime)


def test_sunion_emits_nothing_until_all_inputs_have_boundaries():
    op = SUnion("su", arity=2, bucket_size=1.0)
    op.process(0, StreamTuple.insertion(0, 0.5, {"seq": 0}))
    assert op.process(0, boundary(5.0)) == []
    out = op.process(1, boundary(5.0))
    data = [t for t in out if t.is_data]
    assert [t.value("seq") for t in data] == [0]


def test_sunion_deterministic_order_across_interleavings():
    def run(order):
        op = SUnion("su", arity=2, bucket_size=1.0)
        for port, item in order:
            op.process(port, item)
        out = op.process(0, boundary(10.0)) + op.process(1, boundary(10.0))
        return [t.value("seq") for t in out if t.is_data]

    a = [(0, StreamTuple.insertion(0, 0.3, {"seq": 1})), (1, StreamTuple.insertion(0, 0.1, {"seq": 2}))]
    b = list(reversed(a))
    assert run(a) == run(b) == [2, 1]  # ordered by stime, not by arrival


def test_sunion_orders_by_stime_then_port_then_id():
    op = SUnion("su", arity=2, bucket_size=1.0)
    op.process(1, StreamTuple.insertion(7, 0.5, {"seq": "b"}))
    op.process(0, StreamTuple.insertion(3, 0.5, {"seq": "a"}))
    op.process(0, boundary(2.0))
    out = op.process(1, boundary(2.0))
    assert [t.value("seq") for t in out if t.is_data] == ["a", "b"]


def test_bucket_stability_follows_equation_1():
    # Figure 7 of the paper: a bucket is stable only when boundaries on every
    # stream pass its upper edge.
    op = SUnion("su", arity=3, bucket_size=5.0)
    for port in range(3):
        op.process(port, StreamTuple.insertion(port, 17.0, {"seq": port}))
    op.process(0, boundary(25.0))
    op.process(1, boundary(20.0))
    out = op.process(2, boundary(22.0))
    # min boundary = 20 -> the bucket [15, 20) is stable, tuples at 17 emitted.
    assert len([t for t in out if t.is_data]) == 3


def test_sunion_emits_boundary_with_min_stime():
    op = SUnion("su", arity=2, bucket_size=1.0)
    op.process(0, boundary(4.0))
    out = op.process(1, boundary(6.0))
    bounds = [t for t in out if t.tuple_type is TupleType.BOUNDARY]
    assert len(bounds) == 1 and bounds[0].stime == 4.0


def test_force_emit_pending_labels_tentative():
    op = SUnion("su", arity=2, bucket_size=1.0)
    op.process(0, StreamTuple.insertion(0, 0.5, {"seq": 0}))
    out = op.force_emit_pending()
    assert len(out) == 1 and out[0].is_tentative
    assert op.pending_tuples == 0


def test_force_emit_held_longer_than_uses_arrival_clock():
    now = [100.0]
    op = SUnion("su", arity=1, bucket_size=1.0)
    op.arrival_clock = lambda: now[0]
    op.process(0, StreamTuple.insertion(0, 99.5, {"seq": 0}))
    now[0] = 101.0
    op.process(0, StreamTuple.insertion(1, 100.5, {"seq": 1}))
    out = op.force_emit_held_longer_than(102.0, min_hold=1.5)
    # Only the first bucket has been held for >= 1.5 s.
    assert [t.value("seq") for t in out] == [0]
    assert all(t.is_tentative for t in out)


def test_late_arrivals_for_emitted_buckets_are_dropped():
    op = SUnion("su", arity=1, bucket_size=1.0)
    op.process(0, StreamTuple.insertion(0, 0.5, {"seq": 0}))
    op.process(0, boundary(5.0))
    assert op.process(0, StreamTuple.insertion(1, 0.7, {"seq": 1})) == []
    assert op.late_drops == 1


def test_hold_buckets_blocks_watermark_emission():
    op = SUnion("su", arity=1, bucket_size=1.0)
    op.hold_buckets = True
    op.process(0, StreamTuple.insertion(0, 0.5, {"seq": 0}))
    out = op.process(0, boundary(5.0))
    assert [t for t in out if t.is_data] == []
    assert op.pending_tuples == 1
    op.hold_buckets = False
    released = op.release_held_buckets()
    assert [t.value("seq") for t in released] == [0]
    assert released[0].is_stable


def test_drop_tentative_removes_only_tentative():
    op = SUnion("su", arity=1, bucket_size=1.0)
    op.process(0, StreamTuple.insertion(0, 0.5, {"seq": 0}))
    op.process(0, StreamTuple.tentative(1, 0.6, {"seq": 1}))
    assert op.drop_tentative() == 1
    assert op.pending_tuples == 1


def test_checkpoint_restore_preserves_buckets_and_progress():
    op = SUnion("su", arity=1, bucket_size=1.0)
    op.arrival_clock = lambda: 0.0
    op.process(0, StreamTuple.insertion(0, 0.5, {"seq": 0}))
    snapshot = op.checkpoint()
    op.process(0, boundary(5.0))
    assert op.pending_tuples == 0
    op.restore(snapshot)
    assert op.pending_tuples == 1
    out = op.process(0, boundary(5.0))
    assert [t.value("seq") for t in out if t.is_data] == [0]


def test_tentative_input_stays_tentative_through_serialization():
    op = SUnion("su", arity=1, bucket_size=1.0)
    op.process(0, StreamTuple.tentative(0, 0.5, {"seq": 0}))
    out = op.process(0, boundary(5.0))
    assert [t for t in out if t.is_data][0].is_tentative


def test_batch_with_undo_keeps_bucketing_later_data():
    """Regression: a mid-batch control fallback must not orphan the buckets.

    handle_undo on a checkpointed SUnion restores the checkpoint, which
    *rebinds* the internal bucket dict; the batch fast path must refresh its
    hoisted locals or every data tuple after the undo lands in the orphaned
    dict and is silently lost.
    """
    op = SUnion("su", arity=1, bucket_size=1.0)
    op.process(0, StreamTuple.insertion(0, 0.5, {"seq": 0}))
    op.checkpoint()
    out = op.process_batch(
        0,
        [
            StreamTuple.undo(1, 0.6, undo_from_id=0),
            StreamTuple.insertion(2, 0.7, {"seq": 1}),
            StreamTuple.insertion(3, 0.8, {"seq": 2}),
        ],
    )
    assert [t for t in out if t.is_undo]
    # The post-undo data tuples must live in the *current* bucket dict...
    assert op.pending_tuples == 3  # the checkpointed tuple + the two new ones
    # ...and stabilize normally once a boundary closes the bucket.
    emitted = op.process(0, boundary(2.0, tid=4))
    assert [t.value("seq") for t in emitted if t.is_data] == [0, 1, 2]


def test_batch_boundary_then_late_data_is_dropped_like_per_tuple_path():
    """The hoisted late-drop bound must refresh after a mid-batch boundary."""
    op = SUnion("su", arity=1, bucket_size=1.0)
    out = op.process_batch(
        0,
        [
            StreamTuple.insertion(0, 0.5, {"seq": 0}),
            boundary(2.0, tid=1),  # stabilizes and emits bucket 0
            StreamTuple.insertion(2, 0.4, {"seq": 99}),  # late: bucket 0 closed
        ],
    )
    assert [t.value("seq") for t in out if t.is_data] == [0]
    assert op.late_drops == 1
    assert op.pending_tuples == 0
