"""Unit tests for the windowed Join and the serialized SJoin."""

import pytest

from repro.errors import OperatorError
from repro.spe.operators import Join, SJoin
from repro.spe.tuples import StreamTuple


def test_join_matches_within_window():
    op = Join("j", window=1.0)
    op.process(0, StreamTuple.insertion(0, 1.0, {"k": "a"}))
    out = op.process(1, StreamTuple.insertion(0, 1.5, {"k": "b"}))
    assert len(out) == 1
    assert out[0].values == {"left_k": "a", "right_k": "b"}
    assert out[0].stime == 1.5


def test_join_rejects_outside_window_and_predicate():
    op = Join("j", window=1.0, predicate=lambda l, r: l["k"] == r["k"])
    op.process(0, StreamTuple.insertion(0, 1.0, {"k": "a"}))
    assert op.process(1, StreamTuple.insertion(0, 5.0, {"k": "a"})) == []
    assert op.process(1, StreamTuple.insertion(1, 1.2, {"k": "b"})) == []
    assert len(op.process(1, StreamTuple.insertion(2, 1.2, {"k": "a"}))) == 1


def test_join_tentative_propagation():
    op = Join("j", window=1.0)
    op.process(0, StreamTuple.tentative(0, 1.0, {"k": "a"}))
    out = op.process(1, StreamTuple.insertion(0, 1.0, {"k": "b"}))
    assert out[0].is_tentative


def test_join_state_pruned_by_watermark():
    op = Join("j", window=1.0)
    op.process(0, StreamTuple.insertion(0, 1.0, {"k": "a"}))
    op.process(1, StreamTuple.boundary(0, 10.0))
    op.process(0, StreamTuple.boundary(0, 10.0))
    assert op.buffered_tuples == 0


def test_join_state_size_limit():
    op = Join("j", window=100.0, state_size=2)
    for i in range(5):
        op.process(0, StreamTuple.insertion(i, float(i), {"k": i}))
    assert op.buffered_tuples == 2


def test_join_invalid_parameters():
    with pytest.raises(OperatorError):
        Join("j", window=-1.0)
    with pytest.raises(OperatorError):
        Join("j", window=1.0, state_size=0)


def test_join_checkpoint_restore():
    op = Join("j", window=10.0)
    op.process(0, StreamTuple.insertion(0, 1.0, {"k": "a"}))
    snap = op.checkpoint()
    op.process(0, StreamTuple.insertion(1, 2.0, {"k": "b"}))
    op.restore(snap)
    assert op.buffered_tuples == 1


def test_sjoin_default_is_stateful_pass_through():
    op = SJoin("sj", state_size=10)
    out = []
    for i in range(5):
        out += op.process(0, StreamTuple.insertion(i, i * 0.1, {"seq": i}))
    assert [t.value("seq") for t in out] == [0, 1, 2, 3, 4]
    assert op.buffered_tuples == 5


def test_sjoin_state_size_bound():
    op = SJoin("sj", state_size=3)
    for i in range(10):
        op.process(0, StreamTuple.insertion(i, i * 0.1, {"seq": i}))
    assert op.buffered_tuples == 3


def test_sjoin_emit_matches_mode():
    op = SJoin(
        "sj",
        window=1.0,
        state_size=10,
        emit_matches=True,
        predicate=lambda old, new: old["key"] == new["key"],
    )
    op.process(0, StreamTuple.insertion(0, 0.0, {"key": "x", "seq": 0}))
    out = op.process(0, StreamTuple.insertion(1, 0.5, {"key": "x", "seq": 1}))
    assert len(out) == 1
    assert out[0].values["old_seq"] == 0 and out[0].values["new_seq"] == 1


def test_sjoin_checkpoint_restore_and_tentative():
    op = SJoin("sj", state_size=5)
    op.process(0, StreamTuple.insertion(0, 0.0, {"seq": 0}))
    snap = op.checkpoint()
    op.process(0, StreamTuple.tentative(1, 0.1, {"seq": 1}))
    op.restore(snap)
    assert op.buffered_tuples == 1
    out = op.process(0, StreamTuple.tentative(1, 0.1, {"seq": 1}))
    assert out[0].is_tentative
