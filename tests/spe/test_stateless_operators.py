"""Unit tests for Filter, Map, and Union."""

import pytest

from repro.errors import OperatorError
from repro.spe.operators import Filter, Map, Union, chain_process
from repro.spe.tuples import StreamTuple, TupleType


def make_stream(n=5, start_id=0, tentative=False):
    factory = StreamTuple.tentative if tentative else StreamTuple.insertion
    return [factory(start_id + i, i * 0.1, {"seq": i, "value": i * 10}) for i in range(n)]


def test_filter_passes_matching_tuples():
    op = Filter("f", predicate=lambda v: v["value"] >= 20)
    out = op.process_batch(0, make_stream(5))
    assert [t.value("seq") for t in out] == [2, 3, 4]
    assert all(t.is_stable for t in out)


def test_filter_preserves_tentative_label():
    op = Filter("f", predicate=lambda v: True)
    out = op.process_batch(0, make_stream(3, tentative=True))
    assert all(t.is_tentative for t in out)


def test_map_transforms_values_and_keeps_stime():
    op = Map("m", transform=lambda v: {"double": v["value"] * 2})
    out = op.process(0, StreamTuple.insertion(0, 1.25, {"value": 3}))
    assert out[0].values == {"double": 6}
    assert out[0].stime == 1.25


def test_operator_rejects_invalid_port():
    op = Map("m", transform=dict)
    with pytest.raises(OperatorError):
        op.process(1, StreamTuple.insertion(0, 0.0, {}))


def test_operator_requires_positive_arity():
    with pytest.raises(OperatorError):
        Union("u", arity=0)


def test_union_merges_in_arrival_order():
    op = Union("u", arity=2)
    out = []
    out += op.process(0, StreamTuple.insertion(0, 0.0, {"seq": 0}))
    out += op.process(1, StreamTuple.insertion(0, 0.05, {"seq": 100}))
    out += op.process(0, StreamTuple.insertion(1, 0.1, {"seq": 1}))
    assert [t.value("seq") for t in out] == [0, 100, 1]
    assert [t.tuple_id for t in out] == [0, 1, 2]


def test_union_labels_output_tentative_when_input_missing():
    op = Union("u", arity=2)
    op.mark_port_missing(1)
    out = op.process(0, StreamTuple.insertion(0, 0.0, {"seq": 0}))
    assert out[0].is_tentative
    op.mark_port_available(1)
    out = op.process(0, StreamTuple.insertion(1, 0.1, {"seq": 1}))
    assert out[0].is_stable


def test_boundary_forwarding_uses_minimum_across_ports():
    op = Union("u", arity=2)
    out = op.process(0, StreamTuple.boundary(0, 5.0))
    assert out == []  # port 1 has no boundary yet
    out = op.process(1, StreamTuple.boundary(0, 3.0))
    boundaries = [t for t in out if t.tuple_type is TupleType.BOUNDARY]
    assert len(boundaries) == 1 and boundaries[0].stime == 3.0
    out = op.process(1, StreamTuple.boundary(1, 7.0))
    boundaries = [t for t in out if t.tuple_type is TupleType.BOUNDARY]
    assert len(boundaries) == 1 and boundaries[0].stime == 5.0


def test_chain_process_utility():
    ops = [
        Filter("f", predicate=lambda v: v["seq"] % 2 == 0),
        Map("m", transform=lambda v: {"seq": v["seq"] * 100}),
    ]
    out = chain_process(ops, make_stream(4))
    assert [t.value("seq") for t in out] == [0, 200]


def test_checkpoint_restore_round_trip_on_stateless_operator():
    op = Filter("f", predicate=lambda v: True)
    op.process(0, StreamTuple.insertion(0, 0.0, {"seq": 0}))
    snapshot = op.checkpoint()
    op.process(0, StreamTuple.insertion(1, 0.1, {"seq": 1}))
    op.restore(snapshot)
    out = op.process(0, StreamTuple.insertion(1, 0.1, {"seq": 1}))
    # The writer id picks up exactly where the checkpoint left it.
    assert out[0].tuple_id == 1


def test_restore_rejects_foreign_checkpoint():
    op_a = Filter("a", predicate=lambda v: True)
    op_b = Filter("b", predicate=lambda v: True)
    with pytest.raises(OperatorError):
        op_b.restore(op_a.checkpoint())
