"""Unit tests for the local execution engine (push, checkpoint, restore)."""

import pytest

from repro.errors import CheckpointError, DiagramError
from repro.spe.engine import LocalEngine
from repro.spe.operators import Filter, Map, SJoin, SOutput, SUnion
from repro.spe.query_diagram import QueryDiagram
from repro.spe.tuples import StreamTuple


def build_fragment():
    diagram = QueryDiagram("frag")
    su = SUnion("su", arity=1, bucket_size=1.0)
    sj = SJoin("sj", state_size=10, window=100.0)
    so = SOutput("so")
    for op in (su, sj, so):
        diagram.add_operator(op)
    diagram.connect(su, sj)
    diagram.connect(sj, so)
    diagram.bind_input("in", su)
    diagram.bind_output("out", so)
    return diagram


def test_push_propagates_through_fragment():
    engine = LocalEngine(build_fragment())
    tuples = [StreamTuple.insertion(i, i * 0.1, {"seq": i}) for i in range(5)]
    tuples.append(StreamTuple.boundary(5, 10.0))
    outputs = engine.push("in", tuples)
    assert [t.value("seq") for t in outputs["out"] if t.is_data] == [0, 1, 2, 3, 4]
    assert engine.tuples_processed > 0


def test_push_unknown_stream_raises():
    engine = LocalEngine(build_fragment())
    with pytest.raises(DiagramError):
        engine.push("nope", [])


def test_push_operator_outputs_routes_downstream():
    engine = LocalEngine(build_fragment())
    produced = [StreamTuple.tentative(0, 0.5, {"seq": 0})]
    outputs = engine.push_operator_outputs("su", produced)
    assert len(outputs["out"]) == 1
    assert outputs["out"][0].is_tentative


def test_checkpoint_restore_resets_operator_state_except_soutput():
    diagram = build_fragment()
    engine = LocalEngine(diagram)
    engine.push("in", [StreamTuple.insertion(0, 0.1, {"seq": 0}), StreamTuple.boundary(1, 5.0)])
    checkpoint = engine.checkpoint(created_at=1.0)
    engine.push("in", [StreamTuple.insertion(2, 5.1, {"seq": 1}), StreamTuple.boundary(3, 10.0)])
    sjoin = diagram.operator("sj")
    soutput = diagram.operator("so")
    stable_before_restore = soutput.stable_forwarded
    assert sjoin.buffered_tuples == 2
    engine.restore(checkpoint)
    assert sjoin.buffered_tuples == 1  # rolled back
    assert soutput.stable_forwarded == stable_before_restore  # not rolled back


def test_restore_rejects_mismatched_checkpoint():
    engine_a = LocalEngine(build_fragment())
    other = QueryDiagram("other")
    other.add_operator(Map("m", transform=dict))
    other.bind_input("in", "m")
    other.bind_output("out", "m")
    engine_b = LocalEngine(other)
    with pytest.raises(CheckpointError):
        engine_b.restore(engine_a.checkpoint())


def test_soutput_helpers():
    engine = LocalEngine(build_fragment())
    assert [op.name for op in engine.soutputs()] == ["so"]
    assert engine.soutput_for("out").name == "so"
    with pytest.raises(DiagramError):
        engine.soutput_for("missing")


def test_soutput_for_requires_soutput_producer():
    diagram = QueryDiagram("q")
    m = Filter("f", predicate=lambda v: True)
    diagram.add_operator(m)
    diagram.bind_input("in", m)
    diagram.bind_output("out", m)
    engine = LocalEngine(diagram)
    with pytest.raises(DiagramError):
        engine.soutput_for("out")


def test_entry_operators():
    engine = LocalEngine(build_fragment())
    assert engine.entry_operators("in") == [("su", 0)]
    assert engine.entry_operators("unknown") == []
