"""Unit tests for stream writers, logs, and undo application."""

import pytest

from repro.errors import StreamError
from repro.spe.streams import StreamLog, StreamWriter, apply_undo
from repro.spe.tuples import StreamTuple


def test_writer_assigns_increasing_ids():
    writer = StreamWriter("s")
    ids = [writer.insertion(i * 0.1, {"seq": i}).tuple_id for i in range(5)]
    assert ids == [0, 1, 2, 3, 4]


def test_writer_boundary_must_not_go_backwards():
    writer = StreamWriter("s")
    writer.boundary(1.0)
    with pytest.raises(StreamError):
        writer.boundary(0.5)
    writer.boundary(1.0)  # equal is fine


def test_writer_snapshot_restore():
    writer = StreamWriter("s")
    writer.insertion(0.0, {})
    writer.boundary(1.0)
    snap = writer.snapshot()
    writer.insertion(1.5, {})
    writer.restore(snap)
    assert writer.next_id == 2
    assert writer.last_boundary_stime == 1.0


def test_log_append_requires_increasing_ids():
    log = StreamLog("s")
    log.append(StreamTuple.insertion(0, 0.0, {}))
    log.append(StreamTuple.insertion(5, 0.1, {}))
    with pytest.raises(StreamError):
        log.append(StreamTuple.insertion(3, 0.2, {}))


def test_log_replay_after():
    log = StreamLog("s")
    log.extend(StreamTuple.insertion(i, i * 0.1, {"seq": i}) for i in range(10))
    replay = log.replay_after(6)
    assert [t.tuple_id for t in replay] == [7, 8, 9]
    assert log.replay_after(100) == []


def test_log_truncation_and_replay_limits():
    log = StreamLog("s")
    log.extend(StreamTuple.insertion(i, i * 0.1, {}) for i in range(10))
    removed = log.truncate_through(4)
    assert removed == 5
    assert log.truncated_through == 4
    assert len(log) == 5
    with pytest.raises(StreamError):
        log.replay_after(2)
    with pytest.raises(StreamError):
        log.append(StreamTuple.insertion(3, 0.3, {}))
    assert [t.tuple_id for t in log.replay_after(4)] == [5, 6, 7, 8, 9]


def test_log_last_stable_and_tentative_tail():
    log = StreamLog("s")
    log.append(StreamTuple.insertion(0, 0.0, {}))
    log.append(StreamTuple.tentative(1, 0.1, {}))
    log.append(StreamTuple.tentative(2, 0.2, {}))
    assert log.last_stable_id() == 0
    assert [t.tuple_id for t in log.tail_after_last_stable()] == [1, 2]


def test_log_bounded_capacity_flag():
    log = StreamLog("s", max_tuples=2)
    log.append(StreamTuple.insertion(0, 0.0, {}))
    assert not log.is_full
    log.append(StreamTuple.insertion(1, 0.1, {}))
    assert log.is_full


def test_apply_undo_removes_suffix():
    items = [StreamTuple.insertion(i, i * 0.1, {"seq": i}) for i in range(5)]
    undo = StreamTuple.undo(99, 0.5, undo_from_id=2)
    kept = apply_undo(items, undo)
    assert [t.tuple_id for t in kept] == [0, 1, 2]


def test_apply_undo_requires_undo_tuple():
    with pytest.raises(StreamError):
        apply_undo([], StreamTuple.insertion(0, 0.0, {}))
