"""Unit tests for window specifications."""

import pytest

from repro.errors import ConfigurationError
from repro.spe.windows import WindowSpec


def test_tumbling_window_indices():
    spec = WindowSpec.tumbling(10.0)
    assert list(spec.window_indices(0.0)) == [0]
    assert list(spec.window_indices(9.999)) == [0]
    assert list(spec.window_indices(10.0)) == [1]
    assert spec.window_start(2) == 20.0
    assert spec.window_end(2) == 30.0


def test_sliding_window_overlap():
    spec = WindowSpec.sliding(size=10.0, slide=5.0)
    # stime 12 belongs to windows [5,15) and [10,20)
    assert list(spec.window_indices(12.0)) == [1, 2]
    # stime 2 belongs only to [0, 10) (window index -? ) and [-5,5)
    assert list(spec.window_indices(2.0)) == [-1, 0]


def test_invalid_window_parameters():
    with pytest.raises(ConfigurationError):
        WindowSpec(size=0.0)
    with pytest.raises(ConfigurationError):
        WindowSpec(size=1.0, slide=0.0)


def test_windows_closed_by_watermark_advance():
    spec = WindowSpec.tumbling(10.0)
    closed = list(spec.windows_closed_by(float("-inf"), 25.0))
    assert closed == [0, 1]
    # Advancing further only closes the new ones.
    assert list(spec.windows_closed_by(25.0, 40.0)) == [2, 3]
    # No double-closing at exact edges.
    assert list(spec.windows_closed_by(40.0, 40.0)) == []


def test_is_closed():
    spec = WindowSpec.tumbling(5.0)
    assert spec.is_closed(0, 5.0)
    assert not spec.is_closed(1, 5.0)


def test_contains():
    spec = WindowSpec.sliding(size=4.0, slide=2.0, origin=1.0)
    assert spec.contains(0, 1.0)
    assert spec.contains(0, 4.99)
    assert not spec.contains(0, 5.0)
