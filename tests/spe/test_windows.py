"""Unit tests for window specifications."""

import pytest

from repro.errors import ConfigurationError
from repro.spe.windows import PaneAssignment, WindowSpec


def test_tumbling_window_indices():
    spec = WindowSpec.tumbling(10.0)
    assert list(spec.window_indices(0.0)) == [0]
    assert list(spec.window_indices(9.999)) == [0]
    assert list(spec.window_indices(10.0)) == [1]
    assert spec.window_start(2) == 20.0
    assert spec.window_end(2) == 30.0


def test_sliding_window_overlap():
    spec = WindowSpec.sliding(size=10.0, slide=5.0)
    # stime 12 belongs to windows [5,15) and [10,20)
    assert list(spec.window_indices(12.0)) == [1, 2]
    # stime 2 belongs only to [0, 10) (window index -? ) and [-5,5)
    assert list(spec.window_indices(2.0)) == [-1, 0]


def test_invalid_window_parameters():
    with pytest.raises(ConfigurationError):
        WindowSpec(size=0.0)
    with pytest.raises(ConfigurationError):
        WindowSpec(size=1.0, slide=0.0)


def test_windows_closed_by_watermark_advance():
    spec = WindowSpec.tumbling(10.0)
    closed = list(spec.windows_closed_by(float("-inf"), 25.0))
    assert closed == [0, 1]
    # Advancing further only closes the new ones.
    assert list(spec.windows_closed_by(25.0, 40.0)) == [2, 3]
    # No double-closing at exact edges.
    assert list(spec.windows_closed_by(40.0, 40.0)) == []


def test_is_closed():
    spec = WindowSpec.tumbling(5.0)
    assert spec.is_closed(0, 5.0)
    assert not spec.is_closed(1, 5.0)


def test_contains():
    spec = WindowSpec.sliding(size=4.0, slide=2.0, origin=1.0)
    assert spec.contains(0, 1.0)
    assert spec.contains(0, 4.99)
    assert not spec.contains(0, 5.0)


# --------------------------------------------------------------------------- panes
def test_pane_assignment_is_the_exact_gcd():
    spec = WindowSpec.sliding(size=60.0, slide=10.0)
    assert spec.pane == PaneAssignment(size=10.0, per_slide=1, per_window=6)
    spec = WindowSpec.sliding(size=100.0, slide=1.0)
    assert spec.pane == PaneAssignment(size=1.0, per_slide=1, per_window=100)
    spec = WindowSpec.sliding(size=7.0, slide=3.0)
    assert spec.pane == PaneAssignment(size=1.0, per_slide=3, per_window=7)
    assert WindowSpec.tumbling(5.0).pane == PaneAssignment(size=5.0, per_slide=1, per_window=1)


def test_inexact_binary_pairs_have_no_pane_assignment():
    # 0.3 and 0.1 are inexact binary floats whose true gcd is astronomically
    # small: the spec must fall back to whole-window accumulation.
    assert WindowSpec.sliding(size=0.3, slide=0.1).pane is None


def test_pane_attribute_does_not_affect_equality_or_hashing():
    a = WindowSpec.sliding(size=10.0, slide=5.0)
    b = WindowSpec.sliding(size=10.0, slide=5.0)
    assert a == b and hash(a) == hash(b)


def test_window_panes_and_pane_windows_are_inverse():
    spec = WindowSpec.sliding(size=7.0, slide=3.0)
    for window in range(-4, 5):
        for pane in spec.window_panes(window):
            assert window in spec.pane_windows(pane)
    for pane in range(-12, 13):
        for window in spec.pane_windows(pane):
            assert pane in spec.window_panes(window)
        assert spec.last_pane_window(pane) == max(spec.pane_windows(pane))


def test_pane_membership_matches_float_window_membership():
    for size, slide in ((10.0, 5.0), (7.0, 3.0), (1.0, 0.25), (60.0, 10.0)):
        spec = WindowSpec.sliding(size=size, slide=slide)
        for i in range(-200, 400):
            stime = i * 0.15
            pane = spec.pane_index(stime)
            assert spec.pane_start(pane) <= stime < spec.pane_start(pane + 1)
            assert list(spec.window_indices(stime)) == [
                k for k in spec.pane_windows(pane)
            ]
            for k in spec.window_indices(stime):
                assert spec.contains(k, stime)


def test_window_boundaries_sit_on_the_pane_grid():
    for size, slide in ((10.0, 5.0), (7.0, 3.0), (1.0, 0.25), (100.0, 1.0)):
        spec = WindowSpec.sliding(size=size, slide=slide)
        pane = spec.pane
        for k in range(-20, 20):
            assert spec.window_start(k) == spec.pane_start(k * pane.per_slide)
            assert spec.window_end(k) == spec.pane_start(k * pane.per_slide + pane.per_window)
