"""Multi-sink (pure fan-out) reporting: no sink may be silently dropped.

Regression guard for the harness bug where ``Cluster.client`` (=
``clients[0]``) was the only sink the experiment summaries looked at: a pure
fan-out deployment got one measuring client per sink but ``summarize_run``
and ``eventually_consistent`` reported the first client only, so a broken
second sink could never fail an experiment.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import summarize_run
from repro.runtime import NodeSpec, ScenarioSpec


def fanout_spec(**changes) -> ScenarioSpec:
    """ingest -> two independent sinks, each receiving the full stream."""
    return ScenarioSpec(
        name=changes.pop("name", "fanout"),
        topology=(
            NodeSpec(name="ingest", inputs=("s1", "s2")),
            NodeSpec(name="sink_a", inputs=("ingest",)),
            NodeSpec(name="sink_b", inputs=("ingest",)),
        ),
        aggregate_rate=changes.pop("aggregate_rate", 80.0),
        warmup=changes.pop("warmup", 4.0),
        settle=changes.pop("settle", 10.0),
        seed=changes.pop("seed", 1),
        **changes,
    )


@pytest.fixture(scope="module")
def fanout_runtime():
    return fanout_spec().run()


def test_fanout_builds_one_client_per_sink(fanout_runtime):
    assert [c.name for c in fanout_runtime.clients] == ["client", "client2"]
    # The legacy accessor still answers with the primary sink.
    assert fanout_runtime.client is fanout_runtime.clients[0]


def test_summarize_run_aggregates_every_sink(fanout_runtime):
    """Fails on the old behavior, which summarized ``clients[0]`` only."""
    result = summarize_run(fanout_runtime)
    per_client = [c.summary()["total_stable"] for c in fanout_runtime.clients]
    assert all(count > 0 for count in per_client), "both sinks must receive data"
    # The aggregate is the sum over sinks -- the old code reported only
    # per_client[0], which is strictly smaller here.
    assert result.n_stable == sum(per_client)
    assert result.n_stable > per_client[0]


def test_summarize_run_reports_per_sink_breakdown(fanout_runtime):
    result = summarize_run(fanout_runtime)
    per_sink = result.extra["per_sink"]
    assert set(per_sink) == {"client", "client2"}
    for name, summary in per_sink.items():
        assert summary["total_stable"] > 0, name
        assert summary["eventually_consistent"] is True, name


def test_single_sink_results_do_not_grow_a_breakdown():
    result = summarize_run(ScenarioSpec.single_node(settle=8.0, seed=1).run())
    assert "per_sink" not in result.extra


def test_eventual_consistency_requires_every_sink():
    runtime = fanout_spec(name="fanout-corrupted").run()
    assert runtime.eventually_consistent()
    # Corrupt the *second* sink's ledger: the run verdict must flip, which it
    # did not when only clients[0] was consulted.
    ledger = runtime.clients[1].metrics.consistency.ledger
    stable_positions = [i for i, item in enumerate(ledger) if item.is_stable]
    ledger.pop(stable_positions[len(stable_positions) // 2])
    assert not runtime.eventually_consistent()
    assert runtime.summary()["sinks_consistent"] == {"client": True, "client2": False}


def test_runtime_summary_lists_every_sink_verdict():
    runtime = fanout_spec(name="fanout-summary").run()
    summary = runtime.summary()
    assert set(summary["sinks_consistent"]) == {"client", "client2"}
    assert all(summary["sinks_consistent"].values())
    assert len(summary["clients"]) == 2


def test_cluster_without_clients_still_raises():
    from repro.sim.cluster import Cluster
    from repro.sim.event_loop import Simulator
    from repro.sim.network import Network
    from repro.sim.failures import FailureInjector

    simulator = Simulator()
    network = Network(simulator)
    cluster = Cluster(
        simulator=simulator,
        network=network,
        failures=FailureInjector(simulator=simulator, network=network),
    )
    with pytest.raises(ConfigurationError):
        cluster.client
