"""Determinism regression tests for the scenario layer.

Two runs of the same :class:`ScenarioSpec` with the same seed must produce
byte-identical ``summary()`` dictionaries (the whole cluster view: source
counters, per-node statistics, client metrics, events fired); different seeds
must produce different summaries.
"""

import json

from repro.runtime import ScenarioSpec


def _spec(seed):
    return ScenarioSpec.single_node(
        name="determinism", aggregate_rate=90.0, settle=15.0, seed=seed
    ).with_failure("disconnect", start=5.0, duration=6.0)


def _summary(seed):
    return _spec(seed).run().summary()


def _diamond_spec(seed):
    return ScenarioSpec.diamond(
        name="determinism-diamond", aggregate_rate=90.0, warmup=4.0, settle=16.0, seed=seed
    ).with_branch_crash("left", duration=5.0)


def _diamond_summary(seed):
    return _diamond_spec(seed).run().summary()


def test_same_seed_runs_are_byte_identical():
    first = json.dumps(_summary(1), sort_keys=True, default=str)
    second = json.dumps(_summary(1), sort_keys=True, default=str)
    assert first == second


def test_unseeded_runs_are_also_reproducible():
    assert _summary(None) == _summary(None)


def test_different_seeds_differ():
    assert _summary(1) != _summary(2)


def test_seeded_runs_stay_eventually_consistent():
    for seed in (1, 2, 3):
        runtime = _spec(seed).run()
        assert runtime.eventually_consistent(), f"seed {seed}"


# --------------------------------------------------------------------------- DAG topologies
def test_diamond_same_seed_runs_are_byte_identical():
    first = json.dumps(_diamond_summary(2), sort_keys=True, default=str)
    second = json.dumps(_diamond_summary(2), sort_keys=True, default=str)
    assert first == second


def test_diamond_different_seeds_differ():
    assert _diamond_summary(1) != _diamond_summary(2)


def test_diamond_seeded_runs_stay_eventually_consistent():
    for seed in (1, 2):
        runtime = _diamond_spec(seed).run()
        assert runtime.eventually_consistent(), f"seed {seed}"
