"""Determinism regression tests for the scenario layer.

Two runs of the same :class:`ScenarioSpec` with the same seed must produce
byte-identical ``summary()`` dictionaries (the whole cluster view: source
counters, per-node statistics, client metrics, events fired); different seeds
must produce different summaries.
"""

import json

import pytest

from repro.runtime import ScenarioSpec


def _spec(seed):
    return ScenarioSpec.single_node(
        name="determinism", aggregate_rate=90.0, settle=15.0, seed=seed
    ).with_failure("disconnect", start=5.0, duration=6.0)


def _summary(seed):
    return _spec(seed).run().summary()


def _diamond_spec(seed):
    return ScenarioSpec.diamond(
        name="determinism-diamond", aggregate_rate=90.0, warmup=4.0, settle=16.0, seed=seed
    ).with_branch_crash("left", duration=5.0)


def _diamond_summary(seed):
    return _diamond_spec(seed).run().summary()


def test_same_seed_runs_are_byte_identical():
    first = json.dumps(_summary(1), sort_keys=True, default=str)
    second = json.dumps(_summary(1), sort_keys=True, default=str)
    assert first == second


def test_unseeded_runs_are_also_reproducible():
    assert _summary(None) == _summary(None)


def test_different_seeds_differ():
    assert _summary(1) != _summary(2)


def test_seeded_runs_stay_eventually_consistent():
    for seed in (1, 2, 3):
        runtime = _spec(seed).run()
        assert runtime.eventually_consistent(), f"seed {seed}"


# --------------------------------------------------------------------------- DAG topologies
def test_diamond_same_seed_runs_are_byte_identical():
    first = json.dumps(_diamond_summary(2), sort_keys=True, default=str)
    second = json.dumps(_diamond_summary(2), sort_keys=True, default=str)
    assert first == second


def test_diamond_different_seeds_differ():
    assert _diamond_summary(1) != _diamond_summary(2)


def test_diamond_seeded_runs_stay_eventually_consistent():
    for seed in (1, 2):
        runtime = _diamond_spec(seed).run()
        assert runtime.eventually_consistent(), f"seed {seed}"


# --------------------------------------------------------------------------- shard topologies
def _shard_spec(seed, shards=2, kill=False):
    spec = ScenarioSpec.sharded(
        name=f"determinism-shard{shards}",
        shards=shards,
        aggregate_rate=90.0,
        warmup=4.0,
        settle=16.0,
        seed=seed,
    )
    if kill:
        spec = spec.with_shard_kill(1, duration=5.0)
    return spec


def _shard_summary(seed, shards=2, kill=False):
    return _shard_spec(seed, shards=shards, kill=kill).run().summary()


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_shard_same_seed_runs_are_byte_identical(shards):
    first = json.dumps(_shard_summary(2, shards=shards), sort_keys=True, default=str)
    second = json.dumps(_shard_summary(2, shards=shards), sort_keys=True, default=str)
    assert first == second


def test_shard_kill_same_seed_runs_are_byte_identical():
    first = json.dumps(_shard_summary(3, kill=True), sort_keys=True, default=str)
    second = json.dumps(_shard_summary(3, kill=True), sort_keys=True, default=str)
    assert first == second


def test_shard_different_seeds_differ():
    assert _shard_summary(1) != _shard_summary(2)


def test_shard_ledger_identical_across_shard_counts():
    """The merged stable ledger is the *same stream* whatever the shard count.

    Sharding only partitions the work: with the same seed (same source
    timing), every deployment must reassemble the identical stable prefix.
    """
    ledgers = {
        shards: _shard_spec(5, shards=shards).run().client.stable_sequence
        for shards in (1, 2, 4)
    }
    assert ledgers[1] == ledgers[2] == ledgers[4]
    assert len(ledgers[1]) > 0


def test_shard_kill_seeded_runs_stay_eventually_consistent():
    for seed in (1, 2, 3):
        runtime = _shard_spec(seed, kill=True).run()
        assert runtime.eventually_consistent(), f"seed {seed}"
