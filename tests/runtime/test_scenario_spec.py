"""Tests for the declarative scenario layer (spec validation + compilation)."""

import pytest

from repro.config import DPCConfig
from repro.errors import ConfigurationError, SimulationError
from repro.runtime import FailureSpec, ScenarioSpec, run_scenario


def test_defaults_validate_and_derive_duration():
    spec = ScenarioSpec()
    spec.validate()
    assert spec.total_duration() == spec.warmup + spec.settle
    failing = spec.with_failure("disconnect", start=5.0, duration=10.0)
    assert failing.total_duration() == 15.0 + failing.settle
    assert failing.with_overrides(duration=7.5).total_duration() == 7.5


def test_validation_rejects_bad_specs():
    with pytest.raises(ConfigurationError):
        ScenarioSpec(chain_depth=0).validate()
    with pytest.raises(ConfigurationError):
        ScenarioSpec(replicas_per_node=0).validate()
    with pytest.raises(ConfigurationError):
        ScenarioSpec(aggregate_rate=0.0).validate()
    with pytest.raises(ConfigurationError):
        ScenarioSpec(duration=-1.0).validate()
    with pytest.raises(ConfigurationError):
        ScenarioSpec(failures=(FailureSpec(kind="disconnect", start=1.0, duration=0.0),)).validate()


def test_factories_shape_the_topology():
    single = ScenarioSpec.single_node(replicated=False)
    assert (single.chain_depth, single.replicas_per_node) == (1, 1)
    chain = ScenarioSpec.chain(3)
    assert (chain.chain_depth, chain.replicas_per_node) == (3, 2)
    assert chain.name == "chain-3"


def test_compiled_runtime_owns_a_wired_cluster():
    runtime = ScenarioSpec.single_node(
        aggregate_rate=60.0, config=DPCConfig(max_incremental_latency=3.0)
    ).with_failure("disconnect", start=2.0, duration=3.0).with_overrides(warmup=2.0, settle=8.0).build()
    assert len(runtime.sources) == 3
    assert len(runtime.nodes()) == 2
    runtime.run()
    assert runtime.simulator.now == pytest.approx(13.0)
    assert len(runtime.injected) == 2  # one record per disconnected replica
    assert runtime.client.metrics.consistency.total_stable > 0
    summary = runtime.summary()
    assert summary["events_fired"] == runtime.simulator.events_fired
    assert summary["eventually_consistent"] is True
    # A completed scenario refuses to silently rerun.
    with pytest.raises(SimulationError):
        runtime.run()


def test_run_scenario_convenience():
    runtime = run_scenario(ScenarioSpec.single_node(aggregate_rate=60.0, settle=5.0))
    assert runtime.eventually_consistent()


def test_runtime_tracks_wall_clock_outside_the_summary():
    """Wall time is measured for the harness but kept out of summary()."""
    from repro.experiments.harness import summarize_run

    runtime = ScenarioSpec.single_node(
        replicated=False, aggregate_rate=60.0, warmup=2.0, settle=2.0, seed=1
    ).run()
    assert runtime.wall_seconds > 0.0
    # summary() must stay byte-identical across hosts: no wall-clock fields
    # anywhere in the tree (str() of the dict covers nested keys too).
    assert "wall" not in str(runtime.summary())
    result = summarize_run(runtime)
    assert result.extra["wall_ms"] == pytest.approx(runtime.wall_seconds * 1000, abs=1e-3)
    assert result.extra["tuples_per_sec"] > 0.0
