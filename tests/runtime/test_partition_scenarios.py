"""Network-partition scenarios on the simulator.

A partition isolates a replica (or a whole node group) at the network layer
while the victim keeps running -- the split-brain analogue of the crash
scenarios.  These runs are the oracle shapes the live backend's FaultPlan
tests compare against byte-for-byte.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.runtime import ScenarioSpec


@pytest.mark.parametrize("seed", [1, 2])
def test_chain_whole_node_partition_reconciles(seed):
    """Cut both replicas of node1: downstream goes tentative during the
    window and the ledger converges after the heal."""
    spec = ScenarioSpec.chain(2, seed=seed).with_partition(
        node="node1", replica=-1, duration=6.0
    )
    runtime = spec.run()
    client = runtime.client
    assert client.n_tentative > 0, "partition window produced no tentative output"
    assert runtime.eventually_consistent()


@pytest.mark.parametrize("seed", [1, 2])
def test_shard_whole_group_partition_reconciles(seed):
    spec = ScenarioSpec.sharded(shards=4, seed=seed).with_partition(
        node="shard1", replica=-1, duration=6.0
    )
    runtime = spec.run()
    assert runtime.client.n_tentative > 0
    assert runtime.eventually_consistent()


def test_single_replica_partition_is_masked():
    """Isolating one replica of a replicated node is masked by its partner:
    consumers switch upstream, so the client never sees tentative data."""
    spec = ScenarioSpec.chain(2, seed=1).with_partition(
        node="node1", replica=0, duration=6.0
    )
    runtime = spec.run()
    assert runtime.client.n_tentative == 0
    assert runtime.eventually_consistent()


def test_partition_records_failure_history():
    spec = ScenarioSpec.chain(2, seed=1).with_partition(
        node="node1", replica=-1, duration=4.0
    )
    runtime = spec.run()
    targets = {record.target for record in runtime.injected}
    assert targets == {"node1<->*", "node1'<->*"}


def test_partition_validation_rejects_unknown_node():
    with pytest.raises(ConfigurationError):
        ScenarioSpec.chain(2).with_partition(node="ghost", duration=4.0).run()
