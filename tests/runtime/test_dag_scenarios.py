"""DAG topology scenarios through the runtime layer (tier-1 acceptance).

The headline property (ISSUE 2): a diamond deployment -- 2-way fan-out into
partitioned branches, 2-way fan-in, two replicas per node -- survives the
crash of *every* replica of one branch: the other branch's output stays
stable, the client's Proc_new stays within the availability bound, and after
recovery reconciliation converges to the failure-free output.
"""

import pytest

from repro.config import DPCConfig
from repro.errors import ConfigurationError
from repro.runtime import NodeSpec, ScenarioSpec, Topology


def _diamond_spec(**changes):
    defaults = dict(
        aggregate_rate=90.0,
        warmup=4.0,
        settle=18.0,
        seed=1,
        config=DPCConfig(max_incremental_latency=3.0),
    )
    defaults.update(changes)
    return ScenarioSpec.diamond(**defaults)


# --------------------------------------------------------------------------- validation
def test_crash_on_unknown_node_fails_at_build_time():
    spec = _diamond_spec().with_failure("crash", duration=5.0, node="nonexistent")
    with pytest.raises(ConfigurationError):
        spec.validate()
    with pytest.raises(ConfigurationError):
        spec.build()


def test_crash_on_out_of_range_replica_fails_at_build_time():
    spec = _diamond_spec().with_failure("crash", duration=5.0, node="left", node_replica=5)
    with pytest.raises(ConfigurationError):
        spec.validate()


def test_crash_level_out_of_range_fails_at_build_time():
    spec = _diamond_spec().with_failure("crash", duration=5.0, node_level=9)
    with pytest.raises(ConfigurationError):
        spec.validate()


def test_disconnect_stream_out_of_range_uses_topology_sources():
    spec = _diamond_spec().with_failure("disconnect", duration=5.0, stream_index=3)
    with pytest.raises(ConfigurationError):
        spec.validate()
    # stream 2 exists (the diamond has three sources).
    _diamond_spec().with_failure("disconnect", duration=5.0, stream_index=2).validate()


def test_custom_topology_from_node_specs():
    spec = ScenarioSpec(
        name="custom",
        topology=(NodeSpec("ingest", ("s1", "s2")), NodeSpec("relay", ("ingest",))),
        n_input_streams=2,
        aggregate_rate=60.0,
        settle=6.0,
        warmup=2.0,
    )
    runtime = spec.run()
    assert runtime.topology.node_names == ["ingest", "relay"]
    assert len(runtime.sources) == 2
    assert runtime.client.stream == "relay.out"
    assert runtime.eventually_consistent()


# --------------------------------------------------------------------------- name-based addressing
def test_name_based_node_lookup_and_level_shim():
    runtime = _diamond_spec(settle=5.0, warmup=1.0).build()
    assert runtime.node("merge", 0).name == "merge"
    assert runtime.node("merge", 1).name == "merge'"
    assert [n.name for n in runtime.node_group("left")] == ["left", "left'"]
    # The level shim indexes the topological order.
    assert runtime.node(0).name == "ingest"
    assert runtime.node(3, 1).name == "merge'"
    with pytest.raises(ConfigurationError):
        runtime.node("nope")
    with pytest.raises(ConfigurationError):
        runtime.node("merge", 7)
    with pytest.raises(ConfigurationError):
        runtime.node(11)


# --------------------------------------------------------------------------- end-to-end acceptance
def test_diamond_branch_kill_keeps_survivor_stable_and_reconciles():
    """ISSUE 2 acceptance: kill one branch, survivor stable, bound kept, converges."""
    spec = _diamond_spec().with_branch_crash("left", duration=6.0)
    assert len(spec.failures) == 1  # one schedule entry, resolved to all replicas
    runtime = spec.run()
    assert len(runtime.injected) == 2  # both replicas of the branch crashed

    # The unaffected branch never produced a tentative tuple and ended STABLE.
    for replica in runtime.node_group("right"):
        stats = replica.statistics()
        assert stats["state"] == "stable"
        assert stats["outputs"]["right.out"]["tentative"] == 0
    # The failed branch's slice went tentative at the merge during the outage.
    merge_tentative = sum(
        replica.statistics()["outputs"]["merge.out"]["tentative"]
        for replica in runtime.node_group("merge")
    )
    assert merge_tentative > 0
    assert runtime.client.n_tentative > 0

    # Availability: Proc_new within the end-to-end bound X.
    assert runtime.client.proc_new < spec.dpc_config().max_incremental_latency

    # Eventual consistency after recovery.
    assert runtime.eventually_consistent()
    sequence = runtime.client.stable_sequence
    assert sequence == sorted(sequence)
    assert set(range(min(sequence), max(sequence) + 1)) <= set(sequence)

    # Every replica group settles back to STABLE.
    for name in runtime.topology.node_names:
        for replica in runtime.node_group(name):
            assert replica.state.value == "stable", (name, replica.name)


def test_fanin_branch_silence_reconciles():
    spec = ScenarioSpec.fanin(
        aggregate_rate=80.0,
        warmup=4.0,
        settle=16.0,
        seed=1,
        config=DPCConfig(max_incremental_latency=3.0),
    ).with_failure("silence", duration=5.0, stream_index=0)
    runtime = spec.run()
    assert runtime.eventually_consistent()
    # Only branch1 (fed by the silenced source) went tentative.
    for replica in runtime.node_group("branch2"):
        assert replica.statistics()["outputs"]["branch2.out"]["tentative"] == 0
    branch1_tentative = sum(
        replica.statistics()["outputs"]["branch1.out"]["tentative"]
        for replica in runtime.node_group("branch1")
    )
    assert branch1_tentative > 0
    assert runtime.client.proc_new < spec.dpc_config().max_incremental_latency


def test_pure_fanout_gets_one_client_per_sink():
    topo = Topology(
        [
            NodeSpec("ingest", ("s1", "s2")),
            NodeSpec("alpha", ("ingest",)),
            NodeSpec("beta", ("ingest",)),
        ],
        name="fanout",
    )
    runtime = ScenarioSpec(
        name="fanout",
        topology=topo,
        aggregate_rate=60.0,
        warmup=2.0,
        settle=6.0,
    ).run()
    assert len(runtime.clients) == 2
    streams = {client.stream for client in runtime.clients}
    assert streams == {"alpha.out", "beta.out"}
    for client in runtime.clients:
        assert client.metrics.consistency.total_stable > 0


def test_branch_crash_tracks_replica_overrides():
    spec = _diamond_spec(settle=5.0).with_branch_crash("left", duration=3.0)
    bigger = spec.with_overrides(replicas_per_node=3)
    runtime = bigger.build()
    runtime.start()
    # The single schedule entry expands to the *overridden* replica count.
    assert len(runtime.injected) == 3
    assert {record.target for record in runtime.injected} == {"left", "left'", "left''"}
