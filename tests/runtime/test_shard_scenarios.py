"""Sharded scenarios: spec compilation, shard-kill, and schedule validation.

The failure-schedule edge cases ride on the shard topology: unknown shard
names, killing the split node (legal -- it is just a replicated node),
replica indices out of range, and schedules that outlive an explicitly
truncated run.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import group_output_counts, shard_kill_failure, summarize_run
from repro.runtime import ScenarioSpec
from repro.spe.operators import Filter, SJoin, SUnion


def small_shard_spec(shards=2, **changes):
    return ScenarioSpec.sharded(
        shards=shards,
        aggregate_rate=changes.pop("aggregate_rate", 90.0),
        warmup=changes.pop("warmup", 4.0),
        settle=changes.pop("settle", 16.0),
        seed=changes.pop("seed", 1),
        **changes,
    )


# --------------------------------------------------------------------------- compilation
def test_sharded_spec_compiles_split_shards_merge():
    runtime = small_shard_spec(shards=3).build()
    assert runtime.topology.node_names == ["split", "shard1", "shard2", "shard3", "merge"]
    assert runtime.topology.depth() == 3
    assert runtime.topology.shard_assignment is not None
    # One replica group per logical node, one client for the single sink.
    assert set(runtime.cluster.node_groups) == set(runtime.topology.node_names)
    assert [c.name for c in runtime.clients] == ["client"]


def test_shard_fragments_receive_their_slice_and_own_the_join():
    """Default routing: the slice is cut at the producer, fragments relay."""
    runtime = small_shard_spec(shards=2).build()
    shard_node = runtime.node("shard1")
    ops = shard_node.diagram.operators
    # The slice predicate runs at the split (filtered subscription), so the
    # fragment is SUnion -> SJoin -> SOutput with no Filter of its own.
    entry = shard_node.diagram.inputs[0].operator
    assert isinstance(ops[entry], SUnion)
    assert not any(isinstance(op, Filter) for op in ops.values())
    assert any(isinstance(op, SJoin) for op in ops.values())
    # The consumer carries the shared filter for later re-subscriptions.
    monitor = shard_node.cm.monitor("split.out")
    assert monitor.subscription_filter is not None
    assert monitor.subscription_filter.name == "shard1.slice"
    # The split is a stateless router: SUnion + SOutput only.
    split_ops = runtime.node("split").diagram.operators.values()
    assert not any(isinstance(op, SJoin) for op in split_ops)
    assert any(isinstance(op, SUnion) for op in split_ops)


def test_multicast_routing_keeps_the_ingress_filter():
    """filtered_routing=False restores the legacy multicast + ingress Filter."""
    runtime = small_shard_spec(shards=2, filtered_routing=False).build()
    shard_node = runtime.node("shard1")
    ops = shard_node.diagram.operators
    entry = shard_node.diagram.inputs[0].operator
    assert isinstance(ops[entry], Filter)
    assert shard_node.cm.monitor("split.out").subscription_filter is None


def test_shard_slices_are_disjoint_and_cover_the_stream():
    runtime = small_shard_spec(shards=4, settle=8.0).run()
    merge_counts = group_output_counts(runtime, "merge")
    shard_totals = [
        group_output_counts(runtime, f"shard{i + 1}")["stable"] for i in range(4)
    ]
    # Every shard produced its slice, and the slices reassemble the full
    # stream at the merge (each replica group emits the same stream, so the
    # per-group totals compare directly).
    assert merge_counts["stable"] > 0
    assert all(total > 0 for total in shard_totals)
    assert sum(shard_totals) >= merge_counts["stable"]
    assignment = runtime.topology.shard_assignment
    sequence = runtime.client.stable_sequence
    assert sequence == sorted(sequence)
    owners = {assignment.shard_of({"seq": value}) for value in sequence}
    assert owners == set(range(4)), "every shard must own part of the stream"


# --------------------------------------------------------------------------- shard-kill
def test_shard_kill_experiment_properties():
    result = shard_kill_failure(6.0, shards=2, aggregate_rate=90.0, settle=25.0, seed=1)
    assert result.eventually_consistent
    shards = result.extra["shards"]
    assert result.extra["killed_shard"] == "shard1"
    assert result.extra["survivors"] == ["shard2"]
    assert shards["shard2"]["tentative"] == 0
    assert shards["merge"]["tentative"] > 0
    assert result.proc_new < result.extra["availability_bound"]


def test_shard_kill_by_name_matches_by_index():
    by_index = small_shard_spec().with_shard_kill(2, duration=5.0)
    by_name = small_shard_spec().with_shard_kill("shard2", duration=5.0)
    assert by_index.failures == by_name.failures
    by_index.validate()


# --------------------------------------------------------------------------- schedule validation
def test_unknown_shard_name_is_rejected_at_build_time():
    spec = small_shard_spec(shards=2).with_shard_kill(3, duration=5.0)
    with pytest.raises(ConfigurationError, match="shard3"):
        spec.validate()
    with pytest.raises(ConfigurationError):
        spec.build()


def test_killing_the_split_node_is_legal_and_recovers():
    """The split is an ordinary replicated node; killing one replica masks."""
    spec = small_shard_spec().with_failure("crash", duration=5.0, node="split")
    spec.validate()
    runtime = spec.run()
    assert runtime.eventually_consistent()
    # The surviving split replica keeps routing: switches, no data loss.
    assert runtime.client.summary()["total_stable"] > 0


def test_killing_every_split_replica_is_schedulable():
    spec = small_shard_spec(settle=25.0).with_branch_crash("split", duration=4.0)
    spec.validate()  # -1 means every replica; always in range


def test_shard_replica_out_of_range_is_rejected():
    spec = small_shard_spec().with_failure(
        "crash", duration=5.0, node="shard1", node_replica=2
    )
    with pytest.raises(ConfigurationError, match="replica"):
        spec.validate()


def test_schedule_outliving_an_explicit_duration_is_rejected():
    spec = small_shard_spec().with_shard_kill(1, duration=10.0)
    # Derived duration covers the failure: fine.
    spec.validate()
    truncated = spec.with_overrides(duration=8.0)
    with pytest.raises(ConfigurationError, match="duration"):
        truncated.validate()
    # A duration long enough for the failure (start 4 + 10) is accepted.
    spec.with_overrides(duration=14.0).validate()


def test_schedule_outliving_the_run_applies_to_chains_too():
    spec = ScenarioSpec.chain(1).with_failure("disconnect", start=5.0, duration=10.0)
    with pytest.raises(ConfigurationError):
        spec.with_overrides(duration=7.5).validate()


# --------------------------------------------------------------------------- invalid shapes
def test_shard_count_and_bucket_validation():
    with pytest.raises(ConfigurationError):
        ScenarioSpec.sharded(shards=0)
    with pytest.raises(ConfigurationError):
        ScenarioSpec.sharded(shards=4, buckets=2)


def test_harness_summarize_reports_shard_runs():
    runtime = small_shard_spec(settle=8.0).run()
    result = summarize_run(runtime)
    assert result.n_stable == runtime.client.summary()["total_stable"]
    assert "per_sink" not in result.extra  # single sink
