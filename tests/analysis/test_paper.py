"""Tests for the encoded paper reference data."""

import pytest

from repro.analysis.paper import (
    PAPER_CLAIMS,
    PAPER_CONSTANTS,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    paper_claim,
)


def test_table3_reference_is_flat_beyond_two_seconds():
    values = [v for duration, v in PAPER_TABLE3.items() if duration > 2.0]
    assert values
    assert max(values) == min(values) == 2.8


def test_table3_two_second_failure_is_cheaper():
    assert PAPER_TABLE3[2.0] < PAPER_TABLE3[4.0]


def test_table4_and_table5_grow_with_parameter():
    for table in (PAPER_TABLE4, PAPER_TABLE5):
        maxima = [row.maximum for row in table]
        averages = [row.average for row in table]
        assert maxima == sorted(maxima)
        assert averages == sorted(averages)


def test_table4_reference_includes_baseline_column():
    assert PAPER_TABLE4[0].parameter_ms == 0
    assert PAPER_TABLE4[0].average == 0.0


def test_tables_have_matching_ten_ms_column():
    # Both tables share the 10 ms / 10 ms configuration, reported identically.
    row4 = next(row for row in PAPER_TABLE4 if row.parameter_ms == 10)
    row5 = next(row for row in PAPER_TABLE5 if row.parameter_ms == 10)
    assert row4 == row5


def test_every_claim_has_id_section_and_checks():
    assert len(PAPER_CLAIMS) >= 10
    for claim in PAPER_CLAIMS:
        assert claim.experiment_id
        assert claim.section
        assert claim.claim.strip()
        assert claim.checks


def test_claim_ids_are_unique():
    ids = [claim.experiment_id for claim in PAPER_CLAIMS]
    assert len(ids) == len(set(ids))


def test_paper_claim_lookup():
    claim = paper_claim("fig18")
    assert "60" in claim.claim or "long" in claim.claim.lower()


def test_paper_claim_unknown_id_raises_with_known_ids():
    with pytest.raises(KeyError) as excinfo:
        paper_claim("fig99")
    assert "table3" in str(excinfo.value)


def test_constants_match_prose():
    assert PAPER_CONSTANTS["switch_time_s"] == pytest.approx(0.04)
    assert PAPER_CONSTANTS["full_assignment_delay_s"] == pytest.approx(6.5)
    assert PAPER_CONSTANTS["full_assignment_budget_s"] == pytest.approx(8.0)
