"""Tests for the qualitative shape checks."""

from repro.analysis.comparison import (
    availability_checks,
    check_crossover,
    check_flat,
    check_monotonic,
    check_within,
    compare_policies,
    summarize_checks,
)
from repro.experiments.harness import ExperimentResult


def make_result(label, duration=10.0, proc_new=2.5, tentative=100, consistent=True):
    return ExperimentResult(
        label=label,
        failure_duration=duration,
        chain_depth=1,
        policy=label,
        proc_new=proc_new,
        max_gap=proc_new,
        n_tentative=tentative,
        n_stable=1000,
        n_undos=1,
        n_rec_done=1,
        eventually_consistent=consistent,
    )


def test_check_within_passes_and_fails():
    assert check_within("ok", 2.9, 3.0).passed
    assert check_within("ok with slack", 3.4, 3.0, slack=0.5).passed
    assert not check_within("too slow", 3.6, 3.0, slack=0.5).passed


def test_check_flat():
    assert check_flat("flat", [2.8, 2.9, 2.85]).passed
    assert not check_flat("not flat", [2.0, 4.0]).passed
    assert check_flat("with abs tolerance", [0.1, 0.3], absolute_tolerance=0.25).passed
    assert not check_flat("empty", []).passed


def test_check_monotonic_increasing_and_decreasing():
    assert check_monotonic("up", [1, 2, 3]).passed
    assert not check_monotonic("not up", [1, 3, 2]).passed
    assert check_monotonic("down", [3, 2, 1], increasing=False).passed
    assert check_monotonic("noisy up", [1.0, 0.95, 2.0], tolerance=0.1).passed
    assert check_monotonic("single", [1.0]).passed


def test_check_crossover_expected_winners():
    xs = [5.0, 60.0]
    series = {"Delay & Delay": [50, 1000], "Process & Process": [90, 1010]}
    check = check_crossover(
        "delay wins short, tie long",
        xs,
        {5.0: "Delay & Delay", 60.0: "tie"},
        series,
        tie_tolerance=20,
    )
    assert check.passed


def test_check_crossover_detects_wrong_winner():
    xs = [5.0]
    series = {"a": [100], "b": [50]}
    check = check_crossover("a should win", xs, {5.0: "a"}, series)
    assert not check.passed
    assert "expected a" in check.detail


def test_check_crossover_higher_is_better():
    xs = [1.0]
    series = {"a": [10], "b": [5]}
    assert check_crossover("a wins", xs, {1.0: "a"}, series, lower_is_better=False).passed


def test_compare_policies_sums_metric():
    results = [
        make_result("a", tentative=10),
        make_result("a", tentative=20),
        make_result("b", tentative=5),
    ]
    totals = compare_policies(results)
    assert totals == {"a": 30.0, "b": 5.0}
    proc_totals = compare_policies(results, metric="proc_new")
    assert proc_totals["a"] == 5.0


def test_availability_checks_cover_bound_and_consistency():
    results = [make_result("ok", proc_new=2.5), make_result("late", proc_new=9.0, consistent=False)]
    checks = availability_checks(results, bound=3.0)
    assert len(checks) == 4
    passed, total = summarize_checks(checks)
    assert total == 4
    assert passed == 2  # the "ok" result passes both, the "late" one fails both


def test_shape_check_row_format():
    check = check_within("latency", 2.0, 3.0)
    assert check.row().startswith("[PASS] latency")
    assert "[FAIL]" in check_within("latency", 5.0, 3.0).row()
