"""Tests for the paper-vs-measured report generator."""

import pytest

from repro.analysis.comparison import check_flat, check_within
from repro.analysis.paper import paper_claim
from repro.analysis.report import ExperimentReport, ReportSection
from repro.analysis.tables import ResultTable


def make_section(experiment_id="table3", passing=True):
    section = ReportSection(claim=paper_claim(experiment_id))
    section.configuration = {"aggregate_rate": 150.0, "X": 3.0}
    table = ResultTable(title="Proc_new (s)", row_label="policy", column_label="failure (s)")
    table.set("Process & Process", 2.0, 2.29)
    table.set("Process & Process", 30.0, 3.23)
    section.add_table(table)
    section.add_check(check_within("meets bound", 3.23 if passing else 5.0, 3.0, slack=0.75))
    section.add_checks([check_flat("flat", [3.2, 3.23, 3.23])])
    section.add_note("measured on the discrete-event simulator")
    return section


def test_section_passed_reflects_checks():
    assert make_section(passing=True).passed
    assert not make_section(passing=False).passed


def test_section_markdown_contains_all_parts():
    text = make_section().to_markdown()
    assert "### Table III" in text
    assert "**Paper claim.**" in text
    assert "aggregate_rate=150.0" in text
    assert "| policy" in text
    assert "[PASS]" in text
    assert "> measured on the discrete-event simulator" in text
    assert "Shape checks (2/2 passed)" in text


def test_report_summary_and_lookup():
    report = ExperimentReport(title="Reproduction", preamble="All runs on the simulator.")
    report.add_section(make_section("table3"))
    report.add_section(make_section("fig15", passing=False))
    assert report.section_for("fig15").claim.experiment_id == "fig15"
    with pytest.raises(KeyError):
        report.section_for("fig99")
    assert not report.all_passed
    summary = report.summary_table()
    assert summary.get("table3", "status") == "ok"
    assert summary.get("fig15", "status") == "MISMATCH"


def test_report_markdown_structure():
    report = ExperimentReport(title="Reproduction report")
    report.add_section(make_section())
    text = report.to_markdown()
    assert text.startswith("# Reproduction report")
    assert "## Summary" in text
    assert "## Per-experiment results" in text
    assert text.endswith("\n")


def test_report_write(tmp_path):
    report = ExperimentReport()
    report.add_section(make_section())
    target = tmp_path / "EXPERIMENTS.md"
    report.write(str(target))
    content = target.read_text(encoding="utf-8")
    assert "Table III" in content
