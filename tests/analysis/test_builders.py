"""Tests for the report-section builders (fed with synthetic results)."""

import pytest

from repro.analysis.builders import (
    build_delay_assignment_section,
    build_fig15_section,
    build_overhead_section,
    build_table3_section,
    build_tentative_vs_depth_section,
)
from repro.experiments.harness import ExperimentResult
from repro.experiments.overhead import OverheadRow
from repro.metrics.latency import LatencySummary


def result(label, duration, depth=1, proc_new=3.2, tentative=1000, consistent=True):
    return ExperimentResult(
        label=label,
        failure_duration=duration,
        chain_depth=depth,
        policy=label,
        proc_new=proc_new,
        max_gap=proc_new,
        n_tentative=tentative,
        n_stable=10_000,
        n_undos=1,
        n_rec_done=1,
        eventually_consistent=consistent,
    )


# --------------------------------------------------------------------------- Table III
def table3_results(flat=True):
    return [
        result("Table III", 2.0, proc_new=2.3, tentative=0),
        result("Table III", 10.0, proc_new=3.2),
        result("Table III", 30.0, proc_new=3.25 if flat else 6.0),
    ]


def test_table3_section_passes_for_flat_results():
    section = build_table3_section(table3_results(flat=True))
    assert section.passed
    markdown = section.to_markdown()
    assert "paper" in markdown and "measured" in markdown
    # The paper reference values appear in the comparison table.
    assert "2.2" in markdown and "2.8" in markdown


def test_table3_section_fails_when_latency_grows():
    section = build_table3_section(table3_results(flat=False))
    assert not section.passed


def test_table3_section_fails_on_inconsistent_run():
    results = table3_results() + [result("Table III", 60.0, consistent=False)]
    section = build_table3_section(results)
    assert not section.passed


# --------------------------------------------------------------------------- Figure 15
def fig15_results(delay_grows=True):
    rows = []
    for depth in (1, 2, 4):
        rows.append(result(f"Process & Process (depth {depth})", 30.0, depth=depth, proc_new=2.4 + 0.3 * (depth - 1)))
        delay_latency = 2.3 + (1.9 * (depth - 1) if delay_grows else 0.0)
        rows.append(result(f"Delay & Delay (depth {depth})", 30.0, depth=depth, proc_new=delay_latency))
    return rows


def test_fig15_section_passes_for_expected_shape():
    section = build_fig15_section(fig15_results())
    assert section.passed


def test_fig15_section_fails_when_a_run_breaks_the_bound():
    rows = fig15_results()
    rows.append(result("Process & Process (depth 4)", 30.0, depth=4, proc_new=20.0))
    assert not build_fig15_section(rows).passed


# --------------------------------------------------------------------------- Figures 16 / 18
def chain_tentative_results(duration, delay_saves=True):
    rows = []
    for depth in (1, 2, 4):
        process_count = 800 * depth
        delay_count = process_count - (300 * depth if delay_saves else -50)
        rows.append(result(f"Process & Process (depth {depth})", duration, depth=depth, tentative=process_count))
        rows.append(result(f"Delay & Delay (depth {depth})", duration, depth=depth, tentative=max(delay_count, 0)))
    return rows


def test_fig16_section_requires_delaying_to_save():
    assert build_tentative_vs_depth_section(
        chain_tentative_results(5.0, delay_saves=True), experiment_id="fig16"
    ).passed
    assert not build_tentative_vs_depth_section(
        chain_tentative_results(5.0, delay_saves=False), experiment_id="fig16"
    ).passed


def test_fig18_section_requires_marginal_gain():
    marginal = []
    for depth in (1, 4):
        marginal.append(result(f"Process & Process (depth {depth})", 60.0, depth=depth, tentative=10_000))
        marginal.append(result(f"Delay & Delay (depth {depth})", 60.0, depth=depth, tentative=9_500))
    assert build_tentative_vs_depth_section(marginal, experiment_id="fig18").passed
    large_gain = [
        result("Process & Process (depth 4)", 60.0, depth=4, tentative=10_000),
        result("Delay & Delay (depth 4)", 60.0, depth=4, tentative=2_000),
    ]
    assert not build_tentative_vs_depth_section(large_gain, experiment_id="fig18").passed


# --------------------------------------------------------------------------- Figures 19 / 20
def delay_assignment_results(full_masks_short=True):
    rows = []
    for duration in (5.0, 10.0):
        rows.append(result("Process & Process, D=2s each", duration, depth=4, proc_new=3.4, tentative=1000))
        rows.append(
            result(
                "Process & Process, D=6.5s each",
                duration,
                depth=4,
                proc_new=7.4,
                tentative=0 if duration == 5.0 and full_masks_short else 2300,
            )
        )
    return rows


def test_delay_assignment_section_passes_when_full_budget_masks_short_failure():
    section = build_delay_assignment_section(delay_assignment_results())
    assert section.passed


def test_delay_assignment_section_fails_otherwise():
    assert not build_delay_assignment_section(delay_assignment_results(full_masks_short=False)).passed


def test_delay_assignment_section_fails_when_budget_broken():
    rows = delay_assignment_results()
    rows.append(result("Process & Process, D=6.5s each", 15.0, depth=4, proc_new=12.0, tentative=100))
    assert not build_delay_assignment_section(rows).passed


# --------------------------------------------------------------------------- Tables IV / V
def overhead_rows(growing=True):
    rows = [OverheadRow(parameter_ms=0.0, latency=LatencySummary(100, 0.010, 0.012, 0.011, 0.001))]
    for index, parameter in enumerate((10.0, 100.0, 500.0)):
        scale = (index + 1) if growing else (3 - index)
        rows.append(
            OverheadRow(
                parameter_ms=parameter,
                latency=LatencySummary(100, 0.012, 0.05 * scale, 0.03 * scale, 0.01 * scale),
            )
        )
    return rows


@pytest.mark.parametrize("experiment_id", ["table4", "table5"])
def test_overhead_section_passes_for_linear_growth(experiment_id):
    section = build_overhead_section(overhead_rows(), experiment_id=experiment_id)
    assert section.passed
    markdown = section.to_markdown()
    assert "paper max" in markdown
    assert "measured max" in markdown


def test_overhead_section_fails_for_non_monotonic_latency():
    assert not build_overhead_section(overhead_rows(growing=False), experiment_id="table4").passed
