"""Tests for result-table pivoting and rendering."""

import pytest

from repro.analysis.tables import (
    ResultTable,
    metric_by_duration,
    pivot_results,
    proc_new_by_depth,
    render_csv,
    render_markdown,
    render_text,
    side_by_side,
    tentative_by_depth,
)
from repro.experiments.harness import ExperimentResult


def make_result(label="Process & Process", duration=10.0, depth=1, proc_new=2.5, tentative=100):
    return ExperimentResult(
        label=label,
        failure_duration=duration,
        chain_depth=depth,
        policy=label,
        proc_new=proc_new,
        max_gap=proc_new,
        n_tentative=tentative,
        n_stable=1000,
        n_undos=1,
        n_rec_done=1,
        eventually_consistent=True,
    )


@pytest.fixture
def results():
    return [
        make_result("Delay & Delay", depth=1, proc_new=2.0, tentative=50),
        make_result("Delay & Delay", depth=2, proc_new=4.0, tentative=40),
        make_result("Process & Process", depth=1, proc_new=2.2, tentative=90),
        make_result("Process & Process", depth=2, proc_new=2.3, tentative=95),
    ]


def test_set_and_get_preserve_insertion_order():
    table = ResultTable(title="t", row_label="r", column_label="c")
    table.set("b", 2, 1.0)
    table.set("a", 1, 2.0)
    assert table.rows == ["b", "a"]
    assert table.columns == [2, 1]
    assert table.get("a", 1) == 2.0
    assert table.get("a", 2) is None


def test_row_and_column_values():
    table = ResultTable(title="t", row_label="r", column_label="c")
    table.set("x", 1, 10)
    table.set("x", 2, 20)
    table.set("y", 1, 30)
    assert table.row_values("x") == [10, 20]
    assert table.column_values(1) == [10, 30]


def test_as_dict_and_transposed():
    table = ResultTable(title="t", row_label="r", column_label="c")
    table.set("x", "a", 1)
    table.set("y", "b", 2)
    assert table.as_dict() == {"x": {"a": 1, "b": None}, "y": {"a": None, "b": 2}}
    flipped = table.transposed()
    assert flipped.get("a", "x") == 1
    assert flipped.row_label == "c"


def test_pivot_results(results):
    table = pivot_results(
        results,
        title="pivot",
        row=lambda r: r.label,
        column=lambda r: r.chain_depth,
        value=lambda r: r.proc_new,
    )
    assert table.get("Delay & Delay", 2) == 4.0
    assert table.get("Process & Process", 1) == 2.2


def test_canned_pivots(results):
    proc = proc_new_by_depth(results, "p")
    tent = tentative_by_depth(results, "t")
    dur = metric_by_duration(results, "d", lambda r: r.n_tentative)
    assert proc.get("Delay & Delay", 1) == 2.0
    assert tent.get("Process & Process", 2) == 95
    assert dur.get("Delay & Delay", 10.0) in (50, 40)


def test_render_text_contains_all_cells(results):
    table = proc_new_by_depth(results, "Figure 15")
    rendered = render_text(table)
    assert "Figure 15" in rendered
    assert "Delay & Delay" in rendered
    assert "4.00" in rendered


def test_render_markdown_shape(results):
    table = proc_new_by_depth(results, "Figure 15")
    rendered = render_markdown(table)
    lines = rendered.splitlines()
    assert lines[0].startswith("| policy")
    assert set(lines[1].replace("|", "")) <= {"-"}
    assert len(lines) == 2 + 2  # header + separator + one line per policy


def test_render_csv_escapes_commas():
    table = ResultTable(title="t", row_label="r", column_label="c")
    table.set('a,"b"', "col", 1)
    rendered = render_csv(table)
    assert '"a,""b"""' in rendered


def test_render_handles_none_and_bool():
    table = ResultTable(title="t", row_label="r", column_label="c")
    table.set("x", "a", None)
    table.set("x", "b", True)
    text = render_text(table)
    assert "-" in text
    assert "yes" in text


def test_side_by_side_paper_vs_measured():
    table = side_by_side({2.0: 2.3, 4.0: 2.9}, {2.0: 2.2, 4.0: 2.8}, title="Table III")
    assert table.columns == ["paper", "measured"]
    assert table.get(2.0, "paper") == 2.2
    assert table.get(4.0, "measured") == 2.9
