"""Tests for client-trace analysis and the ASCII Figure 11 plot."""

from repro.analysis.traces import (
    analyze_trace,
    ascii_plot,
    correction_episodes,
    output_gaps,
    tentative_episodes,
)
from repro.metrics.collector import TraceEntry


def entry(time, tuple_type, seq=None, stime=None):
    return TraceEntry(time=time, stime=stime if stime is not None else time, tuple_type=tuple_type, sequence=seq)


def failure_trace():
    """A trace shaped like Figure 11(a): stable, gap, tentative burst, corrections."""
    trace = []
    # Normal stable output.
    for i in range(5):
        trace.append(entry(float(i), "insertion", seq=i))
    # Failure: 2-second silence, then tentative output.
    for i in range(5, 10):
        trace.append(entry(float(i) + 2.0, "tentative", seq=i, stime=float(i)))
    # Healing: corrections (stable re-issues) then REC_DONE, then fresh stable data.
    for i in range(5, 10):
        trace.append(entry(12.0 + 0.1 * (i - 5), "insertion", seq=i, stime=float(i)))
    trace.append(entry(12.6, "rec_done"))
    for i in range(10, 13):
        trace.append(entry(13.0 + (i - 10), "insertion", seq=i, stime=float(i)))
    return trace


def test_tentative_episodes_found():
    episodes = tentative_episodes(failure_trace())
    assert len(episodes) == 1
    episode = episodes[0]
    assert episode.count == 5
    assert episode.start == 7.0
    assert episode.duration > 0


def test_correction_episode_ends_at_rec_done():
    episodes = correction_episodes(failure_trace())
    assert len(episodes) == 1
    assert episodes[0].count == 5
    assert episodes[0].end == 12.6


def test_correction_episode_without_rec_done_closes_at_trace_end():
    trace = [
        entry(0.0, "insertion", seq=0),
        entry(1.0, "tentative", seq=1),
        entry(2.0, "insertion", seq=1, stime=1.0),
    ]
    episodes = correction_episodes(trace)
    assert len(episodes) == 1
    assert episodes[0].count == 1


def test_no_failure_trace_has_no_episodes():
    trace = [entry(float(i), "insertion", seq=i) for i in range(10)]
    assert tentative_episodes(trace) == []
    assert correction_episodes(trace) == []


def test_output_gaps_ignore_corrections():
    gaps = output_gaps(failure_trace(), threshold=1.5)
    # Two gaps in new data: the silence when the failure starts and the pause
    # while corrections (which re-cover old stimes and therefore do not count
    # as new data) are streamed out.  The corrections themselves must not
    # close either gap early.
    assert len(gaps) == 2
    assert gaps[0] == (4.0, 7.0)
    assert gaps[1][1] == 13.0
    assert all(end - start >= 2.0 for start, end in gaps)


def test_analyze_trace_summary():
    analysis = analyze_trace(failure_trace())
    assert analysis.had_failure
    assert analysis.recovered
    assert analysis.total_tentative == 5
    assert analysis.total_rec_done == 1
    assert analysis.first_tentative_at == 7.0
    assert analysis.last_correction_at == 12.6
    assert analysis.max_gap >= 2.0


def test_analyze_trace_without_failure():
    trace = [entry(float(i), "insertion", seq=i) for i in range(3)]
    analysis = analyze_trace(trace)
    assert not analysis.had_failure
    assert analysis.recovered
    assert analysis.first_tentative_at is None


def test_ascii_plot_contains_markers_and_legend():
    plot = ascii_plot(failure_trace(), width=40, height=10, title="Figure 11(a)")
    assert "Figure 11(a)" in plot
    assert "*" in plot
    assert "o" in plot
    assert "R" in plot
    assert "legend" in plot


def test_ascii_plot_empty_trace():
    assert "(no data)" in ascii_plot([], title="empty")


def test_ascii_plot_dimensions():
    plot = ascii_plot(failure_trace(), width=30, height=8)
    data_lines = [line for line in plot.splitlines() if "|" in line]
    assert len(data_lines) == 8
