"""Tier-1 tests for deterministic wire-level fault plans.

Everything here is pure planning and validation -- no worker processes are
spawned -- so these run untagged in tier-1.  The live enforcement of the
plans is covered by the ``REPRO_LIVE_TESTS``-gated suite in
``test_live_faults.py``.
"""

from __future__ import annotations

import math

import pytest

from repro.deploy.placement import compile as compile_topology
from repro.errors import ConfigurationError
from repro.live.faults import (
    DELAY,
    DISCONNECT,
    DROP,
    PARTITION,
    FaultPlan,
    LinkRule,
    backoff_delay,
    chaos_plan,
    compile_failures,
)
from repro.live.supervisor import LiveKill, LivePause
from repro.topology import Topology
from repro.workloads.scenarios import FailureSpec


@pytest.fixture
def chain_placement():
    return compile_topology(Topology.chain(2), replicas_per_node=2)


@pytest.fixture
def shard_placement():
    return compile_topology(Topology.shard(4), replicas_per_node=2)


# --------------------------------------------------------------------------- determinism
def _decision_stream(plan: FaultPlan, n: int = 200) -> list[float]:
    rule = plan.rules[0]
    return [plan.decision(rule, "a>b", counter) for counter in range(n)]


def test_compiled_plan_is_deterministic(chain_placement):
    failures = [FailureSpec("disconnect", 1.5, 1.0)]
    plan_a, kills_a = compile_failures(chain_placement, failures, seed=1)
    plan_b, kills_b = compile_failures(chain_placement, failures, seed=1)
    assert plan_a.describe() == plan_b.describe()
    assert kills_a == kills_b
    assert _decision_stream(plan_a) == _decision_stream(plan_b)


def test_decisions_vary_with_seed(chain_placement):
    failures = [FailureSpec("disconnect", 1.5, 1.0)]
    plan_a, _ = compile_failures(chain_placement, failures, seed=1)
    plan_b, _ = compile_failures(chain_placement, failures, seed=2)
    assert _decision_stream(plan_a) != _decision_stream(plan_b)


def test_chaos_plan_deterministic_and_seed_sensitive():
    assert chaos_plan(7).describe() == chaos_plan(7).describe()
    assert chaos_plan(7).describe() != chaos_plan(8).describe()
    kinds = {rule.kind for rule in chaos_plan(7).rules}
    assert DROP in kinds and DELAY in kinds


# --------------------------------------------------------------------------- compilation
def test_disconnect_compiles_one_way_rules(chain_placement):
    plan, kills = compile_failures(
        chain_placement, [FailureSpec("disconnect", 2.0, 3.0)], seed=1
    )
    assert kills == ()
    assert plan.rules and all(r.kind == DISCONNECT for r in plan.rules)
    # One rule per consumer replica of the disconnected stream, one-way.
    consumers = {rule.receiver for rule in plan.rules}
    assert consumers == {"node1", "node1'"}
    assert all(not rule.bidirectional for rule in plan.rules)
    # Blocked exactly inside the window, in the source->consumer direction only.
    sender = plan.rules[0].sender
    assert plan.blocked(sender, "node1", 2.5) is not None
    assert plan.blocked("node1", sender, 2.5) is None
    assert plan.blocked(sender, "node1", 5.5) is None


def test_partition_compiles_bidirectional_isolation(shard_placement):
    failures = [FailureSpec("partition", 1.0, 2.0, node="shard1", node_replica=-1)]
    plan, kills = compile_failures(shard_placement, failures, seed=1)
    assert kills == ()
    assert {rule.sender for rule in plan.rules} == {"shard1", "shard1'"}
    assert all(rule.kind == PARTITION and rule.bidirectional for rule in plan.rules)
    # Both directions are cut during the window, for every peer.
    assert plan.blocked("shard1", "merge", 1.5) is not None
    assert plan.blocked("merge", "shard1", 1.5) is not None
    assert plan.blocked("merge", "shard2", 1.5) is None
    assert plan.blocked("shard1", "merge", 3.5) is None


def test_blocked_worker_requires_every_pair_blocked(shard_placement):
    failures = [FailureSpec("partition", 1.0, 2.0, node="shard1", node_replica=0)]
    plan, _ = compile_failures(shard_placement, failures, seed=1)
    # A worker hosting only the isolated endpoint is silenced ...
    assert plan.blocked_worker(("shard1",), ("merge", "split"), 1.5)
    # ... but not one that still has a reachable endpoint.
    assert not plan.blocked_worker(("shard1", "shard2"), ("merge",), 1.5)
    assert not plan.blocked_worker(("shard1",), ("merge",), 3.5)


def test_crash_compiles_to_live_kills(chain_placement):
    failures = [FailureSpec("crash", 2.0, 1.5, node="node1", node_replica=-1)]
    plan, kills = compile_failures(chain_placement, failures, seed=1)
    assert plan.is_empty
    assert [(k.node, k.replica, k.at, k.downtime) for k in kills] == [
        ("node1", 0, 2.0, 1.5),
        ("node1", 1, 2.0, 1.5),
    ]


def test_silence_is_simulator_only(chain_placement):
    with pytest.raises(ConfigurationError, match="sim"):
        compile_failures(chain_placement, [FailureSpec("silence", 2.0, 1.0)], seed=1)


def test_unresolved_start_rejected(chain_placement):
    with pytest.raises(ConfigurationError, match="start"):
        compile_failures(chain_placement, [FailureSpec("disconnect", None, 1.0)], seed=1)


# --------------------------------------------------------------------------- rule validation
def test_link_rule_validation():
    with pytest.raises(ConfigurationError):
        LinkRule(kind="meteor-strike").validate()
    with pytest.raises(ConfigurationError):
        LinkRule(kind=DROP, probability=1.5).validate()
    with pytest.raises(ConfigurationError):
        LinkRule(kind=PARTITION, start=3.0, end=1.0).validate()
    with pytest.raises(ConfigurationError):
        LinkRule(kind=DELAY, delay=-0.1).validate()


def test_fault_plan_validate_covers_rules():
    plan = FaultPlan(seed=1, rules=(LinkRule(kind=DROP, probability=2.0),))
    with pytest.raises(ConfigurationError):
        plan.validate()


# --------------------------------------------------------------------------- backoff
def test_backoff_delay_deterministic_and_capped():
    delays = [backoff_delay(i, seed=3, link="a>b") for i in range(12)]
    assert delays == [backoff_delay(i, seed=3, link="a>b") for i in range(12)]
    assert all(d <= 2.0 for d in delays)
    # Exponential growth up to the cap, jittered into [0.5, 1.0) of the raw value.
    for attempt, delay in enumerate(delays):
        raw = min(2.0, 0.05 * 2**attempt)
        assert 0.5 * raw <= delay < raw or math.isclose(delay, raw)
    assert delays != [backoff_delay(i, seed=4, link="a>b") for i in range(12)]


# --------------------------------------------------------------------------- schedule validation
def test_live_kill_rejects_bad_schedules():
    with pytest.raises(ConfigurationError):
        LiveKill(node="node1", at=-1.0)
    with pytest.raises(ConfigurationError):
        LiveKill(node="node1", downtime=-0.5)
    with pytest.raises(ConfigurationError, match="compile_failures"):
        LiveKill(node="node1", replica=-1)


def test_live_pause_rejects_bad_schedules():
    with pytest.raises(ConfigurationError):
        LivePause(node="node1", at=-1.0)
    with pytest.raises(ConfigurationError):
        LivePause(node="node1", duration=0.0)


def test_run_rejects_non_kill_schedule(chain_placement):
    live = chain_placement.deploy(
        seed=1, aggregate_rate=60.0, source_stop_time=1.0, backend="live"
    )
    # Validation fires before any worker spawns, so this is tier-1 safe.
    with pytest.raises(ConfigurationError, match="LiveKill"):
        live.run(duration=2.0, kill="node1")
    with pytest.raises(ConfigurationError, match="compile_failures"):
        live.run(duration=2.0, kill=FailureSpec("crash", 0.5, 0.5, node="node1"))
    with pytest.raises(ConfigurationError, match="FaultPlan"):
        live.run(duration=2.0, faults=[("drop", "a", "b")])
    # A window rule that outlives the run would silently never heal.
    late = FaultPlan(seed=1, rules=(LinkRule(kind=PARTITION, start=1.0, end=99.0),))
    with pytest.raises(ConfigurationError, match="window"):
        live.run(duration=2.0, faults=late)
    with pytest.raises(ConfigurationError):
        live.run(duration=2.0, kill=LiveKill(node="node1", at=5.0))
