"""Round-trip property tests for the live backend's wire codec.

The codec must be round-trip *exact*: for every payload the protocol can
produce, ``decode(encode(x)) == x``.  Hypothesis drives randomized tuples,
batches and control messages through the codec; deterministic cases pin the
versioning and filter-registry behavior.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.protocol import (
    CHECKPOINT_REQUEST,
    CHECKPOINT_RESPONSE,
    DATA,
    HEARTBEAT_REQUEST,
    HEARTBEAT_RESPONSE,
    RECONCILE_REPLY,
    RECONCILE_REQUEST,
    SOURCE_RESUBSCRIBE,
    SUBSCRIBE,
    UNSUBSCRIBE,
    CheckpointRequest,
    CheckpointResponse,
    DataBatch,
    HeartbeatRequest,
    HeartbeatResponse,
    ReconcileReply,
    ReconcileRequest,
    SourceResubscribe,
    SubscribeRequest,
    UnsubscribeRequest,
)
from repro.core.states import NodeState
from repro.deploy.filters import SubscriptionFilter
from repro.live import wire
from repro.spe.tuples import DATA_TYPES, StreamTuple, TupleType

COMMON = settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])

# ---------------------------------------------------------------------- strategies
# Finite floats only: stime/payload floats in this system are arithmetic on
# finite inputs, and NaN breaks == comparison, not the codec.
finite_floats = st.floats(allow_nan=False, allow_infinity=False)
names = st.text(min_size=0, max_size=12)
payload_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    finite_floats,
    st.text(max_size=20),
    st.tuples(st.integers(), st.text(max_size=5)),  # exercises the pickle escape hatch
)
payloads = st.dictionaries(st.text(max_size=10), payload_values, max_size=6)

node_states = st.sampled_from(list(NodeState))
opt_node_states = st.one_of(st.none(), node_states)


@st.composite
def stream_tuples(draw):
    tuple_type = draw(st.sampled_from(list(TupleType)))
    tuple_id = draw(st.integers(min_value=-(2**40), max_value=2**40))
    stime = draw(finite_floats)
    values = draw(payloads) if tuple_type in DATA_TYPES else {}
    undo_from_id = (
        draw(st.integers(min_value=-(2**40), max_value=2**40))
        if tuple_type is TupleType.UNDO
        else None
    )
    stable_seq = (
        draw(st.one_of(st.none(), st.integers(min_value=0, max_value=2**40)))
        if tuple_type in DATA_TYPES
        else None
    )
    return StreamTuple(
        tuple_type=tuple_type,
        tuple_id=tuple_id,
        stime=stime,
        values=values,
        undo_from_id=undo_from_id,
        stable_seq=stable_seq,
    )


@st.composite
def data_batches(draw):
    return DataBatch(
        stream=draw(names),
        tuples=tuple(draw(st.lists(stream_tuples(), max_size=8))),
        producer=draw(names),
        producer_node_state=draw(opt_node_states),
        producer_stream_state=draw(opt_node_states),
        replay=draw(st.booleans()),
    )


# ---------------------------------------------------------------------- tuples
@COMMON
@given(stream_tuples())
def test_tuple_round_trip(item):
    assert wire.decode_tuple(wire.encode_tuple(item)) == item


@COMMON
@given(stream_tuples())
def test_tuple_round_trip_preserves_flags(item):
    decoded = wire.decode_tuple(wire.encode_tuple(item))
    assert decoded.tuple_type is item.tuple_type
    assert decoded.is_stable == item.is_stable
    assert decoded.is_tentative == item.is_tentative
    assert decoded.stable_seq == item.stable_seq
    assert decoded.undo_from_id == item.undo_from_id


def test_tuple_float_exactness():
    # IEEE doubles must survive bit-exactly, including awkward values.
    for stime in (0.1 + 0.2, 1e-308, math.pi, -0.0, 1e300):
        item = StreamTuple.insertion(1, stime, {"v": stime})
        decoded = wire.decode_tuple(wire.encode_tuple(item))
        assert decoded.stime == stime and repr(decoded.stime) == repr(stime)
        assert decoded.values["v"] == stime


def test_shared_payload_not_required_to_stay_shared():
    # as_stable() shares the values dict between two tuples; decoding may
    # materialize separate dicts, but equality must hold for both.
    base = StreamTuple.tentative(3, 1.5, {"k": 7})
    stable = base.as_stable()
    batch = DataBatch.of("s", (base, stable), "p")
    _, decoded = wire.decode_message(wire.encode_message(DATA, batch))
    assert decoded == batch


# ---------------------------------------------------------------------- batches
@COMMON
@given(data_batches())
def test_batch_round_trip(batch):
    kind, decoded = wire.decode_message(wire.encode_message(DATA, batch))
    assert kind == DATA
    assert decoded == batch
    assert decoded.replay == batch.replay


@COMMON
@given(data_batches(), names, names)
def test_envelope_round_trip(batch, sender, receiver):
    frame = wire.encode_envelope(sender, receiver, DATA, batch)
    assert wire.decode_envelope(frame) == (sender, receiver, DATA, batch)


# ---------------------------------------------------------------------- control messages
@st.composite
def control_messages(draw):
    kind = draw(
        st.sampled_from(
            [
                SUBSCRIBE,
                UNSUBSCRIBE,
                HEARTBEAT_REQUEST,
                HEARTBEAT_RESPONSE,
                RECONCILE_REQUEST,
                RECONCILE_REPLY,
                CHECKPOINT_REQUEST,
                CHECKPOINT_RESPONSE,
                SOURCE_RESUBSCRIBE,
            ]
        )
    )
    if kind == SUBSCRIBE:
        payload = SubscribeRequest(
            stream=draw(names),
            subscriber=draw(names),
            last_stable_seq=draw(st.integers(min_value=-1, max_value=2**40)),
            had_tentative=draw(st.booleans()),
            replay_tentative=draw(st.booleans()),
        )
    elif kind == UNSUBSCRIBE:
        payload = UnsubscribeRequest(stream=draw(names), subscriber=draw(names))
    elif kind == HEARTBEAT_REQUEST:
        payload = HeartbeatRequest(
            requester=draw(names), streams=tuple(draw(st.lists(names, max_size=5)))
        )
    elif kind == HEARTBEAT_RESPONSE:
        payload = HeartbeatResponse(
            responder=draw(names),
            node_state=draw(node_states),
            stream_states=draw(st.dictionaries(names, node_states, max_size=5)),
        )
    elif kind == RECONCILE_REQUEST:
        payload = ReconcileRequest(
            requester=draw(names), request_id=draw(st.integers(min_value=0, max_value=2**40))
        )
    elif kind == RECONCILE_REPLY:
        payload = ReconcileReply(
            responder=draw(names),
            request_id=draw(st.integers(min_value=0, max_value=2**40)),
            granted=draw(st.booleans()),
        )
    elif kind == CHECKPOINT_REQUEST:
        payload = CheckpointRequest(requester=draw(names))
    elif kind == CHECKPOINT_RESPONSE:
        payload = CheckpointResponse(responder=draw(names), checkpoint=None)
    else:
        payload = SourceResubscribe(
            stream=draw(names),
            subscriber=draw(names),
            after_tuple_id=draw(st.integers(min_value=-1, max_value=2**40)),
        )
    return kind, payload


@COMMON
@given(control_messages())
def test_control_message_round_trip(message):
    kind, payload = message
    decoded_kind, decoded = wire.decode_message(wire.encode_message(kind, payload))
    assert decoded_kind == kind
    if kind == HEARTBEAT_RESPONSE:
        # stream_states is typed Mapping; compare contents.
        assert decoded.responder == payload.responder
        assert decoded.node_state is payload.node_state
        assert dict(decoded.stream_states) == dict(payload.stream_states)
    else:
        assert decoded == payload


# ---------------------------------------------------------------------- filters
def test_subscribe_filter_travels_by_name():
    wire.clear_filters()
    try:
        f = SubscriptionFilter(lambda item: item.values.get("k", 0) > 0, name="sink.slice")
        wire.register_filter(f)
        request = SubscribeRequest(stream="s", subscriber="sink", filter=f)
        _, decoded = wire.decode_message(wire.encode_message(SUBSCRIBE, request))
        assert decoded.filter is f
    finally:
        wire.clear_filters()


def test_unregistered_filter_rejected():
    wire.clear_filters()
    f = SubscriptionFilter(lambda item: True, name="nobody.slice")
    frame = wire.encode_message(SUBSCRIBE, SubscribeRequest("s", "sub", filter=f))
    with pytest.raises(wire.WireError, match="not registered"):
        wire.decode_message(frame)


# ---------------------------------------------------------------------- checkpoints
def test_checkpoint_response_round_trip():
    from repro.statexfer import RecoveryCheckpoint, StreamCursor

    checkpoint = RecoveryCheckpoint(
        created_at=4.5,
        owner="n1",
        operator_order=("u", "j"),
        operator_states=(),
        input_cursors={"s": StreamCursor(stable_received=3, source_position=17)},
        output_states={"out": {"next_seq": 9}},
        item_count=12,
    )
    response = CheckpointResponse(responder="n1'", checkpoint=checkpoint)
    kind, decoded = wire.decode_message(wire.encode_message(CHECKPOINT_RESPONSE, response))
    assert kind == CHECKPOINT_RESPONSE
    assert decoded.responder == "n1'"
    assert decoded.checkpoint == checkpoint


# ---------------------------------------------------------------------- versioning / robustness
def test_unknown_version_rejected():
    frame = bytearray(wire.encode_message(CHECKPOINT_REQUEST, CheckpointRequest("r")))
    frame[0] = wire.WIRE_VERSION + 1
    with pytest.raises(wire.WireError, match="unsupported wire version"):
        wire.decode_message(bytes(frame))
    with pytest.raises(wire.WireError, match="unsupported wire version"):
        wire.decode_envelope(bytes(frame))
    with pytest.raises(wire.WireError, match="unsupported wire version"):
        wire.decode_tuple(bytes(frame))


def test_empty_and_truncated_frames_rejected():
    with pytest.raises(wire.WireError):
        wire.decode_message(b"")
    good = wire.encode_message(DATA, DataBatch.of("s", (StreamTuple.boundary(1, 2.0),), "p"))
    with pytest.raises(wire.WireError):
        wire.decode_message(good[:-1])


def test_trailing_bytes_rejected():
    good = wire.encode_message(CHECKPOINT_REQUEST, CheckpointRequest("r"))
    with pytest.raises(wire.WireError, match="trailing"):
        wire.decode_message(good + b"\x00")


def test_unknown_kind_rejected():
    frame = bytearray(wire.encode_message(CHECKPOINT_REQUEST, CheckpointRequest("r")))
    frame[1] = 250
    with pytest.raises(wire.WireError, match="unknown message kind"):
        wire.decode_message(bytes(frame))


def test_unknown_encode_kind_rejected():
    with pytest.raises(wire.WireError, match="unknown message kind"):
        wire.encode_message("gossip", None)
