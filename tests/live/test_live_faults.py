"""Live-backend fault injection tests: wire-level FaultPlan enforcement.

The deterministic simulator is the consistency oracle: a live run under a
disconnect/partition schedule must converge to the byte-identical stable
ledger (replica-independent rows) that the simulator produces for the same
schedule and seed.  Chaos soaks additionally exercise the hardened
transport -- drops, delays, duplicates, and reorders injected at the socket
layer must be fully absorbed by retries and receive-side dedup.

Everything here spawns real worker processes, so the suite only runs with
``REPRO_LIVE_TESTS=1`` (the CI live-smoke job sets it).
"""

from __future__ import annotations

import os

import pytest

from repro.deploy.placement import compile as compile_topology
from repro.live.faults import chaos_plan, compile_failures
from repro.live.supervisor import LivePause, require_fork
from repro.live.worker import stable_ledger_rows
from repro.topology import Topology
from repro.workloads.scenarios import FailureSpec, Scenario

live_only = pytest.mark.skipif(
    os.environ.get("REPRO_LIVE_TESTS") != "1",
    reason="live-backend tests spawn processes and take wall-clock time; "
    "set REPRO_LIVE_TESTS=1 to run them",
)

STOP = 4.0
ONSET = 1.5
OUTAGE = 1.0

#: (placement factory args, aggregate rate, partition target) per topology.
TOPOLOGIES = {
    "chain": (lambda: Topology.chain(2), 90.0, "node1"),
    "shard": (lambda: Topology.shard(4), 120.0, "shard1"),
}


def _fork_available() -> bool:
    try:
        require_fork()
    except Exception:
        return False
    return True


def _failure_spec(kind: str, target: str) -> FailureSpec:
    if kind == "partition":
        return FailureSpec("partition", ONSET, OUTAGE, node=target, node_replica=-1)
    return FailureSpec(kind, ONSET, OUTAGE)


def _sim_rows_with_failures(placement, seed, rate, failures):
    deployment = placement.deploy(seed=seed, aggregate_rate=rate, source_stop_time=STOP)
    Scenario(failures=list(failures)).inject(deployment.cluster)
    deployment.start()
    deployment.run_for(STOP + 6.0)
    return stable_ledger_rows(deployment.clients[0])


def _run_live(placement, seed, rate, *, faults=None, kill=None, pause=None):
    live = placement.deploy(
        seed=seed, aggregate_rate=rate, source_stop_time=STOP, backend="live"
    )
    return live.run(
        duration=STOP + 1.5, faults=faults, kill=kill, pause=pause, drain_timeout=20.0
    )


def _assert_ledger_shape(rows):
    seqs = [row[0] for row in rows]
    assert seqs, "no stable output"
    assert seqs == sorted(seqs), "stable rows out of order"
    assert len(set(seqs)) == len(seqs), "duplicate stable rows"
    assert set(range(min(seqs), max(seqs) + 1)) == set(seqs), "gap in stable rows"


@live_only
@pytest.mark.skipif(not _fork_available(), reason="no fork start method")
@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
@pytest.mark.parametrize("seed", [1, 2])
@pytest.mark.parametrize("kind", ["disconnect", "partition"])
def test_live_fault_schedule_matches_sim_oracle(topology, seed, kind):
    """The same FailureSpec schedule, run on both backends, must go
    tentative during the outage and converge to byte-identical ledgers."""
    make_topology, rate, target = TOPOLOGIES[topology]
    placement = compile_topology(make_topology(), replicas_per_node=2)
    failures = [_failure_spec(kind, target)]

    sim_rows = _sim_rows_with_failures(placement, seed, rate, failures)
    assert sim_rows, "oracle run produced no stable output"

    plan, kills = compile_failures(placement, failures, seed=seed)
    assert not kills
    result = _run_live(placement, seed, rate, faults=plan)

    assert result.total_tentative > 0, "outage produced no tentative output"
    assert result.injected_faults(), "plan injected nothing"
    assert result.dead_letters == 0
    assert result.eventually_consistent
    assert result.stable_rows() == sim_rows


@live_only
@pytest.mark.skipif(not _fork_available(), reason="no fork start method")
@pytest.mark.parametrize("seed", [1, 2])
def test_chaos_soak_is_absorbed_by_transport(seed):
    """Seed-deterministic wire chaos (drops, delays, duplicates, reorders)
    must be fully absorbed: the ledger stays gap-free, duplicate-free, and
    ordered, byte-identical to the undisturbed sim run, with zero frames
    dead-lettered and zero stranded state."""
    placement = compile_topology(Topology.chain(2), replicas_per_node=2)
    sim_rows = _sim_rows_with_failures(placement, seed, 90.0, [])

    plan = chaos_plan(seed, drop=0.02, delay=0.01, jitter=0.01,
                      duplicate=0.05, reorder=0.15)
    assert plan.describe() == chaos_plan(seed, drop=0.02, delay=0.01, jitter=0.01,
                                         duplicate=0.05, reorder=0.15).describe()
    result = _run_live(placement, seed, 90.0, faults=plan)

    injected = result.injected_faults()
    assert injected.get("drop", 0) > 0, injected
    assert injected.get("duplicate", 0) > 0, injected
    assert result.dead_letters == 0, "chaos exhausted a send's retry budget"
    assert result.faults == plan.describe()

    rows = result.stable_rows()
    _assert_ledger_shape(rows)
    assert rows == sim_rows
    assert result.eventually_consistent


@live_only
@pytest.mark.skipif(not _fork_available(), reason="no fork start method")
@pytest.mark.parametrize("seed", [1, 2])
def test_pause_raises_suspicion_without_false_crash(seed):
    """SIGSTOP a worker past the suspicion threshold but inside the
    confirmation grace window: peers must suspect it, clear the suspicion
    after SIGCONT, and never confirm it down or trigger a recovery."""
    placement = compile_topology(Topology.chain(2), replicas_per_node=2)
    sim_rows = _sim_rows_with_failures(placement, seed, 90.0, [])

    pause = LivePause(node="node1", replica=0, at=ONSET, duration=1.2)
    result = _run_live(placement, seed, 90.0, pause=pause)

    assert result.pauses and result.pauses[0]["worker"] == "node1-r0"
    transitions = [t for t in result.peer_transitions() if t["peer"] == "node1-r0"]
    suspected = [t for t in transitions if t["to"] == "suspect"]
    cleared = [t for t in transitions if t["from"] == "suspect" and t["to"] == "alive"]
    assert suspected, "pause raised no suspicion"
    assert all(ONSET < t["at"] < ONSET + 1.2 + 0.5 for t in suspected), suspected
    assert cleared, "suspicion was not cleared after resume"
    assert not any(t["to"] == "down" for t in transitions), (
        "grace window violated: paused worker was confirmed down"
    )
    assert not result.kills and not result.recoveries()
    assert result.eventually_consistent
    assert result.stable_rows() == sim_rows
