"""Live-backend integration tests: parity oracle and SIGKILL recovery.

These spawn real worker processes and run for wall-clock seconds, so they
are **not** tier-1: they only run with ``REPRO_LIVE_TESTS=1`` (the CI
live-smoke job sets it).  The deterministic simulator stays the consistency
oracle -- a live no-failure run must produce the byte-identical stable
ledger, in replica-independent row form, at the same seed.
"""

from __future__ import annotations

import os

import pytest

from repro.config import DPCConfig
from repro.deploy.placement import compile as compile_topology
from repro.live.supervisor import LiveKill, require_fork
from repro.live.worker import stable_ledger_rows
from repro.topology import Topology

#: Applied to every test that spawns worker processes; the cheap error-path
#: tests at the bottom run in tier-1 untagged.
live_only = pytest.mark.skipif(
    os.environ.get("REPRO_LIVE_TESTS") != "1",
    reason="live-backend tests spawn processes and take wall-clock time; "
    "set REPRO_LIVE_TESTS=1 to run them",
)

#: Sources stop producing at this stime; both backends then hold the exact
#: same finite workload (see DataSource._tick's stop_time clamp).
STOP = 4.0
RATE = 90.0


def _fork_available() -> bool:
    try:
        require_fork()
    except Exception:
        return False
    return True


def _sim_stable_rows(placement, seed: int, *, rate: float = RATE, config=None) -> list:
    deployment = placement.deploy(
        config, seed=seed, aggregate_rate=rate, source_stop_time=STOP
    )
    deployment.start()
    # Generous drain: production stops at STOP, stabilization needs only the
    # in-flight buckets after it.
    deployment.run_for(STOP + 6.0)
    return stable_ledger_rows(deployment.clients[0])


@live_only
@pytest.mark.skipif(not _fork_available(), reason="no fork start method")
@pytest.mark.parametrize("seed", [1, 2])
def test_live_chain_parity_with_simulator(seed):
    placement = compile_topology(Topology.chain(2), replicas_per_node=2)
    sim_rows = _sim_stable_rows(placement, seed)
    assert sim_rows, "oracle run produced no stable output"

    live = placement.deploy(
        seed=seed, aggregate_rate=RATE, source_stop_time=STOP, backend="live"
    )
    result = live.run(duration=STOP + 1.0, drain_timeout=15.0)
    assert result.eventually_consistent
    assert result.stable_rows() == sim_rows


@live_only
@pytest.mark.skipif(not _fork_available(), reason="no fork start method")
@pytest.mark.parametrize("seed", [1, 2])
def test_live_shard4_parity_with_simulator(seed):
    placement = compile_topology(Topology.shard(4), replicas_per_node=2)
    sim_rows = _sim_stable_rows(placement, seed, rate=120.0)
    assert sim_rows

    live = placement.deploy(
        seed=seed, aggregate_rate=120.0, source_stop_time=STOP, backend="live"
    )
    result = live.run(duration=STOP + 1.0, drain_timeout=15.0)
    assert result.eventually_consistent
    assert result.stable_rows() == sim_rows


@live_only
@pytest.mark.skipif(not _fork_available(), reason="no fork start method")
def test_live_sigkill_recovery_checkpoint_path():
    """SIGKILL one replica mid-run; it must rejoin via the statexfer
    checkpoint shipped from its partner over real sockets, and the merged
    ledger must stay gap-free and duplicate-free."""
    placement = compile_topology(Topology.chain(2), replicas_per_node=2)
    config = DPCConfig(checkpoint_interval=0.5)
    stop = 6.0
    live = placement.deploy(
        config, seed=1, aggregate_rate=RATE, source_stop_time=stop, backend="live"
    )
    target = placement.nodes[0]
    result = live.run(
        duration=stop + 1.5,
        kill=LiveKill(node=target.name, replica=0, at=2.5, downtime=1.0),
        drain_timeout=15.0,
    )
    assert result.kills and result.kills[0]["endpoint"] == target.replica_names[0]
    modes = [(r["endpoint"], r["mode"]) for r in result.recoveries()]
    assert (target.replica_names[0], "checkpoint") in modes, modes

    rows = result.stable_rows()
    seqs = [row[0] for row in rows]
    assert seqs, "no stable output after recovery"
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs), "duplicate stable rows"
    assert set(range(min(seqs), max(seqs) + 1)) == set(seqs), "gap in stable rows"
    assert result.eventually_consistent


def test_fork_unavailable_raises_cleanly(monkeypatch):
    """Platforms without fork get a typed, actionable error (runs untagged)."""
    import multiprocessing

    from repro.live.supervisor import LiveBackendUnavailable

    monkeypatch.setattr(multiprocessing, "get_all_start_methods", lambda: ["spawn"])
    placement = compile_topology(Topology.chain(1), replicas_per_node=2)
    with pytest.raises(LiveBackendUnavailable, match="fork"):
        placement.deploy(backend="live")


def test_unknown_backend_rejected():
    from repro.errors import ConfigurationError

    placement = compile_topology(Topology.chain(1), replicas_per_node=2)
    with pytest.raises(ConfigurationError, match="unknown deployment backend"):
        placement.deploy(backend="quantum")
