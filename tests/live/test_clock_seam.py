"""Regression tests for the Clock seam extraction.

The :class:`~repro.core.clock.Clock` protocol is a typing-only seam: the
discrete-event :class:`~repro.sim.event_loop.Simulator` must satisfy it
structurally (no adapter, no wrapper), and extracting the seam must leave
the sim backend's behavior byte-identical -- same event counts, same golden
summary digests.  These tests pin both halves.
"""

from __future__ import annotations

import json

from repro.core.clock import Clock, TimerHandle
from repro.runtime import ScenarioSpec
from repro.sim.event_loop import PeriodicHandle, Simulator


def test_simulator_satisfies_clock_protocol():
    simulator = Simulator()
    assert isinstance(simulator, Clock)
    handle = simulator.schedule_periodic(1.0, lambda now: None)
    assert isinstance(handle, PeriodicHandle)
    assert isinstance(handle, TimerHandle)
    assert handle.cancelled is False
    handle.cancel()
    assert handle.cancelled is True


def test_live_clock_satisfies_clock_protocol():
    from repro.live.clock import LiveClock

    assert isinstance(LiveClock, type)
    # Structural conformance is checked without an event loop: the protocol
    # is satisfied by the class surface, instances need a running loop.
    for attr in ("schedule_at", "schedule_in", "schedule_periodic", "cancel"):
        assert callable(getattr(LiveClock, attr)), attr
    assert isinstance(getattr(LiveClock, "now"), property)


def test_sim_event_counts_identical_across_runs():
    """The seam must not introduce any nondeterminism into the simulator."""

    def run():
        spec = ScenarioSpec.chain(
            2, name="seam-chain", aggregate_rate=90.0, settle=10.0, seed=3
        ).with_failure("disconnect", start=4.0, duration=3.0)
        runtime = spec.run()
        summary = runtime.summary()
        return summary["events_fired"], json.dumps(summary, sort_keys=True, default=str)

    first_events, first_summary = run()
    second_events, second_summary = run()
    assert first_events == second_events
    assert first_summary == second_summary
    assert first_events > 0


def test_golden_summaries_unchanged_by_seam():
    """Byte-identical golden digest for one representative scenario.

    The full integration suite re-checks every scenario; this test keeps the
    seam-specific evidence local so a future clock change that breaks the sim
    backend fails *here* with a pointed message.
    """
    import importlib.util
    from pathlib import Path

    golden_module_path = (
        Path(__file__).resolve().parents[1] / "integration" / "test_golden_summaries.py"
    )
    spec = importlib.util.spec_from_file_location("_golden_summaries", golden_module_path)
    goldens = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(goldens)

    name = "chain2-disconnect"
    golden = goldens.load_goldens()[name]["1"]
    current = goldens.scenario_digest(goldens.SCENARIOS[name](1).run())
    assert current["events_fired"] == golden["events_fired"], (
        "clock seam changed the simulator's event schedule"
    )
    assert current["summary_sha256"] == golden["summary_sha256"], (
        "clock seam changed simulated behavior byte-identically pinned by goldens"
    )
