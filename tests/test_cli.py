"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro import cli
from repro.analysis.tables import ResultTable


# --------------------------------------------------------------------------- helpers
def fake_experiment(name="fake"):
    def runner(scale):
        table = ResultTable(title=f"{name} ({scale})", row_label="r", column_label="c")
        table.set("row", "col", 1.25)
        return [table]

    return cli.ExperimentCommand(name, "a fake experiment for CLI tests", runner)


@pytest.fixture
def with_fake_experiment(monkeypatch):
    registry = dict(cli.EXPERIMENTS)
    registry["fake"] = fake_experiment()
    monkeypatch.setattr(cli, "EXPERIMENTS", registry)
    return registry


# --------------------------------------------------------------------------- list / claims
def test_list_prints_every_experiment(capsys):
    assert cli.main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("table3", "fig13", "fig16", "table4", "replicas", "crash"):
        assert name in out


def test_claims_prints_paper_claims(capsys):
    assert cli.main(["claims"]) == 0
    out = capsys.readouterr().out
    assert "Table III" in out
    assert "Section 6.2" in out


# --------------------------------------------------------------------------- run
def test_run_unknown_experiment_fails(capsys):
    assert cli.main(["run", "nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_text_output(with_fake_experiment, capsys):
    assert cli.main(["run", "fake"]) == 0
    out = capsys.readouterr().out
    assert "fake (quick)" in out
    assert "1.25" in out


def test_run_full_scale_reaches_runner(with_fake_experiment, capsys):
    assert cli.main(["run", "fake", "--scale", "full"]) == 0
    assert "fake (full)" in capsys.readouterr().out


def test_run_markdown_format(with_fake_experiment, capsys):
    assert cli.main(["run", "fake", "--format", "markdown"]) == 0
    out = capsys.readouterr().out
    assert out.lstrip().startswith("|")


def test_run_csv_to_file(with_fake_experiment, tmp_path, capsys):
    target = tmp_path / "out.csv"
    assert cli.main(["run", "fake", "--format", "csv", "--output", str(target)]) == 0
    assert "wrote" in capsys.readouterr().out
    assert "row,1.25" in target.read_text()


# --------------------------------------------------------------------------- scenario
def test_scenario_runs_declarative_deployment(capsys):
    code = cli.main(
        [
            "scenario",
            "--rate", "90",
            "--settle", "15",
            "--failure", "disconnect",
            "--failure-duration", "6",
            "--seed", "1",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "Proc_new" in out
    assert "eventually consistent:                 True" in out
    assert "stream_disconnect" in out


def test_scenario_without_failure(capsys):
    assert cli.main(["scenario", "--rate", "60", "--settle", "5", "--warmup", "1"]) == 0
    assert "failure:" not in capsys.readouterr().out


# --------------------------------------------------------------------------- plan-delays
def test_plan_delays_full_strategy(capsys):
    assert cli.main(["plan-delays", "--depth", "4", "--budget", "8", "--strategy", "full"]) == 0
    out = capsys.readouterr().out
    assert "D = 6.5 s" in out
    assert "masked failure duration: 6.5 s" in out


def test_plan_delays_uniform_strategy(capsys):
    assert cli.main(["plan-delays", "--depth", "4", "--budget", "8", "--strategy", "uniform"]) == 0
    out = capsys.readouterr().out
    assert "D = 2 s" in out


# --------------------------------------------------------------------------- registry coverage
def test_every_registered_experiment_has_description():
    for name, command in cli.EXPERIMENTS.items():
        assert command.name == name
        assert command.description


def test_build_parser_smoke():
    parser = cli.build_parser()
    args = parser.parse_args(["run", "table3", "--scale", "quick"])
    assert args.experiment == "table3"
    assert args.scale == "quick"


# --------------------------------------------------------------------------- DAG topologies
def test_scenario_diamond_topology(capsys):
    code = cli.main(
        ["scenario", "--topology", "diamond", "--rate", "60", "--settle", "5",
         "--warmup", "1", "--seed", "1"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "topology=diamond" in out
    assert "ingest,left,right,merge" in out


def test_scenario_rejects_unknown_failure_node(capsys):
    code = cli.main(
        ["scenario", "--topology", "diamond", "--failure", "crash",
         "--failure-node", "nope", "--seed", "1"]
    )
    assert code == 2
    assert "invalid scenario" in capsys.readouterr().err


def test_plan_delays_diamond_topology(capsys):
    assert cli.main(["plan-delays", "--topology", "diamond", "--budget", "9",
                     "--strategy", "uniform"]) == 0
    out = capsys.readouterr().out
    assert "longest path: 3" in out
    assert "path ingest -> left -> merge" in out
    assert "D = 3 s" in out


def test_dag_experiments_registered():
    assert "diamond" in cli.EXPERIMENTS
    assert "fanin" in cli.EXPERIMENTS


def test_scenario_fanin_honors_streams(capsys):
    code = cli.main(["scenario", "--topology", "fanin", "--streams", "6", "--rate", "60",
                     "--settle", "4", "--warmup", "1", "--seed", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "topology=fanin" in out


def test_scenario_fanin_rejects_odd_streams(capsys):
    code = cli.main(["scenario", "--topology", "fanin", "--streams", "5"])
    assert code == 2
    assert "2 branches" in capsys.readouterr().err


def test_scenario_failure_node_requires_crash(capsys):
    code = cli.main(["scenario", "--topology", "diamond", "--failure", "disconnect",
                     "--failure-node", "left"])
    assert code == 2
    assert "--failure-node" in capsys.readouterr().err


def test_scenario_rejects_zero_streams(capsys):
    code = cli.main(["scenario", "--streams", "0"])
    assert code == 2
    assert "invalid scenario" in capsys.readouterr().err


# --------------------------------------------------------------------------- sharded topology
def test_scenario_shard_topology(capsys):
    code = cli.main(
        ["scenario", "--topology", "shard", "--shards", "2", "--rate", "60",
         "--settle", "5", "--warmup", "1", "--seed", "1"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "topology=shard-2" in out
    assert "split,shard1,shard2,merge" in out


def test_scenario_shard_kill_via_cli(capsys):
    code = cli.main(
        ["scenario", "--topology", "shard", "--shards", "2", "--rate", "60",
         "--failure", "crash", "--failure-node", "shard1", "--failure-replica", "-1",
         "--failure-duration", "4", "--settle", "18", "--warmup", "2", "--seed", "1"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert out.count("node_crash on shard1") == 2  # both replicas
    assert "eventually consistent:                 True" in out


def test_scenario_rejects_unknown_shard(capsys):
    code = cli.main(
        ["scenario", "--topology", "shard", "--shards", "2", "--failure", "crash",
         "--failure-node", "shard9", "--seed", "1"]
    )
    assert code == 2
    assert "shard9" in capsys.readouterr().err


def test_plan_delays_shard_topology(capsys):
    assert cli.main(["plan-delays", "--topology", "shard", "--shards", "4",
                     "--budget", "9", "--strategy", "uniform"]) == 0
    out = capsys.readouterr().out
    assert "longest path: 3" in out
    assert "path split -> shard1 -> merge" in out
    assert "D = 3 s" in out


def test_shard_experiments_registered():
    assert "shard" in cli.EXPERIMENTS
    assert "shard-throughput" in cli.EXPERIMENTS
    assert "rebalance" in cli.EXPERIMENTS
    assert "autoscale" in cli.EXPERIMENTS


def test_scenario_live_rebalance_via_cli(capsys):
    code = cli.main(
        ["scenario", "--topology", "shard", "--shards", "4", "--rate", "120",
         "--skew", "1.2", "--rebalance-at", "14", "--warmup", "14",
         "--settle", "16", "--seed", "1"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "rebalance at t=14s" in out
    assert "bucket move(s)" in out
    assert "eventually consistent:                 True" in out


def test_scenario_rebalance_flags_require_shard_topology(capsys):
    code = cli.main(["scenario", "--depth", "1", "--rebalance-at", "5"])
    assert code == 2
    assert "--rebalance-at" in capsys.readouterr().err
    code = cli.main(["scenario", "--topology", "diamond", "--skew", "1.2"])
    assert code == 2
    assert "--skew" in capsys.readouterr().err


def test_scenario_autoscale_requires_shard_topology(capsys):
    code = cli.main(["scenario", "--depth", "1", "--autoscale"])
    assert code == 2
    assert "--autoscale" in capsys.readouterr().err


def test_scenario_surge_until_requires_surge_at(capsys):
    code = cli.main(
        ["scenario", "--topology", "shard", "--shards", "2", "--surge-until", "20"]
    )
    assert code == 2
    assert "--surge-at" in capsys.readouterr().err


def test_scenario_autoscale_via_cli(capsys):
    code = cli.main(
        ["scenario", "--topology", "shard", "--shards", "2", "--rate", "120",
         "--skew", "1.2", "--autoscale", "--surge-at", "14", "--surge-until", "34",
         "--surge-factor", "2", "--warmup", "14", "--settle", "41", "--seed", "1"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "scale-out" in out
    assert "scale-in" in out
    assert "autoscale:" in out
    assert "eventually consistent:                 True" in out


# --------------------------------------------------------------------------- profile
def test_profile_runs_scenario_under_cprofile(capsys):
    code = cli.main(
        ["profile", "chain", "--depth", "1", "--rate", "120", "--duration", "3",
         "--top", "5"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "profiled scenario 'profile-chain'" in out
    assert "stable tuples/s" in out
    # The pstats table with the requested restriction and sort order.
    assert "cumtime" in out
    assert "due to restriction <5>" in out


def test_profile_shard_sort_by_tottime(capsys):
    code = cli.main(
        ["profile", "shard", "--shards", "2", "--rate", "120", "--duration", "3",
         "--top", "4", "--sort", "tottime"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "top 4 by tottime" in out
    assert "Ordered by: internal time" in out


# --------------------------------------------------------------------------- network faults
def test_scenario_partition_via_cli(capsys):
    code = cli.main(
        ["scenario", "--depth", "2", "--rate", "60", "--failure", "partition",
         "--failure-node", "node1", "--failure-replica", "-1",
         "--failure-duration", "4", "--warmup", "2", "--settle", "18", "--seed", "1"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert out.count("partition on node1") == 2  # both replicas isolated
    assert "eventually consistent:                 True" in out


def test_scenario_partition_at_flag(capsys):
    code = cli.main(
        ["scenario", "--depth", "2", "--rate", "60", "--partition-at", "3",
         "--failure-node", "node1", "--failure-replica", "-1",
         "--failure-duration", "4", "--warmup", "2", "--settle", "18", "--seed", "1"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "partition on node1<->* at t=3s for 4s" in out
    assert "eventually consistent:                 True" in out


def test_scenario_disconnect_at_flag(capsys):
    code = cli.main(
        ["scenario", "--depth", "1", "--rate", "60", "--disconnect-at", "3",
         "--failure-duration", "4", "--warmup", "2", "--settle", "15", "--seed", "1"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "stream_disconnect" in out
    assert "at t=3s for 4s" in out


def test_scenario_live_rejects_silence(capsys):
    # Rejected at the flag seam, before any worker process spawns.
    code = cli.main(["scenario", "--backend", "live", "--failure", "silence"])
    assert code == 2
    err = capsys.readouterr().err
    assert "silence" in err and "simulator-only" in err


def test_live_faults_experiment_registered():
    assert "live-faults" in cli.EXPERIMENTS
    assert "parity" in cli.EXPERIMENTS["live-faults"].description
