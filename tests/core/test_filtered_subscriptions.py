"""Filtered subscriptions at the OutputStreamManager / InputStreamMonitor level.

The producer evaluates the subscription's content predicate before sending;
cursors stay in full-stream stable_seq coordinates, and the replay flag lets
a filtered consumer tell a legitimate filter gap from a stale-cursor race.
"""

from repro.core.data_path import OutputStreamManager
from repro.core.input_streams import InputStreamMonitor
from repro.core.protocol import SubscribeRequest
from repro.deploy import SubscriptionFilter
from repro.spe.tuples import StreamTuple


def even(values):
    return values["seq"] % 2 == 0


def fill(manager, count=6, start=0):
    for seq in range(start, start + count):
        manager.append(
            StreamTuple.insertion(tuple_id=seq, stime=float(seq), values={"seq": seq})
        )


def subscribe(manager, subscriber="downstream", filt=None, last=-1):
    return manager.subscribe(
        SubscribeRequest(
            stream=manager.stream, subscriber=subscriber, last_stable_seq=last, filter=filt
        )
    )


def test_initial_replay_is_filtered():
    manager = OutputStreamManager("s.out", owner="node")
    fill(manager)
    filt = SubscriptionFilter(even, name="even.slice")
    replay = subscribe(manager, filt=filt)
    assert [item.values["seq"] for item in replay] == [0, 2, 4]
    # The stamped positions are full-stream coordinates, gaps included.
    assert [item.stable_seq for item in replay] == [0, 2, 4]


def test_pending_batches_group_by_filter():
    manager = OutputStreamManager("s.out", owner="node")
    filt = SubscriptionFilter(even, name="even.slice")
    subscribe(manager, "replica-a", filt=filt)
    subscribe(manager, "replica-b", filt=filt)
    subscribe(manager, "full")
    fill(manager)
    batches = manager.pending_batches()
    assert len(batches) == 2
    by_members = {tuple(sorted(subs)): [t.values["seq"] for t in items] for items, subs in batches}
    assert by_members[("full",)] == [0, 1, 2, 3, 4, 5]
    assert by_members[("replica-a", "replica-b")] == [0, 2, 4]


def test_all_foreign_slice_advances_cursor_without_a_send():
    manager = OutputStreamManager("s.out", owner="node")
    never = SubscriptionFilter(lambda values: False, name="never")
    subscribe(manager, "nobody", filt=never)
    fill(manager)
    assert manager.pending_batches() == []
    # The cursor advanced past the slice: nothing accumulates for re-scan.
    assert manager.pending_for("nobody") == []


def test_control_tuples_reach_filtered_subscribers():
    manager = OutputStreamManager("s.out", owner="node")
    never = SubscriptionFilter(lambda values: False, name="never")
    subscribe(manager, "nobody", filt=never)
    fill(manager, count=2)
    manager.append(StreamTuple.boundary(tuple_id=99, stime=5.0))
    [(items, subscribers)] = manager.pending_batches()
    assert subscribers == ["nobody"]
    assert [item.is_boundary for item in items] == [True]


def test_cursor_translation_on_resubscribe():
    """A filtered subscriber quotes the last stamp it saw; the producer
    translates it into a buffer position and replays the filtered suffix."""
    manager = OutputStreamManager("s.out", owner="node")
    fill(manager, count=10)
    filt = SubscriptionFilter(even, name="even.slice")
    # The subscriber last received stable_seq 4 (values 0, 2, 4 delivered).
    replay = subscribe(manager, filt=filt, last=4)
    assert [item.stable_seq for item in replay] == [6, 8]


def test_monitor_accepts_stamped_gaps_on_filtered_streams():
    monitor = InputStreamMonitor(
        stream="s.out", subscription_filter=SubscriptionFilter(even, name="even.slice")
    )
    first = StreamTuple.insertion(0, 0.0, {"seq": 0}).with_stable_seq(0)
    third = StreamTuple.insertion(2, 2.0, {"seq": 2}).with_stable_seq(2)
    assert monitor.record_tuple(first, now=0.0) == "accept"
    assert monitor.record_tuple(third, now=0.1) == "accept"
    assert monitor.stable_received == 3
    # Re-delivery from another replica is still recognized as duplicate.
    assert monitor.record_tuple(third, now=0.2) == "duplicate"


def test_empty_replay_response_is_sent_and_clears_awaiting_replay():
    """A recovering consumer whose quoted cursor is already at the producer's
    end gets an *empty* replay-flagged batch; the batch-level clear must
    disarm the stale-cursor defense, or a filtered subscriber would reject
    every later tuple as a stale-cursor race forever."""
    from repro.config import DPCConfig, SimulationConfig
    from repro.core.node import ProcessingNode
    from repro.core.protocol import DATA, SUBSCRIBE
    from repro.sim.cluster import relay_diagram
    from repro.sim.event_loop import Simulator
    from repro.sim.network import Network

    sim = Simulator()
    net = Network(sim, default_latency=0.001)
    filt = SubscriptionFilter(even, name="even.slice")
    producer = ProcessingNode(
        name="split",
        diagram=relay_diagram("split", "s1", "split.out", bucket_size=0.1),
        simulator=sim,
        network=net,
        config=DPCConfig(),
        sim_config=SimulationConfig(),
    )
    consumer = ProcessingNode(
        name="shard1",
        diagram=relay_diagram("shard1", "split.out", "shard1.out", bucket_size=0.1),
        simulator=sim,
        network=net,
        config=DPCConfig(),
        sim_config=SimulationConfig(),
    )
    consumer.register_input_stream(
        "split.out", producers=["split"], subscription_filter=filt
    )
    monitor = consumer.cm.monitor("split.out")
    monitor.awaiting_replay = True
    # The consumer resubscribes from its current position: nothing to replay.
    net.send(
        "shard1",
        "split",
        SUBSCRIBE,
        SubscribeRequest(
            stream="split.out", subscriber="shard1", last_stable_seq=-1, filter=filt
        ),
    )
    sim.run_for(0.1)
    # The producer answered with an (empty) replay-flagged batch...
    assert net.stats.by_kind.get(DATA, {}).get("delivered", 0) == 1
    # ...which disarmed the defense even though it carried no tuples.
    assert not monitor.awaiting_replay


def test_awaiting_replay_only_cleared_by_the_replay_batch():
    from repro.config import DPCConfig
    from repro.core.consistency_manager import ConsistencyManager
    from repro.sim.event_loop import Simulator
    from repro.sim.network import Network

    sim = Simulator()
    net = Network(sim)

    class Owner:
        endpoint = "consumer"

    net.register("consumer", lambda message, now: None)
    cm = ConsistencyManager(Owner(), sim, net, DPCConfig())
    monitor = cm.register_input("s.out", producers=["upstream"])
    monitor.awaiting_replay = True
    monitor.stable_received = 3
    ahead = StreamTuple.insertion(9, 9.0, {"seq": 9}).with_stable_seq(9)
    # A stale-cursor flush racing the replay is rejected...
    assert cm.record_arrival("s.out", ahead, now=1.0) == "duplicate"
    assert monitor.awaiting_replay
    # ...until the replay-flagged batch disarms the defense (what the node
    # does for any batch with batch.replay set), after which the stamped gap
    # is accepted -- routine on filtered subscriptions.
    cm.note_replay("s.out")
    assert cm.record_arrival("s.out", ahead, now=1.1) == "accept"
    assert monitor.stable_received == 10
