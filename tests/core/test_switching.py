"""Unit tests for the Table II upstream-switching rules."""

from repro.core.states import NodeState
from repro.core.switching import choose_upstream, states_summary


def test_stable_current_stays():
    decision = choose_upstream("a", {"a": NodeState.STABLE, "b": NodeState.STABLE})
    assert not decision.switch


def test_switch_to_stable_replica_when_current_fails():
    decision = choose_upstream("a", {"a": NodeState.FAILURE, "b": NodeState.STABLE})
    assert decision.switch and decision.target == "b"


def test_switch_to_stable_replica_when_current_is_up_failure():
    decision = choose_upstream("a", {"a": NodeState.UP_FAILURE, "b": NodeState.STABLE})
    assert decision.switch and decision.target == "b"


def test_no_stable_keep_current_up_failure():
    decision = choose_upstream("a", {"a": NodeState.UP_FAILURE, "b": NodeState.UP_FAILURE})
    assert not decision.switch


def test_no_stable_switch_from_failure_to_up_failure():
    decision = choose_upstream("a", {"a": NodeState.FAILURE, "b": NodeState.UP_FAILURE})
    assert decision.switch and decision.target == "b"


def test_stabilizing_current_switches_to_up_failure_replica():
    decision = choose_upstream("a", {"a": NodeState.STABILIZATION, "b": NodeState.UP_FAILURE})
    assert decision.switch and decision.target == "b"


def test_everything_worse_than_current_stays():
    decision = choose_upstream(
        "a", {"a": NodeState.STABILIZATION, "b": NodeState.STABILIZATION, "c": NodeState.FAILURE}
    )
    assert not decision.switch


def test_no_current_picks_best_available():
    decision = choose_upstream(None, {"a": NodeState.UP_FAILURE, "b": NodeState.STABLE})
    assert decision.switch and decision.target == "b"


def test_no_current_and_everything_failed_stays_put():
    decision = choose_upstream(None, {"a": NodeState.FAILURE})
    assert not decision.switch


def test_unknown_current_treated_as_failed():
    decision = choose_upstream("ghost", {"a": NodeState.UP_FAILURE})
    assert decision.switch and decision.target == "a"


def test_empty_replica_set():
    assert not choose_upstream("a", {}).switch


def test_deterministic_tie_break_on_name():
    decision = choose_upstream(None, {"b": NodeState.STABLE, "a": NodeState.STABLE})
    assert decision.target == "a"


def test_states_summary_renders_all_replicas():
    text = states_summary({"a": NodeState.STABLE, "b": NodeState.FAILURE})
    assert "a=stable" in text and "b=failure" in text
