"""Tests for operator/diagram convergence classification and buffer sizing."""

import math

import pytest

from repro.core.buffer_sizing import (
    OperatorCategory,
    classify_diagram,
    classify_operator,
    compute_buffer_sizing,
    supported_failure_duration,
)
from repro.spe.operators import Aggregate, Filter, Join, Map, SJoin, SOutput, SUnion, Union
from repro.spe.operators.aggregate import AggregateSpec
from repro.spe.operators.base import Operator
from repro.spe.query_diagram import QueryDiagram
from repro.spe.tuples import StreamTuple
from repro.spe.windows import WindowSpec
from repro.workloads.queries import intrusion_detection_diagram


# --------------------------------------------------------------------------- operator classification
def test_stateless_operators_have_zero_horizon():
    for operator in (
        Filter(name="f", predicate=lambda v: True),
        Map(name="m", transform=dict),
        Union(name="u", arity=2),
        SOutput(name="o"),
    ):
        classification = classify_operator(operator)
        assert classification.category is OperatorCategory.STATELESS
        assert classification.horizon == 0.0
        assert classification.is_convergent


def test_windowed_operators_report_their_window():
    aggregate = Aggregate(
        name="a", window=WindowSpec.tumbling(60.0), aggregates=[AggregateSpec("n", "count")]
    )
    join = Join(name="j", window=5.0)
    sjoin = SJoin(name="sj", window=2.0, state_size=100)
    sunion = SUnion(name="su", arity=2, bucket_size=0.5)
    assert classify_operator(aggregate).horizon == 60.0
    assert classify_operator(join).horizon == 5.0
    assert classify_operator(sjoin).horizon == 2.0
    assert classify_operator(sunion).horizon == 0.5
    for operator in (aggregate, join, sjoin, sunion):
        assert classify_operator(operator).category is OperatorCategory.CONVERGENT


class HistoryOperator(Operator):
    """An operator whose state grows forever (not convergent-capable)."""

    def __init__(self, name: str) -> None:
        super().__init__(name, arity=1)
        self._seen: list[StreamTuple] = []

    def _process_data(self, port, item):
        self._seen.append(item)
        return [self._emit(item.stime, item.values, tentative=item.is_tentative)]

    def _checkpoint_state(self):
        return {"seen": list(self._seen)}

    def _restore_state(self, state):
        self._seen = list(state.get("seen", ()))


def test_unknown_operator_is_unbounded():
    classification = classify_operator(HistoryOperator("h"))
    assert classification.category is OperatorCategory.UNBOUNDED
    assert math.isinf(classification.horizon)
    assert not classification.is_convergent


# --------------------------------------------------------------------------- diagram classification
def test_diagram_horizon_sums_along_path():
    diagram = intrusion_detection_diagram("n", ["s1", "s2"], "out", bucket_size=0.1, window=5.0)
    classification = classify_diagram(diagram)
    assert classification.is_convergent_capable
    # SUnion bucket (0.1) + Aggregate window (5.0); the filters add nothing.
    assert classification.state_horizon == pytest.approx(5.1)


def test_diagram_with_unbounded_operator_flagged():
    diagram = QueryDiagram(name="d")
    history = HistoryOperator("h")
    soutput = SOutput(name="out_op")
    diagram.add_operator(history)
    diagram.add_operator(soutput)
    diagram.connect(history, soutput)
    diagram.bind_input("in", history)
    diagram.bind_output("out", soutput)
    diagram.validate()
    classification = classify_diagram(diagram)
    assert not classification.is_convergent_capable
    assert classification.unbounded_operators == ["h"]


def test_diagram_horizon_takes_longest_path():
    diagram = QueryDiagram(name="d")
    sunion = SUnion(name="su", arity=2, bucket_size=0.2)
    short = Filter(name="short", predicate=lambda v: True)
    long_agg = Aggregate(
        name="long", window=WindowSpec.tumbling(10.0), aggregates=[AggregateSpec("n", "count")]
    )
    join = Join(name="join", window=1.0)
    soutput = SOutput(name="sout")
    for op in (sunion, short, long_agg, join, soutput):
        diagram.add_operator(op)
    diagram.connect(sunion, short)
    diagram.connect(sunion, long_agg)
    diagram.connect(short, join, port=0)
    diagram.connect(long_agg, join, port=1)
    diagram.connect(join, soutput)
    diagram.bind_input("a", sunion, 0)
    diagram.bind_input("b", sunion, 1)
    diagram.bind_output("out", soutput)
    diagram.validate()
    classification = classify_diagram(diagram)
    # Longest path: SUnion (0.2) + Aggregate (10) + Join (1) = 11.2
    assert classification.state_horizon == pytest.approx(11.2)


# --------------------------------------------------------------------------- sizing
def test_compute_buffer_sizing_convergent():
    diagram = intrusion_detection_diagram("n", ["s1", "s2", "s3"], "out", window=5.0)
    sizing = compute_buffer_sizing(
        diagram,
        correction_window=60.0,
        input_rates={"s1": 100.0, "s2": 100.0, "s3": 100.0},
        safety_factor=1.0,
    )
    assert sizing.convergent_capable
    assert sizing.input_span == pytest.approx(65.1)
    assert sizing.input_tuples["s1"] == math.ceil(100.0 * 65.1)
    # Output rate defaults to the aggregate input rate.
    assert sizing.output_tuples["out"] == math.ceil(300.0 * 60.0)
    assert any("output rates defaulted" in note for note in sizing.notes)


def test_compute_buffer_sizing_policy_defaults():
    diagram = intrusion_detection_diagram("n", ["s1"], "out")
    sizing = compute_buffer_sizing(diagram, correction_window=10.0, input_rates={"s1": 10.0})
    policy = sizing.to_buffer_policy()
    assert policy.max_output_tuples == max(sizing.output_tuples.values())
    assert policy.max_input_tuples == max(sizing.input_tuples.values())
    # Convergent-capable diagrams default to dropping rather than blocking.
    assert policy.block_on_full is False
    assert sizing.to_buffer_policy(block_on_full=True).block_on_full is True


def test_compute_buffer_sizing_unbounded_diagram_blocks():
    diagram = QueryDiagram(name="d")
    history = HistoryOperator("h")
    soutput = SOutput(name="sout")
    diagram.add_operator(history)
    diagram.add_operator(soutput)
    diagram.connect(history, soutput)
    diagram.bind_input("in", history)
    diagram.bind_output("out", soutput)
    diagram.validate()
    sizing = compute_buffer_sizing(diagram, correction_window=10.0, input_rates={"in": 10.0})
    assert not sizing.convergent_capable
    assert sizing.notes
    assert sizing.to_buffer_policy().block_on_full is True


def test_compute_buffer_sizing_validations():
    diagram = intrusion_detection_diagram("n", ["s1"], "out")
    with pytest.raises(ValueError):
        compute_buffer_sizing(diagram, correction_window=-1.0, input_rates={"s1": 10.0})
    with pytest.raises(ValueError):
        compute_buffer_sizing(diagram, correction_window=1.0, input_rates={})
    with pytest.raises(ValueError):
        compute_buffer_sizing(
            diagram, correction_window=1.0, input_rates={"s1": 10.0}, safety_factor=0.5
        )


def test_supported_failure_duration():
    assert supported_failure_duration(1000, 100.0) == pytest.approx(10.0)
    assert supported_failure_duration(1000, 100.0, state_horizon=4.0) == pytest.approx(6.0)
    assert supported_failure_duration(10, 100.0, state_horizon=5.0) == 0.0
    with pytest.raises(ValueError):
        supported_failure_duration(100, 0.0)
    with pytest.raises(ValueError):
        supported_failure_duration(-1, 10.0)
