"""Unit tests for output stream managers (buffering, subscription, replay)."""

import pytest

from repro.config import BufferPolicy
from repro.core.data_path import DataPath, OutputStreamManager
from repro.core.protocol import SubscribeRequest
from repro.errors import BufferOverflowError, ProtocolError
from repro.spe.tuples import StreamTuple


def stable(i):
    return StreamTuple.insertion(i, i * 0.1, {"seq": i})


def tentative(i):
    return StreamTuple.tentative(i, i * 0.1, {"seq": i})


def test_append_relabels_and_stamps_stable_seq():
    mgr = OutputStreamManager("out", owner="node1")
    first = mgr.append(stable(10))
    second = mgr.append(tentative(11))
    third = mgr.append(stable(12))
    assert first.tuple_id == 0 and first.stable_seq == 0
    assert second.is_tentative and second.stable_seq is None
    assert third.stable_seq == 1
    assert mgr.stable_seq == 1
    assert mgr.stable_produced == 2 and mgr.tentative_produced == 1


def test_subscribe_from_scratch_replays_everything():
    mgr = OutputStreamManager("out", owner="node1")
    mgr.append_all([stable(0), stable(1)])
    replay = mgr.subscribe(SubscribeRequest(stream="out", subscriber="d", last_stable_seq=-1))
    assert [t.value("seq") for t in replay] == [0, 1]


def test_subscribe_resumes_after_last_stable_seq():
    mgr = OutputStreamManager("out", owner="node1")
    mgr.append_all([stable(0), stable(1), stable(2)])
    replay = mgr.subscribe(SubscribeRequest(stream="out", subscriber="d", last_stable_seq=0))
    assert [t.value("seq") for t in replay] == [1, 2]


def test_subscribe_with_had_tentative_prepends_undo():
    mgr = OutputStreamManager("out", owner="node1")
    mgr.append_all([stable(0), stable(1)])
    replay = mgr.subscribe(
        SubscribeRequest(stream="out", subscriber="d", last_stable_seq=0, had_tentative=True)
    )
    assert replay[0].is_undo
    assert [t.value("seq") for t in replay if t.is_data] == [1]


def test_subscribe_skips_tentative_tail_unless_requested():
    mgr = OutputStreamManager("out", owner="node1")
    mgr.append_all([stable(0), tentative(1), tentative(2)])
    no_tail = mgr.subscribe(SubscribeRequest(stream="out", subscriber="d", last_stable_seq=-1))
    assert [t.value("seq") for t in no_tail if t.is_data] == [0]
    with_tail = mgr.subscribe(
        SubscribeRequest(stream="out", subscriber="e", last_stable_seq=-1, replay_tentative=True)
    )
    assert [t.value("seq") for t in with_tail if t.is_data] == [0, 1, 2]


def test_pending_and_mark_delivered_cursor():
    mgr = OutputStreamManager("out", owner="node1")
    mgr.subscribe(SubscribeRequest(stream="out", subscriber="d", last_stable_seq=-1))
    mgr.append_all([stable(0), stable(1)])
    assert [t.value("seq") for t in mgr.pending_for("d")] == [0, 1]
    mgr.mark_delivered("d")
    assert mgr.pending_for("d") == []
    mgr.append(stable(2))
    assert [t.value("seq") for t in mgr.pending_for("d")] == [2]


def test_unsubscribe_stops_delivery():
    mgr = OutputStreamManager("out", owner="node1")
    mgr.subscribe(SubscribeRequest(stream="out", subscriber="d", last_stable_seq=-1))
    mgr.unsubscribe("d")
    mgr.append(stable(0))
    assert mgr.pending_for("d") == []
    assert "d" not in mgr.subscribers()


def test_truncate_delivered_drops_acknowledged_prefix():
    mgr = OutputStreamManager("out", owner="node1")
    mgr.subscribe(SubscribeRequest(stream="out", subscriber="d", last_stable_seq=-1))
    mgr.append_all([stable(i) for i in range(10)])
    assert mgr.truncate_delivered() == 0  # nothing delivered yet
    mgr.mark_delivered("d")
    assert mgr.truncate_delivered() == 10
    assert mgr.buffered_tuples == 0


def test_replay_from_truncated_position_raises():
    mgr = OutputStreamManager("out", owner="node1")
    mgr.subscribe(SubscribeRequest(stream="out", subscriber="d", last_stable_seq=-1))
    mgr.append_all([stable(i) for i in range(5)])
    mgr.mark_delivered("d")
    mgr.truncate_delivered()
    with pytest.raises(ProtocolError):
        mgr.subscribe(SubscribeRequest(stream="out", subscriber="late", last_stable_seq=1))


def test_bounded_buffer_blocks_when_full():
    policy = BufferPolicy(max_output_tuples=2, block_on_full=True)
    mgr = OutputStreamManager("out", owner="node1", buffer_policy=policy)
    mgr.append_all([stable(0), stable(1)])
    with pytest.raises(BufferOverflowError):
        mgr.append(stable(2))


def test_bounded_buffer_drops_oldest_when_configured():
    policy = BufferPolicy(max_output_tuples=2, block_on_full=False)
    mgr = OutputStreamManager("out", owner="node1", buffer_policy=policy)
    mgr.append_all([stable(0), stable(1), stable(2)])
    assert mgr.buffered_tuples == 2
    assert [t.value("seq") for t in mgr.buffered_items()] == [1, 2]


def test_subscribe_for_wrong_stream_rejected():
    mgr = OutputStreamManager("out", owner="node1")
    with pytest.raises(ProtocolError):
        mgr.subscribe(SubscribeRequest(stream="other", subscriber="d"))


def test_data_path_manages_multiple_outputs():
    path = DataPath(owner="node1")
    path.add_output("a")
    path.add_output("b")
    assert sorted(path.output_streams()) == ["a", "b"]
    with pytest.raises(ProtocolError):
        path.add_output("a")
    with pytest.raises(ProtocolError):
        path.output("missing")
    kind, batch = path.make_batch("a", [stable(0)])
    assert kind == "data" and batch.producer == "node1"
