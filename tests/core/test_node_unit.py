"""Unit-level tests for ProcessingNode (wiring, checkpointing, state advertisement)."""

import pytest

from repro.config import DPCConfig, SimulationConfig
from repro.core.node import ProcessingNode
from repro.core.protocol import DATA, SUBSCRIBE, DataBatch, SubscribeRequest
from repro.core.states import NodeState
from repro.errors import ProtocolError
from repro.sim.cluster import merge_diagram, relay_diagram
from repro.sim.event_loop import Simulator
from repro.sim.network import Message, Network
from repro.spe.tuples import StreamTuple


def make_node(diagram=None, config=None, name="node1", partners=()):
    sim = Simulator()
    net = Network(sim, default_latency=0.001)
    diagram = diagram or merge_diagram(name, ["s1", "s2"], "out", bucket_size=0.1, join_state_size=10)
    node = ProcessingNode(
        name=name,
        diagram=diagram,
        simulator=sim,
        network=net,
        config=config or DPCConfig(),
        sim_config=SimulationConfig(),
        replica_partners=list(partners),
    )
    return sim, net, node


def test_node_registers_outputs_and_inputs():
    sim, net, node = make_node()
    node.register_input_stream("s1", producers=["src1"], source_producers=["src1"])
    node.register_input_stream("s2", producers=["src2"], source_producers=["src2"])
    assert node.data_path.output_streams() == ["out"]
    assert set(node.cm.monitors) == {"s1", "s2"}
    with pytest.raises(ProtocolError):
        node.register_input_stream("nope", producers=["x"])


def test_data_message_flows_through_fragment_to_output_buffer():
    sim, net, node = make_node()
    node.register_input_stream("s1", producers=["src1"], source_producers=["src1"])
    node.register_input_stream("s2", producers=["src2"], source_producers=["src2"])
    node.register_subscriber("out", "client")
    tuples = [StreamTuple.insertion(0, 0.05, {"seq": 0}), StreamTuple.boundary(1, 1.0)]
    batch = DataBatch.of("s1", tuples, producer="src1")
    node._on_message(Message("src1", node.endpoint, DATA, batch, 0.0), now=0.1)
    batch2 = DataBatch.of("s2", [StreamTuple.boundary(0, 1.0)], producer="src2")
    node._on_message(Message("src2", node.endpoint, DATA, batch2, 0.0), now=0.1)
    manager = node.data_path.output("out")
    stable = [t for t in manager.buffered_items() if t.is_stable]
    assert [t.value("seq") for t in stable] == [0]


def test_subscribe_message_triggers_replay():
    sim, net, node = make_node()
    node.register_input_stream("s1", producers=["src1"], source_producers=["src1"])
    node.register_input_stream("s2", producers=["src2"], source_producers=["src2"])
    received = []
    net.register("downstream", lambda msg, now: received.append(msg))
    manager = node.data_path.output("out")
    manager.append(StreamTuple.insertion(0, 0.0, {"seq": 0}))
    request = SubscribeRequest(stream="out", subscriber="downstream", last_stable_seq=-1)
    node._on_message(Message("downstream", node.endpoint, SUBSCRIBE, request, 0.0), now=0.1)
    sim.run_until(0.2)
    assert received and received[0].payload.tuples[0].value("seq") == 0


def test_output_stream_states_follow_node_state():
    sim, net, node = make_node()
    node.register_input_stream("s1", producers=["src1"], source_producers=["src1"])
    node.register_input_stream("s2", producers=["src2"], source_producers=["src2"])
    assert node.output_stream_states() == {"out": NodeState.STABLE}
    node.cm.set_state(NodeState.UP_FAILURE)
    assert node.output_stream_states() == {"out": NodeState.UP_FAILURE}


def test_per_stream_granularity_keeps_unaffected_outputs_stable():
    diagram = relay_diagram("node1", "in", "out", bucket_size=0.1)
    sim, net, node = make_node(diagram=diagram, config=DPCConfig(per_stream_granularity=True))
    node.register_input_stream("in", producers=["src"], source_producers=["src"])
    node.cm.set_state(NodeState.UP_FAILURE)
    # No monitor is marked failed, and the fragment is clean: the output can
    # still be advertised STABLE under per-stream granularity.
    assert node.output_stream_states() == {"out": NodeState.STABLE}
    node.cm.monitor("in").failed = True
    assert node.output_stream_states() == {"out": NodeState.UP_FAILURE}


def test_tentative_input_takes_checkpoint_and_dirties_fragment():
    diagram = relay_diagram("node1", "in", "out", bucket_size=0.1)
    sim, net, node = make_node(diagram=diagram)
    node.register_input_stream("in", producers=["up", "up'"])
    batch = DataBatch.of("in", [StreamTuple.tentative(0, 0.05, {"seq": 0})], producer="up")
    node._on_message(Message("up", node.endpoint, DATA, batch, 0.0), now=0.1)
    assert node.fragment_dirty
    assert node.checkpoints_taken == 1
    # Everything leaving the fragment is tentative while dirty.
    items = node.data_path.output("out").buffered_items()
    assert all(not t.is_stable for t in items if t.is_data)


def test_crash_and_recover_resubscribes():
    diagram = relay_diagram("node2", "node1.out", "out", bucket_size=0.1)
    sim, net, node = make_node(diagram=diagram, name="node2")
    requests = []
    net.register("node1", lambda msg, now: requests.append(msg))
    node.register_input_stream("node1.out", producers=["node1"])
    node.crash()
    assert net.is_down(node.endpoint)
    batch = DataBatch.of("node1.out", [StreamTuple.insertion(0, 0.0, {"seq": 0})], producer="node1")
    node._on_message(Message("node1", node.endpoint, DATA, batch, 0.0), now=0.1)
    assert node.engine.tuples_processed == 0  # crashed nodes process nothing
    node.recover()
    sim.run_until(0.5)
    assert not net.is_down(node.endpoint)
    assert any(msg.kind == SUBSCRIBE for msg in requests)


def test_statistics_snapshot():
    sim, net, node = make_node()
    node.register_input_stream("s1", producers=["src1"], source_producers=["src1"])
    node.register_input_stream("s2", producers=["src2"], source_producers=["src2"])
    stats = node.statistics()
    assert stats["name"] == "node1"
    assert stats["state"] == "stable"
    assert "out" in stats["outputs"]
