"""Tests for delay-assignment planning and the accumulated-delay tracker."""

import pytest

from repro.config import DelayAssignment
from repro.core.delay_planner import AccumulatedDelayTracker, DelayPlanner
from repro.errors import ConfigurationError
from repro.topology import Topology


# --------------------------------------------------------------------------- planner construction
def test_planner_rejects_bad_budgets():
    with pytest.raises(ConfigurationError):
        DelayPlanner(total_budget=0.0)
    with pytest.raises(ConfigurationError):
        DelayPlanner(total_budget=5.0, queuing_allowance=-1.0)
    with pytest.raises(ConfigurationError):
        DelayPlanner(total_budget=5.0, queuing_allowance=5.0)


def test_planner_rejects_duplicate_and_unknown_nodes():
    planner = DelayPlanner(total_budget=4.0)
    planner.add_node("a", entry=True)
    with pytest.raises(ConfigurationError):
        planner.add_node("a")
    with pytest.raises(ConfigurationError):
        planner.connect("a", "missing")


def test_for_chain_validates_depth():
    with pytest.raises(ConfigurationError):
        DelayPlanner.for_chain(0, total_budget=8.0)


def test_plan_requires_nodes():
    with pytest.raises(ConfigurationError):
        DelayPlanner(total_budget=4.0).plan(DelayAssignment.UNIFORM)


# --------------------------------------------------------------------------- static strategies
def test_uniform_plan_divides_budget_evenly():
    planner = DelayPlanner.for_chain(4, total_budget=8.0)
    plan = planner.plan(DelayAssignment.UNIFORM)
    assert plan.per_node == {f"node{i}": 2.0 for i in range(1, 5)}
    assert plan.masked_failure == pytest.approx(2.0)
    assert plan.worst_case_sequential == pytest.approx(8.0)
    assert plan.budget_for("node3") == pytest.approx(2.0)


def test_full_plan_assigns_whole_budget_minus_allowance():
    planner = DelayPlanner.for_chain(4, total_budget=8.0, queuing_allowance=1.5)
    plan = planner.plan(DelayAssignment.FULL)
    # The paper assigns 6.5 s of the 8 s budget to every SUnion (Section 6.3).
    assert all(delay == pytest.approx(6.5) for delay in plan.per_node.values())
    assert plan.masked_failure == pytest.approx(6.5)
    assert plan.budget_for("node1") == pytest.approx(6.5)


def test_full_plan_masks_longer_failures_than_uniform():
    planner = DelayPlanner.for_chain(4, total_budget=8.0)
    uniform = planner.plan(DelayAssignment.UNIFORM)
    full = planner.plan(DelayAssignment.FULL)
    assert full.masked_failure > uniform.masked_failure


def test_budget_for_unknown_node_raises():
    plan = DelayPlanner.for_chain(2, total_budget=4.0).plan(DelayAssignment.UNIFORM)
    with pytest.raises(ConfigurationError):
        plan.budget_for("node99")


def test_single_node_chain():
    plan = DelayPlanner.for_chain(1, total_budget=3.0).plan(DelayAssignment.UNIFORM)
    assert plan.per_node == {"node1": 3.0}
    assert plan.masked_failure == pytest.approx(3.0)


# --------------------------------------------------------------------------- path diagnostics
def diamond_planner() -> DelayPlanner:
    """The Figure 21 situation: paths of different lengths meet downstream."""
    planner = DelayPlanner(total_budget=6.0)
    for name, entry in (("src_a", True), ("src_b", True), ("middle", False), ("sink", False)):
        planner.add_node(name, entry=entry)
    planner.connect("src_a", "middle")
    planner.connect("middle", "sink")
    planner.connect("src_b", "sink")
    return planner


def test_depth_uses_longest_path():
    assert diamond_planner().depth() == 3


def test_diagnose_reports_accumulated_delay_per_path():
    planner = diamond_planner()
    per_node = {"src_a": 2.0, "src_b": 2.0, "middle": 2.0, "sink": 2.0}
    diagnostics = {d.path: d for d in planner.diagnose(per_node)}
    assert diagnostics[("src_a", "middle", "sink")].accumulated_delay == pytest.approx(6.0)
    assert diagnostics[("src_b", "sink")].accumulated_delay == pytest.approx(4.0)
    assert all(d.within_budget for d in diagnostics.values())


def test_diagnose_flags_paths_exceeding_budget():
    planner = diamond_planner()
    per_node = {"src_a": 3.0, "src_b": 3.0, "middle": 3.0, "sink": 3.0}
    long_path = next(d for d in planner.diagnose(per_node) if len(d.path) == 3)
    assert not long_path.within_budget


def test_mismatched_paths_detection():
    planner = diamond_planner()
    assert planner.mismatched_paths({"src_a": 2.0, "src_b": 2.0, "middle": 2.0, "sink": 2.0})
    # Assignments can be balanced by hand so every path accumulates the same delay.
    assert not planner.mismatched_paths({"src_a": 1.0, "src_b": 3.0, "middle": 2.0, "sink": 3.0})


def test_chain_has_no_mismatched_paths():
    planner = DelayPlanner.for_chain(4, total_budget=8.0)
    plan = planner.plan(DelayAssignment.UNIFORM)
    assert not planner.mismatched_paths(plan.per_node)


# --------------------------------------------------------------------------- accumulated-delay tracker
def test_tracker_requires_positive_budget():
    with pytest.raises(ConfigurationError):
        AccumulatedDelayTracker(total_budget=0.0)


def test_tracker_spend_and_remaining():
    tracker = AccumulatedDelayTracker(total_budget=8.0)
    assert tracker.remaining_budget("s") == pytest.approx(8.0)
    assert tracker.spend("s", 3.0) == pytest.approx(3.0)
    assert tracker.remaining_budget("s") == pytest.approx(5.0)
    # Spending is clamped to the remaining budget.
    assert tracker.spend("s", 10.0) == pytest.approx(8.0)
    assert tracker.remaining_budget("s") == 0.0


def test_tracker_rejects_negative_delays():
    tracker = AccumulatedDelayTracker(total_budget=5.0)
    with pytest.raises(ConfigurationError):
        tracker.spend("s", -1.0)
    with pytest.raises(ConfigurationError):
        tracker.observe_upstream_delay("s", -0.5)


def test_tracker_observe_upstream_delay():
    tracker = AccumulatedDelayTracker(total_budget=8.0)
    tracker.observe_upstream_delay("s", 6.5)
    assert tracker.remaining_budget("s") == pytest.approx(1.5)


def test_tracker_merge_takes_most_delayed_input():
    tracker = AccumulatedDelayTracker(total_budget=8.0)
    tracker.observe_upstream_delay("a", 2.0)
    tracker.observe_upstream_delay("b", 5.0)
    assert tracker.merge(["a", "b"]) == pytest.approx(5.0)
    assert tracker.merge([]) == 0.0


def test_tracker_stamp_adds_attribute():
    tracker = AccumulatedDelayTracker(total_budget=8.0, attribute="delay_so_far")
    tracker.spend("s", 1.5)
    stamped = tracker.stamp({"seq": 7}, "s")
    assert stamped == {"seq": 7, "delay_so_far": 1.5}


# --------------------------------------------------------------------------- topology-backed planning
def test_for_topology_mirrors_the_deployment_graph():
    from repro.topology import Topology

    planner = DelayPlanner.for_topology(Topology.diamond(), total_budget=9.0)
    assert planner.nodes == ["ingest", "left", "right", "merge"]
    assert planner.depth() == 3


def test_uniform_plan_on_branching_topology_respects_longest_path():
    """Satellite: D must be respected along the *longest* path, and short
    branches must not be over-assigned."""
    from repro.topology import NodeSpec, Topology

    # Unbalanced diamond: ingest -> a -> b -> sink (4 nodes) vs
    # ingest -> short -> sink (3 nodes).
    topo = Topology(
        [
            NodeSpec("ingest", ("s1",)),
            NodeSpec("a", ("ingest",)),
            NodeSpec("b", ("a",)),
            NodeSpec("short", ("ingest",)),
            NodeSpec("sink", ("b", "short")),
        ],
        name="unbalanced",
    )
    planner = DelayPlanner.for_topology(topo, total_budget=8.0)
    plan = planner.plan(DelayAssignment.UNIFORM)
    # Split by the longest path (4 nodes), not the node count (5) or the
    # short path (3).
    assert all(delay == pytest.approx(2.0) for delay in plan.per_node.values())
    diagnostics = {d.path: d for d in planner.diagnose(plan.per_node)}
    long_path = ("ingest", "a", "b", "sink")
    short_path = ("ingest", "short", "sink")
    # The total budget is met exactly along the longest path...
    assert diagnostics[long_path].accumulated_delay == pytest.approx(8.0)
    assert diagnostics[long_path].within_budget
    # ...and the short branch under-uses it instead of overshooting.
    assert diagnostics[short_path].accumulated_delay == pytest.approx(6.0)
    assert diagnostics[short_path].within_budget
    # No path may exceed the budget under the uniform plan.
    assert all(d.within_budget for d in planner.diagnose(plan.per_node))


def test_uniform_plan_never_over_assigns_any_path():
    from repro.topology import Topology

    for topo in (Topology.chain(4), Topology.diamond(), Topology.fanin(3, 2)):
        planner = DelayPlanner.for_topology(topo, total_budget=6.0)
        plan = planner.plan(DelayAssignment.UNIFORM)
        assert all(d.within_budget for d in planner.diagnose(plan.per_node)), topo.name


def test_full_plan_on_topology_matches_chain_semantics():
    from repro.topology import Topology

    planner = DelayPlanner.for_topology(
        Topology.diamond(), total_budget=8.0, queuing_allowance=1.5
    )
    plan = planner.plan(DelayAssignment.FULL)
    assert all(delay == pytest.approx(6.5) for delay in plan.per_node.values())


def test_for_chain_delegates_to_topology():
    planner = DelayPlanner.for_chain(3, total_budget=6.0)
    assert planner.nodes == ["node1", "node2", "node3"]
    plan = planner.plan(DelayAssignment.UNIFORM)
    assert plan.per_node == {f"node{i}": pytest.approx(2.0) for i in (1, 2, 3)}


def test_depth_is_polynomial_on_stacked_diamonds():
    from repro.topology import NodeSpec, Topology

    # 15 stacked diamonds = 2^15 entry-to-sink paths; depth() must not
    # enumerate them.
    nodes = [NodeSpec("d0", ("s1",))]
    for k in range(15):
        nodes.append(NodeSpec(f"l{k}", (f"d{k}",)))
        nodes.append(NodeSpec(f"r{k}", (f"d{k}",)))
        nodes.append(NodeSpec(f"d{k + 1}", (f"l{k}", f"r{k}")))
    topo = Topology(nodes, name="stacked")
    planner = DelayPlanner.for_topology(topo, total_budget=8.0)
    assert planner.depth() == 1 + 2 * 15
    assert planner.depth() == topo.depth()
    plan = planner.plan(DelayAssignment.UNIFORM)
    assert plan.masked_failure == pytest.approx(8.0 / 31)


# --------------------------------------------------------------------------- accumulated strategy
def test_accumulated_reduces_to_uniform_on_chains():
    planner = DelayPlanner.for_chain(4, total_budget=8.0)
    plan = planner.plan(DelayAssignment.ACCUMULATED)
    assert plan.per_node == {f"node{i}": pytest.approx(2.0) for i in (1, 2, 3, 4)}
    assert plan.worst_case_sequential == pytest.approx(8.0)


def test_accumulated_gives_short_branches_the_stranded_budget():
    # Figure 21 shape: a long branch (entry -> relay -> merge) and a short
    # branch (entry -> merge).  UNIFORM assigns X/3 everywhere, so the short
    # path accumulates only 2X/3; ACCUMULATED lets the short entry spend more.
    planner = DelayPlanner(total_budget=9.0)
    planner.add_node("long-entry", entry=True)
    planner.add_node("short-entry", entry=True)
    planner.add_node("relay")
    planner.add_node("merge")
    planner.connect("long-entry", "relay")
    planner.connect("relay", "merge")
    planner.connect("short-entry", "merge")
    plan = planner.plan(DelayAssignment.ACCUMULATED)
    assert plan.per_node["long-entry"] == pytest.approx(3.0)
    assert plan.per_node["relay"] == pytest.approx(3.0)
    # The short entry has only 2 nodes ahead of it on its path: X/2, not X/3.
    assert plan.per_node["short-entry"] == pytest.approx(4.5)
    # The merge inherits the *most delayed* input (6.0 from the long branch).
    assert plan.per_node["merge"] == pytest.approx(3.0)
    # Every path accumulates exactly the full budget: nothing stranded.
    for diagnostic in planner.diagnose(plan.per_node):
        assert diagnostic.within_budget
    uniform = planner.plan(DelayAssignment.UNIFORM)
    assert planner.mismatched_paths(uniform.per_node)


def test_accumulated_never_exceeds_the_budget_on_any_path():
    planner = DelayPlanner.for_topology(Topology.diamond(), total_budget=8.0)
    plan = planner.plan(DelayAssignment.ACCUMULATED)
    for diagnostic in planner.diagnose(plan.per_node):
        assert diagnostic.accumulated_delay <= 8.0 + 1e-9
    assert plan.strategy is DelayAssignment.ACCUMULATED
    assert plan.masked_failure == pytest.approx(min(plan.per_node.values()))


def test_placement_delay_plan_uses_the_config_strategy():
    from repro.config import DPCConfig
    from repro.deploy import compile as compile_placement

    placement = compile_placement(Topology.diamond(), replicas_per_node=1)
    config = DPCConfig(max_incremental_latency=8.0)
    default_plan = placement.delay_plan(config)
    assert default_plan.strategy is config.delay_assignment
    accumulated = placement.delay_plan(config, DelayAssignment.ACCUMULATED)
    assert accumulated.strategy is DelayAssignment.ACCUMULATED
    assert set(accumulated.per_node) == {spec.name for spec in Topology.diamond()}
