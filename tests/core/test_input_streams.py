"""Unit tests for per-input-stream monitors (detection, healing, redo buffer)."""

from repro.core.input_streams import InputStreamMonitor
from repro.core.states import NodeState
from repro.spe.tuples import StreamTuple


def monitor_with_source():
    monitor = InputStreamMonitor(stream="s1")
    monitor.add_producer("src", is_source=True)
    monitor.last_boundary_arrival = 0.0
    return monitor


def monitor_with_replicas():
    monitor = InputStreamMonitor(stream="x")
    monitor.add_producer("n1")
    monitor.add_producer("n1'")
    monitor.last_boundary_arrival = 0.0
    return monitor


def test_first_producer_becomes_primary():
    monitor = monitor_with_replicas()
    assert monitor.primary == "n1"


def test_boundary_arrivals_update_evidence_and_buffer():
    monitor = monitor_with_source()
    monitor.record_tuple(StreamTuple.boundary(0, 1.0), now=1.0)
    assert monitor.last_boundary_stime == 1.0
    assert monitor.boundary_silent_for(1.5) == 0.5
    assert len(monitor.stable_buffer) == 1


def test_stable_arrivals_counted_and_buffered():
    monitor = monitor_with_source()
    assert monitor.record_tuple(StreamTuple.insertion(0, 0.1, {"seq": 0}), now=0.1) == "accept"
    assert monitor.stable_received == 1
    assert monitor.buffered_stable_tuples == 1


def test_stable_seq_deduplication():
    monitor = monitor_with_replicas()
    first = StreamTuple.insertion(0, 0.1, {"seq": 0}).with_stable_seq(0)
    dup = StreamTuple.insertion(7, 0.1, {"seq": 0}).with_stable_seq(0)
    nxt = StreamTuple.insertion(8, 0.2, {"seq": 1}).with_stable_seq(1)
    assert monitor.record_tuple(first, now=0.1) == "accept"
    assert monitor.record_tuple(dup, now=0.2) == "duplicate"
    assert monitor.record_tuple(nxt, now=0.3) == "accept"
    assert monitor.stable_received == 2
    assert monitor.buffered_stable_tuples == 2


def test_tentative_arrivals_tracked_but_not_buffered():
    monitor = monitor_with_source()
    monitor.record_tuple(StreamTuple.tentative(0, 0.1, {}), now=0.1)
    assert monitor.tentative_received == 1
    assert monitor.tentative_since_stable == 1
    assert monitor.buffered_stable_tuples == 0


def test_undo_resets_tentative_counter():
    monitor = monitor_with_source()
    monitor.record_tuple(StreamTuple.tentative(0, 0.1, {}), now=0.1)
    monitor.record_tuple(StreamTuple.undo(1, 0.1, undo_from_id=-1), now=0.2)
    assert monitor.tentative_since_stable == 0
    assert monitor.undos_received == 1


def test_failure_detection_on_missing_boundaries():
    monitor = monitor_with_source()
    monitor.record_tuple(StreamTuple.boundary(0, 1.0), now=1.0)
    assert not monitor.detect_failure(now=1.1, timeout=0.25)
    assert monitor.detect_failure(now=2.0, timeout=0.25)
    assert monitor.failed and monitor.failure_detected_at == 2.0
    # Detection reported only once.
    assert not monitor.detect_failure(now=3.0, timeout=0.25)


def test_failure_detection_on_tentative_arrival():
    monitor = monitor_with_replicas()
    monitor.last_boundary_arrival = 10.0
    monitor.record_tuple(StreamTuple.tentative(0, 10.0, {}), now=10.0)
    assert monitor.detect_failure(now=10.05, timeout=0.25)


def test_source_stream_heals_when_boundaries_flow_again():
    monitor = monitor_with_source()
    monitor.record_tuple(StreamTuple.boundary(0, 1.0), now=1.0)
    monitor.detect_failure(now=2.0, timeout=0.25)
    assert not monitor.is_healed(now=2.0, timeout=0.25)
    monitor.record_tuple(StreamTuple.boundary(1, 2.0), now=2.05)
    assert monitor.is_healed(now=2.1, timeout=0.25)
    monitor.mark_healed()
    assert not monitor.failed


def test_node_stream_requires_rec_done_and_stable_primary():
    monitor = monitor_with_replicas()
    monitor.producers["n1"].advertised_state = NodeState.UP_FAILURE
    monitor.producers["n1"].last_response_at = 5.0
    monitor.record_tuple(StreamTuple.tentative(0, 5.0, {}), now=5.0)
    monitor.detect_failure(now=5.1, timeout=0.25)
    monitor.record_tuple(StreamTuple.boundary(1, 5.2), now=5.2)
    assert not monitor.is_healed(now=5.3, timeout=0.25)
    monitor.producers["n1"].advertised_state = NodeState.STABLE
    monitor.producers["n1"].last_response_at = 5.3
    assert not monitor.is_healed(now=5.35, timeout=0.25)  # still no REC_DONE
    monitor.record_tuple(StreamTuple.rec_done(2, 5.3), now=5.35)
    assert monitor.is_healed(now=5.4, timeout=0.25)


def test_unfailed_stream_is_trivially_healed():
    monitor = monitor_with_source()
    assert monitor.is_healed(now=100.0, timeout=0.25)


def test_producer_effective_state_uses_silence():
    monitor = monitor_with_replicas()
    info = monitor.producers["n1"]
    info.advertised_state = NodeState.STABLE
    info.last_response_at = 1.0
    assert info.effective_state(now=1.1, timeout=0.5) is NodeState.STABLE
    assert info.effective_state(now=5.0, timeout=0.5) is NodeState.FAILURE


def test_clear_stable_buffer():
    monitor = monitor_with_source()
    monitor.record_tuple(StreamTuple.insertion(0, 0.1, {}), now=0.1)
    monitor.clear_stable_buffer()
    assert monitor.buffered_stable_tuples == 0
