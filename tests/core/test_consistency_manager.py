"""Unit tests for the ConsistencyManager (heartbeats, switching, reconciliation protocol)."""

from repro.config import DPCConfig
from repro.core.consistency_manager import ConsistencyManager
from repro.core.protocol import (
    HEARTBEAT_REQUEST,
    HEARTBEAT_RESPONSE,
    RECONCILE_REPLY,
    RECONCILE_REQUEST,
    HeartbeatRequest,
    HeartbeatResponse,
    ReconcileReply,
    ReconcileRequest,
    SUBSCRIBE,
)
from repro.core.states import NodeState
from repro.sim.event_loop import Simulator
from repro.sim.network import Message, Network
from repro.spe.tuples import StreamTuple


class FakeOwner:
    """Minimal ConsistencyOwner capturing every callback."""

    def __init__(self, endpoint="owner"):
        self.endpoint = endpoint
        self.failures = []
        self.healed = 0
        self.undone = []
        self.reconciliations = 0
        self.wants = False

    def on_input_failure(self, stream, now):
        self.failures.append((stream, now))

    def on_inputs_healed(self, now):
        self.healed += 1

    def apply_local_undo(self, stream, now):
        self.undone.append(stream)

    def output_stream_states(self):
        return {"out": NodeState.STABLE}

    def start_reconciliation(self, now):
        self.reconciliations += 1

    def wants_reconciliation(self):
        return self.wants


def setup(replica_partners=(), config=None):
    sim = Simulator()
    net = Network(sim, default_latency=0.001)
    sent = []
    # capture messages to upstream producers / partners
    for endpoint in ("up1", "up2", "partner"):
        net.register(endpoint, lambda msg, now, e=endpoint: sent.append((e, msg)))
    owner = FakeOwner()
    net.register(owner.endpoint, lambda msg, now: cm.handle_message(msg, now))
    config = config or DPCConfig(startup_grace=0.0)
    cm = ConsistencyManager(owner, sim, net, config, replica_partners=list(replica_partners))
    return sim, net, cm, owner, sent


def test_register_input_sets_primary_and_grace():
    sim, _net, cm, _owner, _sent = setup()
    monitor = cm.register_input("x", producers=["up1", "up2"])
    assert monitor.primary == "up1"
    assert cm.monitor("x") is monitor


def test_heartbeat_request_answered_with_states():
    sim, net, cm, owner, sent = setup()
    message = Message(sender="up1", receiver=owner.endpoint, kind=HEARTBEAT_REQUEST,
                      payload=HeartbeatRequest(requester="up1"), sent_at=0.0)
    assert cm.handle_message(message, now=0.0)
    sim.run_until(0.1)
    responses = [m for e, m in sent if m.kind == HEARTBEAT_RESPONSE]
    assert len(responses) == 1
    assert responses[0].payload.node_state is NodeState.STABLE
    assert responses[0].payload.stream_states == {"out": NodeState.STABLE}


def test_heartbeat_response_updates_producer_state():
    sim, _net, cm, owner, _sent = setup()
    cm.register_input("x", producers=["up1", "up2"])
    response = HeartbeatResponse(responder="up1", node_state=NodeState.UP_FAILURE)
    cm.handle_message(Message("up1", owner.endpoint, HEARTBEAT_RESPONSE, response, 0.0), now=0.5)
    info = cm.monitor("x").producers["up1"]
    assert info.advertised_state is NodeState.UP_FAILURE
    assert info.last_response_at == 0.5


def test_control_tick_detects_failure_and_notifies_owner():
    sim, _net, cm, owner, _sent = setup()
    cm.register_input("x", producers=["up1", "up2"])
    # Make both producers look failed (no responses, no boundaries).
    sim.run_until(1.0)
    cm.control_tick(now=1.0)
    assert owner.failures and owner.failures[0][0] == "x"
    assert cm.state is NodeState.UP_FAILURE


def test_switch_to_stable_replica_masks_failure():
    sim, _net, cm, owner, sent = setup()
    monitor = cm.register_input("x", producers=["up1", "up2"])
    # up2 recently advertised STABLE; up1 is silent.
    monitor.producers["up2"].advertised_state = NodeState.STABLE
    monitor.producers["up2"].last_response_at = 0.9
    monitor.producers["up1"].last_response_at = -10.0
    monitor.last_boundary_arrival = 0.0
    sim.run_until(1.0)
    cm.control_tick(now=1.0)
    sim.run_until(1.1)
    assert monitor.primary == "up2"
    subscriptions = [m for e, m in sent if m.kind == SUBSCRIBE and e == "up2"]
    assert len(subscriptions) == 1
    # The failure is masked by the switch, so the node does not go UP_FAILURE.
    assert cm.state is NodeState.STABLE
    assert owner.failures == []


def test_reconciliation_granted_without_partners():
    sim, _net, cm, owner, _sent = setup()
    monitor = cm.register_input("x", producers=["up1"], source_producers=["up1"])
    owner.wants = True
    cm.set_state(NodeState.UP_FAILURE)
    sim.run_until(1.0)
    # The previously failed stream has healed: boundaries flow again.
    monitor.failed = True
    monitor.record_tuple(StreamTuple.boundary(0, 1.0), now=1.0)
    cm.control_tick(now=1.0)
    assert owner.reconciliations == 1


def test_reconciliation_request_reply_cycle_with_partner():
    sim, net, cm, owner, sent = setup(replica_partners=["partner"])
    monitor = cm.register_input("x", producers=["up1"], source_producers=["up1"])
    owner.wants = True
    cm.set_state(NodeState.UP_FAILURE)
    sim.run_until(1.0)
    monitor.record_tuple(StreamTuple.boundary(0, 1.0), now=1.0)
    cm.control_tick(now=1.0)
    sim.run_until(1.1)
    requests = [m for e, m in sent if m.kind == RECONCILE_REQUEST and e == "partner"]
    assert len(requests) == 1
    # Partner grants: owner starts reconciliation.
    reply = ReconcileReply(responder="partner", request_id=requests[0].payload.request_id, granted=True)
    cm.handle_message(Message("partner", owner.endpoint, RECONCILE_REPLY, reply, 1.1), now=1.1)
    assert owner.reconciliations == 1


def test_reconcile_request_rejected_while_stabilizing():
    sim, _net, cm, owner, sent = setup()
    cm.set_state(NodeState.UP_FAILURE)
    cm.set_state(NodeState.STABILIZATION)
    request = ReconcileRequest(requester="up1", request_id=7)
    cm.handle_message(Message("up1", owner.endpoint, RECONCILE_REQUEST, request, 0.0), now=0.0)
    sim.run_until(0.1)
    replies = [m for e, m in sent if m.kind == RECONCILE_REPLY]
    assert len(replies) == 1 and replies[0].payload.granted is False


def test_reconcile_request_tie_break_by_identifier():
    sim, _net, cm, owner, sent = setup()
    owner.wants = True
    cm.set_state(NodeState.UP_FAILURE)
    #

    # Requester has a *larger* identifier than this node ("owner" < "up1"),
    # so this node keeps the right to reconcile first and rejects.
    request = ReconcileRequest(requester="up1", request_id=1)
    cm.handle_message(Message("up1", owner.endpoint, RECONCILE_REQUEST, request, 0.0), now=0.0)
    sim.run_until(0.1)
    assert [m.payload.granted for e, m in sent if m.kind == RECONCILE_REPLY] == [False]


def test_classify_producer_roles():
    sim, _net, cm, _owner, _sent = setup()
    monitor = cm.register_input("x", producers=["up1", "up2"])
    assert cm.classify_producer("x", "up1") == "primary"
    assert cm.classify_producer("x", "up2") == "ignore"
    monitor.correcting = "up2"
    assert cm.classify_producer("x", "up2") == "correcting"
    assert cm.classify_producer("unknown", "up1") == "ignore"


def test_record_arrival_delegates_to_monitor():
    sim, _net, cm, _owner, _sent = setup()
    cm.register_input("x", producers=["up1"])
    verdict = cm.record_arrival("x", StreamTuple.insertion(0, 0.0, {"seq": 0}), now=0.0)
    assert verdict == "accept"
    assert cm.monitor("x").stable_received == 1


def test_invalid_state_transition_rejected():
    import pytest
    from repro.errors import ProtocolError

    _sim, _net, cm, _owner, _sent = setup()
    with pytest.raises(ProtocolError):
        cm.set_state(NodeState.STABILIZATION)
