"""Unit tests for the DPC state machine and state preferences."""

import pytest

from repro.core.states import NodeState, STATE_PREFERENCE, can_transition, prefer


def test_figure5_transitions_allowed():
    assert can_transition(NodeState.STABLE, NodeState.UP_FAILURE)
    assert can_transition(NodeState.UP_FAILURE, NodeState.STABILIZATION)
    assert can_transition(NodeState.UP_FAILURE, NodeState.STABLE)
    assert can_transition(NodeState.STABILIZATION, NodeState.STABLE)
    assert can_transition(NodeState.STABILIZATION, NodeState.UP_FAILURE)


def test_forbidden_transitions():
    assert not can_transition(NodeState.STABLE, NodeState.STABILIZATION)
    assert not can_transition(NodeState.STABLE, NodeState.FAILURE)


def test_self_transition_is_allowed():
    for state in NodeState:
        assert can_transition(state, state)


def test_preference_order_matches_table2():
    assert STATE_PREFERENCE[NodeState.STABLE] < STATE_PREFERENCE[NodeState.UP_FAILURE]
    assert STATE_PREFERENCE[NodeState.UP_FAILURE] < STATE_PREFERENCE[NodeState.STABILIZATION]
    assert STATE_PREFERENCE[NodeState.STABILIZATION] < STATE_PREFERENCE[NodeState.FAILURE]


def test_prefer_returns_better_state():
    assert prefer(NodeState.STABLE, NodeState.UP_FAILURE) is NodeState.STABLE
    assert prefer(NodeState.FAILURE, NodeState.STABILIZATION) is NodeState.STABILIZATION
