"""Integration tests: full simulated deployments under failures.

These exercise the whole stack (sources, nodes with DPC, clients) at small
rates so they stay fast, and assert the paper's qualitative guarantees:
availability within the bound and eventual consistency.
"""

import pytest

from repro.config import DelayPolicy, DPCConfig
from repro.experiments import availability_run, check_eventual_consistency
from repro.sim.cluster import build_chain_cluster, build_single_node_cluster
from repro.workloads import FailureSpec, Scenario, single_failure

RATE = 60.0  # tuples/second, kept small so the suite stays fast


def stable_sequence_is_complete(client) -> bool:
    seq = client.stable_sequence
    if not seq or seq != sorted(seq):
        return False
    return set(range(min(seq), max(seq) + 1)) == set(seq)


def test_failure_free_run_produces_only_stable_output():
    cluster = build_single_node_cluster(aggregate_rate=RATE)
    cluster.start()
    cluster.run_for(15.0)
    client = cluster.client
    assert client.n_tentative == 0
    assert client.metrics.consistency.total_stable > 0
    assert stable_sequence_is_complete(client)
    assert client.proc_new < 1.0  # well within the bound; no failure happened
    assert all(node.state.value == "stable" for node in cluster.all_nodes())


def test_short_failure_is_fully_masked():
    cluster = build_single_node_cluster(aggregate_rate=RATE, replicated=True)
    single_failure(kind="disconnect", start=5.0, duration=2.0, settle=20.0).run(cluster)
    client = cluster.client
    assert client.n_tentative == 0
    assert stable_sequence_is_complete(client)
    assert client.proc_new < 3.6


def test_long_failure_single_node_reaches_eventual_consistency():
    cluster = build_single_node_cluster(aggregate_rate=RATE, replicated=False)
    single_failure(kind="disconnect", start=5.0, duration=10.0, settle=25.0).run(cluster)
    client = cluster.client
    assert client.n_tentative > 0
    assert client.metrics.consistency.total_rec_done >= 1
    assert stable_sequence_is_complete(client)
    assert not client.metrics.consistency.has_pending_tentative()
    node = cluster.nodes[0][0]
    assert node.reconciliations_completed == 1
    assert node.state.value == "stable"


def test_replicated_node_maintains_availability_through_long_failure():
    result = availability_run(failure_duration=12.0, aggregate_rate=RATE, settle=30.0)
    assert result.eventually_consistent
    assert result.proc_new < 3.75
    assert result.n_rec_done >= 1


def test_overlapping_failures_on_two_streams():
    cluster = build_single_node_cluster(aggregate_rate=RATE, replicated=False)
    scenario = Scenario(
        warmup=5.0,
        settle=25.0,
        failures=[
            FailureSpec(kind="disconnect", start=5.0, duration=8.0, stream_index=0),
            FailureSpec(kind="disconnect", start=8.0, duration=8.0, stream_index=2),
        ],
    )
    scenario.run(cluster)
    assert stable_sequence_is_complete(cluster.client)
    assert cluster.client.metrics.consistency.total_rec_done >= 1


def test_failure_during_recovery_triggers_second_reconciliation():
    # A slow redo rate keeps the first reconciliation running long enough for
    # the second failure (which starts one second later) to interrupt it.
    config = DPCConfig(max_incremental_latency=3.0, redo_rate=150.0)
    cluster = build_single_node_cluster(aggregate_rate=RATE, replicated=False, config=config)
    scenario = Scenario(
        warmup=5.0,
        settle=35.0,
        failures=[
            FailureSpec(kind="disconnect", start=5.0, duration=10.0, stream_index=0),
            FailureSpec(kind="disconnect", start=16.0, duration=8.0, stream_index=2),
        ],
    )
    scenario.run(cluster)
    client = cluster.client
    node = cluster.nodes[0][0]
    assert stable_sequence_is_complete(client)
    assert client.metrics.consistency.total_rec_done >= 1
    assert node.reconciliations_completed + node.reconciliations_aborted >= 2


def test_chain_recovers_level_by_level():
    config = DPCConfig(max_incremental_latency=4.0)
    cluster = build_chain_cluster(
        chain_depth=2, replicas_per_node=2, aggregate_rate=RATE, config=config, join_state_size=None
    )
    scenario = Scenario(
        warmup=5.0,
        settle=30.0,
        failures=[FailureSpec(kind="silence", start=5.0, duration=10.0, stream_index=0)],
    )
    scenario.run(cluster)
    assert check_eventual_consistency(cluster)
    assert cluster.client.proc_new < 4.0 + 1.0
    for node in cluster.all_nodes():
        assert node.state.value == "stable"
        assert node.reconciliations_completed >= 1


def test_delay_policy_reduces_tentative_tuples():
    eager = availability_run(
        failure_duration=8.0, aggregate_rate=120.0, policy=DelayPolicy.process_process(), settle=30.0
    )
    delaying = availability_run(
        failure_duration=8.0, aggregate_rate=120.0, policy=DelayPolicy.delay_delay(), settle=30.0
    )
    assert eager.eventually_consistent and delaying.eventually_consistent
    assert delaying.n_tentative <= eager.n_tentative
    assert delaying.proc_new < 3.75


def test_node_crash_and_recovery_with_replica():
    cluster = build_single_node_cluster(aggregate_rate=RATE, replicated=True)
    node_to_crash = cluster.nodes[0][0]
    cluster.simulator.schedule_at(5.0, lambda now: node_to_crash.crash())
    cluster.simulator.schedule_at(15.0, lambda now: node_to_crash.recover())
    cluster.start()
    cluster.run_for(30.0)
    client = cluster.client
    # The client switches to the surviving replica, so data keeps flowing and
    # remains gap-free.
    assert stable_sequence_is_complete(client)
    assert client.cm.switches_performed >= 1
    assert client.proc_new < 4.0
