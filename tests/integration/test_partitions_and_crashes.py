"""Integration tests: network partitions and node crashes in a replicated chain.

The failure-recovery integration tests exercise input-stream failures; these
exercise the other two failure classes of Section 2.2: network partitions
between processing nodes and fail-stop crashes of replicas, both of which DPC
must mask by switching to another replica of the affected upstream neighbor.
"""

from repro.config import DPCConfig
from repro.experiments import check_eventual_consistency
from repro.sim.cluster import build_chain_cluster
from repro.workloads import FailureSpec, Scenario

RATE = 60.0


def stable_sequence_is_complete(client) -> bool:
    seq = client.stable_sequence
    if not seq or seq != sorted(seq):
        return False
    return set(range(min(seq), max(seq) + 1)) == set(seq)


def test_partition_between_chain_levels_is_masked_by_switching():
    """node2 loses its link to node1 but can still reach node1's replica."""
    config = DPCConfig(max_incremental_latency=3.0)
    cluster = build_chain_cluster(
        chain_depth=2,
        replicas_per_node=2,
        aggregate_rate=RATE,
        config=config,
        join_state_size=None,
    )
    upstream = cluster.node(0, 0)
    downstream = cluster.node(1, 0)
    cluster.failures.partition(upstream.endpoint, downstream.endpoint, start=5.0, duration=10.0)
    cluster.start()
    cluster.run_for(40.0)

    client = cluster.client
    assert stable_sequence_is_complete(client)
    assert check_eventual_consistency(cluster)
    # The partition is masked by switching to the other replica of node1, so
    # the downstream node never has to process partial input.
    assert client.proc_new < 6.5  # within 2 * X for the 2-level chain
    assert downstream.cm.switches_performed >= 1


def test_crash_of_client_upstream_replica_is_invisible():
    config = DPCConfig(max_incremental_latency=3.0)
    cluster = build_chain_cluster(
        chain_depth=1,
        replicas_per_node=2,
        aggregate_rate=RATE,
        config=config,
    )
    scenario = Scenario(
        warmup=5.0,
        settle=25.0,
        failures=[
            FailureSpec(kind="crash", start=5.0, duration=12.0, node_level=0, node_replica=0)
        ],
    )
    scenario.run(cluster)
    client = cluster.client
    assert client.n_tentative == 0
    assert stable_sequence_is_complete(client)
    assert client.proc_new < 3.75
    assert client.cm.switches_performed >= 1


def test_crashed_replica_recovers_and_catches_up():
    config = DPCConfig(max_incremental_latency=3.0)
    cluster = build_chain_cluster(
        chain_depth=1,
        replicas_per_node=2,
        aggregate_rate=RATE,
        config=config,
    )
    crashed = cluster.node(0, 0)
    scenario = Scenario(
        warmup=5.0,
        settle=30.0,
        failures=[
            FailureSpec(kind="crash", start=5.0, duration=8.0, node_level=0, node_replica=0)
        ],
    )
    scenario.run(cluster)
    # After recovery the crashed replica resubscribes to the sources and
    # processes data again: it must end up STABLE and have processed tuples
    # after the crash window.
    assert crashed.state.value == "stable"
    assert crashed.engine.tuples_processed > 0
    # The client never noticed: full, ordered, duplicate-free stable output.
    assert check_eventual_consistency(cluster)


def test_simultaneous_crash_and_stream_failure():
    """A crash of the client's replica overlapping a stream failure is still handled.

    Both replicas see the input-stream failure; on top of that, the replica
    the client reads from crashes.  The client must switch to the surviving
    replica, which later heals and corrects its output, so the client still
    converges to the complete stable stream.
    """
    config = DPCConfig(max_incremental_latency=3.0)
    cluster = build_chain_cluster(
        chain_depth=1,
        replicas_per_node=2,
        aggregate_rate=RATE,
        config=config,
    )
    scenario = Scenario(
        warmup=5.0,
        settle=35.0,
        failures=[
            FailureSpec(kind="disconnect", start=5.0, duration=10.0, stream_index=0),
            FailureSpec(kind="crash", start=7.0, duration=6.0, node_level=0, node_replica=0),
        ],
    )
    scenario.run(cluster)
    client = cluster.client
    assert client.cm.switches_performed >= 1
    # Availability is maintained and a correction burst (undo + REC_DONE)
    # reaches the client once the surviving replica stabilizes.
    assert client.proc_new < 3.75
    assert client.metrics.consistency.total_undos >= 1
    assert client.metrics.consistency.total_rec_done >= 1
    assert all(node.state.value == "stable" for node in cluster.all_nodes())
    # Known limitation (see DESIGN.md "Known deviations"): crashed-replica
    # recovery is simplified -- the restarted replica rejoins at the current
    # stream position instead of rebuilding its full historical output, so a
    # client that switches to it mid-correction can miss part of the
    # correction burst.  The stable ledger must still be ordered,
    # duplicate-free, and cover the vast majority of the stream.
    seq = client.stable_sequence
    assert seq == sorted(seq)
    assert len(seq) == len(set(seq))
    covered = len(seq) / (max(seq) - min(seq) + 1)
    assert covered > 0.9
