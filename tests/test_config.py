"""Unit tests for configuration objects."""

import pytest

from repro.config import (
    BufferPolicy,
    DelayAssignment,
    DelayPolicy,
    DPCConfig,
    ProcessingPolicy,
    SimulationConfig,
)
from repro.errors import ConfigurationError


def test_default_configs_validate():
    DPCConfig().validate()
    SimulationConfig().validate()


def test_delay_policy_constructors_and_names():
    assert DelayPolicy.process_process().name == "Process & Process"
    assert DelayPolicy.delay_suspend().name == "Delay & Suspend"
    assert DelayPolicy.delay_delay().during_failure is ProcessingPolicy.DELAY


def test_invalid_latency_rejected():
    with pytest.raises(ConfigurationError):
        DPCConfig(max_incremental_latency=0.0).validate()


def test_detection_timeout_must_be_below_bound():
    with pytest.raises(ConfigurationError):
        DPCConfig(max_incremental_latency=0.3, failure_detection_timeout=0.4).validate()


def test_invalid_safety_factor_and_rates():
    with pytest.raises(ConfigurationError):
        DPCConfig(delay_safety_factor=0.0).validate()
    with pytest.raises(ConfigurationError):
        DPCConfig(redo_rate=0.0).validate()
    with pytest.raises(ConfigurationError):
        DPCConfig(boundary_interval=0.0).validate()


def test_buffer_policy_validation():
    with pytest.raises(ConfigurationError):
        BufferPolicy(max_output_tuples=0).validate()
    BufferPolicy(max_output_tuples=10, max_input_tuples=10).validate()


def test_node_delay_uniform_and_full():
    config = DPCConfig(max_incremental_latency=8.0, queuing_allowance=1.5)
    assert config.node_delay(4) == pytest.approx(2.0)
    full = config.with_(delay_assignment=DelayAssignment.FULL)
    assert full.node_delay(4) == pytest.approx(6.5)
    with pytest.raises(ConfigurationError):
        config.node_delay(0)


def test_with_returns_modified_copy():
    config = DPCConfig()
    changed = config.with_(max_incremental_latency=5.0)
    assert changed.max_incremental_latency == 5.0
    assert config.max_incremental_latency == 3.0


def test_simulation_config_validation():
    with pytest.raises(ConfigurationError):
        SimulationConfig(batch_interval=0.0).validate()
    with pytest.raises(ConfigurationError):
        SimulationConfig(network_latency=-0.1).validate()
