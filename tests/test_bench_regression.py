"""Unit tests for the benchmark trend-tracking comparison (CI regression gate)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[1] / "benchmarks" / "check_bench_regression.py"
_spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
cbr = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(cbr)


def bench_json(path: Path, metrics: dict) -> Path:
    """Write a minimal pytest-benchmark JSON file with ``extra_info`` metrics."""
    payload = {
        "benchmarks": [
            {"name": test, "extra_info": extra} for test, extra in metrics.items()
        ]
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def test_tracked_direction_classification():
    assert cbr.tracked_direction("shard(4)_events") == 1
    assert cbr.tracked_direction("failure_8s_proc_new") == 1
    assert cbr.tracked_direction("shard(4)_stable_tuples") == -1
    # Wall-clock-derived metrics are informational, never trend-gated.
    assert cbr.tracked_direction("shard4_vs_chain_speedup") == 0
    assert cbr.tracked_direction("wall_seconds") == 0


def test_compare_flags_event_and_proc_new_regressions():
    baseline = {"t": {"x_events": 1000.0, "x_proc_new": 1.0, "x_stable_tuples": 500.0}}
    worse = {"t": {"x_events": 1101.0, "x_proc_new": 1.0, "x_stable_tuples": 500.0}}
    regressions, _ = cbr.compare(baseline, worse, tolerance=0.10)
    assert len(regressions) == 1 and "x_events" in regressions[0]
    slower = {"t": {"x_events": 1000.0, "x_proc_new": 1.2, "x_stable_tuples": 500.0}}
    regressions, _ = cbr.compare(baseline, slower, tolerance=0.10)
    assert len(regressions) == 1 and "x_proc_new" in regressions[0]


def test_compare_inverts_delivered_tuple_direction():
    baseline = {"t": {"x_stable_tuples": 500.0}}
    # Fewer delivered tuples is a regression ...
    regressions, _ = cbr.compare(baseline, {"t": {"x_stable_tuples": 400.0}})
    assert regressions
    # ... more is an improvement, as are fewer events.
    regressions, _ = cbr.compare(baseline, {"t": {"x_stable_tuples": 600.0}})
    assert not regressions
    baseline = {"t": {"x_events": 1000.0}}
    regressions, _ = cbr.compare(baseline, {"t": {"x_events": 500.0}})
    assert not regressions


def test_wall_clock_metrics_warn_but_never_fail():
    assert cbr.wall_direction("fragment_wall_ms") == 1
    assert cbr.wall_direction("shard(4)_tuples_per_sec") == -1
    assert cbr.wall_direction("x_events") == 0
    baseline = {"t": {"x_wall_ms": 100.0, "x_tuples_per_sec": 1000.0}}
    # A 3x wall-clock blowup: warned about, but never a failing regression.
    regressions, lines = cbr.compare(
        baseline, {"t": {"x_wall_ms": 300.0, "x_tuples_per_sec": 300.0}}
    )
    assert not regressions
    assert sum("WALL-CLOCK WARNING" in line for line in lines) == 2
    # Within the generous tolerance: plain trajectory lines.
    regressions, lines = cbr.compare(
        baseline, {"t": {"x_wall_ms": 120.0, "x_tuples_per_sec": 900.0}}
    )
    assert not regressions
    assert sum("[wall ok]" in line for line in lines) == 2
    # A benchmark with only wall metrics may be skipped without failing, and
    # a dropped wall metric is noted, not failed.
    regressions, lines = cbr.compare(baseline, {})
    assert not regressions and any("not measured" in line for line in lines)
    regressions, lines = cbr.compare(baseline, {"t": {"x_wall_ms": 100.0}})
    assert not regressions
    assert any("x_tuples_per_sec" in line and "not measured" in line for line in lines)


def test_compare_within_tolerance_passes():
    baseline = {"t": {"x_events": 1000.0}}
    regressions, lines = cbr.compare(baseline, {"t": {"x_events": 1099.0}}, tolerance=0.10)
    assert not regressions
    assert any("+9.9%" in line for line in lines)


def test_new_tests_and_metrics_never_fail_but_dropped_metrics_do():
    baseline = {"t": {"x_events": 1000.0}}
    # A brand-new benchmark is reported, not failed.
    regressions, lines = cbr.compare(baseline, {"t2": {"y_events": 5.0}, "t": {"x_events": 1000.0}})
    assert not regressions
    assert any("NEW" in line for line in lines)
    # Silently dropping a tracked baseline metric fails.
    regressions, _ = cbr.compare(baseline, {"t": {"other_events": 1.0}})
    assert regressions and "missing" in regressions[0]


def test_dropping_a_whole_tracked_benchmark_fails():
    """Not running a tracked benchmark must not silently disable the gate."""
    baseline = {"t": {"x_events": 1000.0}, "info_only": {"note_count": 3.0}}
    regressions, lines = cbr.compare(baseline, {})
    assert len(regressions) == 1 and regressions[0].startswith("t:")
    # A baseline test with no *tracked* metrics may be skipped freely.
    assert any("info_only: not measured" in line for line in lines)


def test_zero_baseline_growth_respects_metric_direction():
    # Growth from a zero baseline: regression for larger-is-worse metrics ...
    regressions, _ = cbr.compare({"t": {"x_events": 0.0}}, {"t": {"x_events": 5.0}})
    assert regressions
    # ... improvement for smaller-is-worse metrics.
    regressions, _ = cbr.compare(
        {"t": {"x_stable_tuples": 0.0}}, {"t": {"x_stable_tuples": 500.0}}
    )
    assert not regressions
    # Zero -> zero is no change either way.
    regressions, _ = cbr.compare({"t": {"x_events": 0.0}}, {"t": {"x_events": 0.0}})
    assert not regressions


def test_main_round_trip(tmp_path):
    results = bench_json(
        tmp_path / "run.json", {"t": {"x_events": 100, "x_stable_tuples": 50, "note": "x"}}
    )
    baseline = tmp_path / "baseline.json"
    assert cbr.main([str(results), "--baseline", str(baseline), "--write-baseline"]) == 0
    # Identical run: clean pass.
    assert cbr.main([str(results), "--baseline", str(baseline)]) == 0
    # Regressed run: exit 1.
    worse = bench_json(
        tmp_path / "worse.json", {"t": {"x_events": 200, "x_stable_tuples": 50}}
    )
    assert cbr.main([str(worse), "--baseline", str(baseline)]) == 1
    # Missing baseline: exit 2.
    assert cbr.main([str(results), "--baseline", str(tmp_path / "nope.json")]) == 2


def test_subset_compares_only_benchmarks_present(tmp_path):
    """``--subset``: a deliberate partial run (the live-smoke job) skips the
    missing-benchmark gate for benchmarks it never attempted."""
    baseline = tmp_path / "baseline.json"
    full = bench_json(
        tmp_path / "full.json", {"t": {"x_events": 100}, "live": {"x_wall_ms": 50.0}}
    )
    assert cbr.main([str(full), "--baseline", str(baseline), "--write-baseline"]) == 0
    partial = bench_json(tmp_path / "partial.json", {"live": {"x_wall_ms": 60.0}})
    # Without --subset the tracked benchmark 't' is flagged as missing.
    assert cbr.main([str(partial), "--baseline", str(baseline)]) == 1
    # With --subset only the benchmarks actually run are compared.
    assert cbr.main([str(partial), "--baseline", str(baseline), "--subset"]) == 0


def test_repo_baseline_matches_benchmark_metric_names():
    """The checked-in baseline must track the metrics the benchmarks emit."""
    baseline = json.loads(
        (_SCRIPT.parent / "BENCH_baseline.json").read_text(encoding="utf-8")
    )
    assert "test_shard_throughput_scaling" in baseline
    assert "test_diamond_branch_crash" in baseline
    tracked = [
        metric
        for metrics in baseline.values()
        for metric in metrics
        if cbr.tracked_direction(metric)
    ]
    assert tracked, "baseline contains no trend-tracked metrics"
    for expected in ("shard(4)_events", "shard(4)_proc_new", "chain(10)_events"):
        assert expected in baseline["test_shard_throughput_scaling"]
