"""Unit tests for the deployment-topology model (repro.topology)."""

import pytest

from repro.errors import ConfigurationError
from repro.topology import NodeSpec, Topology, as_topology, modulo_partition


# --------------------------------------------------------------------------- NodeSpec
def test_node_spec_validation():
    with pytest.raises(ConfigurationError):
        NodeSpec(name="", inputs=("s1",))
    with pytest.raises(ConfigurationError):
        NodeSpec(name="a", inputs=())
    with pytest.raises(ConfigurationError):
        NodeSpec(name="a", inputs=("s1", "s1"))
    with pytest.raises(ConfigurationError):
        NodeSpec(name="a", inputs=("a",))
    with pytest.raises(ConfigurationError):
        NodeSpec(name="a", inputs=("s1",), replicas=0)
    assert NodeSpec(name="a", inputs=("s1",)).output_stream == "a.out"


def test_modulo_partition_predicates():
    left = modulo_partition(0, 2, "seq", group=3)
    right = modulo_partition(1, 2, "seq", group=3)
    for seq in range(24):
        assert left({"seq": seq}) != right({"seq": seq})
        assert left({"seq": seq}) == ((seq // 3) % 2 == 0)
    with pytest.raises(ConfigurationError):
        modulo_partition(2, 2)
    with pytest.raises(ConfigurationError):
        modulo_partition(0, 2, group=0)


# --------------------------------------------------------------------------- graph validation
def test_topology_rejects_duplicates_and_cycles():
    with pytest.raises(ConfigurationError):
        Topology([NodeSpec("a", ("s1",)), NodeSpec("a", ("s2",))])
    with pytest.raises(ConfigurationError):
        Topology([NodeSpec("a", ("s1", "b")), NodeSpec("b", ("a",))])
    with pytest.raises(ConfigurationError):
        Topology([])


def test_topology_requires_sources():
    with pytest.raises(ConfigurationError):
        # "b" only consumes "a"; "a" only consumes "b" -> cycle, but also a
        # topology whose only node consumes another node is source-less.
        Topology([NodeSpec("a", ("a2",)), NodeSpec("a2", ("a",))])


# --------------------------------------------------------------------------- shapes
def test_chain_topology_shape():
    topo = Topology.chain(3, n_input_streams=2)
    assert topo.node_names == ["node1", "node2", "node3"]
    assert topo.source_streams == ["s1", "s2"]
    assert topo.depth() == 3
    assert topo.paths() == [("node1", "node2", "node3")]
    assert topo.is_entry(topo.node("node1"))
    assert not topo.is_entry(topo.node("node2"))
    assert [s.name for s in topo.sinks()] == ["node3"]
    assert topo.input_streams(topo.node("node2")) == ["node1.out"]


def test_diamond_topology_shape():
    topo = Topology.diamond()
    assert topo.node_names == ["ingest", "left", "right", "merge"]
    assert topo.source_streams == ["s1", "s2", "s3"]
    assert topo.depth() == 3
    assert sorted(topo.paths()) == [
        ("ingest", "left", "merge"),
        ("ingest", "right", "merge"),
    ]
    assert [s.name for s in topo.consumers_of("ingest")] == ["left", "right"]
    assert [s.name for s in topo.sinks()] == ["merge"]
    merge = topo.node("merge")
    assert topo.input_streams(merge) == ["left.out", "right.out"]
    # The branches partition the stream disjointly.
    left, right = topo.node("left"), topo.node("right")
    for seq in range(30):
        assert left.select({"seq": seq}) != right.select({"seq": seq})


def test_fanin_topology_shape():
    topo = Topology.fanin(branches=3, streams_per_branch=2)
    assert topo.node_names == ["branch1", "branch2", "branch3", "merge"]
    assert topo.source_streams == [f"s{i}" for i in range(1, 7)]
    assert topo.depth() == 2
    assert len(topo.paths()) == 3
    assert topo.input_streams(topo.node("merge")) == [
        "branch1.out",
        "branch2.out",
        "branch3.out",
    ]


# --------------------------------------------------------------------------- replicas / failure targets
def test_replicas_override_and_failure_validation():
    topo = Topology(
        [NodeSpec("a", ("s1",), replicas=3), NodeSpec("b", ("a",))], name="t"
    )
    assert topo.replicas_of("a", default=2) == 3
    assert topo.replicas_of("b", default=2) == 2
    topo.validate_failure_target("a", 2, default_replicas=2)
    with pytest.raises(ConfigurationError):
        topo.validate_failure_target("a", 3, default_replicas=2)
    with pytest.raises(ConfigurationError):
        topo.validate_failure_target("zzz", 0, default_replicas=2)


# --------------------------------------------------------------------------- normalization
def test_as_topology_normalization():
    assert as_topology(None, chain_depth=2).node_names == ["node1", "node2"]
    topo = Topology.diamond()
    assert as_topology(topo) is topo
    rebuilt = as_topology([NodeSpec("a", ("s1",))])
    assert rebuilt.node_names == ["a"]


def test_node_names_matching_source_convention_are_rejected():
    with pytest.raises(ConfigurationError):
        Topology([NodeSpec("s1", ("s2",))])
    with pytest.raises(ConfigurationError):
        Topology([NodeSpec("a", ("s1",)), NodeSpec("s2", ("a",))])


# --------------------------------------------------------------------------- sharded shape
def test_shard_topology_shape_and_assignment():
    topo = Topology.shard(4, n_input_streams=3)
    assert topo.node_names == ["split", "shard1", "shard2", "shard3", "shard4", "merge"]
    assert topo.source_streams == ["s1", "s2", "s3"]
    assert topo.depth() == 3
    assert len(topo.paths()) == 4
    assignment = topo.shard_assignment
    assert assignment is not None
    assert assignment.spec.shards == 4
    assert assignment.spec.group == 3  # tie-groups never straddle shards
    # The shard fragments carry the planner's predicates at the ingress and
    # own the deployment's stateful join; the split is a stateless router.
    assert topo.node("split").stateful is False
    for index in range(4):
        spec = topo.node(f"shard{index + 1}")
        assert spec.select_at == "ingress"
        assert spec.stateful is True
        assert spec.select({"seq": 0}) == (assignment.shard_of({"seq": 0}) == index)


def test_shard_topology_single_shard_is_valid():
    topo = Topology.shard(1)
    assert topo.node_names == ["split", "shard1", "merge"]
    # One shard owns the whole key space: its predicate is exhaustive.
    select = topo.node("shard1").select
    assert all(select({"seq": value}) for value in range(100))


def test_shard_topology_rejects_bad_parameters():
    with pytest.raises(ConfigurationError):
        Topology.shard(0)
    with pytest.raises(ConfigurationError):
        Topology.shard(2, n_input_streams=0)
    with pytest.raises(ConfigurationError):
        Topology.shard(8, buckets=4)  # fewer buckets than shards


def test_shard_topology_rejects_foreign_assignment():
    from repro.sharding import ShardPlanner, ShardSpec

    other = ShardPlanner(ShardSpec(shards=2, group=1)).plan()
    with pytest.raises(ConfigurationError):
        Topology.shard(2, n_input_streams=3, assignment=other)  # group mismatch


def test_shard_topology_accepts_rebalanced_assignment():
    from repro.sharding import ShardPlanner, ShardSpec

    spec = ShardSpec(shards=2, group=3)
    planner = ShardPlanner(spec)
    assignment = planner.plan()
    hot = {bucket: 100 for bucket in assignment.buckets_by_shard[0]}
    plan = planner.rebalance(assignment, hot)
    topo = Topology.shard(2, assignment=plan.after)
    assert topo.shard_assignment is plan.after


def test_ingress_select_requires_single_internal_input():
    select = modulo_partition(0, 2)
    with pytest.raises(ConfigurationError):
        NodeSpec(name="a", inputs=("s1",), select_at="ingress")  # no select
    with pytest.raises(ConfigurationError):
        NodeSpec(name="a", inputs=("s1",), select=select, select_at="sideways")
    # Ingress on an entry node is rejected at topology validation.
    with pytest.raises(ConfigurationError):
        Topology([NodeSpec(name="a", inputs=("s1",), select=select, select_at="ingress")])
    # Ingress on a multi-input (fan-in) node is rejected too.
    with pytest.raises(ConfigurationError):
        Topology(
            [
                NodeSpec(name="a", inputs=("s1",)),
                NodeSpec(name="b", inputs=("s2",)),
                NodeSpec(name="c", inputs=("a", "b"), select=select, select_at="ingress"),
            ]
        )
