"""Property tests: checkpoint-shipped recovery is equivalent to full replay.

The ``repro.statexfer`` layer must be a pure performance optimisation.  For
any seed, topology, and failure timing, the client's final *stable* ledger
must be identical whether the crashed replica rejoined from a partner's
shipped checkpoint plus a short replay suffix (``checkpoint_interval=2.0``)
or rebuilt through full subscription replay (``checkpoint_interval=None``).

Ledgers are compared as replica-independent rows -- ``(stable_seq, stime,
values)`` -- because tuple ids are assigned per replica and legitimately
differ between runs that fail over to different replicas.

A dedicated deterministic case crashes the replica *while it is emitting a
correction burst* (an overlapping disconnect has just healed): the paper's
single-pass reconciliation would leave the client holding a partial
correction, and this scenario used to be a known deviation.  Recovery in
either mode must still converge every client to a consistent ledger.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments import stable_ledger_rows
from repro.runtime import ScenarioSpec

#: End-to-end simulations are expensive; a handful of drawn examples covers
#: the (seed, depth, rate, failure timing) grid.
SIMULATED = settings(
    max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _crash_run(
    checkpoint_interval,
    *,
    seed,
    chain_depth,
    aggregate_rate,
    crash_start,
    crash_duration,
    node_level,
):
    return (
        ScenarioSpec.chain(
            chain_depth,
            name="property-recovery",
            aggregate_rate=aggregate_rate,
            seed=seed,
            warmup=5.0,
            settle=20.0 + crash_duration * 0.5,
            checkpoint_interval=checkpoint_interval,
        )
        .with_failure(
            "crash",
            start=crash_start,
            duration=crash_duration,
            node_level=min(node_level, chain_depth - 1),
            node_replica=0,
        )
        .run()
    )


@SIMULATED
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    chain_depth=st.sampled_from([1, 2]),
    aggregate_rate=st.sampled_from([60.0, 90.0]),
    crash_start=st.sampled_from([5.0, 6.3, 8.0]),
    crash_duration=st.sampled_from([4.0, 7.0, 10.0]),
    node_level=st.sampled_from([0, 1]),
)
def test_checkpoint_recovery_matches_full_replay(
    seed, chain_depth, aggregate_rate, crash_start, crash_duration, node_level
):
    kwargs = dict(
        seed=seed,
        chain_depth=chain_depth,
        aggregate_rate=aggregate_rate,
        crash_start=crash_start,
        crash_duration=crash_duration,
        node_level=node_level,
    )
    checkpointed = _crash_run(2.0, **kwargs)
    replay = _crash_run(None, **kwargs)
    assert checkpointed.eventually_consistent()
    assert replay.eventually_consistent()
    rows = stable_ledger_rows(checkpointed.client)
    assert rows, "scenario produced no stable output"
    assert rows == stable_ledger_rows(replay.client)


def _mid_correction_run(checkpoint_interval, seed=1):
    """Disconnect stream 0, then crash the client's replica mid-correction.

    The disconnect (5 s -> 13 s) drives the deployment tentative; healing
    triggers reconciliation, and the crash at 13.2 s lands while the
    correction burst toward the client is in flight.  The crash outlasts
    nothing -- the partner keeps serving -- so the client must switch, drop
    the partial correction, and still end with a consistent ledger.
    """
    return (
        ScenarioSpec.chain(
            1,
            name="mid-correction-crash",
            aggregate_rate=60.0,
            seed=seed,
            warmup=5.0,
            settle=35.0,
            checkpoint_interval=checkpoint_interval,
        )
        .with_failure("disconnect", start=5.0, duration=8.0, stream_index=0)
        .with_failure("crash", start=13.2, duration=5.0, node_level=0, node_replica=0)
        .run()
    )


def test_mid_correction_crash_converges_in_both_modes():
    for interval in (2.0, None):
        runtime = _mid_correction_run(interval)
        label = f"checkpoint_interval={interval}"
        # The disconnect must actually have produced a correction to lose:
        # the client saw tentative data and at least one undo.
        client = runtime.client
        assert client.metrics.consistency.total_tentative > 0, label
        assert client.metrics.consistency.total_undos >= 1, label
        assert runtime.eventually_consistent(), label
