"""Property-based tests (hypothesis) for the key-hash sharding layer.

Three layers of invariants:

* the *predicates* of any shard assignment are disjoint and exhaustive over
  any input stream (every tuple satisfies exactly one of them);
* the *planner* produces valid partitions, and rebalancing preserves the
  partition property, never empties a shard, and never worsens imbalance;
* *end to end*, a sharded deployment's merged stable ledger is gap-free,
  duplicate-free, and ordered for random seeds, shard counts, and key
  distributions.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime import ScenarioSpec, client_is_eventually_consistent
from repro.sharding import (
    ShardPlanner,
    ShardSpec,
    bucket_loads_from_keys,
    stable_key_hash,
)

COMMON = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])

#: End-to-end simulations are expensive; a handful of drawn examples is
#: enough to cover the (seed, shard count, key distribution) grid.
SIMULATED = settings(
    max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

shard_specs = st.builds(
    ShardSpec,
    shards=st.integers(min_value=1, max_value=8),
    key=st.just("seq"),
    buckets=st.integers(min_value=8, max_value=64),
    group=st.integers(min_value=1, max_value=4),
)

#: Key-attribute values as they appear in tuples (ints; negative included).
key_values = st.integers(min_value=-10_000, max_value=10_000_000)


# --------------------------------------------------------------------------- predicates
@COMMON
@given(shard_specs, st.lists(key_values, min_size=1, max_size=50))
def test_predicates_are_disjoint_and_exhaustive(spec, values):
    assignment = ShardPlanner(spec).plan()
    predicates = assignment.predicates()
    for value in values:
        tuple_values = {"seq": value, "payload": value * 2}
        matches = [i for i, pred in enumerate(predicates) if pred(tuple_values)]
        assert len(matches) == 1, f"value {value} matched shards {matches}"
        assert matches[0] == assignment.shard_of(tuple_values)


@COMMON
@given(shard_specs, key_values)
def test_tie_groups_never_straddle_shards(spec, base):
    """All ``group`` consecutive key values land on the same shard."""
    assignment = ShardPlanner(spec).plan()
    start = (base // spec.group) * spec.group
    shards = {assignment.shard_of({"seq": start + i}) for i in range(spec.group)}
    assert len(shards) == 1


@COMMON
@given(key_values)
def test_stable_key_hash_is_stable_and_type_tagged(value):
    assert stable_key_hash(value) == stable_key_hash(value)
    assert 0 <= stable_key_hash(value) < 2**32
    # int vs string spellings of the same digits hash independently.
    assert isinstance(stable_key_hash(str(value)), int)


# --------------------------------------------------------------------------- planner
@COMMON
@given(shard_specs)
def test_initial_plan_partitions_every_bucket(spec):
    assignment = ShardPlanner(spec).plan()
    owned = [b for buckets in assignment.buckets_by_shard for b in buckets]
    assert sorted(owned) == list(range(spec.buckets))
    assert all(buckets for buckets in assignment.buckets_by_shard)


@COMMON
@given(
    shard_specs,
    st.dictionaries(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=10_000),
        max_size=64,
    ),
)
def test_rebalance_preserves_partition_and_reduces_imbalance(spec, raw_loads):
    planner = ShardPlanner(spec)
    assignment = planner.plan()
    loads = {b: load for b, load in raw_loads.items() if b < spec.buckets}
    plan = planner.rebalance(assignment, loads)
    # Moves transform `before` into `after` while preserving the partition
    # property (ShardAssignment validates it on construction) ...
    owned = [b for buckets in plan.after.buckets_by_shard for b in buckets]
    assert sorted(owned) == list(range(spec.buckets))
    # ... never empty a shard ...
    assert all(buckets for buckets in plan.after.buckets_by_shard)
    # ... and never worsen the peak-to-mean imbalance.
    assert plan.imbalance_after <= plan.imbalance_before + 1e-9
    # Each move is a real migration recorded source -> target.
    stepped = plan.before
    for move in plan.moves:
        assert stepped.shard_of_bucket(move.bucket) == move.source
        stepped = stepped.move(move.bucket, move.target)
    assert stepped.buckets_by_shard == plan.after.buckets_by_shard


@COMMON
@given(shard_specs, st.integers(min_value=0, max_value=1_000_000), st.integers(2, 400))
def test_uniform_keys_need_no_rebalance(spec, start, count):
    """A near-uniform key range keeps the planner quiet (tolerance 25%)."""
    if spec.shards == 1:
        return
    planner = ShardPlanner(spec)
    assignment = planner.plan()
    keys = range(start, start + max(count, 40 * spec.shards))
    loads = bucket_loads_from_keys(spec, keys)
    plan = planner.rebalance(assignment, loads, tolerance=0.5)
    assert plan.imbalance_after <= max(plan.imbalance_before, 1.5)


def test_skewed_loads_produce_moves():
    """All load on one shard's buckets => the planner migrates buckets."""
    spec = ShardSpec(shards=4, buckets=16)
    planner = ShardPlanner(spec)
    assignment = planner.plan()
    hot = {bucket: 1000 for bucket in assignment.buckets_by_shard[0]}
    plan = planner.rebalance(assignment, hot, tolerance=0.10)
    assert plan.moves, "fully skewed loads must trigger migrations"
    assert plan.imbalance_after < plan.imbalance_before


def test_rebalance_never_emits_pointless_moves():
    """An unmovable hot bucket must not trigger zero-load bucket shuffling.

    With one bucket carrying all the load, no single-bucket move can reduce
    the peak, and migrating empty buckets would be pure churn: every
    ShardMove stands for a real bucket/state migration.
    """
    spec = ShardSpec(shards=2, buckets=8)
    planner = ShardPlanner(spec)
    assignment = planner.plan()
    plan = planner.rebalance(assignment, {0: 100.0}, tolerance=0.10)
    assert plan.is_noop
    assert plan.imbalance_after == plan.imbalance_before


@COMMON
@given(
    shard_specs,
    st.dictionaries(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=10_000),
        max_size=64,
    ),
)
def test_rebalance_moves_always_carry_load(spec, raw_loads):
    planner = ShardPlanner(spec)
    loads = {b: load for b, load in raw_loads.items() if b < spec.buckets}
    plan = planner.rebalance(planner.plan(), loads)
    assert all(loads.get(move.bucket, 0) > 0 for move in plan.moves)


# --------------------------------------------------------------------------- end to end
@SIMULATED
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    shards=st.sampled_from([1, 2, 3, 4]),
    n_input_streams=st.sampled_from([1, 2, 3]),
    aggregate_rate=st.sampled_from([60.0, 90.0, 150.0]),
)
def test_merged_ledger_is_gap_free_duplicate_free_and_ordered(
    seed, shards, n_input_streams, aggregate_rate
):
    runtime = ScenarioSpec.sharded(
        name="property-shard",
        shards=shards,
        n_input_streams=n_input_streams,
        aggregate_rate=aggregate_rate,
        replicas_per_node=1,
        warmup=6.0,
        settle=0.0,
        seed=seed,
    ).run()
    client = runtime.client
    assert client.summary()["total_stable"] > 0
    # client_is_eventually_consistent checks exactly the three ledger
    # properties: ordered, duplicate-free, gap-free.
    assert client_is_eventually_consistent(client)
    sequence = client.stable_sequence
    assert sequence == sorted(sequence)
    assert len(sequence) == len(set(sequence))
    assert set(sequence) == set(range(min(sequence), max(sequence) + 1))
