"""Property tests: pane-based aggregation is byte-identical to naive recompute.

The pane path and the forced-naive reference path are fed the same random
workloads -- random window specs (including one that admits no pane
decomposition), random group keys, tentative mixes, and interleaved
watermarks -- and must produce byte-identical output streams.  Values are
integers so that every arithmetic fold is exact and "identical" really means
identical, not approximately equal.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.spe.operators import Aggregate
from repro.spe.tuples import StreamTuple
from repro.spe.windows import WindowSpec

COMMON = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])

#: (size, slide) pool: tumbling, aligned sliding, coprime sliding, fractional
#: panes, the bench shapes, and one undecomposable pair (pane is None, both
#: operators run whole-window cells -- the fallback must stay equivalent too).
WINDOW_SPECS = [
    (5.0, 5.0),
    (10.0, 5.0),
    (7.0, 3.0),
    (1.0, 0.25),
    (60.0, 10.0),
    (0.3, 0.1),
]

AGGREGATES = [
    ("n", "count", None),
    ("total", "sum", "v"),
    ("mean", "avg", "v"),
    ("lo", "min", "v"),
    ("hi", "max", "v"),
]


@st.composite
def workloads(draw):
    size, slide = draw(st.sampled_from(WINDOW_SPECS))
    grouped = draw(st.booleans())
    emit_empty = draw(st.booleans())
    n = draw(st.integers(min_value=0, max_value=50))
    # Stimes on a 0.05 grid: inexact binary floats on purpose -- both paths
    # must agree on membership at rounded pane/window edges.
    ticks = sorted(draw(st.lists(st.integers(min_value=0, max_value=600), min_size=n, max_size=n)))
    items = []
    for i, tick in enumerate(ticks):
        values = {"v": draw(st.integers(min_value=-100, max_value=100))}
        if grouped:
            values["g"] = draw(st.sampled_from(["a", "b", None]))
        factory = StreamTuple.tentative if draw(st.booleans()) else StreamTuple.insertion
        items.append(factory(i, tick * 0.05, values))
    # Watermarks: a few mid-stream cuts plus one closing everything.
    cuts = (
        sorted(draw(st.sets(st.integers(min_value=1, max_value=len(items)), max_size=3)))
        if items
        else []
    )
    boundaries = {cut: (ticks[cut - 1] * 0.05) for cut in cuts}
    return size, slide, grouped, emit_empty, items, boundaries


def run(size, slide, grouped, emit_empty, items, boundaries, incremental, batched=True):
    op = Aggregate(
        "a",
        WindowSpec.sliding(size=size, slide=slide),
        aggregates=AGGREGATES,
        group_by=("g",) if grouped else (),
        emit_empty_windows=emit_empty,
        incremental=incremental,
    )
    out = []
    batch = []
    for i, item in enumerate(items):
        batch.append(item)
        if i + 1 in boundaries:
            batch.append(StreamTuple.boundary(10_000 + i, boundaries[i + 1]))
    batch.append(StreamTuple.boundary(99_999, 1000.0))
    if batched:
        out = op.process_batch(0, batch)
    else:
        for item in batch:
            out += op.process(0, item)
    return [
        (t.stime, t.tuple_type, tuple(sorted(t.values.items(), key=repr)))
        for t in out
        if t.is_data
    ], op


@COMMON
@given(workloads())
def test_pane_path_matches_naive_recompute(case):
    size, slide, grouped, emit_empty, items, boundaries = case
    pane_out, pane_op = run(size, slide, grouped, emit_empty, items, boundaries, None)
    naive_out, naive_op = run(size, slide, grouped, emit_empty, items, boundaries, False)
    assert pane_out == naive_out
    assert not naive_op.pane_mode


@COMMON
@given(workloads())
def test_batched_and_tuple_at_a_time_agree(case):
    size, slide, grouped, emit_empty, items, boundaries = case
    batched, _ = run(size, slide, grouped, emit_empty, items, boundaries, None, batched=True)
    single, _ = run(size, slide, grouped, emit_empty, items, boundaries, None, batched=False)
    assert batched == single


@COMMON
@given(workloads(), st.integers(min_value=0, max_value=50))
def test_checkpoint_restore_mid_stream_is_byte_identical(case, cut_seed):
    size, slide, grouped, emit_empty, items, boundaries = case
    expected, _ = run(size, slide, grouped, emit_empty, items, boundaries, None)

    def make():
        return Aggregate(
            "a",
            WindowSpec.sliding(size=size, slide=slide),
            aggregates=AGGREGATES,
            group_by=("g",) if grouped else (),
            emit_empty_windows=emit_empty,
            incremental=None,
        )

    batch = []
    for i, item in enumerate(items):
        batch.append(item)
        if i + 1 in boundaries:
            batch.append(StreamTuple.boundary(10_000 + i, boundaries[i + 1]))
    batch.append(StreamTuple.boundary(99_999, 1000.0))
    cut = cut_seed % (len(batch) + 1)

    op = make()
    out = op.process_batch(0, batch[:cut])
    snapshot = op.checkpoint()
    replacement = make()
    replacement.restore(snapshot)
    out += replacement.process_batch(0, batch[cut:])
    resumed = [
        (t.stime, t.tuple_type, tuple(sorted(t.values.items(), key=repr)))
        for t in out
        if t.is_data
    ]
    assert resumed == expected
