"""Property-based tests for delay planning, buffer sizing, and result tables."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.comparison import check_flat, check_monotonic
from repro.analysis.tables import pivot_results, render_csv, render_markdown
from repro.config import DelayAssignment
from repro.core.buffer_sizing import compute_buffer_sizing, supported_failure_duration
from repro.core.delay_planner import AccumulatedDelayTracker, DelayPlanner
from repro.experiments.harness import ExperimentResult
from repro.workloads.queries import traffic_rollup_diagram

COMMON = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# --------------------------------------------------------------------------- delay planner
@COMMON
@given(
    st.integers(min_value=1, max_value=8),
    st.floats(min_value=1.0, max_value=60.0),
)
def test_uniform_plan_never_exceeds_budget_along_a_chain(depth, budget):
    planner = DelayPlanner.for_chain(depth, total_budget=budget, queuing_allowance=budget * 0.1)
    plan = planner.plan(DelayAssignment.UNIFORM)
    assert sum(plan.per_node.values()) <= budget + 1e-9
    for diagnostic in planner.diagnose(plan.per_node):
        assert diagnostic.within_budget


@COMMON
@given(
    st.integers(min_value=2, max_value=8),
    st.floats(min_value=2.0, max_value=60.0),
    st.floats(min_value=0.0, max_value=0.9),
)
def test_full_plan_masks_at_least_as_long_as_uniform(depth, budget, allowance_fraction):
    # The comparison is only meaningful for chains of two or more nodes: on a
    # single node the uniform split trivially assigns the whole budget, while
    # the FULL strategy always reserves its queuing allowance.
    allowance = min(budget * allowance_fraction * 0.5, budget / depth)
    planner = DelayPlanner.for_chain(depth, total_budget=budget, queuing_allowance=allowance)
    uniform = planner.plan(DelayAssignment.UNIFORM)
    full = planner.plan(DelayAssignment.FULL)
    assert full.masked_failure >= uniform.masked_failure - 1e-9
    # Every node gets the same budget under both static strategies.
    assert len(set(round(v, 9) for v in uniform.per_node.values())) == 1
    assert len(set(round(v, 9) for v in full.per_node.values())) == 1


@COMMON
@given(st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=10))
def test_accumulated_delay_never_exceeds_budget(spends):
    budget = 8.0
    tracker = AccumulatedDelayTracker(total_budget=budget)
    for spend in spends:
        accumulated = tracker.spend("s", spend)
        assert 0.0 <= accumulated <= budget + 1e-9
        assert tracker.remaining_budget("s") >= 0.0
    assert tracker.accumulated("s") <= budget + 1e-9


# --------------------------------------------------------------------------- buffer sizing
@COMMON
@given(
    st.floats(min_value=1.0, max_value=600.0),
    st.floats(min_value=1.0, max_value=1000.0),
    st.floats(min_value=0.5, max_value=30.0),
)
def test_buffer_sizing_scales_with_window_and_rate(correction_window, rate, agg_window):
    diagram = traffic_rollup_diagram("n", ["s1"], "out", window=agg_window)
    small = compute_buffer_sizing(
        diagram, correction_window=correction_window, input_rates={"s1": rate}
    )
    larger_window = compute_buffer_sizing(
        diagram, correction_window=correction_window * 2, input_rates={"s1": rate}
    )
    faster = compute_buffer_sizing(
        diagram, correction_window=correction_window, input_rates={"s1": rate * 2}
    )
    assert small.convergent_capable
    assert larger_window.input_tuples["s1"] >= small.input_tuples["s1"]
    assert faster.input_tuples["s1"] >= small.input_tuples["s1"]
    # The sized buffer always covers at least the requested correction window.
    assert small.input_span >= correction_window


@COMMON
@given(
    st.integers(min_value=0, max_value=10_000_000),
    st.floats(min_value=0.1, max_value=10_000.0),
    st.floats(min_value=0.0, max_value=100.0),
)
def test_supported_failure_duration_is_inverse_of_sizing(buffer_tuples, rate, horizon):
    duration = supported_failure_duration(buffer_tuples, rate, state_horizon=horizon)
    assert duration >= 0.0
    # Feeding the duration back through the sizing formula never exceeds the buffer.
    assert duration * rate <= buffer_tuples + 1e-6


# --------------------------------------------------------------------------- tables & checks
def _result(label: str, depth: int, value: float) -> ExperimentResult:
    return ExperimentResult(
        label=label,
        failure_duration=10.0,
        chain_depth=depth,
        policy=label,
        proc_new=value,
        max_gap=value,
        n_tentative=int(value * 10),
        n_stable=100,
        n_undos=0,
        n_rec_done=1,
        eventually_consistent=True,
    )


@COMMON
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),
            st.integers(min_value=1, max_value=4),
            st.floats(min_value=0.0, max_value=50.0),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_pivot_contains_every_result(cases):
    results = [_result(label, depth, value) for label, depth, value in cases]
    table = pivot_results(
        results,
        title="t",
        row=lambda r: r.label,
        column=lambda r: r.chain_depth,
        value=lambda r: r.proc_new,
    )
    # The last result for each (label, depth) pair wins; every pair is present.
    expected = {}
    for label, depth, value in cases:
        expected[(label, depth)] = value
    for (label, depth), value in expected.items():
        assert table.get(label, depth) == value
    # Both renderers cover every row and column label.
    markdown = render_markdown(table)
    csv_text = render_csv(table)
    for label, _depth, _value in cases:
        assert label in markdown
        assert label in csv_text


@COMMON
@given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=10))
def test_check_flat_accepts_constant_series(values):
    constant = [values[0]] * len(values)
    assert check_flat("constant", constant).passed


@COMMON
@given(st.lists(st.floats(min_value=-100.0, max_value=100.0), min_size=2, max_size=10))
def test_check_monotonic_accepts_sorted_series(values):
    assert check_monotonic("sorted", sorted(values)).passed
    assert check_monotonic("reverse sorted", sorted(values, reverse=True), increasing=False).passed
