"""Property-based tests for output-stream replay and the consistency ledger."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.data_path import OutputStreamManager
from repro.core.protocol import SubscribeRequest
from repro.metrics.consistency import ConsistencyTracker
from repro.spe.tuples import StreamTuple

COMMON = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# --------------------------------------------------------------------------- output replay
@COMMON
@given(
    st.integers(min_value=0, max_value=40),
    st.integers(min_value=-1, max_value=45),
)
def test_subscribe_replays_exact_stable_suffix(n_stable, last_seen):
    manager = OutputStreamManager("out", owner="node1")
    for i in range(n_stable):
        manager.append(StreamTuple.insertion(i, float(i), {"seq": i}))
    request = SubscribeRequest(stream="out", subscriber="down", last_stable_seq=last_seen)
    if last_seen >= n_stable:
        # Subscriber claims to be ahead of everything buffered: nothing to replay.
        replay = manager.subscribe(request)
        assert [t for t in replay if t.is_data] == []
        return
    replay = manager.subscribe(request)
    stable = [t for t in replay if t.is_stable]
    assert [t.stable_seq for t in stable] == list(range(last_seen + 1, n_stable))


@COMMON
@given(
    st.lists(st.sampled_from(["stable", "tentative"]), min_size=0, max_size=30),
)
def test_subscriber_without_tentative_interest_never_receives_tentative_tail(kinds):
    manager = OutputStreamManager("out", owner="node1")
    for i, kind in enumerate(kinds):
        if kind == "stable":
            manager.append(StreamTuple.insertion(i, float(i), {"seq": i}))
        else:
            manager.append(StreamTuple.tentative(i, float(i), {"seq": i}))
    replay = manager.subscribe(
        SubscribeRequest(stream="out", subscriber="down", last_stable_seq=-1, replay_tentative=False)
    )
    data = [t for t in replay if t.is_data]
    # Everything after the last stable tuple is trimmed, so the replay never
    # *ends* with tentative data the subscriber did not ask for; when nothing
    # stable was ever produced, no data is replayed at all.
    if data:
        assert data[-1].is_stable
    if not any(kind == "stable" for kind in kinds):
        assert data == []


@COMMON
@given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=10))
def test_truncate_delivered_never_drops_undelivered_tuples(n_tuples, batches):
    manager = OutputStreamManager("out", owner="node1")
    manager.subscribe(SubscribeRequest(stream="out", subscriber="down", last_stable_seq=-1))
    produced = 0
    for batch in range(batches):
        for _ in range(n_tuples):
            manager.append(StreamTuple.insertion(produced, float(produced), {"seq": produced}))
            produced += 1
        pending_before = len(manager.pending_for("down"))
        manager.truncate_delivered()
        # Truncation only removes what the subscriber already received.
        assert len(manager.pending_for("down")) == pending_before
        manager.mark_delivered("down")
        manager.truncate_delivered()
        assert manager.pending_for("down") == []
    assert manager.stable_produced == produced


# --------------------------------------------------------------------------- consistency ledger
@COMMON
@given(
    st.lists(st.sampled_from(["stable", "tentative", "undo"]), min_size=0, max_size=40),
)
def test_ledger_undo_always_removes_the_tentative_suffix(events):
    tracker = ConsistencyTracker()
    stable_seen = 0
    for tuple_id, event in enumerate(events):
        if event == "stable":
            tracker.observe(StreamTuple.insertion(tuple_id, float(tuple_id), {"v": tuple_id}))
            stable_seen += 1
        elif event == "tentative":
            tracker.observe(StreamTuple.tentative(tuple_id, float(tuple_id), {"v": tuple_id}))
        else:
            tracker.observe(StreamTuple.undo(tuple_id, float(tuple_id), undo_from_id=-1))
            # Immediately after an undo the tentative suffix is gone and the
            # per-stream inconsistency counter (Definition 2) resets to zero.
            assert not tracker.ledger or not tracker.ledger[-1].is_tentative
            assert tracker.n_tentative == 0
    # Stable tuples are never removed by undos: the ledger keeps all of them.
    assert sum(1 for t in tracker.ledger if t.is_stable) == tracker.total_stable == stable_seen
    assert tracker.total_tentative >= sum(1 for t in tracker.ledger if t.is_tentative)
