"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.states import NodeState
from repro.core.switching import choose_upstream
from repro.spe.operators import SUnion
from repro.spe.streams import StreamLog, apply_undo
from repro.spe.tuples import StreamTuple
from repro.spe.windows import WindowSpec

COMMON = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# --------------------------------------------------------------------------- SUnion determinism
@st.composite
def interleavings(draw):
    """Two per-port tuple sequences plus a shuffled interleaving of them."""
    n_ports = draw(st.integers(min_value=1, max_value=3))
    per_port = []
    for port in range(n_ports):
        stimes = draw(st.lists(st.floats(min_value=0.0, max_value=9.9), min_size=0, max_size=15))
        stimes.sort()
        per_port.append(
            [StreamTuple.insertion(i, stime, {"port": port, "i": i}) for i, stime in enumerate(stimes)]
        )
    order = []
    for port, items in enumerate(per_port):
        order.extend((port, item) for item in items)
    order = draw(st.permutations(order))
    # Arrival order within one port must stay sorted by id (links are FIFO).
    seen = {p: -1 for p in range(n_ports)}
    filtered = []
    for port, item in order:
        if item.tuple_id > seen[port]:
            filtered.append((port, item))
            seen[port] = item.tuple_id
    remaining = [
        (port, item)
        for port, items in enumerate(per_port)
        for item in items
        if all(item is not existing for _p, existing in filtered)
    ]
    return n_ports, filtered + remaining


@COMMON
@given(interleavings())
def test_sunion_output_independent_of_arrival_interleaving(case):
    n_ports, arrivals = case

    def run(sequence):
        op = SUnion("su", arity=n_ports, bucket_size=1.0)
        for port, item in sequence:
            op.process(port, item)
        out = []
        for port in range(n_ports):
            out += op.process(port, StreamTuple.boundary(10_000 + port, 100.0))
        return [(t.stime, t.values["port"], t.values["i"]) for t in out if t.is_data]

    # Group arrivals per port and replay them port-by-port: the serialized
    # output must be identical to the interleaved arrival order's output.
    by_port = [[(p, i) for p, i in arrivals if p == port] for port in range(n_ports)]
    sequential = [entry for port_entries in by_port for entry in port_entries]
    assert run(arrivals) == run(sequential)


@COMMON
@given(st.lists(st.floats(min_value=0.0, max_value=99.0), max_size=30), st.floats(min_value=0.1, max_value=5.0))
def test_sunion_never_emits_before_watermark(stimes, bucket_size):
    op = SUnion("su", arity=1, bucket_size=bucket_size)
    for i, stime in enumerate(sorted(stimes)):
        assert op.process(0, StreamTuple.insertion(i, stime, {})) == []
    watermark = 50.0
    out = [t for t in op.process(0, StreamTuple.boundary(999, watermark)) if t.is_data]
    for item in out:
        assert item.stime < watermark
    # Everything not emitted belongs to buckets the watermark has not passed.
    assert op.pending_tuples == sum(1 for s in stimes if (int(s / bucket_size) + 1) * bucket_size > watermark)


# --------------------------------------------------------------------------- windows
@COMMON
@given(
    st.floats(min_value=0.5, max_value=50.0),
    st.floats(min_value=0.5, max_value=50.0),
    st.floats(min_value=-100.0, max_value=100.0),
)
def test_window_indices_always_contain_stime(size, slide, stime):
    spec = WindowSpec(size=size, slide=min(slide, size), origin=0.0)
    indices = list(spec.window_indices(stime))
    # Allow for floating-point rounding right at window edges.
    epsilon = 1e-9 * max(1.0, abs(stime))
    assert indices, "every stime belongs to at least one window"
    for index in indices:
        assert spec.window_start(index) <= stime + epsilon
        assert stime < spec.window_end(index) + epsilon


@COMMON
@given(
    st.floats(min_value=0.5, max_value=20.0),
    st.lists(st.floats(min_value=0.0, max_value=200.0), min_size=2, max_size=8),
)
def test_windows_closed_by_partition_is_disjoint_and_monotone(size, watermarks):
    spec = WindowSpec.tumbling(size)
    watermarks = sorted(watermarks)
    closed: list[int] = []
    previous = float("-inf")
    for watermark in watermarks:
        newly = list(spec.windows_closed_by(previous, watermark))
        assert not (set(newly) & set(closed)), "windows must close exactly once"
        closed.extend(newly)
        previous = watermark
    for index in closed:
        assert spec.window_end(index) <= watermarks[-1] + 1e-9


# --------------------------------------------------------------------------- stream log
@COMMON
@given(st.lists(st.integers(min_value=0, max_value=200), min_size=0, max_size=40, unique=True), st.integers(min_value=-1, max_value=220))
def test_streamlog_replay_after_returns_exact_suffix(ids, after):
    log = StreamLog("s")
    for tuple_id in sorted(ids):
        log.append(StreamTuple.insertion(tuple_id, tuple_id * 0.1, {"id": tuple_id}))
    replay = log.replay_after(after)
    assert [t.tuple_id for t in replay] == [i for i in sorted(ids) if i > after]


@COMMON
@given(
    st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=30, unique=True),
    st.integers(min_value=-1, max_value=100),
)
def test_apply_undo_keeps_exact_prefix(ids, undo_from):
    items = [StreamTuple.insertion(i, i * 0.1, {}) for i in sorted(ids)]
    undo = StreamTuple.undo(999, 0.0, undo_from_id=undo_from)
    kept = apply_undo(items, undo)
    assert [t.tuple_id for t in kept] == [i for i in sorted(ids) if i <= undo_from]


# --------------------------------------------------------------------------- switching rules
@COMMON
@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]),
        st.sampled_from(list(NodeState)),
        min_size=1,
        max_size=4,
    ),
    st.sampled_from([None, "a", "b", "c", "d"]),
)
def test_switching_never_picks_a_worse_replica(states, current):
    from repro.core.states import STATE_PREFERENCE

    decision = choose_upstream(current, states)
    if decision.switch:
        assert decision.target in states
        current_rank = STATE_PREFERENCE[states.get(current, NodeState.FAILURE)] if current else 99
        assert STATE_PREFERENCE[states[decision.target]] <= current_rank
    else:
        # Staying is only allowed when the current replica is STABLE, or when
        # no strictly better replica exists.
        if current in states and states[current] is not NodeState.STABLE:
            best = min(STATE_PREFERENCE[s] for s in states.values())
            current_rank = STATE_PREFERENCE[states[current]]
            if best < current_rank:
                # The only legal "stay" despite a better replica is when the
                # current one is already providing (tentative) data.
                assert states[current] is NodeState.UP_FAILURE or best >= STATE_PREFERENCE[NodeState.UP_FAILURE]
