"""Unit tests for the simulated network."""

import pytest

from repro.errors import NetworkError
from repro.sim.event_loop import Simulator
from repro.sim.network import Network


def setup():
    sim = Simulator()
    net = Network(sim, default_latency=0.01)
    inbox = {"a": [], "b": []}
    net.register("a", lambda msg, now: inbox["a"].append((msg, now)))
    net.register("b", lambda msg, now: inbox["b"].append((msg, now)))
    return sim, net, inbox


def test_message_delivery_with_latency():
    sim, net, inbox = setup()
    net.send("a", "b", "data", {"x": 1})
    sim.run_until(1.0)
    assert len(inbox["b"]) == 1
    message, delivered_at = inbox["b"][0]
    assert message.payload == {"x": 1}
    assert delivered_at == pytest.approx(0.01)


def test_unknown_receiver_raises():
    _sim, net, _ = setup()
    with pytest.raises(NetworkError):
        net.send("a", "ghost", "data", {})


def test_duplicate_registration_rejected():
    _sim, net, _ = setup()
    with pytest.raises(NetworkError):
        net.register("a", lambda m, t: None)


def test_in_order_delivery_per_link():
    sim, net, inbox = setup()
    for i in range(5):
        net.send("a", "b", "data", i)
    sim.run_until(1.0)
    assert [m.payload for m, _ in inbox["b"]] == [0, 1, 2, 3, 4]


def test_in_order_delivery_survives_latency_changes():
    sim, net, inbox = setup()
    net.set_link_latency("a", "b", 0.5)
    net.send("a", "b", "data", "slow")
    net.set_link_latency("a", "b", 0.01)
    net.send("a", "b", "data", "fast")
    sim.run_until(1.0)
    assert [m.payload for m, _ in inbox["b"]] == ["slow", "fast"]


def test_partition_drops_messages_both_ways():
    sim, net, inbox = setup()
    net.partition("a", "b")
    assert not net.send("a", "b", "data", 1)
    assert not net.send("b", "a", "data", 2)
    sim.run_until(1.0)
    assert inbox["a"] == [] and inbox["b"] == []
    net.heal_partition("a", "b")
    assert net.send("a", "b", "data", 3)
    sim.run_until(2.0)
    assert len(inbox["b"]) == 1


def test_crashed_endpoint_neither_sends_nor_receives():
    sim, net, inbox = setup()
    net.crash("b")
    assert not net.send("a", "b", "data", 1)
    assert not net.send("b", "a", "data", 2)
    net.recover("b")
    assert net.send("a", "b", "data", 3)
    sim.run_until(1.0)
    assert len(inbox["b"]) == 1


def test_in_flight_message_survives_partition_onset():
    """A message credited at send time is delivered even when a partition
    appears while it is in flight: the sender's cursor already advanced, so
    nothing would ever replay it -- dropping it would silently lose data on
    what is modelled as a reliable in-order link."""
    sim, net, inbox = setup()
    net.set_link_latency("a", "b", 0.5)
    assert net.send("a", "b", "data", 1)
    net.partition("a", "b")
    sim.run_until(1.0)
    assert [msg.payload for msg, _now in inbox["b"]] == [1]
    # New sends across the live partition are refused credit and dropped.
    assert not net.send("a", "b", "data", 2)
    assert net.stats.dropped >= 1


def test_in_flight_message_dropped_if_receiver_crashes():
    """A crash wipes the receiver's state and recovery resubscribes, so
    messages in flight at crash time are dropped, not delivered."""
    sim, net, inbox = setup()
    net.set_link_latency("a", "b", 0.5)
    net.send("a", "b", "data", 1)
    net.crash("b")
    sim.run_until(1.0)
    assert inbox["b"] == []
    assert net.stats.dropped >= 1


def test_broadcast_and_stats():
    sim, net, inbox = setup()
    count = net.broadcast("a", ["b"], "data", 1)
    assert count == 1
    sim.run_until(1.0)
    assert net.stats.sent == 1 and net.stats.delivered == 1
    assert net.stats.by_kind["data"]["delivered"] == 1


def test_negative_latency_rejected():
    sim = Simulator()
    with pytest.raises(NetworkError):
        Network(sim, default_latency=-1.0)
