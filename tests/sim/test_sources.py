"""Unit tests for data sources (production, logging, replay, failure hooks)."""

import pytest

from repro.core.protocol import DataBatch
from repro.errors import SimulationError
from repro.sim.event_loop import Simulator
from repro.sim.network import Network
from repro.sim.sources import DataSource


def setup(rate=100.0, boundary_interval=0.1):
    sim = Simulator()
    net = Network(sim, default_latency=0.001)
    received = []
    net.register("node", lambda msg, now: received.append(msg.payload))
    source = DataSource(
        name="src",
        stream="s1",
        simulator=sim,
        network=net,
        rate=rate,
        boundary_interval=boundary_interval,
        batch_interval=0.05,
    )
    source.subscribe("node")
    return sim, net, source, received


def all_tuples(batches):
    return [t for batch in batches for t in batch.tuples]


def test_source_produces_at_configured_rate():
    sim, _net, source, received = setup(rate=100.0)
    source.start()
    sim.run_until(1.0)
    data = [t for t in all_tuples(received) if t.is_data]
    assert 95 <= len(data) <= 105
    assert source.tuples_produced == len(data)


def test_source_emits_periodic_boundaries_with_increasing_stimes():
    sim, _net, source, received = setup(boundary_interval=0.1)
    source.start()
    sim.run_until(1.0)
    boundaries = [t for t in all_tuples(received) if t.is_boundary]
    stimes = [b.stime for b in boundaries]
    assert len(boundaries) >= 8
    assert stimes == sorted(stimes)


def test_boundary_punctuation_invariant():
    """No data tuple with stime < b follows a boundary with stime b."""
    sim, _net, source, received = setup()
    source.start()
    sim.run_until(2.0)
    current_bound = float("-inf")
    for item in all_tuples(received):
        if item.is_boundary:
            current_bound = max(current_bound, item.stime)
        elif item.is_data:
            assert item.stime >= current_bound


def test_disconnect_buffers_and_reconnect_replays():
    sim, _net, source, received = setup()
    source.start()
    sim.run_until(1.0)
    seen_before = len(all_tuples(received))
    source.disconnect("node")
    sim.run_until(2.0)
    assert len(all_tuples(received)) == seen_before  # nothing delivered while disconnected
    source.reconnect("node")
    sim.run_until(3.0)
    data = [t for t in all_tuples(received) if t.is_data]
    seqs = [t.value("seq") for t in data]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)  # full replay, no duplicates, no gaps
    assert len(data) >= 290


def test_boundary_silence_stops_only_boundaries():
    sim, _net, source, received = setup()
    source.start()
    sim.run_until(1.0)
    source.set_boundaries_enabled(False)
    before = len([t for t in all_tuples(received) if t.is_boundary])
    sim.run_until(2.0)
    after = len([t for t in all_tuples(received) if t.is_boundary])
    assert after == before
    assert len([t for t in all_tuples(received) if t.is_data]) >= 190
    source.set_boundaries_enabled(True)
    sim.run_until(3.0)
    assert len([t for t in all_tuples(received) if t.is_boundary]) > after


def test_unknown_subscriber_operations_raise():
    _sim, _net, source, _ = setup()
    with pytest.raises(SimulationError):
        source.disconnect("ghost")
    with pytest.raises(SimulationError):
        source.reconnect("ghost")


def test_invalid_source_parameters():
    sim = Simulator()
    net = Network(sim)
    with pytest.raises(SimulationError):
        DataSource("s", "x", sim, net, rate=0.0)
    with pytest.raises(SimulationError):
        DataSource("s", "x", sim, net, boundary_interval=0.0)


def test_batches_are_data_batches_with_stream_name():
    sim, _net, source, received = setup()
    source.start()
    sim.run_until(0.5)
    assert received and all(isinstance(b, DataBatch) for b in received)
    assert all(b.stream == "s1" for b in received)
