"""Unit tests for the discrete-event simulator."""

import pytest

from repro.errors import SimulationError
from repro.sim.event_loop import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule_at(2.0, lambda now: fired.append(("b", now)))
    sim.schedule_at(1.0, lambda now: fired.append(("a", now)))
    sim.run_until(10.0)
    assert fired == [("a", 1.0), ("b", 2.0)]
    assert sim.now == 10.0


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    sim.schedule_at(1.0, lambda now: fired.append("first"))
    sim.schedule_at(1.0, lambda now: fired.append("second"))
    sim.run_until(2.0)
    assert fired == ["first", "second"]


def test_schedule_in_uses_relative_delay():
    sim = Simulator(start_time=5.0)
    fired = []
    sim.schedule_in(1.5, lambda now: fired.append(now))
    sim.run_for(2.0)
    assert fired == [6.5]


def test_cannot_schedule_in_the_past():
    sim = Simulator(start_time=5.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(4.0, lambda now: None)
    with pytest.raises(SimulationError):
        sim.schedule_in(-1.0, lambda now: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule_at(1.0, lambda now: fired.append(now))
    event.cancel()
    sim.run_until(2.0)
    assert fired == []


def test_simulator_cancel_skips_event_and_compacts():
    sim = Simulator()
    fired = []
    events = [sim.schedule_at(float(i + 1), lambda now: fired.append(now)) for i in range(200)]
    for event in events[:150]:
        sim.cancel(event)
    # Lazy deletion compacted the heap once cancelled events dominated.
    assert sim.pending_events == 50
    assert len(sim._queue) < len(events)
    sim.run_until(300.0)
    assert len(fired) == 50
    # Cancelling an already-cancelled or fired event is a no-op.
    sim.cancel(events[0])


def test_periodic_handle_cancel_stops_chain():
    sim = Simulator()
    fired = []
    handle = sim.schedule_periodic(1.0, lambda now: fired.append(now))
    sim.run_until(3.5)
    assert fired == [1.0, 2.0, 3.0]
    handle.cancel()
    assert sim.pending_events == 0  # the pending occurrence was removed
    sim.run_until(10.0)
    assert fired == [1.0, 2.0, 3.0]


def test_periodic_scheduling_with_stop_condition():
    sim = Simulator()
    fired = []
    sim.schedule_periodic(1.0, lambda now: fired.append(now), stop_condition=lambda: len(fired) >= 3)
    sim.run_until(10.0)
    assert fired == [1.0, 2.0, 3.0]


def test_run_until_stops_at_end_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(5.0, lambda now: fired.append(now))
    sim.run_until(2.0)
    assert fired == []
    assert sim.pending_events == 1
    sim.run_until(6.0)
    assert fired == [5.0]


def test_events_can_schedule_more_events():
    sim = Simulator()
    fired = []

    def chain(now):
        fired.append(now)
        if now < 3.0:
            sim.schedule_in(1.0, chain)

    sim.schedule_at(1.0, chain)
    sim.run_until(10.0)
    assert fired == [1.0, 2.0, 3.0]


def test_max_events_guard():
    sim = Simulator()

    def storm(now):
        sim.schedule_in(0.0, storm)

    sim.schedule_at(0.0, storm)
    with pytest.raises(SimulationError):
        sim.run_until(1.0, max_events=100)


def test_step_executes_single_event():
    sim = Simulator()
    fired = []
    sim.schedule_at(1.0, lambda now: fired.append(1))
    sim.schedule_at(2.0, lambda now: fired.append(2))
    assert sim.step() and fired == [1]
    assert sim.step() and fired == [1, 2]
    assert not sim.step()
