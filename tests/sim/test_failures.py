"""Unit tests for the failure injector."""

import pytest

from repro.errors import SimulationError
from repro.sim.event_loop import Simulator
from repro.sim.failures import FailureInjector, FailureType
from repro.sim.network import Network
from repro.sim.sources import DataSource


def setup():
    sim = Simulator()
    net = Network(sim)
    net.register("node", lambda msg, now: None)
    source = DataSource("src", "s1", sim, net, rate=50.0)
    source.subscribe("node")
    injector = FailureInjector(simulator=sim, network=net)
    return sim, net, source, injector


def test_disconnect_stream_schedules_failure_and_recovery():
    sim, _net, source, injector = setup()
    record = injector.disconnect_stream(source, "node", start=1.0, duration=2.0)
    assert record.failure_type is FailureType.STREAM_DISCONNECT
    assert record.end == 3.0
    source.start()
    sim.run_until(1.5)
    assert not source.is_connected("node")
    sim.run_until(3.5)
    assert source.is_connected("node")


def test_silence_boundaries_toggles_flag():
    sim, _net, source, injector = setup()
    injector.silence_boundaries(source, start=1.0, duration=1.0)
    source.start()
    sim.run_until(1.5)
    assert not source.boundaries_enabled
    sim.run_until(2.5)
    assert source.boundaries_enabled


def test_crash_node_and_partition_affect_network():
    sim, net, _source, injector = setup()
    injector.crash_node("node", start=1.0, duration=1.0)
    injector.partition("node", "src", start=1.0, duration=1.0)
    sim.run_until(1.5)
    assert net.is_down("node")
    assert net.is_partitioned("node", "src")
    sim.run_until(2.5)
    assert not net.is_down("node")
    assert not net.is_partitioned("node", "src")


def test_invalid_failure_times_rejected():
    sim, _net, source, injector = setup()
    sim.run_until(5.0)
    with pytest.raises(SimulationError):
        injector.disconnect_stream(source, "node", start=1.0, duration=1.0)
    with pytest.raises(SimulationError):
        injector.silence_boundaries(source, start=6.0, duration=0.0)


def test_overlap_detection():
    _sim, _net, source, injector = setup()
    injector.disconnect_stream(source, "node", start=1.0, duration=5.0)
    assert not injector.overlapping()
    injector.silence_boundaries(source, start=3.0, duration=1.0)
    assert injector.overlapping()
