"""Pre-canned failure scenarios shared by examples, tests, and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..sim.failures import FailureRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..sim.cluster import Cluster


@dataclass(frozen=True)
class FailureSpec:
    """A declarative failure to inject into a cluster.

    ``kind`` selects the mechanism:

    * ``"disconnect"`` -- the source stops reaching every consumer (data is
      replayed after healing), the mechanism of the Section 5/6.1 experiments;
    * ``"silence"`` -- the source keeps sending data but stops producing
      boundary tuples, the mechanism of the Section 6.2 chain experiments;
    * ``"crash"`` -- a processing node crashes (fail-stop) and recovers;
    * ``"partition"`` -- a network split isolates a node replica from every
      other endpoint (the replica keeps running; nothing it sends arrives
      and nothing reaches it until the window heals).

    A crash names its target either by logical node name (``node``, the
    canonical addressing for DAG topologies) or, for the chain experiments,
    by ``node_level`` (index into the topological order); ``node`` wins when
    both are set.  ``node_replica`` selects the replica in either case;
    ``node_replica = -1`` crashes *every* replica of the node (resolved
    against the actual replica count at injection time -- the branch-kill
    schedule of the DAG experiments).

    ``start=None`` is only meaningful inside a
    :class:`~repro.runtime.ScenarioSpec`, which resolves it to its warmup; a
    :class:`Scenario` requires every start to be a number.
    """

    kind: str
    start: float | None
    duration: float
    stream_index: int = 0
    node: str | None = None
    node_level: int = 0
    node_replica: int = 0


@dataclass
class Scenario:
    """A cluster run: warm-up, failures, post-failure settle time."""

    warmup: float = 5.0
    settle: float = 20.0
    failures: list[FailureSpec] = field(default_factory=list)

    def total_duration(self) -> float:
        if not self.failures:
            return self.warmup + self.settle
        last_end = max(spec.start + spec.duration for spec in self.failures)
        return last_end + self.settle

    def inject(self, cluster: Cluster) -> list[FailureRecord]:
        """Schedule every failure of the scenario on ``cluster``."""
        records: list[FailureRecord] = []
        for spec in self.failures:
            if spec.kind == "disconnect":
                source = cluster.source(spec.stream_index)
                for node in cluster.consumers_of(source.stream):
                    records.append(
                        cluster.failures.disconnect_stream(
                            source, node.endpoint, spec.start, spec.duration
                        )
                    )
            elif spec.kind == "silence":
                source = cluster.source(spec.stream_index)
                records.append(
                    cluster.failures.silence_boundaries(source, spec.start, spec.duration)
                )
            elif spec.kind == "crash":
                target = spec.node if spec.node is not None else spec.node_level
                if spec.node_replica == -1:
                    victims = cluster.node_group(target)
                else:
                    victims = [cluster.node(target, spec.node_replica)]
                for node in victims:
                    # Build-time validation ran against the compile-time
                    # topology; the guard re-validates at fire time against
                    # the *live* deployment, which a mid-run rebalance may
                    # have reconfigured (e.g. drained the targeted shard).
                    group = next(
                        (
                            name
                            for name, members in cluster.node_groups.items()
                            if node in members
                        ),
                        node.name,
                    )
                    records.append(
                        cluster.failures.crash_processing_node(
                            node,
                            spec.start,
                            spec.duration,
                            guard=lambda c=cluster, g=group: c.assert_kill_target_live(g),
                        )
                    )
            elif spec.kind == "partition":
                target = spec.node if spec.node is not None else spec.node_level
                if spec.node_replica == -1:
                    victims = cluster.node_group(target)
                else:
                    victims = [cluster.node(target, spec.node_replica)]
                for node in victims:
                    records.append(
                        cluster.failures.isolate_endpoint(
                            node.endpoint, spec.start, spec.duration
                        )
                    )
            else:
                raise ValueError(f"unknown failure kind {spec.kind!r}")
        return records

    def run(self, cluster: Cluster) -> Cluster:
        """Inject the failures, start the cluster, and run it to completion."""
        self.inject(cluster)
        cluster.start()
        cluster.run_for(self.total_duration())
        return cluster


def single_failure(kind: str, start: float, duration: float, stream_index: int = 0, settle: float = 20.0) -> Scenario:
    """Scenario with one failure, the shape of most of the paper's experiments."""
    return Scenario(
        warmup=start,
        settle=settle,
        failures=[FailureSpec(kind=kind, start=start, duration=duration, stream_index=stream_index)],
    )
