"""Synthetic workloads and failure scenarios."""

from .generators import (
    PayloadFactory,
    PayloadGenerator,
    RateProfile,
    bursty_rate,
    diurnal_rate,
    default_payload_factory,
    hot_key_payload_factory,
    hot_key_sequence,
    interleaved_sequence,
    network_monitoring,
    sensor_readings,
    sequential_sequence,
)
from .queries import (
    intrusion_detection_diagram,
    intrusion_detection_factory,
    sensor_alert_diagram,
    sensor_alert_factory,
    traffic_rollup_diagram,
    traffic_rollup_factory,
    windowed_rollup_diagram,
    windowed_rollup_factory,
)
from .scenarios import FailureSpec, Scenario, single_failure

__all__ = [
    "PayloadFactory",
    "PayloadGenerator",
    "RateProfile",
    "bursty_rate",
    "diurnal_rate",
    "default_payload_factory",
    "hot_key_payload_factory",
    "hot_key_sequence",
    "interleaved_sequence",
    "network_monitoring",
    "sensor_readings",
    "sequential_sequence",
    "FailureSpec",
    "Scenario",
    "single_failure",
    "intrusion_detection_diagram",
    "intrusion_detection_factory",
    "sensor_alert_diagram",
    "sensor_alert_factory",
    "traffic_rollup_diagram",
    "traffic_rollup_factory",
    "windowed_rollup_diagram",
    "windowed_rollup_factory",
]
