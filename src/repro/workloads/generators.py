"""Synthetic workload generators.

The paper's experiments feed the system with synthetic streams of
sequentially-numbered tuples; its motivating applications are network
monitoring and sensor-based environment monitoring.  This module provides
payload generators for all three, with deterministic content so that every
run (and every replica) sees exactly the same data.
"""

from __future__ import annotations

import bisect
import math
import random
import zlib
from typing import Any, Callable, Mapping

#: A payload generator maps (sequence number, stime) -> attribute mapping.
PayloadGenerator = Callable[[int, float], Mapping[str, Any]]


def sequential_sequence() -> PayloadGenerator:
    """Tuples numbered 0, 1, 2, ... on a single stream."""

    def generate(sequence: int, stime: float) -> dict[str, Any]:
        return {"seq": sequence, "value": float(sequence)}

    return generate


def interleaved_sequence(stream_index: int, n_streams: int) -> PayloadGenerator:
    """Globally increasing sequence numbers interleaved across ``n_streams``.

    Stream ``i`` produces ``i, i + n, i + 2n, ...`` so that the union of all
    streams, ordered by stime, is the sequence ``0, 1, 2, ...`` -- the shape
    the eventual-consistency experiments of Section 5.1 plot (output tuples
    with sequentially increasing identifiers).
    """
    if not 0 <= stream_index < n_streams:
        raise ValueError(f"stream_index {stream_index} out of range for {n_streams} streams")

    def generate(sequence: int, stime: float) -> dict[str, Any]:
        seq = sequence * n_streams + stream_index
        return {"seq": seq, "value": float(seq), "stream": stream_index}

    return generate


def network_monitoring(stream_index: int, n_streams: int, seed: int = 0) -> PayloadGenerator:
    """Connection records from a network monitor (the paper's lead application).

    Each tuple describes one observed connection: source/destination hosts, a
    destination port, and a byte count.  A small fraction of tuples are marked
    suspicious (probe of a low port from an unusual host), which is what the
    example intrusion-detection query aggregates.
    """
    rng = random.Random(seed * 1000 + stream_index)
    hosts = [f"10.0.{stream_index}.{i}" for i in range(1, 50)]
    attackers = [f"172.16.{stream_index}.{i}" for i in range(1, 5)]

    def generate(sequence: int, stime: float) -> dict[str, Any]:
        suspicious = rng.random() < 0.05
        source = rng.choice(attackers) if suspicious else rng.choice(hosts)
        return {
            "seq": sequence * n_streams + stream_index,
            "monitor": stream_index,
            "src": source,
            "dst": rng.choice(hosts),
            "dst_port": rng.choice([22, 23, 25, 80, 443]) if suspicious else rng.randint(1024, 65535),
            "bytes": rng.randint(40, 1500),
            "suspicious": suspicious,
        }

    return generate


def sensor_readings(stream_index: int, n_streams: int, seed: int = 0) -> PayloadGenerator:
    """Temperature / air-quality readings from a sensor deployment.

    Readings follow a slow sinusoid-free deterministic drift plus seeded
    noise; occasional spikes model the alert conditions the monitoring
    application looks for.
    """
    rng = random.Random(seed * 2000 + stream_index)
    base = 20.0 + stream_index

    def generate(sequence: int, stime: float) -> dict[str, Any]:
        drift = (sequence % 200) / 200.0
        spike = 15.0 if rng.random() < 0.01 else 0.0
        return {
            "seq": sequence * n_streams + stream_index,
            "sensor": stream_index,
            "location": f"zone-{stream_index}",
            "temperature": round(base + drift + rng.gauss(0.0, 0.2) + spike, 3),
            "co2": round(400 + 20 * drift + rng.gauss(0.0, 5.0) + 10 * spike, 1),
        }

    return generate


def hot_key_sequence(
    stream_index: int,
    n_streams: int,
    skew: float = 1.2,
    keys: int = 64,
    seed: int = 0,
) -> PayloadGenerator:
    """Zipfian hot-key workload: interleaved sequence numbers plus a skewed key.

    Every tuple keeps the globally increasing ``seq`` the consistency ledger
    checks, and additionally carries an integer ``key`` drawn from a zipf(s =
    ``skew``) distribution over ``keys`` distinct keys -- rank 0 is the hot
    key.  Two properties matter for sharded deployments:

    * the key is a pure function of the *tick* (the per-source sequence
      number), so the ``n_streams`` tuples sharing an stime all carry the
      same key and a key-sharded deployment never splits a tie group
      (``ShardSpec`` with ``key="key"``, ``group=1``);
    * the draw is crc32-based, so every source, every replica, and every
      rerun of the same ``seed`` sees exactly the same key sequence.

    This is the workload that gives :meth:`ShardPlanner.rebalance` something
    to do: the hot key concentrates load on a single hash bucket, so the
    observed per-bucket loads skew far beyond any tolerance.
    """
    if not 0 <= stream_index < n_streams:
        raise ValueError(f"stream_index {stream_index} out of range for {n_streams} streams")
    if skew <= 0:
        raise ValueError(f"skew must be positive, got {skew}")
    if keys < 1:
        raise ValueError(f"keys must be >= 1, got {keys}")
    weights = [1.0 / (rank + 1) ** skew for rank in range(keys)]
    total = sum(weights)
    cdf: list[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cdf.append(acc)

    def generate(sequence: int, stime: float) -> dict[str, Any]:
        seq = sequence * n_streams + stream_index
        # One uniform draw per tick, identical across the interleaved sources.
        draw = zlib.crc32(f"hotkey:{seed}:{sequence}".encode("ascii")) / 2**32
        rank = bisect.bisect_left(cdf, draw)
        return {
            "seq": seq,
            "value": float(seq),
            "stream": stream_index,
            "key": min(rank, keys - 1),
        }

    return generate


#: A rate profile maps a simulation time to a multiplier of the base rate.
#: Sources evaluate it at each emission; the next tuple follows after
#: ``period / profile(now)`` seconds.  Profiles must stay strictly positive.
RateProfile = Callable[[float], float]


def bursty_rate(
    period: float = 60.0,
    burst_length: float = 10.0,
    burst_factor: float = 4.0,
    base_factor: float = 1.0,
) -> RateProfile:
    """Square-wave rate profile: bursts of ``burst_factor`` x the base rate.

    Every ``period`` seconds the sources spend ``burst_length`` seconds at
    ``burst_factor`` times the base rate and the remainder at
    ``base_factor``.  The profile is a pure function of simulation time, so
    all sources sharing it stay aligned and stime tie groups are preserved.
    """
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    if not 0 < burst_length < period:
        raise ValueError(f"burst_length must be in (0, {period}), got {burst_length}")
    if burst_factor <= 0 or base_factor <= 0:
        raise ValueError("rate factors must be positive")

    def profile(now: float) -> float:
        return burst_factor if (now % period) < burst_length else base_factor

    return profile


def step_rate(
    at: float,
    factor: float = 2.0,
    until: float | None = None,
    base_factor: float = 1.0,
) -> RateProfile:
    """One load step: ``base_factor`` until ``at``, then ``factor``.

    When ``until`` is given the rate steps back down to ``base_factor`` at
    that time -- the surge-and-subside shape the autoscale experiments use to
    drive one scale-out and one scale-in from a single profile.  Like every
    profile, it is a pure function of the emission stime, so the interleaved
    sources stay aligned and stime tie groups are preserved.
    """
    if at < 0:
        raise ValueError(f"at must be non-negative, got {at}")
    if factor <= 0 or base_factor <= 0:
        raise ValueError("rate factors must be positive")
    if until is not None and until <= at:
        raise ValueError(f"until must lie beyond at={at}, got {until}")

    def profile(now: float) -> float:
        if now < at or (until is not None and now >= until):
            return base_factor
        return factor

    return profile


def diurnal_rate(
    day_length: float = 600.0, amplitude: float = 0.5, phase: float = 0.0
) -> RateProfile:
    """Sinusoidal day/night rate profile around the base rate.

    The multiplier is ``1 + amplitude * sin(2 * pi * (now - phase) / day_length)``;
    ``amplitude`` must stay below 1 so the rate never reaches zero.
    """
    if day_length <= 0:
        raise ValueError(f"day_length must be positive, got {day_length}")
    if not 0 <= amplitude < 1:
        raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
    two_pi = 2.0 * math.pi

    def profile(now: float) -> float:
        return 1.0 + amplitude * math.sin(two_pi * (now - phase) / day_length)

    return profile


#: Factory signature used by the cluster builder: (stream_index, n_streams) -> generator.
PayloadFactory = Callable[[int, int], PayloadGenerator]


def default_payload_factory(stream_index: int, n_streams: int) -> PayloadGenerator:
    """The factory the experiments use: interleaved global sequence numbers."""
    return interleaved_sequence(stream_index, n_streams)


def hot_key_payload_factory(
    skew: float = 1.2, keys: int = 64, seed: int = 0
) -> PayloadFactory:
    """Factory producing :func:`hot_key_sequence` generators with fixed skew."""

    def factory(stream_index: int, n_streams: int) -> PayloadGenerator:
        return hot_key_sequence(stream_index, n_streams, skew=skew, keys=keys, seed=seed)

    return factory
