"""Pre-built application query diagrams.

The paper motivates DPC with monitoring applications: network intrusion
detection and sensor-based environment monitoring (Section 1).  This module
provides ready-made query-diagram fragments for those applications, built
from the fundamental operators (Filter, Map, Aggregate, Join, Union) plus the
DPC operators (SUnion, SOutput), in the shape the cluster builder expects
(``diagram_factory(node_name, input_streams, output_stream)``).

They are used by the examples, by the application-level tests, and are handy
starting points for new workloads.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..spe.operators import Aggregate, Filter, Map, SOutput, SUnion
from ..spe.operators.aggregate import AggregateSpec
from ..spe.query_diagram import QueryDiagram
from ..spe.windows import WindowSpec

#: Signature the cluster builder expects for first-node fragments.
DiagramFactory = Callable[[str, Sequence[str], str], QueryDiagram]


# --------------------------------------------------------------------------- network monitoring
def intrusion_detection_diagram(
    name: str,
    input_streams: Sequence[str],
    output_stream: str,
    *,
    bucket_size: float = 0.1,
    window: float = 5.0,
    min_probes: int = 1,
) -> QueryDiagram:
    """Count suspicious connections per source host over sliding windows.

    The fragment merges the monitor streams deterministically (SUnion), keeps
    only the connections flagged suspicious, counts them per source host in
    tumbling windows of ``window`` seconds, and reports the hosts with at
    least ``min_probes`` probes -- the "potential attackers" alerts of the
    paper's network-monitoring scenario.
    """
    diagram = QueryDiagram(name=name)
    merge = SUnion(name=f"{name}.sunion", arity=len(input_streams), bucket_size=bucket_size)
    suspicious = Filter(name=f"{name}.suspicious", predicate=lambda v: bool(v.get("suspicious")))
    per_source = Aggregate(
        name=f"{name}.per_source",
        window=WindowSpec.tumbling(window),
        aggregates=[
            AggregateSpec("probes", "count"),
            AggregateSpec("bytes", "sum", "bytes"),
        ],
        group_by=("src",),
    )
    alerts = Filter(
        name=f"{name}.alerts", predicate=lambda v: int(v.get("probes", 0)) >= min_probes
    )
    soutput = SOutput(name=f"{name}.soutput")
    for operator in (merge, suspicious, per_source, alerts, soutput):
        diagram.add_operator(operator)
    diagram.connect(merge, suspicious)
    diagram.connect(suspicious, per_source)
    diagram.connect(per_source, alerts)
    diagram.connect(alerts, soutput)
    for port, stream in enumerate(input_streams):
        diagram.bind_input(stream, merge, port)
    diagram.bind_output(output_stream, soutput)
    diagram.validate()
    return diagram


def intrusion_detection_factory(
    *, bucket_size: float = 0.1, window: float = 5.0, min_probes: int = 1
) -> DiagramFactory:
    """A cluster-builder factory for :func:`intrusion_detection_diagram`."""

    def factory(node_name: str, input_streams: Sequence[str], output_stream: str) -> QueryDiagram:
        return intrusion_detection_diagram(
            node_name,
            input_streams,
            output_stream,
            bucket_size=bucket_size,
            window=window,
            min_probes=min_probes,
        )

    return factory


# --------------------------------------------------------------------------- sensor monitoring
def sensor_alert_diagram(
    name: str,
    input_streams: Sequence[str],
    output_stream: str,
    *,
    bucket_size: float = 0.1,
    window: float = 5.0,
    temperature_threshold: float = 30.0,
) -> QueryDiagram:
    """Average readings per zone and raise alerts when a zone runs hot.

    The fragment merges the sensor streams, derives a simple discomfort index
    (Map), averages temperature and CO2 per zone over tumbling windows
    (Aggregate), and keeps the windows whose average temperature exceeds
    ``temperature_threshold`` (Filter) -- the tentative alerts the paper's
    environment-monitoring scenario dispatches technicians for.
    """

    def discomfort(values):
        enriched = dict(values)
        enriched["discomfort"] = round(
            float(values.get("temperature", 0.0)) + 0.01 * float(values.get("co2", 0.0)), 3
        )
        return enriched

    diagram = QueryDiagram(name=name)
    merge = SUnion(name=f"{name}.sunion", arity=len(input_streams), bucket_size=bucket_size)
    enrich = Map(name=f"{name}.enrich", transform=discomfort)
    per_zone = Aggregate(
        name=f"{name}.per_zone",
        window=WindowSpec.tumbling(window),
        aggregates=[
            AggregateSpec("avg_temperature", "avg", "temperature"),
            AggregateSpec("max_temperature", "max", "temperature"),
            AggregateSpec("avg_co2", "avg", "co2"),
            AggregateSpec("readings", "count"),
        ],
        group_by=("location",),
    )
    hot = Filter(
        name=f"{name}.hot",
        predicate=lambda v: float(v.get("max_temperature", 0.0)) >= temperature_threshold,
    )
    soutput = SOutput(name=f"{name}.soutput")
    for operator in (merge, enrich, per_zone, hot, soutput):
        diagram.add_operator(operator)
    diagram.connect(merge, enrich)
    diagram.connect(enrich, per_zone)
    diagram.connect(per_zone, hot)
    diagram.connect(hot, soutput)
    for port, stream in enumerate(input_streams):
        diagram.bind_input(stream, merge, port)
    diagram.bind_output(output_stream, soutput)
    diagram.validate()
    return diagram


def sensor_alert_factory(
    *, bucket_size: float = 0.1, window: float = 5.0, temperature_threshold: float = 30.0
) -> DiagramFactory:
    """A cluster-builder factory for :func:`sensor_alert_diagram`."""

    def factory(node_name: str, input_streams: Sequence[str], output_stream: str) -> QueryDiagram:
        return sensor_alert_diagram(
            node_name,
            input_streams,
            output_stream,
            bucket_size=bucket_size,
            window=window,
            temperature_threshold=temperature_threshold,
        )

    return factory


# --------------------------------------------------------------------------- traffic rollups
def traffic_rollup_diagram(
    name: str,
    input_streams: Sequence[str],
    output_stream: str,
    *,
    bucket_size: float = 0.1,
    window: float = 1.0,
) -> QueryDiagram:
    """Total observed traffic per window across all monitors.

    A compact fragment (SUnion -> Aggregate -> SOutput) whose output rate is
    low and perfectly regular, which makes it convenient for tests that need
    windowed results flowing through the full distributed machinery.
    """
    diagram = QueryDiagram(name=name)
    merge = SUnion(name=f"{name}.sunion", arity=len(input_streams), bucket_size=bucket_size)
    rollup = Aggregate(
        name=f"{name}.rollup",
        window=WindowSpec.tumbling(window),
        aggregates=[
            AggregateSpec("connections", "count"),
            AggregateSpec("bytes", "sum", "bytes"),
        ],
    )
    soutput = SOutput(name=f"{name}.soutput")
    for operator in (merge, rollup, soutput):
        diagram.add_operator(operator)
    diagram.connect(merge, rollup)
    diagram.connect(rollup, soutput)
    for port, stream in enumerate(input_streams):
        diagram.bind_input(stream, merge, port)
    diagram.bind_output(output_stream, soutput)
    diagram.validate()
    return diagram


def traffic_rollup_factory(*, bucket_size: float = 0.1, window: float = 1.0) -> DiagramFactory:
    """A cluster-builder factory for :func:`traffic_rollup_diagram`."""

    def factory(node_name: str, input_streams: Sequence[str], output_stream: str) -> QueryDiagram:
        return traffic_rollup_diagram(
            node_name, input_streams, output_stream, bucket_size=bucket_size, window=window
        )

    return factory


# --------------------------------------------------------------------------- windowed rollups
def windowed_rollup_diagram(
    name: str,
    input_streams: Sequence[str],
    output_stream: str,
    *,
    bucket_size: float = 0.1,
    size: float = 1.0,
    slide: float | None = None,
    incremental: bool | None = None,
) -> QueryDiagram:
    """Sliding-window rollup over ``value`` with a ledger-friendly output.

    The windowed-aggregation exerciser: SUnion merges the input streams, a
    sliding (or, with ``slide`` omitted, tumbling) Aggregate computes
    count/sum/min/max of the standard workload's ``value`` attribute, and a
    Map stamps each result with ``seq = round(window_start / slide)``.  The
    window index is monotone and gap-free while sources keep producing, so
    the client-side consistency ledger can verify the output stream the same
    way it verifies the plain forwarding scenarios.  ``incremental`` is
    passed through to :class:`Aggregate` (None selects the pane path when
    the spec supports it; False pins the naive reference path).
    """
    effective_slide = slide if slide is not None else size
    diagram = QueryDiagram(name=name)
    merge = SUnion(name=f"{name}.sunion", arity=len(input_streams), bucket_size=bucket_size)
    rollup = Aggregate(
        name=f"{name}.rollup",
        window=WindowSpec.sliding(size=size, slide=effective_slide),
        aggregates=[
            AggregateSpec("n", "count"),
            AggregateSpec("total", "sum", "value"),
            AggregateSpec("lo", "min", "value"),
            AggregateSpec("hi", "max", "value"),
        ],
        incremental=incremental,
    )

    def stamp(values):
        stamped = dict(values)
        stamped["seq"] = int(round(values["window_start"] / effective_slide))
        return stamped

    number = Map(name=f"{name}.number", transform=stamp)
    soutput = SOutput(name=f"{name}.soutput")
    for operator in (merge, rollup, number, soutput):
        diagram.add_operator(operator)
    diagram.connect(merge, rollup)
    diagram.connect(rollup, number)
    diagram.connect(number, soutput)
    for port, stream in enumerate(input_streams):
        diagram.bind_input(stream, merge, port)
    diagram.bind_output(output_stream, soutput)
    diagram.validate()
    return diagram


def windowed_rollup_factory(
    *,
    bucket_size: float = 0.1,
    size: float = 1.0,
    slide: float | None = None,
    incremental: bool | None = None,
) -> DiagramFactory:
    """A cluster-builder factory for :func:`windowed_rollup_diagram`."""

    def factory(node_name: str, input_streams: Sequence[str], output_stream: str) -> QueryDiagram:
        return windowed_rollup_diagram(
            node_name,
            input_streams,
            output_stream,
            bucket_size=bucket_size,
            size=size,
            slide=slide,
            incremental=incremental,
        )

    return factory
