"""Configuration objects shared across the SPE, the simulator, and DPC.

The paper expresses every protocol knob in seconds of (wall-clock) time.  The
reproduction keeps the same units but interprets them as *simulated* seconds,
so values such as the availability bound ``X = 3 s`` or a ``boundary interval
of 100 ms`` can be copied verbatim from the paper into these dataclasses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum

from .errors import ConfigurationError


class ProcessingPolicy(str, Enum):
    """What an SUnion does with newly arriving tuples while inconsistent.

    The paper (Section 6.1) distinguishes three behaviours that can be applied
    independently during UP_FAILURE and during STABILIZATION:

    * ``PROCESS`` -- emit available tuples (as tentative) as soon as they
      arrive, after the initial suspension window.
    * ``DELAY`` -- hold every bucket of tuples for the node's maximum
      incremental delay ``D`` before emitting it tentatively.
    * ``SUSPEND`` -- do not emit anything; only viable for short failures or
      short reconciliations, otherwise the availability bound is violated.
    """

    PROCESS = "process"
    DELAY = "delay"
    SUSPEND = "suspend"


class DelayAssignment(str, Enum):
    """How the application-level bound ``X`` is divided among SUnions.

    Section 6.3 of the paper compares splitting ``X`` uniformly across the
    nodes of a chain against assigning (almost) the whole budget to every
    SUnion.  The latter masks longer failures without producing tentative
    tuples while still meeting the bound, because all SUnions downstream of a
    failure suspend simultaneously.

    ACCUMULATED is the per-path refinement the paper sketches at the end of
    Section 6.3 (Figure 21): each node spends only the budget its most
    delayed input path has not already consumed, divided by the longest
    remaining path to a sink.  On a chain it degenerates to UNIFORM; on
    unbalanced DAGs it stops short branches from being under-assigned.
    """

    UNIFORM = "uniform"
    FULL = "full"
    ACCUMULATED = "accumulated"


@dataclass(frozen=True)
class DelayPolicy:
    """Pairing of the behaviours used during failure and during stabilization.

    The six combinations studied in Figure 13 are expressed as instances of
    this class, e.g. ``DelayPolicy.process_process()`` is the baseline the
    paper calls *Process & Process*.
    """

    during_failure: ProcessingPolicy = ProcessingPolicy.PROCESS
    during_stabilization: ProcessingPolicy = ProcessingPolicy.PROCESS

    @classmethod
    def process_process(cls) -> "DelayPolicy":
        return cls(ProcessingPolicy.PROCESS, ProcessingPolicy.PROCESS)

    @classmethod
    def delay_delay(cls) -> "DelayPolicy":
        return cls(ProcessingPolicy.DELAY, ProcessingPolicy.DELAY)

    @classmethod
    def process_delay(cls) -> "DelayPolicy":
        return cls(ProcessingPolicy.PROCESS, ProcessingPolicy.DELAY)

    @classmethod
    def delay_process(cls) -> "DelayPolicy":
        return cls(ProcessingPolicy.DELAY, ProcessingPolicy.PROCESS)

    @classmethod
    def process_suspend(cls) -> "DelayPolicy":
        return cls(ProcessingPolicy.PROCESS, ProcessingPolicy.SUSPEND)

    @classmethod
    def delay_suspend(cls) -> "DelayPolicy":
        return cls(ProcessingPolicy.DELAY, ProcessingPolicy.SUSPEND)

    @property
    def name(self) -> str:
        """Human readable name matching the paper, e.g. ``Delay & Process``."""
        return (
            f"{self.during_failure.value.capitalize()} & "
            f"{self.during_stabilization.value.capitalize()}"
        )


@dataclass(frozen=True)
class BufferPolicy:
    """Buffer management options from Section 8.1.

    ``max_output_tuples``/``max_input_tuples`` of ``None`` mean unbounded
    buffers (the paper's default assumption).  When bounds are set,
    ``block_on_full`` selects the deterministic-operator behaviour (block and
    create back-pressure, avoiding system delusion); otherwise the oldest
    tuples are dropped, which is only safe for convergent-capable diagrams.
    """

    max_output_tuples: int | None = None
    max_input_tuples: int | None = None
    block_on_full: bool = True

    def validate(self) -> None:
        for name, value in (
            ("max_output_tuples", self.max_output_tuples),
            ("max_input_tuples", self.max_input_tuples),
        ):
            if value is not None and value <= 0:
                raise ConfigurationError(f"{name} must be positive or None, got {value}")


@dataclass(frozen=True)
class DPCConfig:
    """All DPC protocol parameters for one deployment.

    Attributes mirror the quantities named in the paper:

    * ``max_incremental_latency`` -- the application bound ``X`` (seconds).
    * ``delay_assignment`` -- how ``X`` is split among SUnions (Section 6.3).
    * ``delay_safety_factor`` -- SUnions delay for ``0.9 * D`` instead of
      ``D`` because the scheduler controls when they run (footnote, §5.2).
    * ``queuing_allowance`` -- subtracted from ``X`` when the FULL assignment
      is used (the paper uses 6.5 s out of an 8 s budget).
    * ``boundary_interval`` -- period of boundary tuples emitted by sources
      and operators.
    * ``bucket_size`` -- SUnion bucket granularity.
    * ``keepalive_period`` -- period of heartbeat requests to upstream
      replicas.
    * ``failure_detection_timeout`` -- missing-boundary / missing-heartbeat
      window after which an input stream is declared failed.
    * ``startup_grace`` -- extra allowance right after deployment, before the
      first boundaries have propagated through the diagram.
    * ``switch_time`` -- simulated cost of switching upstream replicas
      (~40 ms in the paper's prototype).
    * ``checkpoint_cost`` / ``redo_rate`` -- reconciliation cost model:
      restoring a checkpoint costs ``checkpoint_cost`` seconds and
      reprocessing buffered tuples proceeds at ``redo_rate`` tuples per
      simulated second.
    * ``tentative_bucket_wait`` -- minimum wait before processing a tentative
      bucket (300 ms in the implementation described by the paper, because
      tentative boundaries are not produced).
    * ``checkpoint_interval`` -- cadence (seconds) at which a STABLE replica
      captures a recovery checkpoint of its whole fragment so a crashed peer
      can rejoin from shipped state plus a short replay suffix instead of
      replaying the entire retained window.  ``None`` disables periodic
      capture, forcing full-replay recovery.
    * ``checkpoint_transfer_cost`` -- simulated seconds per checkpointed
      state item when shipping a recovery checkpoint between replicas, on
      top of the fixed ``checkpoint_cost``; makes transfer non-instantaneous
      so shipping races the replay it replaces.
    * ``handoff_pricing`` -- when True, rebalance bucket handoffs are priced
      through the same transfer cost model (extract at settle, merge after
      ``transfer_delay`` of the shipped item count) instead of completing
      instantaneously, and a crash landing mid-transfer aborts the handoff
      (restoring the extracted state to the old owner) rather than retrying
      forever.  Elastic deployments (autoscaling, scale-out/in) enable it.
    """

    max_incremental_latency: float = 3.0
    delay_policy: DelayPolicy = field(default_factory=DelayPolicy.process_process)
    delay_assignment: DelayAssignment = DelayAssignment.UNIFORM
    delay_safety_factor: float = 0.9
    queuing_allowance: float = 1.5
    boundary_interval: float = 0.1
    bucket_size: float = 0.1
    keepalive_period: float = 0.1
    failure_detection_timeout: float = 0.25
    startup_grace: float = 1.0
    switch_time: float = 0.04
    checkpoint_cost: float = 0.05
    redo_rate: float = 1200.0
    tentative_bucket_wait: float = 0.3
    per_stream_granularity: bool = False
    buffer_policy: BufferPolicy = field(default_factory=BufferPolicy)
    checkpoint_interval: float | None = 2.0
    checkpoint_transfer_cost: float = 0.00002
    handoff_pricing: bool = False

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` if any field is inconsistent."""
        if self.max_incremental_latency <= 0:
            raise ConfigurationError("max_incremental_latency (X) must be positive")
        if not 0 < self.delay_safety_factor <= 1:
            raise ConfigurationError("delay_safety_factor must be in (0, 1]")
        if self.boundary_interval <= 0 or self.bucket_size <= 0:
            raise ConfigurationError("boundary_interval and bucket_size must be positive")
        if self.keepalive_period <= 0 or self.failure_detection_timeout <= 0:
            raise ConfigurationError("keepalive and detection timeouts must be positive")
        if self.failure_detection_timeout >= self.max_incremental_latency:
            raise ConfigurationError(
                "failure_detection_timeout must be well below the availability bound X"
            )
        if self.redo_rate <= 0:
            raise ConfigurationError("redo_rate must be positive")
        if self.checkpoint_cost < 0 or self.switch_time < 0:
            raise ConfigurationError("costs cannot be negative")
        if self.queuing_allowance < 0:
            raise ConfigurationError("queuing_allowance cannot be negative")
        if self.startup_grace < 0:
            raise ConfigurationError("startup_grace cannot be negative")
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ConfigurationError("checkpoint_interval must be positive or None")
        if self.checkpoint_transfer_cost < 0:
            raise ConfigurationError("checkpoint_transfer_cost cannot be negative")
        self.buffer_policy.validate()

    def node_delay(self, chain_depth: int) -> float:
        """Per-SUnion delay bound ``D`` for a chain of ``chain_depth`` nodes.

        With :attr:`DelayAssignment.FULL` every SUnion receives the whole
        budget minus the queuing allowance (Section 6.3); the other
        strategies divide ``X`` evenly -- on a plain chain the per-path
        ACCUMULATED plan is exactly the uniform split, so this fallback (used
        when no :class:`~repro.core.delay_planner.DelayPlanner` ran) treats
        them alike.
        """
        if chain_depth <= 0:
            raise ConfigurationError("chain_depth must be >= 1")
        if self.delay_assignment is DelayAssignment.FULL:
            return max(self.max_incremental_latency - self.queuing_allowance, 0.0)
        return self.max_incremental_latency / chain_depth

    def with_(self, **changes: object) -> "DPCConfig":
        """Return a copy of this configuration with ``changes`` applied."""
        return replace(self, **changes)


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of the discrete-event substrate.

    * ``network_latency`` -- one-way latency of every link (seconds).
    * ``processing_latency`` -- fixed cost a node adds to every batch it
      forwards, standing in for per-hop CPU cost.
    * ``batch_interval`` -- sources and nodes flush their output this often.
    * ``seed`` -- seed for any randomized component (tie-breaking, jitter).
    """

    network_latency: float = 0.005
    processing_latency: float = 0.01
    batch_interval: float = 0.05
    seed: int = 0

    def validate(self) -> None:
        if self.network_latency < 0 or self.processing_latency < 0:
            raise ConfigurationError("latencies cannot be negative")
        if self.batch_interval <= 0:
            raise ConfigurationError("batch_interval must be positive")


DEFAULT_DPC_CONFIG = DPCConfig()
DEFAULT_SIMULATION_CONFIG = SimulationConfig()
