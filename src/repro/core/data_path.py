"""Output-side data path of a processing node.

The Data Path (Figure 4(b)) buffers each output stream and replays it to
downstream subscribers.  Each output stream of a node (or replica) is managed
by an :class:`OutputStreamManager`:

* every tuple leaving the fragment is appended to an output buffer together
  with its *stable sequence number* (the count of stable tuples produced so
  far on the logical stream) -- a replica-independent position that
  subscribers use when they switch replicas (see
  :class:`repro.core.protocol.SubscribeRequest`);
* each subscriber has a cursor into the buffer; flushing sends it everything
  appended since its cursor;
* buffers can be truncated once every replica of every downstream neighbor
  has acknowledged a prefix (Section 8.1), or capped with the policies of
  :class:`repro.config.BufferPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..config import BufferPolicy
from ..errors import BufferOverflowError, ProtocolError
from ..spe.streams import StreamWriter
from ..spe.tuples import StreamTuple
from .protocol import DATA, SubscribeRequest, TupleBatch


@dataclass
class _Subscription:
    """Delivery state for one downstream subscriber of one stream.

    ``filter`` optionally holds the subscription's content predicate (a
    :class:`~repro.deploy.SubscriptionFilter`, duck-typed here so the data
    path stays independent of the deploy layer): data tuples it rejects are
    never sent to this subscriber, while control tuples always pass.
    """

    subscriber: str
    next_index: int = 0
    active: bool = True
    filter: object | None = None

    @property
    def filter_key(self) -> str:
        """Grouping key: subscriptions sharing it may share multicast batches."""
        return self.filter.key if self.filter is not None else ""


class OutputStreamManager:
    """Buffering, subscription handling, and replay for one output stream."""

    def __init__(
        self,
        stream: str,
        owner: str,
        buffer_policy: BufferPolicy | None = None,
    ) -> None:
        self.stream = stream
        self.owner = owner
        self.buffer_policy = buffer_policy or BufferPolicy()
        self._writer = StreamWriter(stream_name=f"{owner}:{stream}")
        #: Relabeled tuples in production order.  Stable entries carry their
        #: stamped ``stable_seq`` directly on the tuple (no wrapper records:
        #: one list cell per buffered tuple).
        self._buffer: list[StreamTuple] = []
        self._base_index = 0  # index of _buffer[0] in the full history
        self._stable_seq = -1  # sequence number of the last stable tuple produced
        self._subscriptions: dict[str, _Subscription] = {}
        #: Largest serialization timestamp ever appended (the control plane
        #: aligns reconfiguration cuts to the bucket boundary past this).
        self.last_appended_stime = float("-inf")
        # Statistics
        self.stable_produced = 0
        self.tentative_produced = 0
        self.undos_produced = 0

    # ------------------------------------------------------------------ production
    @property
    def is_full(self) -> bool:
        limit = self.buffer_policy.max_output_tuples
        return limit is not None and len(self._buffer) >= limit

    def append(self, item: StreamTuple) -> StreamTuple:
        """Relabel ``item`` onto the physical stream and buffer it.

        Raises :class:`BufferOverflowError` when the buffer is bounded, full,
        and configured to block (the back-pressure behaviour of Section 8.1
        for deterministic operators).
        """
        if self.is_full:
            if self.buffer_policy.block_on_full:
                raise BufferOverflowError(
                    f"output buffer for {self.stream!r} at {self.owner!r} is full "
                    f"({len(self._buffer)} tuples)"
                )
            # Convergent-capable diagrams may drop the oldest buffered tuples.
            self._drop_oldest(1)
        physical = self._relabel(item)
        if physical.is_stable:
            self._stable_seq += 1
            # Stamp the replica-independent position onto the tuple so that a
            # subscriber connected to several replicas of this stream can
            # discard stable tuples it already received elsewhere.
            physical = physical.with_stable_seq(self._stable_seq)
            self.stable_produced += 1
        elif physical.is_tentative:
            self.tentative_produced += 1
        elif physical.is_undo:
            self.undos_produced += 1
        self._buffer.append(physical)
        if physical.stime > self.last_appended_stime:
            self.last_appended_stime = physical.stime
        return physical

    def append_all(self, items: Iterable[StreamTuple]) -> list[StreamTuple]:
        append = self.append
        return [append(item) for item in items]

    def _relabel(self, item: StreamTuple) -> StreamTuple:
        if item.is_data:
            # Fast path: relabeled data tuples share the payload mapping.
            return self._writer.data(item.stime, item.values, item.is_stable)
        if item.is_undo:
            # Cross-node undo semantics: revoke everything after the last
            # stable tuple the subscriber received (see protocol.py), so the
            # specific id does not need to be mapped between replicas.
            return self._writer.undo(item.stime, item.undo_from_id or -1)
        if item.is_boundary:
            return self._writer.boundary(max(item.stime, self._writer.last_boundary_stime))
        return self._writer.rec_done(item.stime)

    # ------------------------------------------------------------------ state transfer
    def snapshot_state(self) -> dict:
        """Capture this manager's transferable state (tuples are immutable,
        so a shallow buffer copy suffices)."""
        return {
            "stream": self.stream,
            "writer": self._writer.snapshot(),
            "buffer": list(self._buffer),
            "base_index": self._base_index,
            "stable_seq": self._stable_seq,
            "last_appended_stime": self.last_appended_stime,
        }

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Adopt a partner replica's output state (checkpoint-shipped recovery).

        Every live subscription cursor is moved to the adopted *end* index:
        subscribers followed another replica while this one was down, so
        replaying the adopted buffer's historical tentative/undo tail to them
        would be harmful; a later switch-back renegotiates its own position
        through a stable-seq :class:`SubscribeRequest`.
        """
        self._writer.restore(state["writer"])
        self._buffer = list(state["buffer"])
        self._base_index = int(state["base_index"])
        self._stable_seq = int(state["stable_seq"])
        self.last_appended_stime = float(state["last_appended_stime"])
        end = self._end_index()
        for subscription in self._subscriptions.values():
            subscription.next_index = end

    # ------------------------------------------------------------------ subscriptions
    @property
    def stable_seq(self) -> int:
        """Sequence number of the most recent stable tuple produced."""
        return self._stable_seq

    def subscribers(self) -> list[str]:
        return [s.subscriber for s in self._subscriptions.values() if s.active]

    def subscribe(self, request: SubscribeRequest) -> list[StreamTuple]:
        """Register a subscriber and compute its initial replay.

        Returns the tuples to send immediately (the replay).  Subsequent
        production reaches the subscriber through :meth:`pending_for` /
        :meth:`mark_delivered`.
        """
        if request.stream != self.stream:
            raise ProtocolError(
                f"subscribe for stream {request.stream!r} sent to manager of {self.stream!r}"
            )
        start_index = self._replay_start_index(request)
        entries = self._entries_from(start_index)
        if request.filter is not None:
            # Cursor translation for a filtered subscription: the quoted
            # position was located in full-stream coordinates above; only the
            # slice passing the filter is actually replayed.
            entries = [item for item in entries if request.filter.passes(item)]
        if not request.replay_tentative:
            entries = self._trim_tentative_tail(entries)
        replay: list[StreamTuple] = []
        if request.had_tentative:
            replay.append(self._writer.undo(0.0, -1))
        replay.extend(entries)
        # Live delivery continues from the current end of the buffer; any
        # skipped tentative tail is intentionally dropped (paper, footnote 6).
        self._subscriptions[request.subscriber] = _Subscription(
            subscriber=request.subscriber,
            next_index=self._end_index(),
            active=True,
            filter=request.filter,
        )
        return replay

    def unsubscribe(self, subscriber: str) -> None:
        subscription = self._subscriptions.get(subscriber)
        if subscription is not None:
            subscription.active = False

    def _end_index(self) -> int:
        return self._base_index + len(self._buffer)

    def _entries_from(self, index: int) -> list[StreamTuple]:
        offset = index - self._base_index
        return self._buffer[offset if offset > 0 else 0:]

    def _replay_start_index(self, request: SubscribeRequest) -> int:
        """Index in the full history where this subscriber's replay starts."""
        # Find the buffered entry holding stable tuple #last_stable_seq and
        # start right after it; if the subscriber is ahead of everything we
        # have buffered, start at the end.
        if request.last_stable_seq < 0:
            return self._base_index
        for position, entry in enumerate(self._buffer):
            if entry.stable_seq is not None and entry.stable_seq == request.last_stable_seq:
                return self._base_index + position + 1
        if request.last_stable_seq >= self._stable_seq:
            return self._end_index()
        # The subscriber is behind the truncation point.
        raise ProtocolError(
            f"cannot replay stream {self.stream!r} from stable seq "
            f"{request.last_stable_seq}: buffer truncated"
        )

    @staticmethod
    def _trim_tentative_tail(entries: list[StreamTuple]) -> list[StreamTuple]:
        """Drop everything after the last stable data tuple in ``entries``."""
        last_stable = None
        for position, item in enumerate(entries):
            if item.is_stable:
                last_stable = position
        if last_stable is None:
            return [item for item in entries if not item.is_data]
        return entries[: last_stable + 1]

    def pending_for(self, subscriber: str) -> list[StreamTuple]:
        """Tuples appended since the subscriber's cursor (filter applied)."""
        subscription = self._subscriptions.get(subscriber)
        if subscription is None or not subscription.active:
            return []
        entries = self._entries_from(subscription.next_index)
        if subscription.filter is not None:
            entries = [item for item in entries if subscription.filter.passes(item)]
        return entries

    def pending_batches(self) -> list[tuple[list[StreamTuple], list[str]]]:
        """Pending tuples grouped by subscriber cursor, for multicast delivery.

        Subscribers that are caught up to the same position *and* share the
        same subscription filter share one batch, so in the steady state a
        node sends one :class:`~repro.core.protocol.TupleBatch` (one simulator
        event) per filter group to all of that group's replicas instead of one
        message each.  Filtered groups whose pending slice contains nothing
        for them (every data tuple foreign, no control tuples) are advanced
        past the slice without a send: the filter is deterministic, so the
        slice will never hold anything for them.
        """
        groups: dict[tuple[int, str], list[_Subscription]] = {}
        end = self._end_index()
        for subscription in self._subscriptions.values():
            if not subscription.active or subscription.next_index >= end:
                continue
            key = (subscription.next_index, subscription.filter_key)
            groups.setdefault(key, []).append(subscription)
        batches: list[tuple[list[StreamTuple], list[str]]] = []
        for (index, _filter_key), subscriptions in sorted(
            groups.items(), key=lambda item: item[0]
        ):
            entries = self._entries_from(index)
            filter_ = subscriptions[0].filter
            if filter_ is not None:
                entries = [item for item in entries if filter_.passes(item)]
            if not entries:
                for subscription in subscriptions:
                    subscription.next_index = end
                continue
            batches.append((entries, [s.subscriber for s in subscriptions]))
        return batches

    def mark_delivered(self, subscriber: str) -> None:
        subscription = self._subscriptions.get(subscriber)
        if subscription is not None:
            subscription.next_index = self._end_index()

    # ------------------------------------------------------------------ truncation
    def _drop_oldest(self, count: int) -> None:
        del self._buffer[:count]
        self._base_index += count

    def truncate_delivered(self) -> int:
        """Drop the prefix every active subscriber has already received.

        Returns the number of tuples discarded.  This is the acknowledgment-
        driven truncation of Section 8.1; callers decide when it is safe
        (e.g. only while every downstream replica is subscribed and caught
        up).
        """
        if not self._subscriptions:
            return 0
        active = [s for s in self._subscriptions.values() if s.active]
        if not active:
            return 0
        safe_index = min(s.next_index for s in active)
        removable = max(safe_index - self._base_index, 0)
        if removable:
            self._drop_oldest(removable)
        return removable

    @property
    def buffered_tuples(self) -> int:
        return len(self._buffer)

    def buffered_items(self) -> list[StreamTuple]:
        """The buffered tuples, in production order (diagnostics and tests)."""
        return list(self._buffer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<OutputStreamManager {self.owner}:{self.stream} buffered={len(self._buffer)} "
            f"stable_seq={self._stable_seq} subscribers={self.subscribers()}>"
        )


class DataPath:
    """All output stream managers of one node plus batch sending helpers."""

    def __init__(self, owner: str, buffer_policy: BufferPolicy | None = None) -> None:
        self.owner = owner
        self.buffer_policy = buffer_policy or BufferPolicy()
        self._outputs: dict[str, OutputStreamManager] = {}

    def add_output(self, stream: str) -> OutputStreamManager:
        if stream in self._outputs:
            raise ProtocolError(f"output stream {stream!r} already managed")
        manager = OutputStreamManager(stream, self.owner, self.buffer_policy)
        self._outputs[stream] = manager
        return manager

    def output(self, stream: str) -> OutputStreamManager:
        try:
            return self._outputs[stream]
        except KeyError as exc:
            raise ProtocolError(f"unknown output stream {stream!r} at {self.owner!r}") from exc

    def outputs(self) -> list[OutputStreamManager]:
        return list(self._outputs.values())

    def output_streams(self) -> list[str]:
        return list(self._outputs)

    def make_batch(
        self,
        stream: str,
        tuples: list[StreamTuple],
        node_state=None,
        stream_state=None,
        replay: bool = False,
    ) -> tuple[str, TupleBatch]:
        """Build the network message for a batch on ``stream``.

        ``node_state`` / ``stream_state`` are piggybacked on the batch so the
        receiver's consistency manager can skip its next keep-alive probe.
        ``replay`` marks the direct response to a subscribe request.
        """
        return DATA, TupleBatch.of(
            stream,
            tuples,
            producer=self.owner,
            node_state=node_state,
            stream_state=stream_state,
            replay=replay,
        )
