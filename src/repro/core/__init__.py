"""DPC (Delay, Process, and Correct) -- the paper's primary contribution."""

from .states import NodeState, can_transition, prefer
from .protocol import (
    DATA,
    SUBSCRIBE,
    UNSUBSCRIBE,
    HEARTBEAT_REQUEST,
    HEARTBEAT_RESPONSE,
    RECONCILE_REQUEST,
    RECONCILE_REPLY,
    DataBatch,
    SubscribeRequest,
    UnsubscribeRequest,
    HeartbeatRequest,
    HeartbeatResponse,
    ReconcileRequest,
    ReconcileReply,
)
from .switching import SwitchDecision, choose_upstream
from .input_streams import InputStreamMonitor, ProducerInfo
from .data_path import DataPath, OutputStreamManager
from .consistency_manager import ConsistencyManager
from .node import ProcessingNode
from .buffer_sizing import (
    BufferSizing,
    DiagramClassification,
    OperatorCategory,
    OperatorClassification,
    classify_diagram,
    classify_operator,
    compute_buffer_sizing,
    supported_failure_duration,
)
from .delay_planner import AccumulatedDelayTracker, DelayPlan, DelayPlanner, PathDiagnostic

__all__ = [
    "NodeState",
    "can_transition",
    "prefer",
    "DATA",
    "SUBSCRIBE",
    "UNSUBSCRIBE",
    "HEARTBEAT_REQUEST",
    "HEARTBEAT_RESPONSE",
    "RECONCILE_REQUEST",
    "RECONCILE_REPLY",
    "DataBatch",
    "SubscribeRequest",
    "UnsubscribeRequest",
    "HeartbeatRequest",
    "HeartbeatResponse",
    "ReconcileRequest",
    "ReconcileReply",
    "SwitchDecision",
    "choose_upstream",
    "InputStreamMonitor",
    "ProducerInfo",
    "DataPath",
    "OutputStreamManager",
    "ConsistencyManager",
    "ProcessingNode",
    "BufferSizing",
    "DiagramClassification",
    "OperatorCategory",
    "OperatorClassification",
    "classify_diagram",
    "classify_operator",
    "compute_buffer_sizing",
    "supported_failure_duration",
    "AccumulatedDelayTracker",
    "DelayPlan",
    "DelayPlanner",
    "PathDiagnostic",
]
