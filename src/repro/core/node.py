"""DPC processing node.

A :class:`ProcessingNode` is one replica of one query-diagram fragment.  It
combines the three architectural pieces of Figure 4(b):

* the **query processor** -- a :class:`~repro.spe.engine.LocalEngine` running
  the (fault-tolerance-extended) fragment;
* the **data path** -- input handling plus per-output-stream buffering and
  replay (:class:`~repro.core.data_path.DataPath`);
* the **consistency manager** -- failure detection, upstream switching, state
  advertisement and the inter-replica reconciliation protocol
  (:class:`~repro.core.consistency_manager.ConsistencyManager`).

and implements the DPC behaviours the paper describes:

* in STABLE state, tuples flow through the fragment and are emitted stably as
  SUnion buckets stabilize;
* when an input-stream failure cannot be masked by switching upstream
  replicas, the node checkpoints its fragment, suspends processing for (a
  safety fraction of) its delay budget ``D``, and then processes available
  tuples tentatively according to the configured delay policy (Section 6);
* when every failed input has healed, the node asks a replica partner for
  authorization and reconciles with checkpoint/redo, streaming corrections to
  its downstream neighbors and finishing with a REC_DONE (Section 4.4).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..config import DPCConfig, ProcessingPolicy, SimulationConfig
from ..errors import ProtocolError
from .clock import Clock
from ..sim.events import EventKind
from ..sim.network import Message, Network
from ..spe.checkpoint import DiagramCheckpoint
from ..spe.engine import LocalEngine
from ..spe.operators.sunion import SUnion
from ..spe.query_diagram import QueryDiagram
from ..spe.tuples import StreamTuple
from ..statexfer import PeerRegistry, RecoveryCheckpoint, adopt_checkpoint, capture_checkpoint, transfer_delay
from .consistency_manager import ConsistencyManager
from .data_path import DataPath
from .protocol import (
    CHECKPOINT_REQUEST,
    CHECKPOINT_RESPONSE,
    DATA,
    HEARTBEAT_RESPONSE,
    SOURCE_RESUBSCRIBE,
    SUBSCRIBE,
    UNSUBSCRIBE,
    CheckpointRequest,
    CheckpointResponse,
    HeartbeatResponse,
    SourceResubscribe,
    SubscribeRequest,
    TupleBatch,
    UnsubscribeRequest,
)
from .states import NodeState


class ProcessingNode:
    """One replica of a query-diagram fragment under DPC."""

    def __init__(
        self,
        name: str,
        diagram: QueryDiagram,
        simulator: Clock,
        network: Network,
        config: DPCConfig | None = None,
        sim_config: SimulationConfig | None = None,
        assigned_delay: float | None = None,
        replica_partners: Sequence[str] = (),
        rng_seed: int | None = None,
    ) -> None:
        self.name = name
        self.endpoint = name
        self.simulator = simulator
        self.network = network
        self.config = config or DPCConfig()
        self.sim_config = sim_config or SimulationConfig()
        self.config.validate()
        self.sim_config.validate()
        #: Delay budget D assigned to this node's SUnions (defaults to X).
        self.assigned_delay = (
            assigned_delay if assigned_delay is not None else self.config.max_incremental_latency
        )

        self.diagram = diagram
        self.engine = LocalEngine(diagram)
        self.data_path = DataPath(owner=name, buffer_policy=self.config.buffer_policy)
        for stream in diagram.output_streams:
            self.data_path.add_output(stream)
        self.cm = ConsistencyManager(
            owner=self,
            simulator=simulator,
            network=network,
            config=self.config,
            replica_partners=replica_partners,
            rng_seed=rng_seed,
        )

        # Give every SUnion access to the node clock so buckets know how long
        # they have been buffered (drives the Section 6 delay policies).
        for operator in diagram:
            if isinstance(operator, SUnion):
                operator.arrival_clock = lambda: self.simulator.now

        # --- failure handling state ------------------------------------------------
        self._checkpoint: DiagramCheckpoint | None = None
        self._fragment_dirty = False
        self._reconciling = False
        self._redo_positions: dict[str, int] = {}
        self._crashed = False
        self._started = False
        self._retired = False
        self._next_control_at = 0.0
        #: Periodic timer chains started by :meth:`start`; cancelled when the
        #: replica is retired by a scale-in so a decommissioned fragment stops
        #: consuming simulator events.
        self._tick_handles: list = []

        # --- checkpoint-shipped recovery (repro.statexfer) -------------------------
        #: Peer registry wired by the deploy layer; ``None`` (hand-built
        #: nodes) keeps the legacy full-replay recovery path.
        self.statexfer_registry: PeerRegistry | None = None
        #: Latest periodic recovery checkpoint.  Held in memory only, so a
        #: crash loses it -- exactly the fail-stop model the paper assumes.
        self._recovery_checkpoint: RecoveryCheckpoint | None = None
        #: True between sending a CHECKPOINT_REQUEST to a partner and adopting
        #: (or giving up on) its response; all other traffic is dropped.
        self._adopting = False
        self._recovery_epoch = 0
        self._next_recovery_capture_at = 0.0
        self._recovery_started_at = 0.0
        self.recovery_checkpoints_taken = 0
        #: One record per recover() call: mode ("checkpoint" / "replay" /
        #: "replay-fallback"), replay-suffix length, shipped item count, and
        #: the modeled recovery time.  Surfaced by the runtime summary.
        self.recoveries: list[dict] = []
        # --- unsolicited state advertisement ---------------------------------------
        #: Endpoints that monitor this node's state (downstream consumers and
        #: the client proxy); they receive a pushed HeartbeatResponse every
        #: keepalive period unless a data batch already carried the state.
        self._state_watchers: list[str] = []
        self._last_sent_to: dict[str, float] = {}
        self._next_push_at = 0.0

        # --- statistics -----------------------------------------------------------
        self.reconciliations_completed = 0
        self.reconciliations_aborted = 0
        self.checkpoints_taken = 0
        #: Egress accounting: (batch, receiver) sends and per-receiver tuples
        #: put on the wire across every output stream.  Filtered subscriptions
        #: exist to shrink these (each subscriber only receives its slice).
        self.batches_sent = 0
        self.tuples_sent = 0

        network.register(self.endpoint, self._on_message)

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Start the unified periodic tick (data flush plus control loop).

        When ``keepalive_period`` is a whole multiple of ``batch_interval``
        (the common case), one timer chain drives both the data path (every
        ``batch_interval``) and the consistency manager's control work (every
        ``keepalive_period``, run from the same tick when it comes due),
        halving the number of timer events per node compared to two
        independent chains.  Misaligned cadences fall back to two chains so
        both configured periods are honored exactly.
        """
        if self._started:
            return
        self._started = True
        batch = self.sim_config.batch_interval
        keepalive = self.config.keepalive_period
        self._next_push_at = self.simulator.now + keepalive
        ratio = keepalive / batch
        if ratio >= 1.0 and abs(ratio - round(ratio)) < 1e-9:
            self.cm.attach_external_driver()
            self._next_control_at = self.simulator.now + keepalive
            self._tick_handles.append(
                self.simulator.schedule_periodic(
                    batch,
                    self._unified_tick,
                    kind=EventKind.TIMER,
                    description=f"{self.name} tick",
                    start_delay=batch,
                )
            )
        else:
            self.cm.start()
            self._tick_handles.append(
                self.simulator.schedule_periodic(
                    batch,
                    self._periodic_tick,
                    kind=EventKind.TIMER,
                    description=f"{self.name} data tick",
                    start_delay=batch,
                )
            )

    def _unified_tick(self, now: float) -> None:
        control_due = now + 1e-9 >= self._next_control_at
        if control_due:
            self._next_control_at = now + self.config.keepalive_period
        # Data work first: tentative emission must get a chance to mark the
        # fragment dirty before the control loop evaluates healing.
        if not self._crashed:
            self._periodic_tick(now)
        if control_due:
            # The control loop keeps running while the node is crashed (its
            # messages are dropped by the network): failure flags raised while
            # the node is down drive the post-recovery healing path.
            self.cm.control_tick(now)

    @property
    def state(self) -> NodeState:
        return self.cm.state

    @property
    def is_adopting(self) -> bool:
        """True while waiting for a partner's checkpoint transfer."""
        return self._adopting

    @property
    def fragment_dirty(self) -> bool:
        """True while the fragment state reflects tentative processing."""
        return self._fragment_dirty

    @property
    def is_reconciling(self) -> bool:
        return self._reconciling

    # ------------------------------------------------------------------ wiring helpers
    def register_input_stream(
        self,
        stream: str,
        producers: Sequence[str],
        source_producers: Sequence[str] = (),
        push_producers: Sequence[str] = (),
        subscription_filter=None,
    ) -> None:
        """Declare an input stream and who can produce it (build-time wiring)."""
        if stream not in self.diagram.input_streams:
            raise ProtocolError(f"fragment of {self.name!r} has no input stream {stream!r}")
        self.cm.register_input(
            stream,
            producers,
            source_producers,
            push_producers,
            subscription_filter=subscription_filter,
        )

    def deregister_input_stream(self, stream: str) -> None:
        """Forget an input stream whose producer fragment was decommissioned.

        Live scale-in rewiring: the monitor is dropped, so the control loop
        stops probing the retired producers and data still in flight from
        them is classified "ignore" and discarded at arrival.
        """
        self.cm.monitors.pop(stream, None)

    def add_state_watcher(self, endpoint: str) -> None:
        """Register ``endpoint`` to receive pushed state advertisements."""
        if endpoint not in self._state_watchers:
            self._state_watchers.append(endpoint)

    def remove_state_watcher(self, endpoint: str) -> None:
        """Stop advertising state to a retired endpoint."""
        if endpoint in self._state_watchers:
            self._state_watchers.remove(endpoint)
        self._last_sent_to.pop(endpoint, None)

    def register_subscriber(self, stream: str, subscriber: str, subscription_filter=None) -> None:
        """Attach a downstream subscriber at build time (no replay needed)."""
        self.data_path.output(stream).subscribe(
            SubscribeRequest(
                stream=stream,
                subscriber=subscriber,
                last_stable_seq=-1,
                filter=subscription_filter,
            )
        )

    def subscribe_live(self, stream: str) -> None:
        """Subscribe to ``stream``'s primary producer from the monitor's cursor.

        The scale-out attach path: unlike the build-time
        :meth:`register_subscriber` (which wires the producer side directly
        and discards replay), this sends a real SUBSCRIBE quoting the seeded
        ``stable_received`` cursor, so the producer replays exactly the
        suffix the new fragment has not covered -- the same request shape the
        checkpoint-adoption rejoin uses.
        """
        monitor = self.cm.monitor(stream)
        primary = monitor.primary
        if primary is None or monitor.producers[primary].is_source:
            return
        monitor.awaiting_replay = True
        self.network.send(
            self.endpoint,
            primary,
            SUBSCRIBE,
            SubscribeRequest(
                stream=stream,
                subscriber=self.endpoint,
                last_stable_seq=monitor.stable_received - 1,
                had_tentative=False,
                replay_tentative=False,
                filter=monitor.subscription_filter,
            ),
        )

    def invalidate_recovery_checkpoint(self) -> None:
        """Drop the held recovery checkpoint after a live rewiring.

        Changing an operator's port layout (or extracting handoff state)
        makes previously captured state stale: adopting it would restore a
        ``port_boundaries`` list of the wrong length or resurrect state that
        was shipped away.  The next periodic capture replaces it.
        """
        self._recovery_checkpoint = None

    def retire(self) -> None:
        """Gracefully and permanently remove this replica (scale-in).

        Unlike :meth:`crash`, retirement is final: the periodic timer chains
        are cancelled so the fragment stops consuming simulator events, and
        the endpoint is unregistered from the network so late traffic is
        dropped at delivery.  The caller (the deployment) is responsible for
        unsubscribing this endpoint from its upstreams *before* retiring it.
        """
        self._retired = True
        self._crashed = True
        self._recovery_checkpoint = None
        self._adopting = False
        for handle in self._tick_handles:
            handle.cancel()
        self._tick_handles.clear()
        if self.cm.control_handle is not None:
            self.cm.control_handle.cancel()
            self.cm.control_handle = None
        self.network.unregister(self.endpoint)

    # ------------------------------------------------------------------ message handling
    def _on_message(self, message: Message, now: float) -> None:
        if self._crashed:
            return
        if self._adopting:
            # While adopting a partner checkpoint, data and control traffic is
            # dropped: stale-cursor flushes racing the adoption would
            # interleave with state the checkpoint already covers.
            # Subscription management still goes through (it only touches the
            # output managers, and stable-seq dedup makes any overlap with the
            # adopted buffer harmless) so a subscriber switching to this
            # replica mid-window is not left waiting for its replay.
            if message.kind == CHECKPOINT_RESPONSE:
                self._on_checkpoint_response(message.payload, now)
            elif message.kind == SUBSCRIBE:
                self._on_subscribe(message.payload, now)
            elif message.kind == UNSUBSCRIBE:
                self._on_unsubscribe(message.payload)
            return
        if message.kind == CHECKPOINT_REQUEST:
            self._on_checkpoint_request(message.payload, now)
            return
        if message.kind == CHECKPOINT_RESPONSE:
            self._on_checkpoint_response(message.payload, now)
            return
        if self.cm.handle_message(message, now):
            return
        if message.kind == DATA:
            self._on_data(message.payload, message.sender, now)
        elif message.kind == SUBSCRIBE:
            self._on_subscribe(message.payload, now)
        elif message.kind == UNSUBSCRIBE:
            self._on_unsubscribe(message.payload)

    def _on_subscribe(self, request: SubscribeRequest, now: float) -> None:
        manager = self.data_path.output(request.stream)
        replay = manager.subscribe(request)
        # The response is sent even when the replay is empty: subscribers
        # recovering from a crash gate on the replay-flagged batch to leave
        # their awaiting_replay defense, and on a filtered subscription no
        # later tuple can substitute for it (stamped gaps are routine there,
        # so position equality never re-arms acceptance).
        kind, batch = self.data_path.make_batch(
            request.stream,
            replay,
            node_state=self.cm.state,
            stream_state=self.output_stream_states().get(request.stream),
            replay=True,
        )
        if self.network.send(self.endpoint, request.subscriber, kind, batch):
            self._last_sent_to[request.subscriber] = now
            self.batches_sent += 1
            self.tuples_sent += len(replay)
        manager.mark_delivered(request.subscriber)

    def _on_unsubscribe(self, request: UnsubscribeRequest) -> None:
        self.data_path.output(request.stream).unsubscribe(request.subscriber)

    def _on_data(self, batch: TupleBatch, sender: str, now: float) -> None:
        if batch.producer_node_state is not None:
            self.cm.note_producer_state(
                sender, batch.stream, batch.producer_node_state, batch.producer_stream_state, now
            )
        role = self.cm.classify_producer(batch.stream, sender)
        if role == "ignore":
            return
        if batch.replay:
            self.cm.note_replay(batch.stream)
        stream = batch.stream
        monitor = self.cm.monitor(stream)
        if monitor.awaiting_replay and monitor.track_source_ids and not batch.replay:
            # A stale-cursor source flush racing the SOURCE_RESUBSCRIBE
            # replay: the link is FIFO, so everything arriving before the
            # replay-flagged batch predates the cursor reset and is covered
            # by the adopted checkpoint plus the replay.
            return
        feed_fragment = role == "primary" and not self._reconciling
        record_arrival = monitor.record_tuple
        to_feed: list[StreamTuple] = []
        append = to_feed.append
        saw_tentative = False
        for item in batch.tuples:
            if record_arrival(item, now) == "duplicate":
                continue
            if item.is_undo:
                self.apply_local_undo(stream, now)
                continue
            if item.is_rec_done:
                continue
            if feed_fragment:
                append(item)
                if item.is_tentative:
                    saw_tentative = True
        if to_feed:
            if saw_tentative:
                self._set_dirty(True)
            outputs = self.engine.push(stream, to_feed)
            self._handle_fragment_outputs(outputs)

    # ------------------------------------------------------------------ fragment outputs
    def _set_dirty(self, dirty: bool) -> None:
        """Track whether the fragment state reflects tentative processing.

        While dirty, the fragment's SOutputs downgrade everything they forward
        to tentative: nothing the fragment emits can be trusted as stable
        until the node reconciles.  The transition into the dirty state is the
        moment the paper requires a checkpoint: "a node checkpoints the state
        of its query diagram ... before processing any tentative tuples".
        """
        if dirty and not self._fragment_dirty and not self._reconciling and self._checkpoint is None:
            self._take_checkpoint(self.simulator.now)
        self._fragment_dirty = dirty
        if dirty:
            self._set_hold(True)
        for soutput in self.engine.soutputs():
            soutput.downgrade_to_tentative = dirty

    def _set_hold(self, hold: bool) -> None:
        """Freeze (or release) watermark-driven emission of every SUnion.

        While the node is handling a failure, buckets must only leave SUnions
        through the delay-policy-driven force emissions; when the hold is
        released, whatever the watermark already stabilized is emitted.
        """
        released: list[tuple[str, list[StreamTuple]]] = []
        for operator in self.diagram:
            if not isinstance(operator, SUnion):
                continue
            if operator.hold_buckets and not hold:
                operator.hold_buckets = False
                produced = operator.release_held_buckets()
                if produced:
                    released.append((operator.name, produced))
            else:
                operator.hold_buckets = hold
        for operator_name, produced in released:
            outputs = self.engine.push_operator_outputs(operator_name, produced)
            self._handle_fragment_outputs(outputs)

    def _handle_fragment_outputs(self, outputs: Mapping[str, list[StreamTuple]]) -> None:
        for stream, tuples in outputs.items():
            if tuples:
                self.data_path.output(stream).append_all(tuples)

    # ------------------------------------------------------------------ periodic work
    def _periodic_tick(self, now: float) -> None:
        if self._crashed or self._adopting:
            return
        self._emit_tentative_if_due(now)
        self._flush_outputs(now)
        self._push_state(now)
        self._housekeeping(now)
        self._maybe_capture_recovery_checkpoint(now)

    def _push_state(self, now: float) -> None:
        """Advertise this node's state to watchers that saw no recent data.

        Replaces the request/response keep-alive round trip: every keepalive
        period, watchers that did not receive a data batch (whose piggybacked
        state already serves as the advertisement) get one multicast
        HeartbeatResponse.  Watchers detect this node's death as pushes
        stopping, exactly as they would detect unanswered probes.
        """
        if not self._state_watchers or now + 1e-9 < self._next_push_at:
            return
        self._next_push_at = now + self.config.keepalive_period
        cutoff = now - self.config.keepalive_period
        stale = [
            watcher
            for watcher in self._state_watchers
            if self._last_sent_to.get(watcher, float("-inf")) <= cutoff
        ]
        if not stale:
            return
        response = HeartbeatResponse(
            responder=self.endpoint,
            node_state=self.cm.state,
            stream_states=dict(self.output_stream_states()),
        )
        self.network.send_many(self.endpoint, stale, HEARTBEAT_RESPONSE, response)

    def _emit_tentative_if_due(self, now: float) -> None:
        """Apply the delay policy to buffered SUnion buckets (Section 6)."""
        if self._reconciling or self.cm.state is not NodeState.UP_FAILURE:
            return
        first_detection = self.cm.first_failure_detected_at()
        if first_detection is None:
            return
        initial_hold = self.config.delay_safety_factor * self.assigned_delay
        if now < first_detection + initial_hold:
            return  # initial suspension: every policy first waits for D
        policy = self._current_policy(now)
        if policy is ProcessingPolicy.SUSPEND:
            return
        if policy is ProcessingPolicy.DELAY:
            min_hold = self.config.delay_safety_factor * self.assigned_delay
        else:
            min_hold = self.config.tentative_bucket_wait
        produced_any = False
        for operator in self.diagram:
            if not isinstance(operator, SUnion):
                continue
            produced = operator.force_emit_held_longer_than(now, min_hold)
            if not produced:
                continue
            produced_any = True
            self._set_dirty(True)
            outputs = self.engine.push_operator_outputs(operator.name, produced)
            self._handle_fragment_outputs(outputs)
        if produced_any:
            self._flush_outputs(now)

    def _current_policy(self, now: float) -> ProcessingPolicy:
        """Failure-time vs stabilization-time policy (Figure 13 variants)."""
        if self.cm.all_failed_inputs_healed(now):
            return self.config.delay_policy.during_stabilization
        return self.config.delay_policy.during_failure

    def _flush_outputs(self, now: float) -> None:
        stream_states: dict[str, NodeState] | None = None
        for manager in self.data_path.outputs():
            batches = manager.pending_batches()
            if not batches:
                continue
            if stream_states is None:
                stream_states = dict(self.output_stream_states())
            for pending, subscribers in batches:
                # Unreachable subscribers keep buffering (retry when the link
                # heals) without being counted as send attempts in the stats.
                reachable = [
                    s for s in subscribers if self.network.can_communicate(self.endpoint, s)
                ]
                if not reachable:
                    continue
                kind, batch = self.data_path.make_batch(
                    manager.stream,
                    pending,
                    node_state=self.cm.state,
                    stream_state=stream_states.get(manager.stream),
                )
                for subscriber in self.network.send_many(self.endpoint, reachable, kind, batch):
                    manager.mark_delivered(subscriber)
                    self._last_sent_to[subscriber] = now
                    self.batches_sent += 1
                    self.tuples_sent += len(pending)

    def _housekeeping(self, now: float) -> None:
        """Keep redo buffers bounded while the node is fully stable."""
        if (
            self.cm.state is NodeState.STABLE
            and not self._fragment_dirty
            and not self.cm.failed_streams()
            and self._checkpoint is None
        ):
            for monitor in self.cm.monitors.values():
                monitor.clear_stable_buffer()

    def _maybe_capture_recovery_checkpoint(self, now: float) -> None:
        """Periodically capture the fragment for checkpoint-shipped recovery.

        Only while the node is clean and STABLE: a checkpoint taken during
        tentative processing or reconciliation would ship unstable state.
        The capture is a pure in-memory read (no simulated events), but it
        acknowledges the captured input positions to the data sources so they
        can truncate the log prefixes the checkpoint now covers.
        """
        interval = self.config.checkpoint_interval
        registry = self.statexfer_registry
        if (
            interval is None
            or registry is None
            or self._fragment_dirty
            or self._reconciling
            or self._checkpoint is not None
            or self.cm.state is not NodeState.STABLE
            or self.cm.failed_streams()
            or now + 1e-9 < self._next_recovery_capture_at
        ):
            return
        self._next_recovery_capture_at = now + interval
        self._recovery_checkpoint = capture_checkpoint(self, now)
        self.recovery_checkpoints_taken += 1
        for stream, monitor in self.cm.monitors.items():
            if not monitor.track_source_ids:
                continue
            source = registry.source_of(stream)
            if source is not None:
                source.acknowledge_checkpoint(self.endpoint, monitor.source_position)

    # ------------------------------------------------------------------ ConsistencyOwner interface
    def on_input_failure(self, stream: str, now: float) -> None:
        """An input stream failed and could not be masked by switching."""
        if self._reconciling:
            return  # handled by the abort check in the redo loop
        if self._checkpoint is None:
            self._take_checkpoint(now)
        self._set_hold(True)

    def on_inputs_healed(self, now: float) -> None:
        """Every failed input stream healed."""
        if self._fragment_dirty or self._reconciling:
            return  # reconciliation (requested via wants_reconciliation) will clean up
        # The failure was short enough that nothing tentative was processed:
        # the buckets buffered during the hold stabilize now that data and
        # boundaries flow again, so the node simply resumes STABLE operation.
        for monitor in self.cm.monitors.values():
            monitor.mark_healed()
        self._checkpoint = None
        self._set_hold(False)
        self._flush_outputs(now)
        if self.cm.state is NodeState.UP_FAILURE:
            self.cm.set_state(NodeState.STABLE)

    def wants_reconciliation(self) -> bool:
        return self._fragment_dirty and not self._reconciling

    def apply_local_undo(self, stream: str, now: float) -> None:
        """Drop buffered tentative tuples of ``stream`` from the fragment's SUnions.

        The serializer is not necessarily the fragment's entry operator (a
        shard fragment filters its key-hash slice at the ingress, in front of
        its SUnion), so the search walks downstream from each entry until it
        reaches the first SUnion.
        """
        for operator_name, _port in self.engine.entry_operators(stream):
            sunion = self._first_sunion_from(operator_name)
            if sunion is not None:
                sunion.drop_tentative()

    def _first_sunion_from(self, operator_name: str) -> SUnion | None:
        """The first SUnion at or downstream of ``operator_name`` (BFS order)."""
        frontier = [operator_name]
        seen: set[str] = set()
        while frontier:
            name = frontier.pop(0)
            if name in seen:
                continue
            seen.add(name)
            operator = self.diagram.operator(name)
            if isinstance(operator, SUnion):
                return operator
            frontier.extend(c.target for c in self.diagram.downstream_of(name))
        return None

    def output_stream_states(self) -> dict[str, NodeState]:
        """Per-output-stream consistency states advertised in heartbeats."""
        state = self.cm.state
        if not self.config.per_stream_granularity or state is NodeState.STABLE:
            return {stream: state for stream in self.diagram.output_streams}
        affected = self._outputs_affected_by(self.cm.failed_streams())
        if self._fragment_dirty and not affected:
            # Conservative: once the whole fragment was rolled into tentative
            # processing every output is affected.
            affected = set(self.diagram.output_streams)
        return {
            stream: (state if stream in affected else NodeState.STABLE)
            for stream in self.diagram.output_streams
        }

    def _outputs_affected_by(self, failed_streams: Sequence[str]) -> set[str]:
        """Output streams reachable from the entry operators of failed inputs."""
        reachable: set[str] = set()
        frontier = [
            binding.operator
            for binding in self.diagram.inputs
            if binding.stream in set(failed_streams)
        ]
        seen: set[str] = set()
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            for connection in self.diagram.downstream_of(name):
                frontier.append(connection.target)
        for binding in self.diagram.outputs:
            if binding.operator in seen:
                reachable.add(binding.stream)
        return reachable

    # ------------------------------------------------------------------ checkpoint / reconciliation
    def _take_checkpoint(self, now: float, clear_buffers: bool = True) -> None:
        """Snapshot the fragment before any tentative tuple is processed.

        ``clear_buffers`` is False when the caller has already arranged for
        the redo buffers to contain exactly the input *not* reflected in the
        checkpointed state (the abort-during-reconciliation path).
        """
        self._checkpoint = self.engine.checkpoint(created_at=now)
        self.engine.note_checkpoint_on_outputs()
        if clear_buffers:
            for monitor in self.cm.monitors.values():
                monitor.clear_stable_buffer()
        self.checkpoints_taken += 1

    def start_reconciliation(self, now: float) -> None:
        """Authorization granted: reconcile with checkpoint/redo (Section 4.4)."""
        if self._reconciling:
            return
        if self._checkpoint is None:
            # Nothing to roll back to (e.g. the failure produced no tentative
            # processing); just clean up.
            self.on_inputs_healed(now)
            return
        self.cm.set_state(NodeState.STABILIZATION)
        self._reconciling = True
        self._set_dirty(False)
        for soutput in self.engine.soutputs():
            soutput.begin_reconciliation()
        self.engine.restore(self._checkpoint)
        # The redo reprocesses stable input only; its buckets stabilize and
        # must be emitted as corrections, so the hold is lifted.
        for operator in self.diagram:
            if isinstance(operator, SUnion):
                operator.hold_buckets = False
        self._redo_positions = {stream: 0 for stream in self.cm.monitors}
        self.simulator.schedule_in(
            self.config.checkpoint_cost,
            self._redo_chunk,
            kind=EventKind.INTERNAL,
            description=f"{self.name} redo chunk",
        )

    @property
    def _redo_chunk_interval(self) -> float:
        return max(self.sim_config.batch_interval, 0.05)

    def _redo_chunk(self, now: float) -> None:
        """Reprocess a slice of the buffered stable input (streaming corrections)."""
        if not self._reconciling:
            return
        if self.cm.failed_streams() and not self.cm.all_failed_inputs_healed(now):
            self._abort_reconciliation(now)
            return
        budget = max(int(self.config.redo_rate * self._redo_chunk_interval), 1)
        exhausted = True
        for stream, monitor in self.cm.monitors.items():
            if budget <= 0:
                exhausted = False
                break
            position = self._redo_positions.get(stream, 0)
            buffer = monitor.stable_buffer
            if position >= len(buffer):
                continue
            take = buffer[position: position + budget]
            data_count = sum(1 for item in take if item.is_data)
            budget -= max(data_count, 1)
            self._redo_positions[stream] = position + len(take)
            for operator_name, port in self.engine.entry_operators(stream):
                outputs = self.engine.push_operator(operator_name, port, take)
                self._handle_fragment_outputs(outputs)
            if self._redo_positions[stream] < len(buffer):
                exhausted = False
        self._flush_outputs(now)
        if exhausted and all(
            self._redo_positions.get(stream, 0) >= len(monitor.stable_buffer)
            for stream, monitor in self.cm.monitors.items()
        ):
            self._finish_reconciliation(now)
        else:
            self.simulator.schedule_in(
                self._redo_chunk_interval,
                self._redo_chunk,
                kind=EventKind.INTERNAL,
                description=f"{self.name} redo chunk",
            )

    def _finish_reconciliation(self, now: float) -> None:
        for binding in self.diagram.outputs:
            soutput = self.engine.soutput_for(binding.stream)
            tail = soutput.end_reconciliation(stime=now)
            manager = self.data_path.output(binding.stream)
            for item in tail:
                manager.append(item)
        self._flush_outputs(now)
        for monitor in self.cm.monitors.values():
            monitor.clear_stable_buffer()
            monitor.mark_healed()
        self._redo_positions = {}
        self._checkpoint = None
        self._reconciling = False
        self._set_dirty(False)
        self.reconciliations_completed += 1
        still_failed = [
            stream
            for stream, monitor in self.cm.monitors.items()
            if monitor.detect_failure(now, self.config.failure_detection_timeout) or monitor.failed
        ]
        if still_failed:
            self.cm.set_state(NodeState.UP_FAILURE)
            self._take_checkpoint(now)
            self._set_hold(True)
        else:
            self.cm.set_state(NodeState.STABLE)

    def _abort_reconciliation(self, now: float) -> None:
        """A new failure arrived mid-redo: close the correction burst and resume."""
        for binding in self.diagram.outputs:
            soutput = self.engine.soutput_for(binding.stream)
            tail = soutput.end_reconciliation(stime=now)
            manager = self.data_path.output(binding.stream)
            for item in tail:
                manager.append(item)
        self._flush_outputs(now)
        # Keep only the input that was not reprocessed yet; it belongs to the
        # new checkpoint interval.
        for stream, monitor in self.cm.monitors.items():
            position = self._redo_positions.get(stream, 0)
            del monitor.stable_buffer[:position]
        self._redo_positions = {}
        self._reconciling = False
        self.reconciliations_aborted += 1
        self.cm.set_state(NodeState.UP_FAILURE)
        self._checkpoint = None
        # The buffers were just truncated to the not-yet-reprocessed suffix;
        # the new checkpoint must keep them for the next reconciliation.
        self._take_checkpoint(now, clear_buffers=False)
        self._set_hold(True)

    # ------------------------------------------------------------------ crash / recovery
    def crash(self) -> None:
        """Fail-stop this replica: it stops sending, receiving, and processing."""
        self._crashed = True
        # Fail-stop loses everything in memory, including the recovery
        # checkpoint this replica held for *its* partners.
        self._recovery_checkpoint = None
        self._adopting = False
        self.network.crash(self.endpoint)

    def recover(self) -> None:
        """Restart and rejoin the replica group.

        Fast path (checkpoint-shipped): when a reachable replica partner holds
        a recovery checkpoint, fetch it and rejoin from shipped state plus the
        short replay suffix past the checkpoint's stream cursors -- O(suffix
        since last capture) instead of O(retained window).  Fallback: rebuild
        the pre-crash state through full subscription replay, as before.
        """
        self.network.recover(self.endpoint)
        self._crashed = False
        self._checkpoint = None
        self._fragment_dirty = False
        self._reconciling = False
        now = self.simulator.now
        if self._begin_checkpoint_recovery(now):
            return
        self._legacy_recover(now, mode="replay")

    def _legacy_recover(self, now: float, mode: str) -> None:
        """Rebuild state via full subscription replay (the pre-statexfer path)."""
        replayed = self._pending_replay_estimate()
        for monitor in self.cm.monitors.values():
            monitor.clear_stable_buffer()
            # Failure flags raised while the node was down are deliberately
            # kept: the normal healing path (boundaries flowing again on every
            # failed input) is what moves the node back to STABLE once it has
            # caught up with the replayed input.
            monitor.last_boundary_arrival = now
            # Source streams replay automatically from the source's frozen
            # delivery cursor; no replay-flagged response will come, so any
            # gate left armed by an abandoned adoption must be cleared.
            monitor.awaiting_replay = False
            primary = monitor.primary
            if primary is not None and not monitor.producers[primary].is_source:
                # Until the replay arrives, reject stable data beyond the
                # expected position: the upstream's pre-crash cursor may have
                # counted in-flight (crash-dropped) tuples as delivered, and
                # its next flush must not advance us past that gap.
                monitor.awaiting_replay = True
                self.network.send(
                    self.endpoint,
                    primary,
                    SUBSCRIBE,
                    SubscribeRequest(
                        stream=monitor.stream,
                        subscriber=self.endpoint,
                        last_stable_seq=monitor.stable_received - 1,
                        had_tentative=False,
                        replay_tentative=False,
                        filter=monitor.subscription_filter,
                    ),
                )
        self.recoveries.append(
            {
                "mode": mode,
                "at": now,
                "replayed": replayed,
                "shipped_items": 0,
                "transfer_delay": 0.0,
                "recovery_s": replayed / self.config.redo_rate,
            }
        )

    def _begin_checkpoint_recovery(self, now: float) -> bool:
        """Start adopting a partner's checkpoint; False when none is usable.

        Discovery is a zero-message registry peek (no simulated events are
        spent finding out that nothing is available -- crucial for keeping
        checkpoint-less runs byte-identical); the transfer itself travels as
        messages with a size-proportional delay.
        """
        registry = self.statexfer_registry
        if registry is None or self.config.checkpoint_interval is None:
            return False
        partner: str | None = None
        expected_items = 0
        remote = getattr(registry, "remote", False)
        for candidate in self.cm.replica_partners:
            if not self.network.can_communicate(self.endpoint, candidate):
                continue
            if remote:
                # Live backend: partners run in other processes, so there is
                # nothing to peek at.  Ask the first reachable partner blind;
                # an empty CHECKPOINT_RESPONSE (or a dead partner, via the
                # fallback timer) degrades to full subscription replay.
                partner = candidate
                break
            peer = registry.node_of(candidate)
            if peer is None or peer._recovery_checkpoint is None:
                continue
            # "Usable" means cheaper under the recovery-time model than full
            # replay from this node's own frozen positions.  A partner that
            # stopped capturing before we crashed (e.g. it spent the failure
            # window in UP_FAILURE) can hold a checkpoint *older* than our own
            # state; paying the transfer to then replay a longer suffix would
            # be a strictly worse rejoin.
            candidate_ckpt = peer._recovery_checkpoint
            own_s = self._pending_replay_estimate() / self.config.redo_rate
            ckpt_s = (
                transfer_delay(self.config, candidate_ckpt.item_count)
                + self._checkpoint_replay_estimate(candidate_ckpt) / self.config.redo_rate
            )
            if ckpt_s >= own_s:
                continue
            partner = candidate
            expected_items = candidate_ckpt.item_count
            break
        if partner is None:
            return False
        self._adopting = True
        self._recovery_epoch += 1
        self._recovery_started_at = now
        epoch = self._recovery_epoch
        self.network.send(
            self.endpoint,
            partner,
            CHECKPOINT_REQUEST,
            CheckpointRequest(requester=self.endpoint),
        )
        # Safety net: if the partner (or its response) dies mid-transfer, give
        # up on adoption and fall back to full subscription replay.
        deadline = (
            transfer_delay(self.config, expected_items)
            + 2 * self.sim_config.network_latency
            + 3 * self.config.keepalive_period
        )
        self.simulator.schedule_in(
            deadline,
            lambda fire_time, expected_epoch=epoch: self._adoption_fallback(
                fire_time, expected_epoch
            ),
            kind=EventKind.INTERNAL,
            description=f"{self.name} checkpoint-recovery fallback",
        )
        return True

    def _adoption_fallback(self, now: float, expected_epoch: int) -> None:
        if expected_epoch != self._recovery_epoch or not self._adopting or self._crashed:
            return
        self._adopting = False
        self._legacy_recover(now, mode="replay-fallback")

    def _on_checkpoint_request(self, request: CheckpointRequest, now: float) -> None:
        """Serve this replica's latest recovery checkpoint to a partner.

        The response is delayed by the modeled transfer time (fixed cost plus
        a per-item cost), so shipping a large checkpoint genuinely races the
        replay it replaces.
        """
        checkpoint = self._recovery_checkpoint
        delay = transfer_delay(self.config, checkpoint.item_count if checkpoint else 0)

        def _respond(fire_time: float) -> None:
            if self._crashed:
                return
            self.network.send(
                self.endpoint,
                request.requester,
                CHECKPOINT_RESPONSE,
                CheckpointResponse(responder=self.endpoint, checkpoint=checkpoint),
            )

        self.simulator.schedule_in(
            delay,
            _respond,
            kind=EventKind.INTERNAL,
            description=f"{self.name} checkpoint transfer",
        )

    def _on_checkpoint_response(self, response: CheckpointResponse, now: float) -> None:
        if not self._adopting:
            return  # late response; the fallback already took over
        self._adopting = False
        self._recovery_epoch += 1  # disarm the pending fallback timer
        checkpoint = response.checkpoint
        if checkpoint is None:
            self._legacy_recover(now, mode="replay-fallback")
            return
        adopt_checkpoint(self, checkpoint, now)
        self._resubscribe_from_adopted(now)
        replayed = self._pending_replay_estimate()
        self.recoveries.append(
            {
                "mode": "checkpoint",
                "at": now,
                "replayed": replayed,
                "shipped_items": checkpoint.item_count,
                "transfer_delay": now - self._recovery_started_at,
                "recovery_s": (now - self._recovery_started_at)
                + replayed / self.config.redo_rate,
            }
        )
        # Captures resume on the normal cadence relative to the rejoin.
        self._next_recovery_capture_at = now + (self.config.checkpoint_interval or 0.0)

    def _resubscribe_from_adopted(self, now: float) -> None:
        """Resubscribe every input from the adopted checkpoint's cursors."""
        registry = self.statexfer_registry
        for monitor in self.cm.monitors.values():
            monitor.last_boundary_arrival = now
            primary = monitor.primary
            if primary is None:
                continue
            if monitor.producers[primary].is_source:
                # The source's delivery cursor froze at this node's pre-crash
                # position; reposition it to the adopted cursor.  The replay
                # gate stays armed until the replay-flagged response arrives
                # (FIFO links: everything before it predates the reset).
                monitor.awaiting_replay = True
                self.network.send(
                    self.endpoint,
                    primary,
                    SOURCE_RESUBSCRIBE,
                    SourceResubscribe(
                        stream=monitor.stream,
                        subscriber=self.endpoint,
                        after_tuple_id=monitor.source_position,
                    ),
                )
            else:
                monitor.awaiting_replay = True
                self.network.send(
                    self.endpoint,
                    primary,
                    SUBSCRIBE,
                    SubscribeRequest(
                        stream=monitor.stream,
                        subscriber=self.endpoint,
                        last_stable_seq=monitor.stable_received - 1,
                        had_tentative=False,
                        replay_tentative=False,
                        filter=monitor.subscription_filter,
                    ),
                )

    def _pending_replay_estimate(self) -> int:
        """Tuples upstream neighbors will replay past this node's positions.

        A zero-cost read through the peer registry (0 when the node was wired
        by hand without one); feeds the recovery-time model
        ``recovery_s = transfer + replayed / redo_rate``.
        """
        return self._replay_estimate(
            lambda monitor: (monitor.stable_received, monitor.source_position)
        )

    def _checkpoint_replay_estimate(self, checkpoint) -> int:
        """Replay suffix a rejoin from ``checkpoint``'s cursors would incur."""
        cursors = checkpoint.input_cursors

        def positions(monitor):
            cursor = cursors.get(monitor.stream)
            if cursor is None:
                return (monitor.stable_received, monitor.source_position)
            return (cursor.stable_received, cursor.source_position)

        return self._replay_estimate(positions)

    def _replay_estimate(self, positions) -> int:
        registry = self.statexfer_registry
        if registry is None:
            return 0
        total = 0
        for stream, monitor in self.cm.monitors.items():
            primary = monitor.primary
            if primary is None:
                continue
            stable_received, source_position = positions(monitor)
            if monitor.producers[primary].is_source:
                source = registry.source_of(stream)
                if source is not None:
                    total += len(source.log.replay_after(source_position))
            else:
                peer = registry.node_of(primary)
                if peer is not None:
                    produced = peer.data_path.output(stream).stable_seq
                    total += max(0, produced - stable_received + 1)
        return total

    # ------------------------------------------------------------------ introspection
    def statistics(self) -> dict:
        """Counters used by tests, examples, and the experiment harness."""
        outputs = {
            manager.stream: {
                "stable": manager.stable_produced,
                "tentative": manager.tentative_produced,
                "undos": manager.undos_produced,
                "buffered": manager.buffered_tuples,
            }
            for manager in self.data_path.outputs()
        }
        return {
            "name": self.name,
            "state": self.cm.state.value,
            "checkpoints": self.checkpoints_taken,
            "reconciliations": self.reconciliations_completed,
            "reconciliations_aborted": self.reconciliations_aborted,
            "switches": self.cm.switches_performed,
            "tuples_processed": self.engine.tuples_processed,
            "batches_sent": self.batches_sent,
            "tuples_sent": self.tuples_sent,
            "outputs": outputs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProcessingNode {self.name!r} state={self.cm.state.value}>"
