"""DPC node and stream states (Figure 5 of the paper)."""

from __future__ import annotations

from enum import Enum


class NodeState(str, Enum):
    """Consistency state of a processing node (or of one of its streams).

    * ``STABLE`` -- all inputs stable, outputs stable.
    * ``UP_FAILURE`` -- at least one input stream is unavailable or carries
      tentative tuples; outputs may be tentative.
    * ``STABILIZATION`` -- inputs were corrected and the node is reconciling
      its state and correcting its outputs.
    * ``FAILURE`` -- the node itself is unreachable.  Nodes never advertise
      this state; peers infer it from missing heartbeat responses.
    """

    STABLE = "stable"
    UP_FAILURE = "up_failure"
    STABILIZATION = "stabilization"
    FAILURE = "failure"


#: Transitions of the DPC state machine (Figure 5).  ``FAILURE`` is excluded
#: because it is an externally observed state, not one a node enters by itself.
VALID_TRANSITIONS: dict[NodeState, frozenset[NodeState]] = {
    NodeState.STABLE: frozenset({NodeState.UP_FAILURE}),
    NodeState.UP_FAILURE: frozenset({NodeState.STABILIZATION, NodeState.STABLE}),
    NodeState.STABILIZATION: frozenset({NodeState.STABLE, NodeState.UP_FAILURE}),
}


def can_transition(current: NodeState, target: NodeState) -> bool:
    """True when the DPC state machine allows ``current`` -> ``target``."""
    if current == target:
        return True
    return target in VALID_TRANSITIONS.get(current, frozenset())


#: Preference order used when choosing which upstream replica to read from
#: (Table II): STABLE is best, then UP_FAILURE, then STABILIZATION, and an
#: unreachable replica (FAILURE) is last.
STATE_PREFERENCE: dict[NodeState, int] = {
    NodeState.STABLE: 0,
    NodeState.UP_FAILURE: 1,
    NodeState.STABILIZATION: 2,
    NodeState.FAILURE: 3,
}


def prefer(a: NodeState, b: NodeState) -> NodeState:
    """The more desirable of two upstream stream states."""
    return a if STATE_PREFERENCE[a] <= STATE_PREFERENCE[b] else b
