"""Buffer management and sizing (Section 8.1 of the paper).

The paper distinguishes two classes of query diagrams:

* **Deterministic but not convergent** -- an input tuple can influence the
  operator state forever (e.g. a count-based join buffer with an unbounded
  window).  For these, the only safe behaviour when buffers fill up is to
  block and create back-pressure up to the data sources, so that eventual
  consistency is never lost ("system delusion" is avoided).
* **Convergent-capable** -- every input tuple affects the state only for a
  bounded amount of (stime) time.  Stateless operators, value-based sliding
  window aggregates, and windowed joins are all convergent-capable.  For
  these diagrams one can compute a maximum buffer size ``S`` that guarantees
  the latest consistent state can be rebuilt and a user-chosen window of the
  most recent results corrected, so availability can be maintained through
  arbitrarily long failures with bounded buffers.

This module classifies operators and diagrams, computes the *state horizon*
of a diagram (how far back in stime its current state can depend on its
inputs), and turns a correction-window requirement plus input rates into
concrete buffer sizes, which can then be applied through
:class:`repro.config.BufferPolicy`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping

from ..config import BufferPolicy
from ..spe.operators.aggregate import Aggregate
from ..spe.operators.base import Operator
from ..spe.operators.filter import Filter
from ..spe.operators.join import Join
from ..spe.operators.map import Map
from ..spe.operators.sjoin import SJoin
from ..spe.operators.soutput import SOutput
from ..spe.operators.sunion import SUnion
from ..spe.operators.union import Union
from ..spe.query_diagram import QueryDiagram


class OperatorCategory(str, Enum):
    """Convergence classification of one operator (Section 8.1)."""

    #: No state at all: Filter, Map, Union, SOutput.
    STATELESS = "stateless"
    #: State bounded in stime: windowed Aggregate / Join, SUnion buckets.
    CONVERGENT = "convergent"
    #: Deterministic but state may depend on the entire history.
    UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class OperatorClassification:
    """Category plus the stime horizon the operator's state can span."""

    operator: str
    category: OperatorCategory
    #: How far back (in stime units) the operator's current state can reach.
    horizon: float
    detail: str = ""

    @property
    def is_convergent(self) -> bool:
        return self.category is not OperatorCategory.UNBOUNDED


def classify_operator(operator: Operator) -> OperatorClassification:
    """Classify one operator according to Section 8.1.

    Unknown operator types are conservatively classified as UNBOUNDED with an
    infinite horizon, because nothing is known about how long their state
    retains the influence of an input tuple.
    """
    name = operator.name
    if isinstance(operator, (Filter, Map, SOutput)):
        return OperatorClassification(name, OperatorCategory.STATELESS, 0.0, "no per-tuple state")
    if isinstance(operator, SUnion):
        return OperatorClassification(
            name,
            OperatorCategory.CONVERGENT,
            operator.bucket_size,
            f"buffers at most one bucket of {operator.bucket_size:g} stime units",
        )
    if isinstance(operator, Union):
        return OperatorClassification(name, OperatorCategory.STATELESS, 0.0, "no per-tuple state")
    if isinstance(operator, Aggregate):
        return OperatorClassification(
            name,
            OperatorCategory.CONVERGENT,
            operator.window.size,
            f"sliding window of {operator.window.size:g} stime units",
        )
    if isinstance(operator, SJoin):
        return OperatorClassification(
            name,
            OperatorCategory.CONVERGENT,
            operator.window,
            f"join state pruned beyond {operator.window:g} stime units "
            f"(and capped at {operator.state_size} tuples)",
        )
    if isinstance(operator, Join):
        return OperatorClassification(
            name,
            OperatorCategory.CONVERGENT,
            operator.window,
            f"join window of {operator.window:g} stime units",
        )
    return OperatorClassification(
        name,
        OperatorCategory.UNBOUNDED,
        math.inf,
        f"unknown operator type {type(operator).__name__}; assumed history-dependent",
    )


@dataclass(frozen=True)
class DiagramClassification:
    """Convergence analysis of a whole query-diagram fragment."""

    diagram: str
    operators: Mapping[str, OperatorClassification]
    #: Maximum summed horizon along any input-to-output path (stime units).
    state_horizon: float

    @property
    def is_convergent_capable(self) -> bool:
        """True when every operator's state is bounded in stime."""
        return all(c.is_convergent for c in self.operators.values())

    @property
    def unbounded_operators(self) -> list[str]:
        return [name for name, c in self.operators.items() if not c.is_convergent]


def classify_diagram(diagram: QueryDiagram) -> DiagramClassification:
    """Classify every operator and compute the fragment's state horizon.

    The state horizon is the largest sum of per-operator horizons along any
    path through the fragment: to rebuild the state that produced the most
    recent output, the redo must replay input going back at least that far.
    """
    classifications = {name: classify_operator(op) for name, op in diagram.operators.items()}
    order = diagram.topological_order()
    accumulated: dict[str, float] = {}
    for name in order:
        own = classifications[name].horizon
        upstream = [accumulated[c.source] for c in diagram.upstream_of(name)]
        accumulated[name] = own + (max(upstream) if upstream else 0.0)
    horizon = max((accumulated[b.operator] for b in diagram.outputs), default=0.0)
    return DiagramClassification(
        diagram=diagram.name, operators=classifications, state_horizon=horizon
    )


# --------------------------------------------------------------------------- sizing
@dataclass(frozen=True)
class BufferSizing:
    """Concrete buffer sizes derived from a correction-window requirement."""

    diagram: str
    convergent_capable: bool
    #: How much recent output (seconds of stime) the user wants corrected.
    correction_window: float
    #: Fragment state horizon (stime units).
    state_horizon: float
    #: Required input-buffer span in stime units: correction window + horizon + slack.
    input_span: float
    #: Required input-buffer size, in tuples, per input stream.
    input_tuples: Mapping[str, int]
    #: Required output-buffer size in tuples (per output stream).
    output_tuples: Mapping[str, int]
    notes: tuple = field(default_factory=tuple)

    def to_buffer_policy(self, block_on_full: bool | None = None) -> BufferPolicy:
        """Translate the sizing into a :class:`~repro.config.BufferPolicy`.

        For convergent-capable diagrams the default is to drop the oldest
        tuples once the bound is reached (the bound already guarantees the
        requested correction window); for other diagrams the default is to
        block, which creates back-pressure and avoids system delusion.
        """
        if block_on_full is None:
            block_on_full = not self.convergent_capable
        max_output = max(self.output_tuples.values(), default=None)
        max_input = max(self.input_tuples.values(), default=None)
        return BufferPolicy(
            max_output_tuples=max_output,
            max_input_tuples=max_input,
            block_on_full=block_on_full,
        )


def compute_buffer_sizing(
    diagram: QueryDiagram,
    *,
    correction_window: float,
    input_rates: Mapping[str, float],
    output_rates: Mapping[str, float] | None = None,
    safety_factor: float = 1.25,
) -> BufferSizing:
    """Compute the Section 8.1 buffer sizes for ``diagram``.

    Parameters
    ----------
    correction_window:
        The window of most recent results (in seconds of stime) that must be
        correctable after a failure heals -- e.g. 3600 for "the last hour".
    input_rates:
        Data-tuple rate (tuples per stime second) of each external input
        stream of the fragment.
    output_rates:
        Rate of each output stream; defaults to the summed input rate, which
        is exact for the relay/merge fragments used in the experiments and an
        upper bound for filtering fragments.
    safety_factor:
        Multiplied onto the tuple counts to absorb disorder, boundary delays,
        and rate jitter.

    For diagrams that are not convergent-capable the sizing still reports the
    requested window but flags that bounded buffers cannot guarantee eventual
    consistency for failures that outlast them (the node must block instead).
    """
    if correction_window < 0:
        raise ValueError(f"correction_window must be non-negative, got {correction_window}")
    if safety_factor < 1.0:
        raise ValueError(f"safety_factor must be >= 1, got {safety_factor}")
    classification = classify_diagram(diagram)
    missing = [s for s in diagram.input_streams if s not in input_rates]
    if missing:
        raise ValueError(f"missing input rates for streams {missing}")

    notes: list[str] = []
    horizon = classification.state_horizon
    if not classification.is_convergent_capable:
        notes.append(
            "fragment contains operators with unbounded state horizons "
            f"({', '.join(classification.unbounded_operators)}); bounded buffers only "
            "cover failures shorter than the buffered span -- configure blocking "
            "back-pressure to preserve eventual consistency"
        )
        horizon = max(
            (c.horizon for c in classification.operators.values() if math.isfinite(c.horizon)),
            default=0.0,
        )

    input_span = correction_window + horizon
    input_tuples = {
        stream: int(math.ceil(input_rates[stream] * input_span * safety_factor))
        for stream in diagram.input_streams
    }

    total_input_rate = sum(input_rates[stream] for stream in diagram.input_streams)
    if output_rates is None:
        output_rates = {stream: total_input_rate for stream in diagram.output_streams}
        notes.append("output rates defaulted to the aggregate input rate (upper bound)")
    output_tuples = {
        stream: int(math.ceil(output_rates.get(stream, total_input_rate) * correction_window * safety_factor))
        for stream in diagram.output_streams
    }

    return BufferSizing(
        diagram=diagram.name,
        convergent_capable=classification.is_convergent_capable,
        correction_window=correction_window,
        state_horizon=classification.state_horizon,
        input_span=input_span,
        input_tuples=input_tuples,
        output_tuples=output_tuples,
        notes=tuple(notes),
    )


def supported_failure_duration(
    buffer_tuples: int,
    input_rate: float,
    *,
    state_horizon: float = 0.0,
) -> float:
    """Longest failure (seconds) a buffer of ``buffer_tuples`` can fully correct.

    The inverse of :func:`compute_buffer_sizing`: with deterministic (but not
    convergent-capable) operators, a bounded buffer limits the failure
    durations after which the node can still reconcile.  Beyond this duration
    the node must have been blocking (back-pressure), or consistency of the
    truncated interval is lost.
    """
    if input_rate <= 0:
        raise ValueError(f"input_rate must be positive, got {input_rate}")
    if buffer_tuples < 0:
        raise ValueError(f"buffer_tuples must be non-negative, got {buffer_tuples}")
    return max(buffer_tuples / input_rate - state_horizon, 0.0)
