"""Runtime messages exchanged by DPC components.

Every message travels over :class:`repro.sim.network.Network` with a string
``kind`` and a payload dataclass from this module.  The set of messages
matches the communication the paper describes:

* data tuples between neighbors (``DATA``);
* subscription management when a node switches upstream replicas
  (``SUBSCRIBE`` / ``UNSUBSCRIBE``, Section 4.3 and Figure 8);
* keep-alive requests and responses advertising per-stream consistency
  states (``HEARTBEAT_REQUEST`` / ``HEARTBEAT_RESPONSE``, Section 4.2.3);
* the inter-replica protocol that staggers reconciliations
  (``RECONCILE_REQUEST`` / ``RECONCILE_REPLY``, Section 4.4.3 and Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..spe.tuples import StreamTuple
from .states import NodeState

# Message kind identifiers.
DATA = "data"
SUBSCRIBE = "subscribe"
UNSUBSCRIBE = "unsubscribe"
HEARTBEAT_REQUEST = "heartbeat_request"
HEARTBEAT_RESPONSE = "heartbeat_response"
RECONCILE_REQUEST = "reconcile_request"
RECONCILE_REPLY = "reconcile_reply"


@dataclass(frozen=True)
class DataBatch:
    """A batch of tuples for one stream, sent producer -> subscriber.

    One network event carries the whole vector of tuples (the batched tuple
    transport).  Processing nodes piggyback their DPC state on every batch so
    that, while data flows, downstream consistency managers need no separate
    keep-alive round trips; sources leave the state fields ``None``.
    """

    stream: str
    tuples: tuple[StreamTuple, ...]
    producer: str
    producer_node_state: NodeState | None = None
    producer_stream_state: NodeState | None = None

    @classmethod
    def of(
        cls,
        stream: str,
        tuples: Sequence[StreamTuple],
        producer: str,
        node_state: NodeState | None = None,
        stream_state: NodeState | None = None,
    ) -> "DataBatch":
        return cls(
            stream=stream,
            tuples=tuple(tuples),
            producer=producer,
            producer_node_state=node_state,
            producer_stream_state=stream_state,
        )


#: Alias emphasizing the batched transport role of :class:`DataBatch`.
TupleBatch = DataBatch


@dataclass(frozen=True)
class SubscribeRequest:
    """Ask a producer to start (or restart) sending one of its output streams.

    ``last_stable_seq`` is the number of stable tuples the subscriber has
    already received on the logical stream (a replica-independent position,
    because replicas produce the same stable tuples in the same order).
    ``had_tentative`` tells the producer that the subscriber holds tentative
    tuples after that point, so corrections must be preceded by an UNDO.
    ``replay_tentative`` asks the producer to also send its current tentative
    tail; a subscriber switching to a replica that is itself in UP_FAILURE
    leaves this False and accepts the small gap the paper notes (footnote 6).
    """

    stream: str
    subscriber: str
    last_stable_seq: int = -1
    had_tentative: bool = False
    replay_tentative: bool = False


@dataclass(frozen=True)
class UnsubscribeRequest:
    stream: str
    subscriber: str


@dataclass(frozen=True)
class HeartbeatRequest:
    """Keep-alive probe; the requester wants the state of ``streams``."""

    requester: str
    streams: tuple[str, ...] = ()


@dataclass(frozen=True)
class HeartbeatResponse:
    """Reply to a keep-alive: overall node state and per-stream states."""

    responder: str
    node_state: NodeState
    stream_states: Mapping[str, NodeState] = field(default_factory=dict)

    def state_of(self, stream: str) -> NodeState:
        return self.stream_states.get(stream, self.node_state)


@dataclass(frozen=True)
class ReconcileRequest:
    """Ask a replica for permission to enter STABILIZATION."""

    requester: str
    request_id: int


@dataclass(frozen=True)
class ReconcileReply:
    """Grant or reject a :class:`ReconcileRequest`."""

    responder: str
    request_id: int
    granted: bool
