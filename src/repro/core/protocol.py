"""Runtime messages exchanged by DPC components.

Every message travels over :class:`repro.sim.network.Network` with a string
``kind`` and a payload dataclass from this module.  The set of messages
matches the communication the paper describes:

* data tuples between neighbors (``DATA``);
* subscription management when a node switches upstream replicas
  (``SUBSCRIBE`` / ``UNSUBSCRIBE``, Section 4.3 and Figure 8);
* keep-alive requests and responses advertising per-stream consistency
  states (``HEARTBEAT_REQUEST`` / ``HEARTBEAT_RESPONSE``, Section 4.2.3);
* the inter-replica protocol that staggers reconciliations
  (``RECONCILE_REQUEST`` / ``RECONCILE_REPLY``, Section 4.4.3 and Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..spe.tuples import StreamTuple
from .states import NodeState

# Message kind identifiers.
DATA = "data"
SUBSCRIBE = "subscribe"
UNSUBSCRIBE = "unsubscribe"
HEARTBEAT_REQUEST = "heartbeat_request"
HEARTBEAT_RESPONSE = "heartbeat_response"
RECONCILE_REQUEST = "reconcile_request"
RECONCILE_REPLY = "reconcile_reply"
CHECKPOINT_REQUEST = "checkpoint_request"
CHECKPOINT_RESPONSE = "checkpoint_response"
SOURCE_RESUBSCRIBE = "source_resubscribe"


@dataclass(frozen=True)
class DataBatch:
    """A batch of tuples for one stream, sent producer -> subscriber.

    One network event carries the whole vector of tuples (the batched tuple
    transport).  Processing nodes piggyback their DPC state on every batch so
    that, while data flows, downstream consistency managers need no separate
    keep-alive round trips; sources leave the state fields ``None``.

    ``replay`` marks the direct response to a :class:`SubscribeRequest`: the
    batch starts exactly where the subscriber's quoted cursor ends.  Consumers
    awaiting such a replay use the flag to tell it apart from stale-cursor
    flushes racing it -- essential for *filtered* subscriptions, where the
    replay's first stable tuple legitimately jumps the stamped position
    (foreign tuples in between were filtered at the producer) and a position
    check alone cannot distinguish a filter gap from a real one.
    """

    stream: str
    tuples: tuple[StreamTuple, ...]
    producer: str
    producer_node_state: NodeState | None = None
    producer_stream_state: NodeState | None = None
    replay: bool = False

    @classmethod
    def of(
        cls,
        stream: str,
        tuples: Sequence[StreamTuple],
        producer: str,
        node_state: NodeState | None = None,
        stream_state: NodeState | None = None,
        replay: bool = False,
    ) -> "DataBatch":
        return cls(
            stream=stream,
            tuples=tuple(tuples),
            producer=producer,
            producer_node_state=node_state,
            producer_stream_state=stream_state,
            replay=replay,
        )


#: Alias emphasizing the batched transport role of :class:`DataBatch`.
TupleBatch = DataBatch


@dataclass(frozen=True)
class SubscribeRequest:
    """Ask a producer to start (or restart) sending one of its output streams.

    ``last_stable_seq`` is the number of stable tuples the subscriber has
    already received on the logical stream (a replica-independent position,
    because replicas produce the same stable tuples in the same order).
    ``had_tentative`` tells the producer that the subscriber holds tentative
    tuples after that point, so corrections must be preceded by an UNDO.
    ``replay_tentative`` asks the producer to also send its current tentative
    tail; a subscriber switching to a replica that is itself in UP_FAILURE
    leaves this False and accepts the small gap the paper notes (footnote 6).

    ``filter`` optionally attaches a content predicate (a
    :class:`~repro.deploy.SubscriptionFilter`) the producer evaluates before
    sending: the subscriber only receives the slice passing the filter, plus
    every control tuple.  ``last_stable_seq`` stays in *full-stream*
    coordinates (the stamped positions of the logical stream); the producer
    translates it into a buffer position and replays the filtered suffix.
    """

    stream: str
    subscriber: str
    last_stable_seq: int = -1
    had_tentative: bool = False
    replay_tentative: bool = False
    filter: object | None = None


@dataclass(frozen=True)
class UnsubscribeRequest:
    stream: str
    subscriber: str


@dataclass(frozen=True)
class HeartbeatRequest:
    """Keep-alive probe; the requester wants the state of ``streams``."""

    requester: str
    streams: tuple[str, ...] = ()


@dataclass(frozen=True)
class HeartbeatResponse:
    """Reply to a keep-alive: overall node state and per-stream states."""

    responder: str
    node_state: NodeState
    stream_states: Mapping[str, NodeState] = field(default_factory=dict)

    def state_of(self, stream: str) -> NodeState:
        return self.stream_states.get(stream, self.node_state)


@dataclass(frozen=True)
class CheckpointRequest:
    """Ask a replica partner for its latest recovery checkpoint.

    Sent by a replica that just restarted after a crash (Section 4.3: a
    recovering node "rebuilds its state" from a peer).  The responder answers
    with a :class:`CheckpointResponse` after a size-proportional transfer
    delay, so shipping state races the subscription replay it replaces.
    """

    requester: str


@dataclass(frozen=True)
class CheckpointResponse:
    """Reply to a :class:`CheckpointRequest`.

    ``checkpoint`` is a :class:`repro.statexfer.RecoveryCheckpoint` (or
    ``None`` when the responder has no usable checkpoint, e.g. checkpointing
    is disabled or no capture has happened yet); the requester falls back to
    full subscription replay on ``None``.
    """

    responder: str
    checkpoint: object | None = None


@dataclass(frozen=True)
class SourceResubscribe:
    """Reposition a data source's delivery cursor for one subscriber.

    ``after_tuple_id`` is a tuple id in the source's :class:`StreamLog`
    coordinates: the source rewinds (or advances) the subscriber's cursor to
    it and replays everything after it, flagging the first batch ``replay``
    so the subscriber can tell it apart from stale-cursor flushes already in
    flight.  Used when a recovering replica adopts a peer checkpoint whose
    input cursor differs from the cursor the source froze at crash time.
    """

    stream: str
    subscriber: str
    after_tuple_id: int


@dataclass(frozen=True)
class ReconcileRequest:
    """Ask a replica for permission to enter STABILIZATION."""

    requester: str
    request_id: int


@dataclass(frozen=True)
class ReconcileReply:
    """Grant or reject a :class:`ReconcileRequest`."""

    responder: str
    request_id: int
    granted: bool
