"""Per-input-stream bookkeeping for a DPC consumer (node or client proxy).

Each logical input stream of a node is tracked by an
:class:`InputStreamMonitor`.  The monitor knows which producers (a data source
or the replicas of an upstream node) can provide the stream, which one is
currently the *primary* (feeding live processing) and which one, during an
upstream stabilization, is the *correcting* connection delivering the stable
version in the background (Section 4.4.3).  It also keeps the evidence DPC
needs for failure detection and healing:

* arrival time of the latest boundary tuple (missing boundaries == failure,
  Section 4.2.3);
* whether tentative tuples have been received since the last stable one;
* the count of stable tuples received (the replica-independent position used
  in subscriptions);
* the stable tuples and boundaries buffered since the last checkpoint, which
  the node replays during checkpoint/redo reconciliation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..spe.tuples import StreamTuple
from .states import NodeState


@dataclass
class ProducerInfo:
    """What the consumer knows about one producer of an input stream."""

    endpoint: str
    is_source: bool = False
    #: Stream state last advertised via heartbeat response (sources are
    #: considered STABLE unless their boundaries stop flowing).
    advertised_state: NodeState = NodeState.STABLE
    last_response_at: float = 0.0
    #: When the producer last piggybacked its state on a data batch.  Only
    #: this freshness suppresses keep-alive probes: while data flows, more is
    #: coming, so a probe adds nothing -- whereas a probe *response* must not
    #: suppress the next probe or silent producers would be sampled at half
    #: the configured rate.
    last_piggyback_at: float = float("-inf")
    #: True when the producer pushes unsolicited state advertisements every
    #: keepalive period, making explicit probes to it unnecessary (its death
    #: shows up as pushes stopping, exactly like unanswered probes would).
    pushes_state: bool = False
    reachable: bool = True

    def effective_state(self, now: float, timeout: float) -> NodeState:
        """State used by the switching rules, accounting for silence."""
        if self.is_source:
            return NodeState.STABLE
        if not self.reachable or now - self.last_response_at > timeout:
            return NodeState.FAILURE
        return self.advertised_state


@dataclass
class InputStreamMonitor:
    """All DPC state attached to one logical input stream."""

    stream: str
    producers: dict[str, ProducerInfo] = field(default_factory=dict)
    primary: str | None = None
    correcting: str | None = None
    #: Content predicate of this consumer's subscription (a
    #: :class:`~repro.deploy.SubscriptionFilter`), attached to every
    #: SubscribeRequest the consumer sends when it switches replicas or
    #: recovers, so the new producer keeps filtering the same slice.  With a
    #: filter, stamped stable positions legitimately arrive with gaps.
    subscription_filter: object | None = None

    # --- failure detection evidence -----------------------------------------
    last_boundary_arrival: float = 0.0
    last_boundary_stime: float = float("-inf")
    last_data_arrival: float = 0.0
    tentative_since_stable: int = 0
    failed: bool = False
    failure_detected_at: float | None = None
    #: True once the upstream signalled the end of its corrections (REC_DONE)
    #: or, for source streams, once boundaries flow again after a failure.
    rec_done_received: bool = False

    # --- replica-independent position ----------------------------------------
    stable_received: int = 0
    #: Last source-log tuple id processed on this stream (data *or* boundary;
    #: source tuples carry no stable_seq, so this is the replayable cursor a
    #: recovery checkpoint records for source-fed streams).  Only maintained
    #: when :attr:`track_source_ids` is set, i.e. a data source feeds the
    #: stream directly.
    source_position: int = -1
    track_source_ids: bool = False
    #: True between a crash-recovery resubscription and the arrival of its
    #: replay.  While set, stable tuples *beyond* the expected position are
    #: rejected: they come from the producer's stale pre-crash cursor (whose
    #: in-flight tuples the crash dropped) racing ahead of the replay, and
    #: accepting them would advance the position past the gap so the replay
    #: itself would then be discarded as duplicate.
    awaiting_replay: bool = False

    # --- redo buffer ----------------------------------------------------------
    stable_buffer: list[StreamTuple] = field(default_factory=list)

    # --- statistics -----------------------------------------------------------
    tentative_received: int = 0
    undos_received: int = 0

    # ------------------------------------------------------------------ producers
    def add_producer(self, endpoint: str, is_source: bool = False) -> ProducerInfo:
        info = ProducerInfo(endpoint=endpoint, is_source=is_source)
        self.producers[endpoint] = info
        if is_source:
            self.track_source_ids = True
        if self.primary is None:
            self.primary = endpoint
        return info

    def producer_states(self, now: float, timeout: float) -> dict[str, NodeState]:
        return {
            name: info.effective_state(now, timeout) for name, info in self.producers.items()
        }

    @property
    def has_source_producer(self) -> bool:
        return any(info.is_source for info in self.producers.values())

    # ------------------------------------------------------------------ arrivals
    def record_tuple(self, item: StreamTuple, now: float) -> str:
        """Update detection evidence and the redo buffer for one arrival.

        Returns ``"accept"`` for tuples the consumer should process and
        ``"duplicate"`` for stable tuples it already received from another
        replica of the same logical stream (identified by their
        replica-independent ``stable_seq``).

        While :attr:`awaiting_replay` is set, stable tuples beyond the
        expected position are rejected as stale-cursor races.  The defense is
        disarmed at *batch* granularity when the replay-flagged response to
        this consumer's subscribe request arrives (see
        :meth:`~repro.core.consistency_manager.ConsistencyManager.note_replay`):
        on a *filtered* subscription stamped gaps are routine, so no per-tuple
        position check could tell the legitimate replay from a stale flush.
        """
        # Ordered by steady-state frequency: stable data first, then
        # punctuation, then the failure-handling tuple kinds.
        if item.is_stable:
            if self.track_source_ids and item.tuple_id <= self.source_position:
                # Source tuples carry no stable_seq; their log id is the
                # replica-independent position instead.  Re-deliveries below
                # the processed cursor happen after a checkpoint adoption
                # rewound the source's delivery cursor.
                return "duplicate"
            if item.stable_seq is not None and item.stable_seq < self.stable_received:
                return "duplicate"
            if (
                self.awaiting_replay
                and item.stable_seq is not None
                and item.stable_seq > self.stable_received
            ):
                # Stale-cursor data racing the resubscription replay; the
                # replay covers it from the expected position onward.
                return "duplicate"
            self.awaiting_replay = False
            self.last_data_arrival = now
            if item.stable_seq is not None:
                self.stable_received = item.stable_seq + 1
            else:
                self.stable_received += 1
            if self.track_source_ids:
                self.source_position = item.tuple_id
            self.tentative_since_stable = 0
            self.stable_buffer.append(item)
            return "accept"
        if item.is_boundary:
            self.last_boundary_arrival = now
            self.last_boundary_stime = max(self.last_boundary_stime, item.stime)
            if self.track_source_ids and item.tuple_id <= self.source_position:
                # Re-delivered source punctuation (see the stable-data path);
                # it already served as liveness evidence above.
                return "duplicate"
            if self.awaiting_replay:
                # Stale-cursor punctuation racing the resubscription replay:
                # it promises stability for stimes whose data we have not
                # received yet (the replay re-delivers data and boundaries
                # interleaved).  Feeding it would advance the fragment's
                # watermark past the replayed data.  It still counts as
                # liveness evidence (above), but is not processed.
                return "duplicate"
            self.stable_buffer.append(item)
            return "accept"
        if item.is_tentative:
            self.last_data_arrival = now
            self.tentative_received += 1
            self.tentative_since_stable += 1
            return "accept"
        if item.is_undo:
            self.undos_received += 1
            self.tentative_since_stable = 0
            return "accept"
        if item.is_rec_done:
            self.rec_done_received = True
        return "accept"

    # ------------------------------------------------------------------ failure / healing
    def boundary_silent_for(self, now: float) -> float:
        """Seconds since the last boundary tuple arrived."""
        return now - self.last_boundary_arrival

    def detect_failure(self, now: float, timeout: float) -> bool:
        """True when this input stream should be declared failed *now*.

        Either boundaries stopped arriving for longer than ``timeout`` or the
        stream started carrying tentative tuples (Section 4.2.3).
        """
        if self.failed:
            return False
        silent = self.boundary_silent_for(now) > timeout
        tentative = self.tentative_since_stable > 0
        if silent or tentative:
            self.failed = True
            self.failure_detected_at = now
            self.rec_done_received = False
            return True
        return False

    def is_healed(self, now: float, timeout: float) -> bool:
        """True when the failure on this stream can be considered healed.

        For a stream fed directly by a data source, healing means boundaries
        flow again (the source replays whatever was missed).  For a stream fed
        by an upstream node, healing additionally requires that the upstream
        finished its own corrections (REC_DONE) -- or never produced tentative
        data at all -- and advertises STABLE again.
        """
        if not self.failed:
            return True
        boundaries_flowing = self.boundary_silent_for(now) <= timeout
        if not boundaries_flowing:
            return False
        if self.has_source_producer:
            return True
        primary_info = self.producers.get(self.primary) if self.primary else None
        primary_stable = (
            primary_info is not None
            and primary_info.effective_state(now, timeout=max(timeout, 1.0)) is NodeState.STABLE
        )
        if self.tentative_received == 0:
            return primary_stable
        return self.rec_done_received and primary_stable

    def mark_healed(self) -> None:
        """Reset failure flags after the node finished handling the failure."""
        self.failed = False
        self.failure_detected_at = None
        self.rec_done_received = False
        self.tentative_since_stable = 0

    # ------------------------------------------------------------------ redo buffer
    def take_stable_buffer(self) -> list[StreamTuple]:
        """Return and keep the buffered stable tuples (ordered by arrival)."""
        return list(self.stable_buffer)

    def clear_stable_buffer(self) -> None:
        self.stable_buffer.clear()

    @property
    def buffered_stable_tuples(self) -> int:
        return sum(1 for item in self.stable_buffer if item.is_data)
