"""Clock seam shared by the simulated and live execution backends.

Every protocol component (nodes, consistency managers, data sources, client
proxies) drives its timers and reads "now" through the interface below.  The
discrete-event :class:`~repro.sim.event_loop.Simulator` has always exposed
exactly this surface -- it *is* the canonical implementation -- so extracting
the seam is a typing-only change: simulated runs execute the same bytecode
and stay byte-identical (the golden digests pin this).

The live backend's :class:`~repro.live.clock.LiveClock` implements the same
protocol over an asyncio event loop and ``time.monotonic()``, which is what
lets the identical node/SPE code run as real OS processes in wall-clock time
(see DESIGN.md, "Live backend").

Contract notes, shared by both implementations:

* ``now`` is in seconds from the deployment's time origin (virtual time zero
  for the simulator, the supervisor-chosen epoch for the live clock).
* Callbacks receive the firing time as their single positional argument.
* ``schedule_at`` / ``schedule_in`` return a cancellable handle; pass it to
  :meth:`Clock.cancel` (one-shot timers).
* ``schedule_periodic`` returns a handle whose ``cancel()`` stops the chain;
  the first occurrence fires after ``start_delay`` (default: one period) and
  the chain re-arms *after* the callback runs, so a callback cancelling its
  own handle stops the chain immediately.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

from ..sim.events import EventKind

#: Timer callback signature: receives the firing time.
ClockCallback = Callable[[float], None]


@runtime_checkable
class TimerHandle(Protocol):
    """Handle for a (periodic) timer chain; cancelling it stops the chain."""

    cancelled: bool

    def cancel(self) -> None: ...


@runtime_checkable
class Clock(Protocol):
    """What protocol components require from their execution backend.

    Structurally satisfied by :class:`~repro.sim.event_loop.Simulator`
    (virtual time) and :class:`~repro.live.clock.LiveClock` (wall clock).
    """

    @property
    def now(self) -> float: ...

    def schedule_at(
        self,
        time: float,
        callback: ClockCallback,
        kind: EventKind = EventKind.INTERNAL,
        description: str = "",
    ) -> Any: ...

    def schedule_in(
        self,
        delay: float,
        callback: ClockCallback,
        kind: EventKind = EventKind.INTERNAL,
        description: str = "",
    ) -> Any: ...

    def schedule_periodic(
        self,
        period: float,
        callback: ClockCallback,
        kind: EventKind = EventKind.TIMER,
        description: str = "",
        start_delay: float | None = None,
        stop_condition: Callable[[], bool] | None = None,
    ) -> TimerHandle: ...

    def cancel(self, event: Any) -> None: ...
