"""Delay assignment planning (Section 6.3 of the paper).

An application specifies one end-to-end bound ``X`` on incremental processing
latency.  DPC must divide that budget among the SUnions of the deployment.
The paper compares two static strategies and sketches a third, dynamic one:

* **UNIFORM** -- split ``X`` evenly across the nodes of a chain.  Simple, but
  it wastes most of the budget: when a failure occurs all SUnions downstream
  of it suspend *simultaneously* (they all stop receiving boundaries at the
  same time), so the initial suspensions do not add up.
* **FULL** -- give every SUnion (almost) the whole budget, keeping a small
  allowance for queuing delays.  This is the paper's recommendation: it masks
  failures up to ``X - allowance`` without producing a single tentative tuple
  while still meeting the bound.
* **ACCUMULATED (dynamic)** -- the paper's suggested extension: encode the
  delay already accumulated by a tuple inside the tuple, and let each SUnion
  spend only the remaining budget.  This handles diagrams where different
  paths reach an operator with different accumulated delays (Figure 21),
  which no static per-SUnion assignment can do without risking drops.

:class:`DelayPlanner` produces per-node delay budgets for the static
strategies and per-path feasibility diagnostics; :class:`AccumulatedDelayTracker`
implements the runtime bookkeeping of the dynamic scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..config import DelayAssignment
from ..errors import ConfigurationError
from ..topology import Topology


@dataclass(frozen=True)
class DelayPlan:
    """Per-node delay budgets plus the diagnostics behind them."""

    strategy: DelayAssignment
    #: The application's end-to-end bound X (seconds).
    total_budget: float
    #: Delay budget assigned to the SUnions of each node, by node name.
    per_node: Mapping[str, float]
    #: Longest failure fully masked by the initial suspension (seconds).
    masked_failure: float
    #: Worst-case end-to-end added latency if every node spent its budget
    #: sequentially (the pessimistic bound that the UNIFORM strategy guards
    #: against and that the FULL strategy accepts as a transient).
    worst_case_sequential: float
    notes: tuple = field(default_factory=tuple)

    def budget_for(self, node: str) -> float:
        try:
            return self.per_node[node]
        except KeyError as exc:
            raise ConfigurationError(f"delay plan has no node {node!r}") from exc


@dataclass(frozen=True)
class PathDiagnostic:
    """Feasibility of one source-to-client path under a static assignment."""

    path: tuple
    accumulated_delay: float
    within_budget: bool


class DelayPlanner:
    """Plans how the end-to-end budget ``X`` is divided among processing nodes.

    The planner reasons about the *deployment* graph (which node feeds
    which), not the operator graph inside each node: the paper assigns delays
    per SUnion, and every SUnion of a node receives the node's budget.

    Parameters
    ----------
    total_budget:
        The application bound ``X`` in seconds.
    queuing_allowance:
        Subtracted from the budget by the FULL strategy (the paper uses
        1.5 s of an 8 s budget, i.e. assigns 6.5 s).
    """

    def __init__(self, total_budget: float, queuing_allowance: float = 1.5) -> None:
        if total_budget <= 0:
            raise ConfigurationError(f"total_budget must be positive, got {total_budget}")
        if queuing_allowance < 0:
            raise ConfigurationError(f"queuing_allowance cannot be negative, got {queuing_allowance}")
        if queuing_allowance >= total_budget:
            raise ConfigurationError(
                f"queuing_allowance ({queuing_allowance}) must be smaller than the budget ({total_budget})"
            )
        self.total_budget = total_budget
        self.queuing_allowance = queuing_allowance
        #: node -> list of downstream node names.
        self._edges: dict[str, list[str]] = {}
        self._nodes: list[str] = []
        self._entry_nodes: set[str] = set()

    # ------------------------------------------------------------------ deployment description
    def add_node(self, name: str, *, entry: bool = False) -> None:
        """Register a processing node; ``entry`` marks nodes fed by data sources."""
        if name in self._edges:
            raise ConfigurationError(f"node {name!r} already registered")
        self._edges[name] = []
        self._nodes.append(name)
        if entry:
            self._entry_nodes.add(name)

    def connect(self, upstream: str, downstream: str) -> None:
        """Declare that ``upstream``'s output feeds ``downstream``."""
        for name in (upstream, downstream):
            if name not in self._edges:
                raise ConfigurationError(f"unknown node {name!r}; add it before connecting")
        self._edges[upstream].append(downstream)

    @classmethod
    def for_chain(
        cls, depth: int, *, total_budget: float, queuing_allowance: float = 1.5
    ) -> "DelayPlanner":
        """Planner pre-populated with the chain deployment of Figure 14."""
        if depth < 1:
            raise ConfigurationError(f"chain depth must be >= 1, got {depth}")
        return cls.for_topology(
            Topology.chain(depth),
            total_budget=total_budget,
            queuing_allowance=queuing_allowance,
        )

    @classmethod
    def for_topology(
        cls, topology: Topology, *, total_budget: float, queuing_allowance: float = 1.5
    ) -> "DelayPlanner":
        """Planner pre-populated with an arbitrary replicated-DAG deployment.

        The planner mirrors the topology's node graph (replication is
        irrelevant here: every replica of a node receives the node's budget),
        so the UNIFORM strategy divides ``X`` by the *longest* entry-to-sink
        path and short branches are never over-assigned.
        """
        planner = cls(total_budget, queuing_allowance)
        for spec in topology:
            planner.add_node(spec.name, entry=topology.is_entry(spec))
        for spec in topology:
            for upstream in topology.upstream_nodes(spec):
                planner.connect(upstream.name, spec.name)
        return planner

    # ------------------------------------------------------------------ graph helpers
    @property
    def nodes(self) -> list[str]:
        return list(self._nodes)

    def _check_nonempty(self) -> None:
        if not self._nodes:
            raise ConfigurationError("no processing nodes registered")

    def _paths(self) -> list[tuple]:
        """All entry-to-sink paths through the deployment graph."""
        self._check_nonempty()
        entries = self._entry_nodes or {
            name for name in self._nodes
            if not any(name in targets for targets in self._edges.values())
        }
        paths: list[tuple] = []

        def walk(node: str, prefix: tuple) -> None:
            prefix = prefix + (node,)
            downstream = self._edges[node]
            if not downstream:
                paths.append(prefix)
                return
            for target in downstream:
                walk(target, prefix)

        for entry in sorted(entries):
            walk(entry, ())
        return paths

    def _topological_order(self) -> list[str]:
        """Nodes in a topological order of the deployment graph (cycle-checked)."""
        self._check_nonempty()
        indegree = {name: 0 for name in self._nodes}
        for targets in self._edges.values():
            for target in targets:
                indegree[target] += 1
        ready = [name for name in self._nodes if indegree[name] == 0]
        order: list[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for target in self._edges[current]:
                indegree[target] -= 1
                if indegree[target] == 0:
                    ready.append(target)
        if len(order) != len(self._nodes):
            raise ConfigurationError("deployment graph has a cycle")
        return order

    def depth(self) -> int:
        """Length of the longest entry-to-sink path.

        Computed by dynamic programming over a topological order of the
        deployment graph -- planning runs on every cluster build, and path
        *enumeration* (kept for :meth:`diagnose`) is exponential in
        reconvergent DAGs.
        """
        longest = {name: 1 for name in self._nodes}
        for current in self._topological_order():
            for target in self._edges[current]:
                longest[target] = max(longest[target], longest[current] + 1)
        return max(longest.values())

    # ------------------------------------------------------------------ planning
    def plan(self, strategy: DelayAssignment) -> DelayPlan:
        """Produce per-node budgets for ``strategy``."""
        if strategy is DelayAssignment.UNIFORM:
            return self._plan_uniform()
        if strategy is DelayAssignment.FULL:
            return self._plan_full()
        if strategy is DelayAssignment.ACCUMULATED:
            return self._plan_accumulated()
        raise ConfigurationError(f"unknown delay assignment strategy {strategy!r}")

    def _plan_uniform(self) -> DelayPlan:
        depth = self.depth()
        per_node_value = self.total_budget / depth
        per_node = {name: per_node_value for name in self._nodes}
        return DelayPlan(
            strategy=DelayAssignment.UNIFORM,
            total_budget=self.total_budget,
            per_node=per_node,
            masked_failure=per_node_value,
            worst_case_sequential=per_node_value * depth,
            notes=(
                f"budget split across the longest path of {depth} node(s); only failures "
                f"shorter than {per_node_value:g} s are masked without tentative output",
            ),
        )

    def _plan_full(self) -> DelayPlan:
        assigned = self.total_budget - self.queuing_allowance
        per_node = {name: assigned for name in self._nodes}
        depth = self.depth()
        return DelayPlan(
            strategy=DelayAssignment.FULL,
            total_budget=self.total_budget,
            per_node=per_node,
            masked_failure=assigned,
            worst_case_sequential=assigned * depth,
            notes=(
                "every SUnion suspends simultaneously when a failure occurs, so the full "
                f"budget (minus a {self.queuing_allowance:g} s queuing allowance) can be "
                "assigned to each of them; failures up to that long are masked entirely",
            ),
        )

    def _plan_accumulated(self) -> DelayPlan:
        """Per-path budgets driven by an :class:`AccumulatedDelayTracker`.

        Walk the deployment graph in topological order.  Each node inherits
        the accumulated delay of its most delayed upstream (the tracker's
        ``merge`` rule -- exactly what a runtime stamping delays into tuples
        would see at a Figure 21 join) and spends the remaining budget evenly
        over the longest path still ahead of it.  On a chain this reduces to
        the uniform ``X / depth`` split; on unbalanced DAGs short branches
        receive the budget the static strategies strand.
        """
        order = self._topological_order()
        # Longest path from each node to a sink, inclusive of the node.
        togo = {name: 1 for name in self._nodes}
        for name in reversed(order):
            for target in self._edges[name]:
                togo[name] = max(togo[name], togo[target] + 1)
        upstreams: dict[str, list[str]] = {name: [] for name in self._nodes}
        for name, targets in self._edges.items():
            for target in targets:
                upstreams[target].append(name)
        tracker = AccumulatedDelayTracker(self.total_budget)
        budgets: dict[str, float] = {}
        for name in order:
            inherited = tracker.merge(upstreams[name])
            tracker.observe_upstream_delay(name, inherited)
            budget = max(self.total_budget - inherited, 0.0) / togo[name]
            tracker.spend(name, budget)
            budgets[name] = budget
        per_node = {name: budgets[name] for name in self._nodes}
        sinks = [name for name in self._nodes if not self._edges[name]]
        worst_case = max(tracker.accumulated(name) for name in sinks)
        return DelayPlan(
            strategy=DelayAssignment.ACCUMULATED,
            total_budget=self.total_budget,
            per_node=per_node,
            masked_failure=min(per_node.values()),
            worst_case_sequential=worst_case,
            notes=(
                "each node spends the budget its most delayed input path has not already "
                "consumed, split over the longest remaining path; every path accumulates "
                f"at most the full {self.total_budget:g} s bound (Figure 21)",
            ),
        )

    # ------------------------------------------------------------------ diagnostics
    def diagnose(self, per_node: Mapping[str, float]) -> list[PathDiagnostic]:
        """Accumulated delay along every path under a static per-node assignment.

        This is the Figure 21 analysis: when paths of different lengths meet,
        a static assignment either under-uses the budget on short paths or
        overshoots it on long ones.  A path is flagged when its accumulated
        delay exceeds the budget (tuples arriving along it would have to be
        dropped or would break the bound if fully delayed).
        """
        diagnostics = []
        for path in self._paths():
            accumulated = sum(per_node.get(node, 0.0) for node in path)
            diagnostics.append(
                PathDiagnostic(
                    path=path,
                    accumulated_delay=accumulated,
                    within_budget=accumulated <= self.total_budget + 1e-9,
                )
            )
        return diagnostics

    def mismatched_paths(self, per_node: Mapping[str, float]) -> bool:
        """True when different paths accumulate different delays (drop risk)."""
        totals = {round(d.accumulated_delay, 9) for d in self.diagnose(per_node)}
        return len(totals) > 1


# --------------------------------------------------------------------------- dynamic scheme
@dataclass
class AccumulatedDelayTracker:
    """Runtime bookkeeping for the paper's dynamic delay-assignment sketch.

    The idea (end of Section 6.3): encode the delay already accumulated by a
    tuple inside the tuple, and let each SUnion impose only ``X`` minus that
    accumulated delay.  The tracker keeps the accumulated delay per stream
    (every tuple of a bucket shares the same history in the chain
    deployments) and answers "how long may this node still delay".

    The tracker is deliberately independent of the simulator so it can be
    unit-tested and reused by an integration that stamps the accumulated
    delay into tuple attributes.
    """

    total_budget: float
    #: Attribute name used when stamping the accumulated delay into tuples.
    attribute: str = "accumulated_delay"
    _accumulated: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.total_budget <= 0:
            raise ConfigurationError(f"total_budget must be positive, got {self.total_budget}")

    def accumulated(self, stream: str) -> float:
        """Delay already spent on ``stream`` upstream of this node."""
        return self._accumulated.get(stream, 0.0)

    def observe_upstream_delay(self, stream: str, delay: float) -> None:
        """Record that tuples of ``stream`` arrive carrying ``delay`` seconds of history."""
        if delay < 0:
            raise ConfigurationError(f"delay cannot be negative, got {delay}")
        self._accumulated[stream] = delay

    def remaining_budget(self, stream: str) -> float:
        """How much of the end-to-end budget is still available for ``stream``."""
        return max(self.total_budget - self.accumulated(stream), 0.0)

    def spend(self, stream: str, delay: float) -> float:
        """Spend ``delay`` seconds on ``stream`` and return the new accumulated total.

        Spending is clamped to the remaining budget: a node never reports
        having delayed past the bound, because it is not allowed to.
        """
        if delay < 0:
            raise ConfigurationError(f"delay cannot be negative, got {delay}")
        spent = min(delay, self.remaining_budget(stream))
        self._accumulated[stream] = self.accumulated(stream) + spent
        return self._accumulated[stream]

    def merge(self, streams: Sequence[str]) -> float:
        """Accumulated delay of the output of an operator merging ``streams``.

        When streams with different histories meet (the Figure 21 situation),
        the merged output inherits the *largest* accumulated delay: the most
        delayed input determines how much budget is left downstream.
        """
        if not streams:
            return 0.0
        return max(self.accumulated(stream) for stream in streams)

    def stamp(self, values: Mapping[str, object], stream: str) -> dict:
        """Return a copy of ``values`` carrying the accumulated delay attribute."""
        stamped = dict(values)
        stamped[self.attribute] = self.accumulated(stream)
        return stamped
