"""Upstream replica switching rules (Table II of the paper).

Given the state of the stream at the current upstream replica and at every
other replica, decide whether to stay or to switch, preferring replicas in
STABLE state over UP_FAILURE over everything else.  These rules implement the
availability side of DPC: as long as *some* replica of an upstream neighbor is
stable, a failure is masked simply by reading from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from .states import STATE_PREFERENCE, NodeState


@dataclass(frozen=True)
class SwitchDecision:
    """Outcome of evaluating the Table II condition-action rules."""

    switch: bool
    target: str | None = None
    reason: str = ""

    @classmethod
    def stay(cls, reason: str = "current upstream is preferred") -> "SwitchDecision":
        return cls(switch=False, target=None, reason=reason)


def choose_upstream(
    current: str | None,
    replica_states: Mapping[str, NodeState],
) -> SwitchDecision:
    """Apply Table II: return the replica to read the stream from.

    Parameters
    ----------
    current:
        The replica currently used for this input stream (``None`` when the
        stream has no producer yet, e.g. right after a crash recovery).
    replica_states:
        The most recent known state of the stream at every replica of the
        upstream neighbor, including ``current``.  Unreachable replicas should
        be reported as :attr:`NodeState.FAILURE`.
    """
    if not replica_states:
        return SwitchDecision.stay("no known replicas")

    def rank(name: str) -> tuple[int, str]:
        return (STATE_PREFERENCE[replica_states[name]], name)

    if current is not None and current not in replica_states:
        replica_states = dict(replica_states)
        replica_states[current] = NodeState.FAILURE

    best = min(replica_states, key=rank)
    best_state = replica_states[best]
    current_state = replica_states.get(current, NodeState.FAILURE) if current else NodeState.FAILURE

    if current is not None and current_state is NodeState.STABLE:
        # Rule 1: the current upstream is STABLE -- do nothing.
        return SwitchDecision.stay("current upstream is STABLE")

    if best_state is NodeState.STABLE:
        # Rule 2: some replica is STABLE -- switch to it.
        if best == current:
            return SwitchDecision.stay("current upstream is STABLE")
        return SwitchDecision(switch=True, target=best, reason="found STABLE replica")

    if current is not None and current_state is NodeState.UP_FAILURE:
        # Rule 3: no STABLE replica and the current one still produces
        # (tentative) data -- keep it.
        return SwitchDecision.stay("no STABLE replica; current is UP_FAILURE")

    if best_state is NodeState.UP_FAILURE:
        # Rule 4: current upstream is unreachable or stabilizing, but another
        # replica can at least provide tentative data -- switch to it.
        if best == current:
            return SwitchDecision.stay("current upstream is UP_FAILURE")
        return SwitchDecision(switch=True, target=best, reason="found UP_FAILURE replica")

    # Rule 5: nothing better than the current replica exists.  Staying
    # connected to a STABILIZATION replica at least delivers corrections.
    if current is None and best_state is not NodeState.FAILURE:
        return SwitchDecision(switch=True, target=best, reason="no current upstream")
    return SwitchDecision.stay("no preferable replica available")


def states_summary(replica_states: Mapping[str, NodeState]) -> str:
    """Compact human-readable rendering used in traces and error messages."""
    return ", ".join(f"{name}={state.value}" for name, state in sorted(replica_states.items()))
