"""The Consistency Manager (Figure 4(b) of the paper).

One :class:`ConsistencyManager` runs inside every DPC participant that
consumes streams (processing nodes and client proxies).  It carries out the
inter-node runtime communication and the intra-node state monitoring the paper
assigns to this component:

* it sends periodic keep-alive (heartbeat) requests to every producer of every
  input stream and records the per-stream consistency states they advertise;
* it detects input-stream failures (missing boundary tuples / heartbeats, or
  tentative tuples arriving) and applies the Table II condition-action rules
  to switch between upstream replicas;
* it tracks the node's own DPC state machine (Figure 5) and advertises the
  node's state to downstream neighbors through heartbeat responses;
* it runs the inter-replica protocol that staggers state reconciliations so
  that at least one replica keeps processing recent input at all times
  (Figure 9).

The manager is deliberately mechanism-only: *what to do* when a failure is
detected or healed (checkpointing, delaying tuples, reconciling) is delegated
to its owner through the :class:`ConsistencyOwner` callback interface, which
:class:`repro.core.node.ProcessingNode` and
:class:`repro.sim.client.ClientApplication` implement.
"""

from __future__ import annotations

import random
import zlib
from typing import Mapping, Protocol, Sequence

from ..config import DPCConfig
from ..errors import ProtocolError
from .clock import Clock
from ..sim.events import EventKind
from ..sim.network import Message, Network
from ..spe.tuples import StreamTuple
from .input_streams import InputStreamMonitor
from .protocol import (
    HEARTBEAT_REQUEST,
    HEARTBEAT_RESPONSE,
    RECONCILE_REPLY,
    RECONCILE_REQUEST,
    SUBSCRIBE,
    UNSUBSCRIBE,
    HeartbeatRequest,
    HeartbeatResponse,
    ReconcileReply,
    ReconcileRequest,
    SubscribeRequest,
    UnsubscribeRequest,
)
from .states import NodeState, can_transition
from .switching import choose_upstream


class ConsistencyOwner(Protocol):
    """Callbacks a ConsistencyManager owner must provide."""

    endpoint: str

    def on_input_failure(self, stream: str, now: float) -> None:
        """Called when an input stream failure cannot be masked by switching."""

    def on_inputs_healed(self, now: float) -> None:
        """Called when every failed input stream has healed."""

    def apply_local_undo(self, stream: str, now: float) -> None:
        """Drop locally-held tentative data of ``stream`` (an UNDO arrived)."""

    def output_stream_states(self) -> Mapping[str, NodeState]:
        """Per-output-stream states to advertise in heartbeat responses."""

    def start_reconciliation(self, now: float) -> None:
        """Authorization to enter STABILIZATION was granted."""

    def wants_reconciliation(self) -> bool:
        """True when the owner has tentative state it needs to reconcile."""


class ConsistencyManager:
    """Per-participant DPC control plane."""

    def __init__(
        self,
        owner: ConsistencyOwner,
        simulator: Clock,
        network: Network,
        config: DPCConfig,
        replica_partners: Sequence[str] = (),
        rng_seed: int | None = None,
    ) -> None:
        self.owner = owner
        self.simulator = simulator
        self.network = network
        self.config = config
        self.replica_partners = list(replica_partners)
        self.monitors: dict[str, InputStreamMonitor] = {}
        self._state = NodeState.STABLE
        #: (time, state) history, for tests and experiment traces.
        self.state_history: list[tuple[float, NodeState]] = [(simulator.now, NodeState.STABLE)]
        # crc32 (unlike hash()) is stable across processes, so runs of the
        # same scenario are reproducible regardless of PYTHONHASHSEED.
        self._rng = random.Random(
            zlib.crc32(owner.endpoint.encode("utf-8")) ^ (0 if rng_seed is None else rng_seed)
        )
        self._reconcile_request_id = 0
        self._reconcile_pending = False
        self._reconcile_requested_at: float | None = None
        self._started = False
        #: Handle of the self-driven control chain (None when the owner's
        #: unified tick drives the loop); cancelled on owner retirement.
        self.control_handle = None
        # Statistics
        self.switches_performed = 0
        self.heartbeats_sent = 0

    # ------------------------------------------------------------------ state machine
    @property
    def state(self) -> NodeState:
        return self._state

    def set_state(self, new_state: NodeState) -> None:
        """Transition the DPC state machine, enforcing Figure 5's edges."""
        if new_state is self._state:
            return
        if not can_transition(self._state, new_state):
            raise ProtocolError(
                f"{self.owner.endpoint}: invalid state transition "
                f"{self._state.value} -> {new_state.value}"
            )
        self._state = new_state
        self.state_history.append((self.simulator.now, new_state))

    # ------------------------------------------------------------------ input registration
    def register_input(
        self,
        stream: str,
        producers: Sequence[str],
        source_producers: Sequence[str] = (),
        push_producers: Sequence[str] = (),
        subscription_filter: object | None = None,
    ) -> InputStreamMonitor:
        """Declare an input stream and the endpoints that can produce it.

        ``push_producers`` names the producers that advertise their state
        unsolicited every keepalive period; they are never probed explicitly.
        ``subscription_filter`` optionally attaches the consumer's content
        predicate (a :class:`~repro.deploy.SubscriptionFilter`); it rides on
        every SubscribeRequest this manager sends for ``stream``.
        """
        if stream in self.monitors:
            raise ProtocolError(f"input stream {stream!r} already registered")
        monitor = InputStreamMonitor(stream=stream, subscription_filter=subscription_filter)
        push = set(push_producers)
        for endpoint in producers:
            info = monitor.add_producer(endpoint, is_source=endpoint in set(source_producers))
            info.pushes_state = endpoint in push
            info.last_response_at = self.simulator.now + self.config.startup_grace
        # Grace period: do not declare a failure before the first boundaries
        # had a chance to propagate through the freshly deployed diagram.
        monitor.last_boundary_arrival = self.simulator.now + self.config.startup_grace
        self.monitors[stream] = monitor
        return monitor

    def monitor(self, stream: str) -> InputStreamMonitor:
        try:
            return self.monitors[stream]
        except KeyError as exc:
            raise ProtocolError(f"unknown input stream {stream!r}") from exc

    # ------------------------------------------------------------------ lifecycle
    def attach_external_driver(self) -> None:
        """Mark the control loop as driven by the owner's own periodic tick.

        A later :meth:`start` becomes a no-op instead of scheduling a second,
        duplicate control chain.
        """
        self._started = True

    def start(self) -> None:
        """Begin the periodic control loop (heartbeats, detection, switching)."""
        if self._started:
            return
        self._started = True
        self.control_handle = self.simulator.schedule_periodic(
            self.config.keepalive_period,
            self.control_tick,
            kind=EventKind.TIMER,
            description=f"{self.owner.endpoint} control tick",
            start_delay=self.config.keepalive_period,
        )

    # ------------------------------------------------------------------ control loop
    def control_tick(self, now: float) -> None:
        if getattr(self.owner, "is_adopting", False):
            # Mid-adoption of a shipped recovery checkpoint: detection and
            # switching would act on monitor state the adoption is about to
            # overwrite, and every outbound message would be wasted.
            return
        self._send_heartbeats(now)
        self._detect_and_switch(now)
        self._check_healing(now)
        self._maybe_request_reconciliation(now)

    def _send_heartbeats(self, now: float) -> None:
        """Request a heartbeat response from every *silent* non-source producer.

        Producers whose *data batches* arrived within the last keepalive
        period already piggybacked their state (see
        :class:`~repro.core.protocol.DataBatch`), so probing them adds
        nothing: more data (or its absence, caught by boundary monitoring) is
        coming.  Only piggyback freshness suppresses a probe -- a probe
        *response* never does, so silent producers (e.g. the replica we are
        not subscribed to) keep the original one-probe-per-keepalive cadence
        and their staleness bound of ``keepalive + RTT``.
        """
        fresh_cutoff = now - self.config.keepalive_period
        targets: set[str] = set()
        for monitor in self.monitors.values():
            for endpoint, info in monitor.producers.items():
                if (
                    info.is_source
                    or info.pushes_state
                    or info.last_piggyback_at > fresh_cutoff
                ):
                    continue
                targets.add(endpoint)
        for endpoint in sorted(targets):
            self.network.send(
                self.owner.endpoint,
                endpoint,
                HEARTBEAT_REQUEST,
                HeartbeatRequest(requester=self.owner.endpoint),
            )
            self.heartbeats_sent += 1

    def _detect_and_switch(self, now: float) -> None:
        for monitor in self.monitors.values():
            newly_failed = monitor.detect_failure(now, self.config.failure_detection_timeout)
            self._evaluate_switch(monitor, now)
            if newly_failed:
                # After attempting a switch, the failure is masked only if the
                # (possibly new) primary is a stable producer that will replay
                # the missing data.  Otherwise the owner must start its
                # UP_FAILURE handling (checkpoint, tentative processing).
                if not self._is_masked(monitor, now):
                    self.owner.on_input_failure(monitor.stream, now)
                    if self._state is NodeState.STABLE:
                        self.set_state(NodeState.UP_FAILURE)
            elif monitor.failed and self._state is NodeState.STABLE:
                # The failure was initially masked (or detected while another
                # one was being handled) but can no longer be: the owner must
                # start its UP_FAILURE handling now.
                if not self._is_masked(monitor, now):
                    self.owner.on_input_failure(monitor.stream, now)
                    self.set_state(NodeState.UP_FAILURE)

    def _is_masked(self, monitor: InputStreamMonitor, now: float) -> bool:
        """True when the stream's primary producer is STABLE (failure masked)."""
        if monitor.primary is None:
            return False
        info = monitor.producers[monitor.primary]
        if info.is_source:
            # Source streams have no replicas; the failure cannot be masked
            # unless boundaries are in fact still flowing.
            return monitor.boundary_silent_for(now) <= self.config.failure_detection_timeout
        state = info.effective_state(now, self._response_timeout())
        return state is NodeState.STABLE and monitor.tentative_since_stable == 0

    def _response_timeout(self) -> float:
        return max(2 * self.config.keepalive_period, self.config.failure_detection_timeout)

    def _evaluate_switch(self, monitor: InputStreamMonitor, now: float) -> None:
        """Apply Table II for one input stream."""
        states = monitor.producer_states(now, self._response_timeout())
        if not states or all(info.is_source for info in monitor.producers.values()):
            return
        decision = choose_upstream(monitor.primary, states)
        if not decision.switch or decision.target is None:
            self._maybe_track_correcting(monitor, states)
            return
        self._perform_switch(monitor, decision.target, now)
        self._maybe_track_correcting(monitor, states)

    def _maybe_track_correcting(self, monitor: InputStreamMonitor, states: Mapping[str, NodeState]) -> None:
        """Keep a background connection to a stabilizing ex-primary (Section 4.4.3)."""
        if monitor.correcting is not None:
            if states.get(monitor.correcting) not in (NodeState.STABILIZATION,):
                # The correcting replica finished (or failed); it is either the
                # primary again by now or no longer useful.
                if monitor.correcting == monitor.primary:
                    monitor.correcting = None
                elif states.get(monitor.correcting) is NodeState.FAILURE:
                    monitor.correcting = None

    def _perform_switch(self, monitor: InputStreamMonitor, target: str, now: float) -> None:
        previous = monitor.primary
        if previous == target:
            return
        previous_info = monitor.producers.get(previous) if previous else None
        target_info = monitor.producers[target]
        previous_state = (
            previous_info.effective_state(now, self._response_timeout())
            if previous_info is not None
            else NodeState.FAILURE
        )
        target_state = target_info.effective_state(now, self._response_timeout())

        # Keep the old (stabilizing) primary connected in the background for
        # its corrections -- unless the new primary is already STABLE, in
        # which case it replays everything the consumer is missing itself.
        keep_previous_for_corrections = (
            previous_state is NodeState.STABILIZATION and target_state is not NodeState.STABLE
        )
        already_subscribed_to_target = monitor.correcting == target

        if previous is not None and not keep_previous_for_corrections and not previous_info.is_source:
            self.network.send(
                self.owner.endpoint,
                previous,
                UNSUBSCRIBE,
                UnsubscribeRequest(stream=monitor.stream, subscriber=self.owner.endpoint),
            )
        if keep_previous_for_corrections:
            monitor.correcting = previous

        monitor.primary = target
        self.switches_performed += 1

        if already_subscribed_to_target:
            # Switching back to the replica whose corrections we have been
            # receiving in the background: the connection already exists, we
            # only revoke the tentative tuples obtained from the other replica.
            monitor.correcting = None
            self.owner.apply_local_undo(monitor.stream, now)
            monitor.tentative_since_stable = 0
            return
        if target_info.is_source:
            return
        request = SubscribeRequest(
            stream=monitor.stream,
            subscriber=self.owner.endpoint,
            last_stable_seq=monitor.stable_received - 1,
            had_tentative=monitor.tentative_since_stable > 0,
            replay_tentative=False,
            filter=monitor.subscription_filter,
        )
        self.network.send(self.owner.endpoint, target, SUBSCRIBE, request)

    def _check_healing(self, now: float) -> None:
        if self._state is NodeState.STABLE:
            # Nothing outstanding; keep redo buffers from growing while idle.
            if not any(m.failed for m in self.monitors.values()):
                return
        failed = [m for m in self.monitors.values() if m.failed]
        if not failed:
            return
        if all(m.is_healed(now, self.config.failure_detection_timeout) for m in failed):
            self.owner.on_inputs_healed(now)

    # ------------------------------------------------------------------ reconciliation protocol
    def _maybe_request_reconciliation(self, now: float) -> None:
        if self._state is not NodeState.UP_FAILURE:
            return
        if not self.owner.wants_reconciliation():
            return
        failed = [m for m in self.monitors.values() if m.failed]
        if failed and not all(
            m.is_healed(now, self.config.failure_detection_timeout) for m in failed
        ):
            return
        if self._reconcile_pending:
            # Retry if the previous request went unanswered for a while.
            if (
                self._reconcile_requested_at is not None
                and now - self._reconcile_requested_at < 2 * self.config.keepalive_period
            ):
                return
            self._reconcile_pending = False
        live_partners = [p for p in self.replica_partners if self.network.can_communicate(self.owner.endpoint, p)]
        if not live_partners:
            # No replica can take over; reconcile immediately (a single,
            # unreplicated node still guarantees eventual consistency, it just
            # cannot also guarantee availability during the reconciliation).
            self.owner.start_reconciliation(now)
            return
        partner = self._rng.choice(live_partners)
        self._reconcile_request_id += 1
        self._reconcile_pending = True
        self._reconcile_requested_at = now
        self.network.send(
            self.owner.endpoint,
            partner,
            RECONCILE_REQUEST,
            ReconcileRequest(requester=self.owner.endpoint, request_id=self._reconcile_request_id),
        )

    def _handle_reconcile_request(self, message: Message, now: float) -> None:
        request: ReconcileRequest = message.payload
        grant = True
        if self._state is NodeState.STABILIZATION:
            grant = False
        elif self.owner.wants_reconciliation() and self.owner.endpoint < request.requester:
            # Tie-breaker: the replica with the lower identifier reconciles
            # first when both need to (Figure 9).
            grant = False
        self.network.send(
            self.owner.endpoint,
            request.requester,
            RECONCILE_REPLY,
            ReconcileReply(responder=self.owner.endpoint, request_id=request.request_id, granted=grant),
        )

    def _handle_reconcile_reply(self, message: Message, now: float) -> None:
        reply: ReconcileReply = message.payload
        if not self._reconcile_pending or reply.request_id != self._reconcile_request_id:
            return
        self._reconcile_pending = False
        if reply.granted and self._state is NodeState.UP_FAILURE:
            self.owner.start_reconciliation(now)

    # ------------------------------------------------------------------ heartbeats
    def _handle_heartbeat_request(self, message: Message, now: float) -> None:
        request: HeartbeatRequest = message.payload
        response = HeartbeatResponse(
            responder=self.owner.endpoint,
            node_state=self._state,
            stream_states=dict(self.owner.output_stream_states()),
        )
        self.network.send(self.owner.endpoint, request.requester, HEARTBEAT_RESPONSE, response)

    def _handle_heartbeat_response(self, message: Message, now: float) -> None:
        response: HeartbeatResponse = message.payload
        for monitor in self.monitors.values():
            info = monitor.producers.get(response.responder)
            if info is None:
                continue
            info.last_response_at = now
            info.reachable = True
            info.advertised_state = response.state_of(monitor.stream)

    # ------------------------------------------------------------------ data-plane hooks
    def note_producer_state(
        self,
        producer: str,
        stream: str,
        node_state: NodeState,
        stream_state: NodeState | None,
        now: float,
    ) -> None:
        """Record the DPC state a producer piggybacked on a data batch.

        Equivalent to receiving a heartbeat response from ``producer`` for
        ``stream``: freshness and the advertised state are updated, so the
        keep-alive machinery can skip producers whose data is flowing.
        """
        monitor = self.monitors.get(stream)
        if monitor is None:
            return
        info = monitor.producers.get(producer)
        if info is None or info.is_source:
            return
        info.last_response_at = now
        info.last_piggyback_at = now
        info.reachable = True
        info.advertised_state = stream_state if stream_state is not None else node_state

    def classify_producer(self, stream: str, producer: str) -> str:
        """How data from ``producer`` should be treated: primary / correcting / ignore."""
        monitor = self.monitors.get(stream)
        if monitor is None:
            return "ignore"
        if producer == monitor.primary:
            return "primary"
        if producer == monitor.correcting:
            return "correcting"
        if monitor.producers.get(producer, None) is not None and monitor.producers[producer].is_source:
            return "primary"
        return "ignore"

    def note_replay(self, stream: str) -> None:
        """A replay-flagged batch arrived on ``stream`` (possibly empty).

        Clears the stale-cursor defense at batch granularity: an *empty*
        replay carries no tuples for :meth:`record_arrival` to clear it
        tuple-by-tuple, yet still proves the producer has answered the
        resubscription from the quoted position.
        """
        monitor = self.monitors.get(stream)
        if monitor is not None:
            monitor.awaiting_replay = False

    def record_arrival(self, stream: str, item: StreamTuple, now: float) -> str:
        """Record one arrival; returns "accept" or "duplicate" (see InputStreamMonitor)."""
        return self.monitor(stream).record_tuple(item, now)

    # ------------------------------------------------------------------ message dispatch
    def handle_message(self, message: Message, now: float) -> bool:
        """Dispatch control-plane messages; returns True when handled."""
        if message.kind == HEARTBEAT_REQUEST:
            self._handle_heartbeat_request(message, now)
            return True
        if message.kind == HEARTBEAT_RESPONSE:
            self._handle_heartbeat_response(message, now)
            return True
        if message.kind == RECONCILE_REQUEST:
            self._handle_reconcile_request(message, now)
            return True
        if message.kind == RECONCILE_REPLY:
            self._handle_reconcile_reply(message, now)
            return True
        return False

    # ------------------------------------------------------------------ introspection
    def failed_streams(self) -> list[str]:
        return [stream for stream, monitor in self.monitors.items() if monitor.failed]

    def first_failure_detected_at(self) -> float | None:
        times = [
            monitor.failure_detected_at
            for monitor in self.monitors.values()
            if monitor.failure_detected_at is not None
        ]
        return min(times) if times else None

    def all_failed_inputs_healed(self, now: float) -> bool:
        failed = [m for m in self.monitors.values() if m.failed]
        return all(m.is_healed(now, self.config.failure_detection_timeout) for m in failed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConsistencyManager {self.owner.endpoint!r} state={self._state.value}>"
