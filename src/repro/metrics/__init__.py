"""Availability and consistency metrics (Sections 2.3.1-2.3.3 of the paper)."""

from .latency import LatencyTracker, LatencySummary, OutputRecord, proc_new
from .consistency import ConsistencyTracker, eventually_consistent, duplicate_stable_values
from .collector import MetricsCollector, TraceEntry

__all__ = [
    "LatencyTracker",
    "LatencySummary",
    "OutputRecord",
    "proc_new",
    "ConsistencyTracker",
    "eventually_consistent",
    "duplicate_stable_values",
    "MetricsCollector",
    "TraceEntry",
]
