"""Consistency metrics: tentative-tuple counting and eventual-consistency checks.

``N_tentative`` (Definition 2 of the paper) measures inconsistency as the
number of tentative tuples produced on an output stream since the last stable
tuple; summed over all output streams of a query diagram.  The experiment
figures report the total number of tentative tuples a client received during a
failure/reconciliation episode, which this tracker also maintains.

The module also provides the ledger used to *verify* eventual consistency: the
stable prefix a client ends up with (after applying undo tuples) must equal,
in content and order, the output of a failure-free run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..spe.tuples import StreamTuple


@dataclass
class ConsistencyTracker:
    """Counts tentative tuples and maintains the corrected (stable) ledger."""

    #: Total tentative tuples ever received (the quantity plotted in Figs 13-20).
    total_tentative: int = 0
    #: Tentative tuples received since the last stable tuple (Definition 2).
    tentative_since_stable: int = 0
    #: Stable tuples received.
    total_stable: int = 0
    #: Undo tuples received.
    total_undos: int = 0
    #: REC_DONE markers received.
    total_rec_done: int = 0
    #: The client-visible sequence after applying undos: stable prefix plus the
    #: current tentative suffix.
    ledger: list[StreamTuple] = field(default_factory=list)
    keep_ledger: bool = True

    def observe(self, item: StreamTuple) -> None:
        """Account for one received tuple."""
        if item.is_stable:
            self.total_stable += 1
            self.tentative_since_stable = 0
            if self.keep_ledger:
                self.ledger.append(item)
        elif item.is_tentative:
            self.total_tentative += 1
            self.tentative_since_stable += 1
            if self.keep_ledger:
                self.ledger.append(item)
        elif item.is_undo:
            self.total_undos += 1
            self.tentative_since_stable = 0
            if self.keep_ledger:
                self._apply_undo()
        elif item.is_rec_done:
            self.total_rec_done += 1

    def _apply_undo(self) -> None:
        """Drop the tentative suffix after the last stable tuple in the ledger."""
        last_stable = None
        for index in range(len(self.ledger) - 1, -1, -1):
            if self.ledger[index].is_stable:
                last_stable = index
                break
        if last_stable is None:
            self.ledger.clear()
        else:
            del self.ledger[last_stable + 1:]

    # ------------------------------------------------------------------ summaries
    @property
    def n_tentative(self) -> int:
        """The paper's N_tentative for this stream (since the last stable tuple)."""
        return self.tentative_since_stable

    def stable_values(self, attribute: str) -> list:
        """Attribute values of the stable tuples in ledger order."""
        return [item.value(attribute) for item in self.ledger if item.is_stable]

    def stable_prefix(self) -> list[StreamTuple]:
        return [item for item in self.ledger if item.is_stable]

    def has_pending_tentative(self) -> bool:
        """True while the ledger still ends with uncorrected tentative tuples."""
        return any(item.is_tentative for item in self.ledger)


def eventually_consistent(
    received: Sequence[StreamTuple],
    reference: Sequence[StreamTuple],
    attribute: str,
) -> bool:
    """Check Definition 1 against a reference (failure-free) output.

    ``received`` is a client's final stable ledger, ``reference`` the stable
    output of a failure-free run of the same diagram on the same input.  They
    must agree on the sequence of ``attribute`` values.
    """
    received_values = [item.value(attribute) for item in received if item.is_stable]
    reference_values = [item.value(attribute) for item in reference if item.is_stable]
    return received_values == reference_values


def duplicate_stable_values(received: Iterable[StreamTuple], attribute: str) -> list:
    """Stable attribute values that appear more than once (should be empty)."""
    seen: set = set()
    duplicates: list = []
    for item in received:
        if not item.is_stable:
            continue
        value = item.value(attribute)
        if value in seen:
            duplicates.append(value)
        seen.add(value)
    return duplicates
