"""Availability metrics: processing latency of *new* output tuples.

The paper measures availability as the maximum *incremental* processing
latency ``Delay_new`` of new output tuples, excluding stable tuples that
merely correct earlier tentative ones (Section 2.3.1).  Because the
experiments have a single output stream, the paper reports ``Proc_new`` =
``Delay_new`` + normal processing latency, i.e. the end-to-end latency of new
tuples; this module computes both given a recorded output trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass(slots=True)
class OutputRecord:
    """One tuple observed by a client: when it arrived and what it was.

    Slotted and non-frozen (allocated per observed data tuple); treat
    instances as immutable by convention.
    """

    arrival_time: float
    stime: float
    tuple_type: str
    is_new: bool
    latency: float


@dataclass
class LatencyTracker:
    """Incrementally tracks Proc_new over a stream of output records.

    A tuple is *new output* when its ``stime`` is larger than the stime of
    every tuple received before it: corrections of earlier tentative results
    re-cover old stimes and therefore do not count (the paper's
    ``NewOutput`` set).
    """

    max_stime_seen: float = float("-inf")
    max_latency: float = 0.0
    max_gap: float = 0.0
    _last_new_arrival: float | None = None
    new_tuples: int = 0
    records: list[OutputRecord] = field(default_factory=list)
    keep_records: bool = True

    def observe(self, arrival_time: float, stime: float, tuple_type: str) -> OutputRecord:
        """Record one received data tuple and update the running maxima."""
        is_new = stime > self.max_stime_seen
        latency = arrival_time - stime
        if is_new:
            self.max_stime_seen = stime
            self.new_tuples += 1
            if latency > self.max_latency:
                self.max_latency = latency
            if self._last_new_arrival is not None:
                gap = arrival_time - self._last_new_arrival
                if gap > self.max_gap:
                    self.max_gap = gap
            self._last_new_arrival = arrival_time
        record = OutputRecord(
            arrival_time=arrival_time,
            stime=stime,
            tuple_type=tuple_type,
            is_new=is_new,
            latency=latency,
        )
        if self.keep_records:
            self.records.append(record)
        return record

    # ------------------------------------------------------------------ summaries
    @property
    def proc_new(self) -> float:
        """Maximum end-to-end latency of any new output tuple (Proc_new)."""
        return self.max_latency

    def delay_new(self, normal_latency: float) -> float:
        """Incremental latency Delay_new given the failure-free latency."""
        return max(self.max_latency - normal_latency, 0.0)

    def latencies(self, new_only: bool = True) -> list[float]:
        return [r.latency for r in self.records if r.is_new or not new_only]

    def average_latency(self, new_only: bool = True) -> float:
        values = self.latencies(new_only)
        return sum(values) / len(values) if values else 0.0


def proc_new(records: Iterable[OutputRecord]) -> float:
    """Proc_new of an already-recorded trace."""
    return max((r.latency for r in records if r.is_new), default=0.0)


@dataclass(frozen=True)
class LatencySummary:
    """Min / max / average / standard deviation of per-tuple latencies.

    This is the summary reported by the serialization-overhead experiments
    (Tables IV and V of the paper).
    """

    count: int
    minimum: float
    maximum: float
    average: float
    stddev: float

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "LatencySummary":
        data = list(values)
        if not data:
            return cls(count=0, minimum=0.0, maximum=0.0, average=0.0, stddev=0.0)
        mean = sum(data) / len(data)
        variance = sum((v - mean) ** 2 for v in data) / len(data)
        return cls(
            count=len(data),
            minimum=min(data),
            maximum=max(data),
            average=mean,
            stddev=variance ** 0.5,
        )

    def scaled(self, factor: float) -> "LatencySummary":
        """Return the same summary with every statistic multiplied by ``factor``."""
        return LatencySummary(
            count=self.count,
            minimum=self.minimum * factor,
            maximum=self.maximum * factor,
            average=self.average * factor,
            stddev=self.stddev * factor,
        )
