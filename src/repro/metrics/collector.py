"""Combined metrics collection used by client applications and experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..spe.tuples import StreamTuple
from .consistency import ConsistencyTracker
from .latency import LatencyTracker, OutputRecord


@dataclass(slots=True)
class TraceEntry:
    """One row of the client trace (what Figure 11 plots).

    A slotted, non-frozen dataclass: one is allocated per received tuple, so
    construction must be a plain ``__init__`` (no ``object.__setattr__``
    indirection) -- treat instances as immutable by convention.
    """

    time: float
    stime: float
    tuple_type: str
    sequence: object


@dataclass
class MetricsCollector:
    """Per-output-stream metrics: latency, consistency, and a full trace."""

    stream: str
    sequence_attribute: str = "seq"
    keep_trace: bool = True
    latency: LatencyTracker = field(default_factory=LatencyTracker)
    consistency: ConsistencyTracker = field(default_factory=ConsistencyTracker)
    trace: list[TraceEntry] = field(default_factory=list)

    def observe(self, item: StreamTuple, now: float) -> OutputRecord | None:
        """Record one received tuple; returns the latency record for data tuples."""
        self.consistency.observe(item)
        record = None
        if item.is_data:
            record = self.latency.observe(now, item.stime, item.tuple_type.value)
        if self.keep_trace:
            self.trace.append(
                TraceEntry(
                    time=now,
                    stime=item.stime,
                    tuple_type=item.tuple_type.value,
                    sequence=item.value(self.sequence_attribute) if item.is_data else None,
                )
            )
        return record

    # ------------------------------------------------------------------ summaries
    def summary(self) -> dict:
        return {
            "stream": self.stream,
            "proc_new": self.latency.proc_new,
            "max_gap": self.latency.max_gap,
            "new_tuples": self.latency.new_tuples,
            "total_stable": self.consistency.total_stable,
            "total_tentative": self.consistency.total_tentative,
            "total_undos": self.consistency.total_undos,
            "total_rec_done": self.consistency.total_rec_done,
        }
