"""Exception hierarchy for the Borealis/DPC reproduction.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything coming from this package with a single ``except`` clause
while still being able to discriminate on the specific failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A tuple does not match the schema of the stream it was pushed onto."""


class DiagramError(ReproError):
    """A query diagram is malformed (cycles, dangling streams, bad arity)."""


class OperatorError(ReproError):
    """An operator received input it cannot process."""


class StreamError(ReproError):
    """A stream-level violation (duplicate ids, out-of-order boundaries)."""


class CheckpointError(ReproError):
    """Checkpoint or restore failed or was applied to a mismatched diagram."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class NetworkError(SimulationError):
    """A message was sent to an unknown endpoint or over a removed link."""


class ConfigurationError(ReproError):
    """A configuration object holds values that are inconsistent or invalid."""


class ProtocolError(ReproError):
    """A DPC protocol invariant was violated (bad state transition, etc.)."""


class BufferOverflowError(ReproError):
    """A bounded buffer filled up and the configured policy forbids growth."""
