"""Live worker process: one fragment of a Placement on a real event loop.

A worker hosts a set of *endpoints* -- node replicas, data sources, client
proxies -- and mirrors exactly the wiring walk
:func:`repro.deploy.deployment.deploy_placement` performs, gated by a
``hosts(endpoint)`` predicate: every registration lands on whichever side of
the edge this worker hosts (a source's ``subscribe`` on the source's worker,
the consumer's ``register_input_stream`` on the consumer's worker, the
producer head replica's ``register_subscriber`` on its worker), so the union
of all workers reproduces the simulator deployment edge for edge.

The supervisor (:mod:`repro.live.supervisor`) assigns one worker per node
replica plus a single *edge* worker hosting every source and client; killing
a worker therefore kills exactly one replica, and its partner -- a different
process -- serves the checkpoint-shipped recovery over real sockets.

Workers are spawned with the ``fork`` start method: the compiled placement
(which holds closure predicates and payload generators) crosses into the
child by memory inheritance, never by pickling.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..config import DPCConfig, SimulationConfig
from ..core.node import ProcessingNode
from ..deploy.filters import SubscriptionFilter
from ..deploy.placement import (
    FRAGMENT_ENTRY,
    FRAGMENT_INGRESS_FILTER,
    FRAGMENT_RELAY,
    Placement,
)
from ..errors import ConfigurationError
from ..sim.client import ClientApplication
from ..sim.sources import DataSource
from ..statexfer import PeerRegistry
from . import wire
from .clock import LiveClock
from .faults import FaultPlan
from .transport import LiveTransport

#: Seconds between control-pipe polls inside a worker's asyncio loop.
_CONTROL_POLL = 0.05


class RemotePeerRegistry(PeerRegistry):
    """Peer registry for a live worker: only locally hosted peers resolve.

    ``remote = True`` switches :meth:`ProcessingNode._begin_checkpoint_recovery`
    to blind partner selection (no cross-process peeking); lookups of peers
    hosted elsewhere return ``None``, which every registry consumer already
    treats as "not available" (replay estimates become 0, source log
    truncation is skipped -- both documented live deviations).
    """

    remote = True


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker process needs to build and address its fragment."""

    name: str
    hosted: frozenset[str]
    socket_path: str
    #: worker name -> Unix socket path (full deployment).
    worker_sockets: Mapping[str, str]
    #: endpoint -> worker name (full deployment).
    endpoint_worker: Mapping[str, str]
    #: Shared time origin: ``time.monotonic()`` value that is deployment t=0.
    epoch: float
    #: Endpoints that must run ``recover()`` right after starting (respawn).
    recovering: frozenset[str] = frozenset()
    #: Incarnation number; the supervisor bumps it on every respawn so peers
    #: can reject stale-generation frames from a SIGKILLed predecessor.
    generation: int = 0
    #: Scheduled wire/window faults this worker's transport enforces.
    fault_plan: FaultPlan = FaultPlan()


@dataclass
class FragmentStack:
    """The locally hosted slice of the deployment."""

    sources: dict[str, DataSource] = field(default_factory=dict)  # stream -> source
    nodes: dict[str, ProcessingNode] = field(default_factory=dict)  # endpoint -> node
    clients: dict[str, ClientApplication] = field(default_factory=dict)
    filters: dict[str, SubscriptionFilter] = field(default_factory=dict)


def build_fragment_stack(
    placement: Placement,
    *,
    clock,
    network,
    hosts: Callable[[str], bool],
    config: DPCConfig,
    sim_config: SimulationConfig,
    aggregate_rate: float,
    payload_factory,
    join_state_size: int | None,
    per_node_delay: float | None,
    diagram_factory,
    seed: int | None,
    rate_profile,
    source_stop_time: float | None,
) -> FragmentStack:
    """Mirror of ``deploy_placement``'s walk, gated by ``hosts``.

    Every constant below (rate division, start offset, diagram choice per
    fragment kind, push-state cadence rule) matches the simulator deploy walk
    line for line: the parity harness depends on both backends computing the
    identical workload and wiring.
    """
    from ..sim.cluster import (
        _node_delay_budgets,
        merge_diagram,
        relay_diagram,
        shard_relay_diagram,
    )

    topology = placement.topology
    config.validate()
    sim_config.validate()
    delay_budgets = _node_delay_budgets(topology, config, per_node_delay)
    start_offset = (
        random.Random(seed).uniform(0.0, sim_config.batch_interval * 0.5)
        if seed is not None
        else 0.0
    )
    stack = FragmentStack()

    # --- sources (hosted only; the name->stream map covers all of them) --------
    source_streams: dict[str, str] = {plan.stream: plan.name for plan in placement.sources}
    for plan in placement.sources:
        if not hosts(plan.name):
            continue
        stack.sources[plan.stream] = DataSource(
            name=plan.name,
            stream=plan.stream,
            simulator=clock,
            network=network,
            rate=aggregate_rate / len(placement.sources),
            boundary_interval=config.boundary_interval,
            batch_interval=sim_config.batch_interval,
            payload=payload_factory(plan.payload_index, len(placement.sources)),
            start_time=start_offset,
            stop_time=source_stop_time,
            rate_profile=rate_profile,
        )

    # --- subscription filters: every worker rebuilds the full set --------------
    # (wire decoding resolves filters by name, and a worker can receive a
    # SUBSCRIBE carrying any consumer's filter during failover).
    for edge in placement.filtered_subscriptions():
        spec = topology.node(edge.consumer)
        if spec.select is None:  # pragma: no cover - placement guarantees it
            raise ConfigurationError(
                f"filtered subscription of {edge.consumer!r} has no predicate"
            )
        filter = SubscriptionFilter(
            spec.select, name=edge.filter_name or f"{edge.consumer}.slice"
        )
        stack.filters[edge.consumer] = filter
        wire.register_filter(filter)

    # --- processing nodes (hosted replicas only) -------------------------------
    for plan in placement.nodes:
        spec = topology.node(plan.name)
        node_join_state = join_state_size if plan.stateful else None
        for node_name in plan.replica_names:
            if not hosts(node_name):
                continue
            if plan.fragment == FRAGMENT_ENTRY:
                if diagram_factory is not None:
                    diagram = diagram_factory(node_name, plan.inputs, plan.output_stream)
                else:
                    diagram = merge_diagram(
                        node_name,
                        plan.inputs,
                        plan.output_stream,
                        bucket_size=config.bucket_size,
                        join_state_size=node_join_state,
                        select=spec.select,
                    )
            elif plan.fragment == FRAGMENT_INGRESS_FILTER:
                diagram = shard_relay_diagram(
                    node_name,
                    plan.inputs[0],
                    plan.output_stream,
                    bucket_size=config.bucket_size,
                    select=spec.select,
                    join_state_size=node_join_state,
                )
            elif plan.fragment == FRAGMENT_RELAY:
                filtered = plan.name in stack.filters
                diagram = relay_diagram(
                    node_name,
                    plan.inputs[0],
                    plan.output_stream,
                    bucket_size=config.bucket_size,
                    select=None if filtered else spec.select,
                    join_state_size=node_join_state,
                )
            else:  # FRAGMENT_FANIN
                diagram = merge_diagram(
                    node_name,
                    plan.inputs,
                    plan.output_stream,
                    bucket_size=config.bucket_size,
                    join_state_size=node_join_state,
                    select=spec.select,
                )
            stack.nodes[node_name] = ProcessingNode(
                name=node_name,
                diagram=diagram,
                simulator=clock,
                network=network,
                config=config,
                sim_config=sim_config,
                assigned_delay=delay_budgets[plan.name],
                replica_partners=[o for o in plan.replica_names if o != node_name],
                rng_seed=seed,
            )

    # --- wiring: sources -> consuming node replicas -----------------------------
    for stream, source in stack.sources.items():
        for spec in topology.consumers_of(stream):
            for endpoint in placement.node_plan(spec.name).replica_names:
                source.subscribe(endpoint)
    for spec in topology:
        for node_name in placement.node_plan(spec.name).replica_names:
            node = stack.nodes.get(node_name)
            if node is None:
                continue
            for stream in spec.inputs:
                if stream not in source_streams:
                    continue
                producer = source_streams[stream]
                node.register_input_stream(
                    stream, producers=[producer], source_producers=[producer]
                )

    # --- wiring: node -> node edges ----------------------------------------------
    push_state = config.keepalive_period + 1e-12 >= sim_config.batch_interval
    for spec in topology:
        consumer_filter = stack.filters.get(spec.name)
        for upstream_spec in topology.upstream_nodes(spec):
            upstream_names = list(placement.node_plan(upstream_spec.name).replica_names)
            upstream_stream = upstream_spec.output_stream
            for node_name in placement.node_plan(spec.name).replica_names:
                consumer = stack.nodes.get(node_name)
                if consumer is not None:
                    consumer.register_input_stream(
                        upstream_stream,
                        producers=upstream_names,
                        push_producers=upstream_names if push_state else (),
                        subscription_filter=consumer_filter,
                    )
                head = stack.nodes.get(upstream_names[0])
                if head is not None:
                    head.register_subscriber(
                        upstream_stream, node_name, subscription_filter=consumer_filter
                    )
                if push_state:
                    for upstream_name in upstream_names:
                        upstream = stack.nodes.get(upstream_name)
                        if upstream is not None:
                            upstream.add_state_watcher(node_name)

    # --- clients: one per sink -----------------------------------------------------
    for plan in placement.clients:
        sink_names = list(placement.node_plan(plan.sink).replica_names)
        if hosts(plan.name):
            client = ClientApplication(
                name=plan.name,
                stream=plan.stream,
                simulator=clock,
                network=network,
                config=config,
                rng_seed=seed,
            )
            client.register_upstream(
                producers=sink_names, push_producers=sink_names if push_state else ()
            )
            stack.clients[plan.name] = client
        head = stack.nodes.get(sink_names[0])
        if head is not None:
            head.register_subscriber(plan.stream, plan.name)
        if push_state:
            for sink_name in sink_names:
                sink = stack.nodes.get(sink_name)
                if sink is not None:
                    sink.add_state_watcher(plan.name)

    # --- state-transfer peer registry (local peers only) -----------------------------
    registry = RemotePeerRegistry()
    for source in stack.sources.values():
        registry.register_source(source)
    for node in stack.nodes.values():
        registry.register_node(node)
        node.statexfer_registry = registry
    return stack


# --------------------------------------------------------------------------- results
def stable_ledger_rows(client: ClientApplication) -> list:
    """Replica-independent form of a client's stable ledger.

    (stable_seq, repr(stime), sorted payload items) -- the same row form the
    parity harness extracts from a simulator run; ``repr`` keeps floats exact
    and picklable-comparable across processes.
    """
    return [
        (
            item.stable_seq,
            repr(item.stime),
            tuple(sorted((key, repr(value)) for key, value in item.values.items())),
        )
        for item in client.metrics.consistency.ledger
        if item.is_stable
    ]


def _client_result(client: ClientApplication) -> dict:
    from ..runtime.runtime import client_is_eventually_consistent

    return {
        "summary": client.summary(),
        "stable_rows": stable_ledger_rows(client),
        "eventually_consistent": client_is_eventually_consistent(client),
    }


def _status(stack: FragmentStack, clock: LiveClock, transport: LiveTransport) -> dict:
    return {
        "now": clock.now,
        "ledgers": {
            name: len(client.metrics.consistency.ledger)
            for name, client in stack.clients.items()
        },
        "stable": {
            name: sum(1 for item in client.metrics.consistency.ledger if item.is_stable)
            for name, client in stack.clients.items()
        },
        "peers": {
            peer: transport.peer_state(peer).value for peer in transport._worker_sockets
        },
    }


def _tentative_phase(client: ClientApplication) -> dict:
    """Wall-clock window of tentative output in the client trace (seconds)."""
    first = last = None
    count = 0
    for entry in client.metrics.trace:
        if entry.tuple_type == "tentative":
            count += 1
            last = entry.time
            if first is None:
                first = entry.time
    return {"first": first, "last": last, "count": count}


def _result(stack: FragmentStack, clock: LiveClock, transport: LiveTransport) -> dict:
    return {
        "now": clock.now,
        "events_fired": clock.events_fired,
        "sources": {s.name: s.tuples_produced for s in stack.sources.values()},
        "nodes": {
            endpoint: {"statistics": node.statistics(), "recoveries": list(node.recoveries)}
            for endpoint, node in stack.nodes.items()
        },
        "clients": {name: _client_result(c) for name, c in stack.clients.items()},
        "tentative_phase": {
            name: _tentative_phase(c) for name, c in stack.clients.items()
        },
        "transport": transport.transport_stats(),
    }


# --------------------------------------------------------------------------- process entry
def worker_main(spec: WorkerSpec, placement: Placement, deploy_kwargs: dict, conn) -> None:
    """Process entry point (target of ``multiprocessing.Process``)."""
    try:
        asyncio.run(_worker_async(spec, placement, deploy_kwargs, conn))
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass
    finally:
        conn.close()


async def _worker_async(
    spec: WorkerSpec, placement: Placement, deploy_kwargs: dict, conn
) -> None:
    clock = LiveClock(spec.epoch, loop=asyncio.get_running_loop())
    transport = LiveTransport(
        worker=spec.name,
        socket_path=spec.socket_path,
        endpoint_worker=dict(spec.endpoint_worker),
        worker_sockets=dict(spec.worker_sockets),
        clock=clock,
        generation=spec.generation,
        fault_plan=spec.fault_plan,
    )
    await transport.start()
    stack = build_fragment_stack(
        placement,
        clock=clock,
        network=transport,
        hosts=lambda endpoint: endpoint in spec.hosted,
        **deploy_kwargs,
    )
    # All workers start their protocol stacks at the shared epoch, so the
    # startup grace and keepalive cadences line up across processes.
    delay = spec.epoch - time.monotonic()
    if delay > 0:
        await asyncio.sleep(delay)
    for source in stack.sources.values():
        source.start()
    for node in stack.nodes.values():
        node.start()
    for client in stack.clients.values():
        client.start()
    for endpoint in spec.recovering:
        node = stack.nodes.get(endpoint)
        if node is not None:
            # A respawned replica rejoins the way a recovered simulated one
            # does: prefer the partner's shipped checkpoint (over sockets),
            # fall back to full subscription replay.
            node.recover()

    try:
        while True:
            handled = False
            while conn.poll():
                try:
                    request = conn.recv()
                except EOFError:
                    return
                if request == "status":
                    conn.send(("status", _status(stack, clock, transport)))
                    handled = True
                elif request == "stop":
                    conn.send(("result", _result(stack, clock, transport)))
                    return
            await asyncio.sleep(_CONTROL_POLL if not handled else 0.0)
    finally:
        await transport.close()


__all__ = [
    "FragmentStack",
    "RemotePeerRegistry",
    "WorkerSpec",
    "build_fragment_stack",
    "stable_ledger_rows",
    "worker_main",
]
