"""Process supervisor for the live execution backend.

:func:`deploy_live` (reached through ``Placement.deploy(backend="live")``)
compiles a worker plan from the placement -- one worker process per node
replica plus one *edge* worker hosting every data source and client proxy --
and :meth:`LiveDeployment.run` orchestrates a wall-clock run:

1. create a socket directory and the address book (endpoint -> worker ->
   Unix socket path);
2. pick a shared monotonic *epoch* about a second out and fork all workers;
   each builds its fragment (see :mod:`repro.live.worker`), binds its
   socket, and starts its protocol stack exactly at the epoch;
3. optionally SIGKILL one replica's worker mid-run (:class:`LiveKill`) and
   respawn it after a downtime with ``recovering={endpoint}``, which drives
   the checkpoint-shipped statexfer recovery over real sockets;
4. after the requested duration, poll the edge worker until every client's
   ledger stops growing (the pipeline has drained), then collect results
   from all workers and tear everything down.

Failure injection is the *process* dying -- no cooperation from the victim,
exactly the crash model of the paper -- which is why the supervisor, not the
transport, owns it.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import signal
import tempfile
import time
from dataclasses import dataclass, field, replace
from typing import Sequence

from ..config import DPCConfig, SimulationConfig
from ..deploy.placement import Placement
from ..errors import ConfigurationError, ReproError, SimulationError
from ..workloads.generators import PayloadFactory, default_payload_factory
from .faults import FaultPlan
from .worker import WorkerSpec, worker_main

#: Seconds between the fork and the shared epoch: every worker must have
#: built its fragment and bound its socket by then.
_STARTUP_DELAY = 1.0

#: Consecutive identical ledger polls that count as "drained".
_DRAIN_STABLE_POLLS = 3
_DRAIN_POLL_INTERVAL = 0.3


class LiveBackendUnavailable(ReproError):
    """The platform cannot run the live backend (no ``fork`` start method)."""


def require_fork() -> None:
    """Raise :class:`LiveBackendUnavailable` unless ``fork`` is available.

    The live backend forks workers so the compiled placement (closures,
    payload generators) crosses by memory inheritance; ``spawn``-only
    platforms (Windows, some macOS configurations) cannot run it.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        raise LiveBackendUnavailable(
            "the live backend needs the 'fork' multiprocessing start method, "
            f"which this platform does not offer (available: "
            f"{multiprocessing.get_all_start_methods()}); use backend='sim'"
        )


@dataclass(frozen=True)
class LiveKill:
    """SIGKILL one replica's worker at deployment time ``at``, respawn after ``downtime``."""

    node: str
    replica: int = 0
    at: float = 2.0
    downtime: float = 1.0

    def __post_init__(self) -> None:
        # Validate at the API seam, not just in the CLI: a negative schedule
        # or replica is a configuration bug, never a runtime condition.
        if self.at < 0:
            raise ConfigurationError(f"LiveKill.at must be >= 0, got {self.at!r}")
        if self.downtime < 0:
            raise ConfigurationError(
                f"LiveKill.downtime must be >= 0, got {self.downtime!r}"
            )
        if self.replica < 0:
            raise ConfigurationError(
                f"LiveKill.replica must be a concrete replica index >= 0, got "
                f"{self.replica!r} (use faults.compile_failures to expand "
                f"replica=-1 schedules into one kill per replica)"
            )


@dataclass(frozen=True)
class LivePause:
    """SIGSTOP one replica's worker at ``at``, SIGCONT after ``duration``.

    A paused process is silent but not dead: its heartbeats stop, peers must
    raise *suspicion*, and on resume -- within the transport's confirmation
    grace -- the suspicion must clear without any crash declaration or
    recovery.  This is the liveness-detector probe, not a failure.
    """

    node: str
    replica: int = 0
    at: float = 2.0
    duration: float = 1.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError(f"LivePause.at must be >= 0, got {self.at!r}")
        if self.duration <= 0:
            raise ConfigurationError(
                f"LivePause.duration must be > 0, got {self.duration!r}"
            )
        if self.replica < 0:
            raise ConfigurationError(
                f"LivePause.replica must be a concrete replica index >= 0, got "
                f"{self.replica!r}"
            )


@dataclass
class LiveRunResult:
    """Merged results of one live run."""

    duration: float
    wall_seconds: float
    #: client name -> {"summary", "stable_rows", "eventually_consistent"}
    clients: dict = field(default_factory=dict)
    #: replica endpoint -> {"statistics", "recoveries"}
    nodes: dict = field(default_factory=dict)
    #: source name -> tuples produced
    sources: dict = field(default_factory=dict)
    kills: list = field(default_factory=list)
    pauses: list = field(default_factory=list)
    #: Digest of the enforced fault plan (``FaultPlan.describe()``).
    faults: list = field(default_factory=list)
    #: worker name -> transport hardening/fault counters.
    transport: dict = field(default_factory=dict)
    #: client name -> {"first", "last", "count"} wall window of tentative output.
    tentative_phase: dict = field(default_factory=dict)

    @property
    def eventually_consistent(self) -> bool:
        return bool(self.clients) and all(
            c["eventually_consistent"] for c in self.clients.values()
        )

    def client(self, name: str | None = None) -> dict:
        if name is None:
            name = sorted(self.clients)[0]
        return self.clients[name]

    def stable_rows(self, name: str | None = None) -> list:
        return self.client(name)["stable_rows"]

    def recoveries(self) -> list[dict]:
        return [
            dict(record, endpoint=endpoint)
            for endpoint, node in sorted(self.nodes.items())
            for record in node["recoveries"]
        ]

    @property
    def total_stable(self) -> int:
        return sum(len(c["stable_rows"]) for c in self.clients.values())

    @property
    def total_tentative(self) -> int:
        return sum(
            c["summary"].get("total_tentative", 0) for c in self.clients.values()
        )

    # ---- transport hardening aggregates --------------------------------------
    def _link_total(self, key: str) -> int:
        return sum(
            link.get(key, 0)
            for stats in self.transport.values()
            for link in stats.get("links", {}).values()
        )

    @property
    def dead_letters(self) -> int:
        """Frames that exhausted the bounded retry budget, all links."""
        return self._link_total("dead_letters")

    @property
    def dropped_frames(self) -> int:
        """Frames shed while a peer's socket was down (replay-healed)."""
        return self._link_total("dropped_frames")

    @property
    def reconnects(self) -> int:
        return self._link_total("reconnects")

    @property
    def reconnect_attempts(self) -> int:
        return self._link_total("reconnect_attempts")

    def injected_faults(self) -> dict:
        """Injected-fault counts by kind, summed over all workers."""
        totals: dict = {}
        for stats in self.transport.values():
            for kind, count in stats.get("injected", {}).items():
                totals[kind] = totals.get(kind, 0) + count
        return totals

    def fault_trace(self) -> list[dict]:
        """Merged injected-fault events (worker-tagged, time-ordered)."""
        events = [
            dict(event, worker=worker)
            for worker, stats in self.transport.items()
            for event in stats.get("fault_events", [])
        ]
        events.sort(key=lambda event: (event["at"], event["worker"]))
        return events

    def peer_transitions(self) -> list[dict]:
        """Merged liveness transitions (observer-tagged, time-ordered)."""
        transitions = [
            dict(record, observer=worker)
            for worker, stats in self.transport.items()
            for record in stats.get("peer_transitions", [])
        ]
        transitions.sort(key=lambda record: (record["at"], record["observer"]))
        return transitions


class _WorkerHandle:
    """One supervised worker process and its control pipe."""

    def __init__(self, spec: WorkerSpec, process, conn) -> None:
        self.spec = spec
        self.process = process
        self.conn = conn
        self.killed = False


class LiveDeployment:
    """A placement bound to the live backend, ready to run."""

    def __init__(
        self,
        placement: Placement,
        config: DPCConfig,
        sim_config: SimulationConfig,
        deploy_kwargs: dict,
    ) -> None:
        require_fork()
        self.placement = placement
        self.config = config
        self.sim_config = sim_config
        #: kwargs forwarded verbatim to ``build_fragment_stack`` (minus the
        #: per-worker clock/network/hosts, which each worker supplies).
        self.deploy_kwargs = dict(deploy_kwargs)

    # ------------------------------------------------------------------ worker plan
    def _worker_plan(
        self, socket_dir: str, epoch: float, fault_plan: FaultPlan
    ) -> list[WorkerSpec]:
        edge_endpoints = [plan.name for plan in self.placement.sources] + [
            plan.name for plan in self.placement.clients
        ]
        hosted_by_worker: dict[str, list[str]] = {"edge": edge_endpoints}
        for plan in self.placement.nodes:
            for index, endpoint in enumerate(plan.replica_names):
                hosted_by_worker[f"{plan.name}-r{index}"] = [endpoint]
        worker_sockets = {
            worker: os.path.join(socket_dir, f"{worker}.sock") for worker in hosted_by_worker
        }
        endpoint_worker = {
            endpoint: worker
            for worker, endpoints in hosted_by_worker.items()
            for endpoint in endpoints
        }
        return [
            WorkerSpec(
                name=worker,
                hosted=frozenset(endpoints),
                socket_path=worker_sockets[worker],
                worker_sockets=worker_sockets,
                endpoint_worker=endpoint_worker,
                epoch=epoch,
                fault_plan=fault_plan,
            )
            for worker, endpoints in hosted_by_worker.items()
        ]

    def _spawn(self, ctx, spec: WorkerSpec) -> _WorkerHandle:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=worker_main,
            args=(spec, self.placement, self.deploy_kwargs, child_conn),
            name=f"repro-live-{spec.name}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(spec, process, parent_conn)

    # ------------------------------------------------------------------ validation
    def _validate_kills(
        self, kill: "LiveKill | Sequence[LiveKill] | None", duration: float
    ) -> list[LiveKill]:
        if kill is None:
            kills: list = []
        elif isinstance(kill, LiveKill):
            kills = [kill]
        elif isinstance(kill, (list, tuple)):
            kills = list(kill)
        else:
            raise ConfigurationError(
                f"live failure schedules must be LiveKill instances, got "
                f"{type(kill).__name__}; compile sim failure specs with "
                f"repro.live.faults.compile_failures first"
            )
        for item in kills:
            if not isinstance(item, LiveKill):
                raise ConfigurationError(
                    f"live failure schedules must be LiveKill instances, got "
                    f"{type(item).__name__}"
                )
            target_plan = self.placement.node_plan(item.node)
            if item.replica >= len(target_plan.replica_names):
                raise ConfigurationError(
                    f"node {item.node!r} has {len(target_plan.replica_names)} "
                    f"replica(s); cannot kill replica {item.replica}"
                )
            if item.at >= duration:
                raise ConfigurationError(
                    f"kill.at={item.at} must fall inside the run (duration={duration})"
                )
        return kills

    def _validate_pauses(
        self, pause: "LivePause | Sequence[LivePause] | None", duration: float
    ) -> list[LivePause]:
        if pause is None:
            pauses: list = []
        elif isinstance(pause, LivePause):
            pauses = [pause]
        elif isinstance(pause, (list, tuple)):
            pauses = list(pause)
        else:
            raise ConfigurationError(
                f"pause schedules must be LivePause instances, got {type(pause).__name__}"
            )
        for item in pauses:
            if not isinstance(item, LivePause):
                raise ConfigurationError(
                    f"pause schedules must be LivePause instances, got "
                    f"{type(item).__name__}"
                )
            target_plan = self.placement.node_plan(item.node)
            if item.replica >= len(target_plan.replica_names):
                raise ConfigurationError(
                    f"node {item.node!r} has {len(target_plan.replica_names)} "
                    f"replica(s); cannot pause replica {item.replica}"
                )
            if item.at + item.duration >= duration:
                raise ConfigurationError(
                    f"pause window [{item.at:g}, {item.at + item.duration:g}) must "
                    f"end inside the run (duration={duration})"
                )
        return pauses

    def _validate_faults(self, faults: FaultPlan | None, duration: float) -> FaultPlan:
        if faults is None:
            return FaultPlan()
        if not isinstance(faults, FaultPlan):
            raise ConfigurationError(
                f"faults must be a repro.live.faults.FaultPlan, got "
                f"{type(faults).__name__}"
            )
        faults.validate()
        from .faults import WINDOW_KINDS

        for rule in faults.rules:
            # A disconnect/partition window that outlives the run would end
            # mid-failure: the ledger never reconciles and every consistency
            # assertion is vacuous.  (Open-ended *wire* rules are fine -- the
            # retry/dedup machinery keeps the run convergent under them.)
            if rule.kind in WINDOW_KINDS and rule.end > duration + 1e-9:
                raise ConfigurationError(
                    f"fault window {rule.kind!r} runs until t={rule.end:g}s but "
                    f"the run is only {duration:g}s; it would never heal"
                )
        return faults

    # ------------------------------------------------------------------ run
    def run(
        self,
        duration: float,
        kill: "LiveKill | Sequence[LiveKill] | None" = None,
        drain_timeout: float = 15.0,
        startup_delay: float = _STARTUP_DELAY,
        faults: FaultPlan | None = None,
        pause: "LivePause | Sequence[LivePause] | None" = None,
    ) -> LiveRunResult:
        """Run the deployment for ``duration`` wall-clock seconds and collect.

        ``kill`` injects mid-run SIGKILLs + respawns (one or a schedule),
        ``pause`` SIGSTOP/SIGCONT probes, and ``faults`` a wire-level
        :class:`~repro.live.faults.FaultPlan` every worker's transport
        enforces.  After ``duration`` the supervisor waits (bounded by
        ``drain_timeout``) for every client's ledger to stop growing before
        stopping the workers, so in-flight batches are not cut off
        mid-pipeline.
        """
        kills = self._validate_kills(kill, duration)
        pauses = self._validate_pauses(pause, duration)
        plan = self._validate_faults(faults, duration)
        started_wall = time.monotonic()
        ctx = multiprocessing.get_context("fork")
        socket_dir = tempfile.mkdtemp(prefix="repro-live-")
        epoch = time.monotonic() + startup_delay
        specs = self._worker_plan(socket_dir, epoch, plan)
        handles = {spec.name: self._spawn(ctx, spec) for spec in specs}
        result = LiveRunResult(duration=duration, wall_seconds=0.0)
        result.faults = plan.describe()
        timeline = sorted(
            [(k.at, 0, "kill", k) for k in kills]
            + [(k.at + k.downtime, 1, "respawn", k) for k in kills]
            + [(p.at, 0, "pause", p) for p in pauses]
            + [(p.at + p.duration, 1, "resume", p) for p in pauses],
            key=lambda event: (event[0], event[1]),
        )
        try:
            for at, _, action, directive in timeline:
                self._sleep_until(epoch + at)
                self._apply_action(ctx, handles, epoch, action, directive, result)
            self._sleep_until(epoch + duration)
            self._await_drain(handles["edge"], drain_timeout)
            for handle in handles.values():
                self._collect(handle, result)
            result.wall_seconds = time.monotonic() - started_wall
            return result
        finally:
            for handle in handles.values():
                if handle.process.is_alive():
                    handle.process.terminate()
                handle.process.join(timeout=5.0)
                if handle.process.is_alive():  # pragma: no cover - last resort
                    handle.process.kill()
                    handle.process.join(timeout=5.0)
                handle.conn.close()
            shutil.rmtree(socket_dir, ignore_errors=True)

    # ------------------------------------------------------------------ actions
    def _endpoint_and_worker(self, node: str, replica: int) -> tuple[str, str]:
        endpoint = self.placement.node_plan(node).replica_names[replica]
        return endpoint, f"{node}-r{replica}"

    def _apply_action(
        self, ctx, handles: dict, epoch: float, action: str, directive, result: LiveRunResult
    ) -> None:
        if action == "kill":
            endpoint, worker_name = self._endpoint_and_worker(
                directive.node, directive.replica
            )
            victim = handles[worker_name]
            os.kill(victim.process.pid, signal.SIGKILL)
            victim.killed = True
            result.kills.append(
                {"endpoint": endpoint, "at": time.monotonic() - epoch, "worker": worker_name}
            )
        elif action == "respawn":
            endpoint, worker_name = self._endpoint_and_worker(
                directive.node, directive.replica
            )
            victim = handles[worker_name]
            respawn_spec = replace(
                victim.spec,
                recovering=frozenset({endpoint}),
                # Bump the incarnation so peers reject any frame a zombie
                # predecessor connection might still deliver.
                generation=victim.spec.generation + 1,
            )
            victim.process.join(timeout=5.0)
            handles[worker_name] = self._spawn(ctx, respawn_spec)
            for record in result.kills:
                if record["worker"] == worker_name and "respawned_at" not in record:
                    record["respawned_at"] = time.monotonic() - epoch
                    break
        elif action == "pause":
            endpoint, worker_name = self._endpoint_and_worker(
                directive.node, directive.replica
            )
            os.kill(handles[worker_name].process.pid, signal.SIGSTOP)
            result.pauses.append(
                {"endpoint": endpoint, "at": time.monotonic() - epoch, "worker": worker_name}
            )
        elif action == "resume":
            endpoint, worker_name = self._endpoint_and_worker(
                directive.node, directive.replica
            )
            os.kill(handles[worker_name].process.pid, signal.SIGCONT)
            for record in result.pauses:
                if record["worker"] == worker_name and "resumed_at" not in record:
                    record["resumed_at"] = time.monotonic() - epoch
                    break

    # ------------------------------------------------------------------ helpers
    @staticmethod
    def _sleep_until(deadline: float) -> None:
        delay = deadline - time.monotonic()
        if delay > 0:
            time.sleep(delay)

    def _request(self, handle: _WorkerHandle, request: str, timeout: float = 5.0):
        handle.conn.send(request)
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if handle.conn.poll(0.05):
                kind, payload = handle.conn.recv()
                return payload
        raise SimulationError(
            f"live worker {handle.spec.name!r} did not answer {request!r} "
            f"within {timeout}s"
        )

    def _await_drain(self, edge: _WorkerHandle, drain_timeout: float) -> None:
        """Wait until every client ledger stops growing (pipeline drained)."""
        deadline = time.monotonic() + drain_timeout
        stable_polls = 0
        last = None
        while time.monotonic() < deadline and stable_polls < _DRAIN_STABLE_POLLS:
            status = self._request(edge, "status")
            counts = (status["ledgers"], status["stable"])
            if counts == last:
                stable_polls += 1
            else:
                stable_polls = 0
                last = counts
            time.sleep(_DRAIN_POLL_INTERVAL)

    def _collect(self, handle: _WorkerHandle, result: LiveRunResult) -> None:
        try:
            payload = self._request(handle, "stop", timeout=10.0)
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise SimulationError(
                f"live worker {handle.spec.name!r} died before reporting results "
                f"(exitcode={handle.process.exitcode})"
            ) from exc
        result.clients.update(payload["clients"])
        result.nodes.update(payload["nodes"])
        result.sources.update(payload["sources"])
        result.tentative_phase.update(payload.get("tentative_phase", {}))
        transport = payload.get("transport")
        if transport is not None:
            result.transport[handle.spec.name] = transport


# --------------------------------------------------------------------------- entry point
def deploy_live(
    placement: Placement,
    config: DPCConfig | None = None,
    sim_config: SimulationConfig | None = None,
    *,
    aggregate_rate: float = 300.0,
    payload_factory: PayloadFactory = default_payload_factory,
    join_state_size: int | None = 100,
    per_node_delay: float | None = None,
    diagram_factory=None,
    seed: int | None = None,
    rate_profile=None,
    source_stop_time: float | None = None,
) -> LiveDeployment:
    """Bind ``placement`` to the live backend (compare ``deploy_placement``)."""
    config = config or DPCConfig()
    sim_config = sim_config or SimulationConfig()
    config.validate()
    sim_config.validate()
    return LiveDeployment(
        placement,
        config,
        sim_config,
        deploy_kwargs=dict(
            config=config,
            sim_config=sim_config,
            aggregate_rate=aggregate_rate,
            payload_factory=payload_factory,
            join_state_size=join_state_size,
            per_node_delay=per_node_delay,
            diagram_factory=diagram_factory,
            seed=seed,
            rate_profile=rate_profile,
            source_stop_time=source_stop_time,
        ),
    )
