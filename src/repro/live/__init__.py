"""Live execution backend: the simulated control plane on real processes.

``repro.live`` runs a compiled :class:`~repro.deploy.placement.Placement`
as actual OS processes -- one worker per node replica plus an edge worker
hosting the sources and clients -- communicating over Unix-domain sockets
with wall-clock timers.  The node/SPE/DPC code is byte-for-byte the same
code the discrete-event simulator executes; only the clock and the
transport differ (see ``repro.core.clock`` and DESIGN.md, "Live backend").

Import surface:

* :func:`repro.live.supervisor.deploy_live` / ``Placement.deploy(backend="live")``
* :class:`repro.live.supervisor.LiveDeployment` and its ``run()`` result
* :class:`repro.live.supervisor.LiveBackendUnavailable` for platforms
  without the ``fork`` multiprocessing start method
"""

from __future__ import annotations

__all__ = ["wire"]
