"""Deterministic wire-level fault injection for the live backend.

The simulator injects failures by editing an oracle (``Network.partition``,
``crash``); the live backend has no oracle, only sockets.  This module closes
that gap with a :class:`FaultPlan`: a frozen, seeded schedule of per-link
rules that ``live/transport.py`` enforces on every outbound frame.

Two properties make the plan a *reproducible experiment* rather than chaos:

* **Deterministic decisions.**  Probabilistic rules (drop/duplicate/reorder)
  never consult a wall-clock RNG.  Each decision is a pure function of
  ``(plan seed, rule index, link, attempt counter)`` hashed through CRC-32 --
  the same pattern :func:`repro.sharding.stable_key_hash` uses for routing --
  so the same plan produces the same injected-fault trace on every run.
* **Shared vocabulary.**  :func:`compile_failures` maps the *same*
  :class:`~repro.workloads.scenarios.FailureSpec` schedule the simulator
  consumes (``ScenarioSpec.with_failure``/``with_branch_crash``) onto link
  rules + SIGKILL directives, so one spec drives both backends and the sim
  remains the consistency oracle for the live run.

Window rules (disconnect/partition) are *credit-denying*: the transport
refuses to credit delivery for a blocked receiver, which holds source cursors
and node output buffers exactly like the simulator's crashed-endpoint path,
giving replay-on-heal for free.  Wire rules (drop/delay/duplicate/reorder/
throttle) exercise the hardened transport underneath DPC: drops consume
bounded retries, duplicates are shed by receiver-side sequence numbers,
reorder happens before sequence stamping so FIFO delivery is restored at the
receiver, and delay/throttle only stretch wall time.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Sequence
from zlib import crc32

from ..errors import ConfigurationError
from ..sim.failures import FailureType

if TYPE_CHECKING:  # pragma: no cover - import cycle (supervisor imports us)
    from ..deploy.placement import Placement
    from ..workloads.scenarios import FailureSpec
    from .supervisor import LiveKill

# Fault kinds.  The two *window* kinds reuse the simulator's FailureType
# values so a fault trace and a sim FailureRecord speak the same vocabulary;
# the *wire* kinds have no sim counterpart (the sim's network is ideal).
DISCONNECT = FailureType.STREAM_DISCONNECT.value
PARTITION = FailureType.PARTITION.value
DROP = "drop"
DELAY = "delay"
DUPLICATE = "duplicate"
REORDER = "reorder"
THROTTLE = "throttle"

WINDOW_KINDS = frozenset({DISCONNECT, PARTITION})
WIRE_KINDS = frozenset({DROP, DELAY, DUPLICATE, REORDER, THROTTLE})

#: Denominator turning a CRC-32 into a uniform [0, 1) decision.
_HASH_SPACE = float(1 << 32)


@dataclass(frozen=True)
class LinkRule:
    """One fault rule over a (sender endpoint, receiver endpoint) link.

    ``sender``/``receiver`` name endpoints (``"*"`` matches any).  Window
    kinds block the link for ``[start, end)``; wire kinds apply per frame
    with ``probability`` while active.  ``bidirectional`` also matches the
    reversed direction (full partitions; one-way rules leave it False).
    """

    kind: str
    sender: str = "*"
    receiver: str = "*"
    start: float = 0.0
    end: float = math.inf
    bidirectional: bool = False
    #: Per-frame activation chance for wire kinds (window kinds ignore it).
    probability: float = 1.0
    #: Fixed extra latency (DELAY) in seconds.
    delay: float = 0.0
    #: Extra uniform-[0, jitter) latency, drawn from the decision hash.
    jitter: float = 0.0
    #: Minimum spacing between frames (THROTTLE), seconds/frame.
    min_interval: float = 0.0

    def matches(self, sender: str, receiver: str) -> bool:
        if self._matches_one_way(sender, receiver):
            return True
        return self.bidirectional and self._matches_one_way(receiver, sender)

    def _matches_one_way(self, sender: str, receiver: str) -> bool:
        return self.sender in ("*", sender) and self.receiver in ("*", receiver)

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def validate(self) -> None:
        if self.kind not in WINDOW_KINDS | WIRE_KINDS:
            raise ConfigurationError(f"unknown fault kind {self.kind!r}")
        if not self.end > self.start:
            raise ConfigurationError(
                f"fault rule {self.kind!r} window [{self.start:g}, {self.end:g}) is empty"
            )
        if self.start < 0:
            raise ConfigurationError(f"fault rule {self.kind!r} starts before t=0")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"fault rule {self.kind!r} probability {self.probability!r} not in [0, 1]"
            )
        if self.delay < 0 or self.jitter < 0 or self.min_interval < 0:
            raise ConfigurationError(
                f"fault rule {self.kind!r} has a negative delay/jitter/interval"
            )

    def describe(self) -> dict:
        data = {
            "kind": self.kind,
            "link": f"{self.sender}->{self.receiver}",
            "start": self.start,
            "end": None if math.isinf(self.end) else self.end,
        }
        if self.bidirectional:
            data["bidirectional"] = True
        if self.kind in WIRE_KINDS:
            data["probability"] = self.probability
        if self.kind == DELAY:
            data["delay"] = self.delay
            data["jitter"] = self.jitter
        if self.kind == THROTTLE:
            data["min_interval"] = self.min_interval
        return data


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable schedule of link faults for one live run."""

    seed: int = 0
    rules: tuple[LinkRule, ...] = ()

    def validate(self) -> None:
        for rule in self.rules:
            rule.validate()

    @property
    def is_empty(self) -> bool:
        return not self.rules

    # ------------------------------------------------------------------ queries
    def blocked(self, sender: str, receiver: str, now: float) -> LinkRule | None:
        """The first window rule blocking ``sender -> receiver`` at ``now``."""
        for rule in self.rules:
            if rule.kind in WINDOW_KINDS and rule.active(now) and rule.matches(sender, receiver):
                return rule
        return None

    def blocked_worker(
        self, sender_endpoints: Iterable[str], receiver_endpoints: Iterable[str], now: float
    ) -> bool:
        """True when *every* endpoint pair between two workers is blocked.

        Used for heartbeat frames (which travel worker-to-worker, not
        endpoint-to-endpoint): a partition isolating all of a worker's
        endpoints silences its heartbeats, while a single-stream disconnect
        through a multi-endpoint worker does not.
        """
        receivers = list(receiver_endpoints)
        pairs = [(s, r) for s in sender_endpoints for r in receivers]
        if not pairs:
            return False
        return all(self.blocked(s, r, now) is not None for s, r in pairs)

    def wire_rules(self, sender: str, receiver: str, now: float) -> tuple[LinkRule, ...]:
        """Active wire-fault rules for one frame on ``sender -> receiver``."""
        return tuple(
            rule
            for rule in self.rules
            if rule.kind in WIRE_KINDS and rule.active(now) and rule.matches(sender, receiver)
        )

    def decision(self, rule: LinkRule, link: str, counter: int) -> float:
        """Uniform [0, 1) decision: pure function of (seed, rule, link, counter)."""
        try:
            index = self.rules.index(rule)
        except ValueError:  # pragma: no cover - foreign rule; still deterministic
            index = -1
        token = f"{self.seed}|{index}|{rule.kind}|{link}|{counter}"
        return crc32(token.encode("utf-8")) / _HASH_SPACE

    def horizon(self) -> float:
        """Latest finite window end (0.0 when the plan has no finite windows)."""
        ends = [r.end for r in self.rules if not math.isinf(r.end)]
        return max(ends, default=0.0)

    def describe(self) -> list[dict]:
        """A stable, JSON-able digest (the determinism test compares these)."""
        return [rule.describe() for rule in self.rules]


def backoff_delay(
    attempt: int,
    *,
    base: float = 0.05,
    cap: float = 2.0,
    seed: int = 0,
    link: str = "",
) -> float:
    """Capped exponential backoff with seeded, deterministic jitter.

    ``attempt`` counts from 0.  The jitter factor is drawn from the same
    CRC-32 hash space as fault decisions -- in [0.5, 1.0) of the capped
    exponential -- so reconnect timing is reproducible for a given seed
    while still de-synchronising concurrent links.
    """
    if attempt < 0:
        attempt = 0
    raw = min(cap, base * (2.0**attempt))
    token = f"backoff|{seed}|{link}|{attempt}"
    factor = 0.5 + crc32(token.encode("utf-8")) / _HASH_SPACE / 2.0
    return raw * factor


# ---------------------------------------------------------------------- compile
def compile_failures(
    placement: "Placement",
    failures: Sequence["FailureSpec"],
    *,
    seed: int = 0,
) -> "tuple[FaultPlan, tuple[LiveKill, ...]]":
    """Map a sim failure schedule onto (link rules, SIGKILL directives).

    The *same* resolved :class:`FailureSpec` list the simulator's
    ``Scenario.inject`` consumes compiles to the live equivalents:

    * ``disconnect`` -- one-way window rules from the stream's source
      endpoint to every consumer replica (the sim severs exactly these
      subscriptions);
    * ``partition`` -- bidirectional window rules isolating the target
      replica endpoint(s) from every other endpoint;
    * ``crash`` -- a :class:`~repro.live.supervisor.LiveKill` per target
      replica (real SIGKILL + respawn);
    * ``silence`` -- rejected: boundary silence mutes a *simulated* node's
      boundary timer, which has no wire-level analogue.

    Failure starts must already be resolved (``ScenarioSpec._resolved_failures``
    / ``as_scenario()`` does this); ``start=None`` is rejected.
    """
    from .supervisor import LiveKill

    rules: list[LinkRule] = []
    kills: list[LiveKill] = []
    for spec in failures:
        if spec.start is None:
            raise ConfigurationError(
                f"failure {spec.kind!r} has an unresolved start; compile from "
                f"ScenarioSpec.as_scenario() (it resolves start=None to the warmup)"
            )
        if spec.start < 0 or spec.duration <= 0:
            raise ConfigurationError(
                f"failure {spec.kind!r} must have start >= 0 and duration > 0"
            )
        end = spec.start + spec.duration
        if spec.kind == "disconnect":
            source = _source_plan(placement, spec.stream_index)
            consumers = _stream_consumers(placement, source.stream)
            if not consumers:
                raise ConfigurationError(
                    f"disconnect targets stream {source.stream!r}, which has no consumers"
                )
            rules.extend(
                LinkRule(kind=DISCONNECT, sender=source.name, receiver=endpoint,
                         start=spec.start, end=end)
                for endpoint in consumers
            )
        elif spec.kind == "partition":
            for endpoint in _target_replicas(placement, spec):
                rules.append(
                    LinkRule(kind=PARTITION, sender=endpoint, receiver="*",
                             start=spec.start, end=end, bidirectional=True)
                )
        elif spec.kind == "crash":
            node, indices = _target_indices(placement, spec)
            kills.extend(
                LiveKill(node=node, replica=index, at=spec.start, downtime=spec.duration)
                for index in indices
            )
        elif spec.kind == "silence":
            raise ConfigurationError(
                "failure kind 'silence' is sim-only (it mutes a simulated boundary "
                "timer); the live backend supports disconnect/partition/crash"
            )
        else:
            raise ConfigurationError(f"unknown failure kind {spec.kind!r}")
    return FaultPlan(seed=seed, rules=tuple(rules)), tuple(kills)


def _source_plan(placement: "Placement", stream_index: int):
    if not 0 <= stream_index < len(placement.sources):
        raise ConfigurationError(
            f"failure targets stream {stream_index}, but the placement has "
            f"{len(placement.sources)} input streams"
        )
    return placement.sources[stream_index]


def _stream_consumers(placement: "Placement", stream: str) -> tuple[str, ...]:
    """Replica endpoints of every node subscribed to a source stream."""
    endpoints: list[str] = []
    for sub in placement.subscriptions:
        if sub.kind == "source->node" and sub.stream == stream:
            endpoints.extend(placement.node_plan(sub.consumer).replica_names)
    return tuple(dict.fromkeys(endpoints))


def _target_indices(placement: "Placement", spec: "FailureSpec") -> tuple[str, list[int]]:
    if spec.node is not None:
        node = spec.node
    else:
        order = [plan.name for plan in placement.nodes]
        if not 0 <= spec.node_level < len(order):
            raise ConfigurationError(
                f"failure targets node level {spec.node_level}, but the placement "
                f"has {len(order)} node(s)"
            )
        node = order[spec.node_level]
    plan = placement.node_plan(node)
    if spec.node_replica == -1:
        return node, list(range(plan.replicas))
    if not 0 <= spec.node_replica < plan.replicas:
        raise ConfigurationError(
            f"failure targets replica {spec.node_replica} of {node!r}, which has "
            f"{plan.replicas} replica(s)"
        )
    return node, [spec.node_replica]


def _target_replicas(placement: "Placement", spec: "FailureSpec") -> list[str]:
    node, indices = _target_indices(placement, spec)
    names = placement.node_plan(node).replica_names
    return [names[index] for index in indices]


# ---------------------------------------------------------------------- chaos
def chaos_plan(
    seed: int,
    *,
    start: float = 0.0,
    end: float = math.inf,
    drop: float = 0.03,
    delay: float = 0.01,
    jitter: float = 0.01,
    duplicate: float = 0.02,
    reorder: float = 0.03,
    links: Sequence[tuple[str, str]] = (("*", "*"),),
) -> FaultPlan:
    """A seed-deterministic wire-chaos plan for soak tests.

    Pure function of its arguments: the per-link intensities are drawn from
    ``random.Random(seed)`` over the *sorted* link list, and every runtime
    decision then flows through :meth:`FaultPlan.decision`.  No window rules
    are emitted -- chaos stresses the hardened transport, not DPC's failure
    handling -- so a chaos run must stay failure-free at the protocol level.
    """
    rng = random.Random(seed)
    rules: list[LinkRule] = []
    for sender, receiver in sorted(links):
        scale = 0.5 + rng.random()  # [0.5, 1.5): vary intensity per link + seed
        rules.append(LinkRule(kind=DROP, sender=sender, receiver=receiver,
                              start=start, end=end, probability=min(1.0, drop * scale)))
        rules.append(LinkRule(kind=DELAY, sender=sender, receiver=receiver,
                              start=start, end=end, probability=0.5,
                              delay=delay * scale, jitter=jitter))
        rules.append(LinkRule(kind=DUPLICATE, sender=sender, receiver=receiver,
                              start=start, end=end, probability=min(1.0, duplicate * scale)))
        rules.append(LinkRule(kind=REORDER, sender=sender, receiver=receiver,
                              start=start, end=end, probability=min(1.0, reorder * scale)))
    return FaultPlan(seed=seed, rules=tuple(rules))
