"""Wall-clock implementation of the :class:`~repro.core.clock.Clock` seam.

:class:`LiveClock` drives the exact timer surface the discrete-event
:class:`~repro.sim.event_loop.Simulator` exposes -- ``now``,
``schedule_at``/``schedule_in``, ``schedule_periodic`` with the same
re-arm-after-callback semantics -- but over a running asyncio event loop and
``time.monotonic()``.  All live workers of one deployment share a monotonic
*epoch* chosen by the supervisor, so ``now`` reads the same deployment-time
axis in every process (``CLOCK_MONOTONIC`` is system-wide on Linux).

Semantics mirrored from the simulator, pinned by the clock-seam tests:

* callbacks receive the firing time (``self.now`` at dispatch) as their
  single positional argument;
* periodic chains first fire after ``start_delay`` (default one period),
  check ``cancelled`` then ``stop_condition()`` *before* the callback, and
  re-arm after it, so a callback cancelling its own handle stops the chain;
* ``cancel`` accepts the handle returned by any ``schedule_*`` call.

Deviation (documented in DESIGN.md): wall-clock timers have jitter, so
unlike the simulator there is no guarantee that a callback fires at exactly
its scheduled instant -- only at-or-after.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Optional

from ..core.clock import ClockCallback
from ..sim.events import EventKind


class LiveTimer:
    """One-shot timer handle; shape-compatible with a cancelled check."""

    __slots__ = ("cancelled", "_timer")

    def __init__(self, timer: asyncio.TimerHandle) -> None:
        self.cancelled = False
        self._timer = timer

    def cancel(self) -> None:
        self.cancelled = True
        self._timer.cancel()


class LivePeriodicHandle:
    """Handle for a periodic chain; mirrors sim ``PeriodicHandle``."""

    __slots__ = ("cancelled", "_timer")

    def __init__(self) -> None:
        self.cancelled = False
        self._timer: Optional[asyncio.TimerHandle] = None

    def cancel(self) -> None:
        self.cancelled = True
        if self._timer is not None:
            self._timer.cancel()


class LiveClock:
    """Clock over ``time.monotonic()`` and a running asyncio loop.

    Must be constructed (and its timers scheduled) from within the worker's
    event loop thread; the protocol stack is single-threaded per worker.
    """

    def __init__(self, epoch: float, loop: asyncio.AbstractEventLoop | None = None) -> None:
        self._epoch = epoch
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self.events_fired = 0

    @property
    def now(self) -> float:
        # Clamp: workers may construct their stack slightly before the
        # shared epoch; protocol code assumes time never goes negative.
        return max(0.0, time.monotonic() - self._epoch)

    # ------------------------------------------------------------------ one-shot
    def schedule_at(
        self,
        time_: float,
        callback: ClockCallback,
        kind: EventKind = EventKind.INTERNAL,
        description: str = "",
    ) -> LiveTimer:
        return self.schedule_in(time_ - self.now, callback, kind, description)

    def schedule_in(
        self,
        delay: float,
        callback: ClockCallback,
        kind: EventKind = EventKind.INTERNAL,
        description: str = "",
    ) -> LiveTimer:
        handle_box: list[LiveTimer] = []

        def fire() -> None:
            if handle_box and handle_box[0].cancelled:
                return
            self.events_fired += 1
            callback(self.now)

        timer = self._loop.call_later(max(0.0, delay), fire)
        handle = LiveTimer(timer)
        handle_box.append(handle)
        return handle

    # ------------------------------------------------------------------ periodic
    def schedule_periodic(
        self,
        period: float,
        callback: ClockCallback,
        kind: EventKind = EventKind.TIMER,
        description: str = "",
        start_delay: float | None = None,
        stop_condition: Callable[[], bool] | None = None,
    ) -> LivePeriodicHandle:
        handle = LivePeriodicHandle()
        first_delay = period if start_delay is None else start_delay

        def fire() -> None:
            if handle.cancelled:
                return
            if stop_condition is not None and stop_condition():
                handle.cancelled = True
                return
            self.events_fired += 1
            callback(self.now)
            if not handle.cancelled:
                handle._timer = self._loop.call_later(period, fire)

        handle._timer = self._loop.call_later(max(0.0, first_delay), fire)
        return handle

    # ------------------------------------------------------------------ cancel
    def cancel(self, event: object) -> None:
        cancel = getattr(event, "cancel", None)
        if callable(cancel):
            cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LiveClock now={self.now:.3f} events_fired={self.events_fired}>"
