"""Versioned wire codec for the live execution backend.

Everything that crosses a socket between live workers is framed by this
module: :class:`~repro.spe.tuples.StreamTuple`,
:class:`~repro.core.protocol.DataBatch` and every control message of
``repro.core.protocol``.  The format is compact (zigzag varints for
integers, IEEE-754 doubles for floats, length-prefixed UTF-8 for strings)
and **round-trip exact**: ``decode(encode(x)) == x`` for every payload the
protocol produces, which the Hypothesis property suite pins.

Every frame starts with a single version byte (:data:`WIRE_VERSION`);
decoding any other version raises :class:`WireError` so incompatible
workers fail loudly instead of mis-parsing each other.

Two payload kinds cannot be encoded field-by-field:

* **Subscription filters** hold closure predicates, so they travel *by
  name*: each worker process rebuilds the deployment's filters from the
  (fork-inherited) placement and registers them with
  :func:`register_filter`; decoding resolves the name against that
  process-local registry.  Filter epochs only advance during a simulated
  rebalance, so name-identified filters stay equivalent across workers.
* **Recovery checkpoints** (:class:`~repro.statexfer.RecoveryCheckpoint`)
  carry operator state of arbitrary shape; they are pickled inside the
  frame with a filter-aware pickler (filters inside a checkpoint also
  travel by name).  This is a documented deviation from the
  field-exact encoding (see DESIGN.md, "Live backend").
"""

from __future__ import annotations

import io
import pickle
import struct
from typing import Any, Callable

from ..core.protocol import (
    CHECKPOINT_REQUEST,
    CHECKPOINT_RESPONSE,
    DATA,
    HEARTBEAT_REQUEST,
    HEARTBEAT_RESPONSE,
    RECONCILE_REPLY,
    RECONCILE_REQUEST,
    SOURCE_RESUBSCRIBE,
    SUBSCRIBE,
    UNSUBSCRIBE,
    CheckpointRequest,
    CheckpointResponse,
    DataBatch,
    HeartbeatRequest,
    HeartbeatResponse,
    ReconcileReply,
    ReconcileRequest,
    SourceResubscribe,
    SubscribeRequest,
    UnsubscribeRequest,
)
from ..core.states import NodeState
from ..deploy.filters import SubscriptionFilter
from ..errors import ReproError
from ..spe.tuples import StreamTuple, TupleType

#: Current wire format version; bump on any incompatible change.
WIRE_VERSION = 1


class WireError(ReproError):
    """A frame could not be encoded or decoded."""


# --------------------------------------------------------------------------- enum tables
#: Fixed on-wire order of tuple types (index = wire byte).  Append-only.
_TUPLE_TYPES: tuple[TupleType, ...] = (
    TupleType.INSERTION,
    TupleType.TENTATIVE,
    TupleType.BOUNDARY,
    TupleType.UNDO,
    TupleType.REC_DONE,
    TupleType.UP_FAILURE,
    TupleType.REC_REQUEST,
)
_TUPLE_TYPE_INDEX = {member: index for index, member in enumerate(_TUPLE_TYPES)}

#: Fixed on-wire order of node states (0 is reserved for "absent").
_NODE_STATES: tuple[NodeState, ...] = (
    NodeState.STABLE,
    NodeState.UP_FAILURE,
    NodeState.STABILIZATION,
    NodeState.FAILURE,
)
_NODE_STATE_INDEX = {member: index + 1 for index, member in enumerate(_NODE_STATES)}

_FLOAT = struct.Struct(">d")


# --------------------------------------------------------------------------- primitives
def _w_uvarint(out: io.BytesIO, value: int) -> None:
    if value < 0:
        raise WireError(f"uvarint cannot encode negative value {value}")
    while value >= 0x80:
        out.write(bytes((value & 0x7F | 0x80,)))
        value >>= 7
    out.write(bytes((value,)))


def _r_uvarint(buf: memoryview, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise WireError("truncated varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _w_zigzag(out: io.BytesIO, value: int) -> None:
    # Arbitrary-precision zigzag (payload ints are unbounded Python ints).
    _w_uvarint(out, value << 1 if value >= 0 else ((-value) << 1) - 1)


def _r_zigzag(buf: memoryview, pos: int) -> tuple[int, int]:
    raw, pos = _r_uvarint(buf, pos)
    return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1), pos


def _w_float(out: io.BytesIO, value: float) -> None:
    out.write(_FLOAT.pack(value))


def _r_float(buf: memoryview, pos: int) -> tuple[float, int]:
    if pos + 8 > len(buf):
        raise WireError("truncated float")
    return _FLOAT.unpack_from(buf, pos)[0], pos + 8


def _w_str(out: io.BytesIO, value: str) -> None:
    data = value.encode("utf-8")
    _w_uvarint(out, len(data))
    out.write(data)


def _r_str(buf: memoryview, pos: int) -> tuple[str, int]:
    length, pos = _r_uvarint(buf, pos)
    if pos + length > len(buf):
        raise WireError("truncated string")
    return bytes(buf[pos:pos + length]).decode("utf-8"), pos + length


def _w_bytes(out: io.BytesIO, value: bytes) -> None:
    _w_uvarint(out, len(value))
    out.write(value)


def _r_bytes(buf: memoryview, pos: int) -> tuple[bytes, int]:
    length, pos = _r_uvarint(buf, pos)
    if pos + length > len(buf):
        raise WireError("truncated bytes")
    return bytes(buf[pos:pos + length]), pos + length


# --------------------------------------------------------------------------- values
# Payload values are overwhelmingly ints / floats / strs; a tag byte plus a
# pickle escape hatch covers the rest without inflating the common case.
_V_NONE, _V_FALSE, _V_TRUE, _V_INT, _V_FLOAT, _V_STR, _V_PICKLE = range(7)


def _w_value(out: io.BytesIO, value: Any) -> None:
    if value is None:
        out.write(bytes((_V_NONE,)))
    elif value is False:
        out.write(bytes((_V_FALSE,)))
    elif value is True:
        out.write(bytes((_V_TRUE,)))
    elif type(value) is int:
        out.write(bytes((_V_INT,)))
        _w_zigzag(out, value)
    elif type(value) is float:
        out.write(bytes((_V_FLOAT,)))
        _w_float(out, value)
    elif type(value) is str:
        out.write(bytes((_V_STR,)))
        _w_str(out, value)
    else:
        out.write(bytes((_V_PICKLE,)))
        _w_bytes(out, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))


def _r_value(buf: memoryview, pos: int) -> tuple[Any, int]:
    tag = buf[pos]
    pos += 1
    if tag == _V_NONE:
        return None, pos
    if tag == _V_FALSE:
        return False, pos
    if tag == _V_TRUE:
        return True, pos
    if tag == _V_INT:
        return _r_zigzag(buf, pos)
    if tag == _V_FLOAT:
        return _r_float(buf, pos)
    if tag == _V_STR:
        return _r_str(buf, pos)
    if tag == _V_PICKLE:
        data, pos = _r_bytes(buf, pos)
        return pickle.loads(data), pos
    raise WireError(f"unknown value tag {tag}")


def _w_opt_state(out: io.BytesIO, state: NodeState | None) -> None:
    out.write(bytes((0 if state is None else _NODE_STATE_INDEX[state],)))


def _r_opt_state(buf: memoryview, pos: int) -> tuple[NodeState | None, int]:
    index = buf[pos]
    pos += 1
    if index == 0:
        return None, pos
    if index > len(_NODE_STATES):
        raise WireError(f"unknown node state index {index}")
    return _NODE_STATES[index - 1], pos


# --------------------------------------------------------------------------- filter registry
#: Process-local registry of the deployment's subscription filters.  Filters
#: hold closure predicates, so they cross the wire by name; each worker
#: rebuilds the full set from its fork-inherited placement and registers it
#: here before any frame is decoded.
_FILTERS: dict[str, SubscriptionFilter] = {}


def register_filter(filter: SubscriptionFilter) -> None:
    """Make ``filter`` resolvable by name when frames are decoded."""
    _FILTERS[filter.name] = filter


def resolve_filter(name: str) -> SubscriptionFilter:
    try:
        return _FILTERS[name]
    except KeyError:
        raise WireError(
            f"subscription filter {name!r} is not registered in this process; "
            f"known filters: {sorted(_FILTERS)}"
        ) from None


def clear_filters() -> None:
    """Reset the registry (tests, or between deployments in one process)."""
    _FILTERS.clear()


def _w_filter(out: io.BytesIO, filter: object | None) -> None:
    if filter is None:
        out.write(b"\x00")
        return
    name = getattr(filter, "name", None)
    if not isinstance(name, str) or not name:
        raise WireError(f"cannot serialize subscription filter without a name: {filter!r}")
    out.write(b"\x01")
    _w_str(out, name)


def _r_filter(buf: memoryview, pos: int) -> tuple[object | None, int]:
    flag = buf[pos]
    pos += 1
    if flag == 0:
        return None, pos
    name, pos = _r_str(buf, pos)
    return resolve_filter(name), pos


# --------------------------------------------------------------------------- checkpoints
class _CheckpointPickler(pickle.Pickler):
    """Pickler that externalizes subscription filters by name."""

    def persistent_id(self, obj: Any) -> Any:  # noqa: D102 - pickle hook
        if isinstance(obj, SubscriptionFilter):
            return ("subscription-filter", obj.name)
        return None


class _CheckpointUnpickler(pickle.Unpickler):
    def persistent_load(self, pid: Any) -> Any:  # noqa: D102 - pickle hook
        if isinstance(pid, tuple) and len(pid) == 2 and pid[0] == "subscription-filter":
            return resolve_filter(pid[1])
        raise WireError(f"unknown persistent id in checkpoint frame: {pid!r}")


def _dumps_checkpoint(checkpoint: Any) -> bytes:
    out = io.BytesIO()
    _CheckpointPickler(out, protocol=pickle.HIGHEST_PROTOCOL).dump(checkpoint)
    return out.getvalue()


def _loads_checkpoint(data: bytes) -> Any:
    return _CheckpointUnpickler(io.BytesIO(data)).load()


# --------------------------------------------------------------------------- tuples
def _w_tuple(out: io.BytesIO, item: StreamTuple) -> None:
    try:
        type_index = _TUPLE_TYPE_INDEX[item.tuple_type]
    except KeyError:
        raise WireError(f"unknown tuple type {item.tuple_type!r}") from None
    flags = (item.undo_from_id is not None) | ((item.stable_seq is not None) << 1)
    out.write(bytes((type_index, flags)))
    _w_zigzag(out, item.tuple_id)
    _w_float(out, item.stime)
    if item.undo_from_id is not None:
        _w_zigzag(out, item.undo_from_id)
    if item.stable_seq is not None:
        _w_zigzag(out, item.stable_seq)
    _w_uvarint(out, len(item.values))
    for key, value in item.values.items():
        _w_str(out, key)
        _w_value(out, value)


def _r_tuple(buf: memoryview, pos: int) -> tuple[StreamTuple, int]:
    type_index = buf[pos]
    flags = buf[pos + 1]
    pos += 2
    if type_index >= len(_TUPLE_TYPES):
        raise WireError(f"unknown tuple type index {type_index}")
    tuple_id, pos = _r_zigzag(buf, pos)
    stime, pos = _r_float(buf, pos)
    undo_from_id: int | None = None
    stable_seq: int | None = None
    if flags & 1:
        undo_from_id, pos = _r_zigzag(buf, pos)
    if flags & 2:
        stable_seq, pos = _r_zigzag(buf, pos)
    count, pos = _r_uvarint(buf, pos)
    values: dict[str, Any] = {}
    for _ in range(count):
        key, pos = _r_str(buf, pos)
        values[key], pos = _r_value(buf, pos)
    return (
        StreamTuple(
            tuple_type=_TUPLE_TYPES[type_index],
            tuple_id=tuple_id,
            stime=stime,
            values=values,
            undo_from_id=undo_from_id,
            stable_seq=stable_seq,
        ),
        pos,
    )


def encode_tuple(item: StreamTuple) -> bytes:
    """Standalone versioned encoding of one tuple (tests, debugging)."""
    out = io.BytesIO()
    out.write(bytes((WIRE_VERSION,)))
    _w_tuple(out, item)
    return out.getvalue()


def decode_tuple(data: bytes) -> StreamTuple:
    buf = memoryview(data)
    _check_version(buf)
    item, pos = _r_tuple(buf, 1)
    _check_consumed(buf, pos)
    return item


# --------------------------------------------------------------------------- payload codecs
def _w_batch(out: io.BytesIO, batch: DataBatch) -> None:
    _w_str(out, batch.stream)
    _w_str(out, batch.producer)
    _w_opt_state(out, batch.producer_node_state)
    _w_opt_state(out, batch.producer_stream_state)
    out.write(b"\x01" if batch.replay else b"\x00")
    _w_uvarint(out, len(batch.tuples))
    for item in batch.tuples:
        _w_tuple(out, item)


def _r_batch(buf: memoryview, pos: int) -> tuple[DataBatch, int]:
    stream, pos = _r_str(buf, pos)
    producer, pos = _r_str(buf, pos)
    node_state, pos = _r_opt_state(buf, pos)
    stream_state, pos = _r_opt_state(buf, pos)
    replay = bool(buf[pos])
    pos += 1
    count, pos = _r_uvarint(buf, pos)
    tuples = []
    for _ in range(count):
        item, pos = _r_tuple(buf, pos)
        tuples.append(item)
    return (
        DataBatch(
            stream=stream,
            tuples=tuple(tuples),
            producer=producer,
            producer_node_state=node_state,
            producer_stream_state=stream_state,
            replay=replay,
        ),
        pos,
    )


def _w_subscribe(out: io.BytesIO, request: SubscribeRequest) -> None:
    _w_str(out, request.stream)
    _w_str(out, request.subscriber)
    _w_zigzag(out, request.last_stable_seq)
    out.write(bytes(((request.had_tentative) | (request.replay_tentative << 1),)))
    _w_filter(out, request.filter)


def _r_subscribe(buf: memoryview, pos: int) -> tuple[SubscribeRequest, int]:
    stream, pos = _r_str(buf, pos)
    subscriber, pos = _r_str(buf, pos)
    last_stable_seq, pos = _r_zigzag(buf, pos)
    flags = buf[pos]
    pos += 1
    filter, pos = _r_filter(buf, pos)
    return (
        SubscribeRequest(
            stream=stream,
            subscriber=subscriber,
            last_stable_seq=last_stable_seq,
            had_tentative=bool(flags & 1),
            replay_tentative=bool(flags & 2),
            filter=filter,
        ),
        pos,
    )


def _w_unsubscribe(out: io.BytesIO, request: UnsubscribeRequest) -> None:
    _w_str(out, request.stream)
    _w_str(out, request.subscriber)


def _r_unsubscribe(buf: memoryview, pos: int) -> tuple[UnsubscribeRequest, int]:
    stream, pos = _r_str(buf, pos)
    subscriber, pos = _r_str(buf, pos)
    return UnsubscribeRequest(stream=stream, subscriber=subscriber), pos


def _w_heartbeat_request(out: io.BytesIO, request: HeartbeatRequest) -> None:
    _w_str(out, request.requester)
    _w_uvarint(out, len(request.streams))
    for stream in request.streams:
        _w_str(out, stream)


def _r_heartbeat_request(buf: memoryview, pos: int) -> tuple[HeartbeatRequest, int]:
    requester, pos = _r_str(buf, pos)
    count, pos = _r_uvarint(buf, pos)
    streams = []
    for _ in range(count):
        stream, pos = _r_str(buf, pos)
        streams.append(stream)
    return HeartbeatRequest(requester=requester, streams=tuple(streams)), pos


def _w_heartbeat_response(out: io.BytesIO, response: HeartbeatResponse) -> None:
    _w_str(out, response.responder)
    _w_opt_state(out, response.node_state)
    _w_uvarint(out, len(response.stream_states))
    for stream, state in response.stream_states.items():
        _w_str(out, stream)
        _w_opt_state(out, state)


def _r_heartbeat_response(buf: memoryview, pos: int) -> tuple[HeartbeatResponse, int]:
    responder, pos = _r_str(buf, pos)
    node_state, pos = _r_opt_state(buf, pos)
    if node_state is None:
        raise WireError("heartbeat response without a node state")
    count, pos = _r_uvarint(buf, pos)
    stream_states: dict[str, NodeState] = {}
    for _ in range(count):
        stream, pos = _r_str(buf, pos)
        state, pos = _r_opt_state(buf, pos)
        if state is None:
            raise WireError(f"heartbeat response stream {stream!r} without a state")
        stream_states[stream] = state
    return (
        HeartbeatResponse(
            responder=responder, node_state=node_state, stream_states=stream_states
        ),
        pos,
    )


def _w_reconcile_request(out: io.BytesIO, request: ReconcileRequest) -> None:
    _w_str(out, request.requester)
    _w_zigzag(out, request.request_id)


def _r_reconcile_request(buf: memoryview, pos: int) -> tuple[ReconcileRequest, int]:
    requester, pos = _r_str(buf, pos)
    request_id, pos = _r_zigzag(buf, pos)
    return ReconcileRequest(requester=requester, request_id=request_id), pos


def _w_reconcile_reply(out: io.BytesIO, reply: ReconcileReply) -> None:
    _w_str(out, reply.responder)
    _w_zigzag(out, reply.request_id)
    out.write(b"\x01" if reply.granted else b"\x00")


def _r_reconcile_reply(buf: memoryview, pos: int) -> tuple[ReconcileReply, int]:
    responder, pos = _r_str(buf, pos)
    request_id, pos = _r_zigzag(buf, pos)
    granted = bool(buf[pos])
    pos += 1
    return ReconcileReply(responder=responder, request_id=request_id, granted=granted), pos


def _w_checkpoint_request(out: io.BytesIO, request: CheckpointRequest) -> None:
    _w_str(out, request.requester)


def _r_checkpoint_request(buf: memoryview, pos: int) -> tuple[CheckpointRequest, int]:
    requester, pos = _r_str(buf, pos)
    return CheckpointRequest(requester=requester), pos


def _w_checkpoint_response(out: io.BytesIO, response: CheckpointResponse) -> None:
    _w_str(out, response.responder)
    if response.checkpoint is None:
        out.write(b"\x00")
    else:
        out.write(b"\x01")
        _w_bytes(out, _dumps_checkpoint(response.checkpoint))


def _r_checkpoint_response(buf: memoryview, pos: int) -> tuple[CheckpointResponse, int]:
    responder, pos = _r_str(buf, pos)
    flag = buf[pos]
    pos += 1
    checkpoint = None
    if flag:
        data, pos = _r_bytes(buf, pos)
        checkpoint = _loads_checkpoint(data)
    return CheckpointResponse(responder=responder, checkpoint=checkpoint), pos


def _w_source_resubscribe(out: io.BytesIO, request: SourceResubscribe) -> None:
    _w_str(out, request.stream)
    _w_str(out, request.subscriber)
    _w_zigzag(out, request.after_tuple_id)


def _r_source_resubscribe(buf: memoryview, pos: int) -> tuple[SourceResubscribe, int]:
    stream, pos = _r_str(buf, pos)
    subscriber, pos = _r_str(buf, pos)
    after_tuple_id, pos = _r_zigzag(buf, pos)
    return (
        SourceResubscribe(stream=stream, subscriber=subscriber, after_tuple_id=after_tuple_id),
        pos,
    )


#: kind -> (wire index, encoder, decoder).  The index is the on-wire byte;
#: the table order is frozen (append-only) so workers of one version agree.
_CODECS: dict[str, tuple[int, Callable, Callable]] = {
    DATA: (0, _w_batch, _r_batch),
    SUBSCRIBE: (1, _w_subscribe, _r_subscribe),
    UNSUBSCRIBE: (2, _w_unsubscribe, _r_unsubscribe),
    HEARTBEAT_REQUEST: (3, _w_heartbeat_request, _r_heartbeat_request),
    HEARTBEAT_RESPONSE: (4, _w_heartbeat_response, _r_heartbeat_response),
    RECONCILE_REQUEST: (5, _w_reconcile_request, _r_reconcile_request),
    RECONCILE_REPLY: (6, _w_reconcile_reply, _r_reconcile_reply),
    CHECKPOINT_REQUEST: (7, _w_checkpoint_request, _r_checkpoint_request),
    CHECKPOINT_RESPONSE: (8, _w_checkpoint_response, _r_checkpoint_response),
    SOURCE_RESUBSCRIBE: (9, _w_source_resubscribe, _r_source_resubscribe),
}
_KIND_BY_INDEX = {index: kind for kind, (index, _, _) in _CODECS.items()}


def _check_version(buf: memoryview) -> None:
    if len(buf) == 0:
        raise WireError("empty frame")
    if buf[0] != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {buf[0]} (this process speaks {WIRE_VERSION})"
        )


def _check_consumed(buf: memoryview, pos: int) -> None:
    if pos != len(buf):
        raise WireError(f"{len(buf) - pos} trailing bytes after decoded frame")


# --------------------------------------------------------------------------- public API
def encode_message(kind: str, payload: Any) -> bytes:
    """Encode one protocol message as a versioned frame."""
    try:
        index, encoder, _ = _CODECS[kind]
    except KeyError:
        raise WireError(f"unknown message kind {kind!r}") from None
    out = io.BytesIO()
    out.write(bytes((WIRE_VERSION, index)))
    encoder(out, payload)
    return out.getvalue()


def decode_message(data: bytes) -> tuple[str, Any]:
    """Decode a frame produced by :func:`encode_message`."""
    buf = memoryview(data)
    _check_version(buf)
    if len(buf) < 2:
        raise WireError("truncated frame: missing message kind")
    kind = _KIND_BY_INDEX.get(buf[1])
    if kind is None:
        raise WireError(f"unknown message kind index {buf[1]}")
    _, _, decoder = _CODECS[kind]
    payload, pos = decoder(buf, 2)
    _check_consumed(buf, pos)
    return kind, payload


def encode_envelope(sender: str, receiver: str, kind: str, payload: Any) -> bytes:
    """Encode an addressed frame (sender/receiver prefix + message)."""
    try:
        index, encoder, _ = _CODECS[kind]
    except KeyError:
        raise WireError(f"unknown message kind {kind!r}") from None
    out = io.BytesIO()
    out.write(bytes((WIRE_VERSION,)))
    _w_str(out, sender)
    _w_str(out, receiver)
    out.write(bytes((index,)))
    encoder(out, payload)
    return out.getvalue()


def decode_envelope(data: bytes) -> tuple[str, str, str, Any]:
    """Decode a frame produced by :func:`encode_envelope`."""
    buf = memoryview(data)
    _check_version(buf)
    sender, pos = _r_str(buf, 1)
    receiver, pos = _r_str(buf, pos)
    if pos >= len(buf):
        raise WireError("truncated envelope: missing message kind")
    kind = _KIND_BY_INDEX.get(buf[pos])
    if kind is None:
        raise WireError(f"unknown message kind index {buf[pos]}")
    _, _, decoder = _CODECS[kind]
    payload, end = decoder(buf, pos + 1)
    _check_consumed(buf, end)
    return sender, receiver, kind, payload
