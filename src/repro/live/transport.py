"""Asyncio transport presenting the simulated ``Network`` surface.

Each live worker owns one :class:`LiveTransport`.  Protocol components call
the same API the simulated :class:`~repro.sim.network.Network` exposes
(``register``/``send``/``send_many``/``can_communicate``/...), and the
transport routes each message either

* **locally** -- the receiver's handler lives in this process; delivery is
  deferred through ``loop.call_soon`` so a send never re-enters the protocol
  stack synchronously (the simulator likewise never delivers inside
  ``send``), or
* **remotely** -- the message is framed by :mod:`repro.live.wire` with a
  4-byte big-endian length prefix and queued on the outbound link to the
  worker hosting the receiver.  One Unix-domain-socket connection per worker
  pair keeps every link FIFO, matching the paper's reliable in-order
  assumption (TCP, Section 2.2).

Failure semantics: a dead peer worker is indistinguishable from a crashed
simulated endpoint -- frames queued to it are silently discarded after the
connect/write fails (counted as ``dropped``), and the writer keeps retrying
the socket path so a respawned worker (same path) is picked up
automatically.  ``can_communicate`` is always True: live mode has no
partition oracle; real liveness is whatever the sockets deliver, which is
exactly the information DPC's failure detection is designed to work from.
"""

from __future__ import annotations

import asyncio
import os
import struct
from typing import Any, Callable, Sequence

from ..errors import NetworkError
from ..sim.network import Message, NetworkStats
from . import wire

MessageHandler = Callable[[Message, float], None]

_LENGTH = struct.Struct(">I")

#: Cap per-link buffered frames; beyond it the oldest frames are dropped.
#: Live mode has real backpressure on sockets; this bound only matters while
#: a peer is down, where dropping mirrors the simulator's crashed-endpoint
#: semantics.
_MAX_QUEUED_FRAMES = 20000

#: Delay between reconnect attempts to a peer socket that refuses/conn-resets.
_RECONNECT_DELAY = 0.05


class PeerLink:
    """Outbound FIFO link to one peer worker (one socket, one writer task)."""

    def __init__(self, path: str, loop: asyncio.AbstractEventLoop) -> None:
        self.path = path
        self._loop = loop
        self._queue: asyncio.Queue[bytes] = asyncio.Queue()
        self._task: asyncio.Task | None = None
        self._closed = False
        self.dropped_frames = 0
        #: Optimistic until a connect/write fails; once False, senders treat
        #: the peer like a crashed simulated endpoint (outputs stay buffered,
        #: source cursors stop advancing) until a connect succeeds again.
        self.connected = True

    def enqueue(self, frame: bytes) -> None:
        if self._closed:
            return
        while self._queue.qsize() >= _MAX_QUEUED_FRAMES:
            try:
                self._queue.get_nowait()
                self.dropped_frames += 1
            except asyncio.QueueEmpty:  # pragma: no cover - race-free in one loop
                break
        self._queue.put_nowait(frame)
        if self._task is None or self._task.done():
            self._task = self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        writer: asyncio.StreamWriter | None = None
        try:
            while not self._closed:
                frame = await self._queue.get()
                while not self._closed:
                    if writer is None:
                        try:
                            _, writer = await asyncio.open_unix_connection(self.path)
                            self.connected = True
                        except OSError:
                            # Peer not up (yet / anymore).  Drop this frame --
                            # the peer is "crashed" from our point of view --
                            # and retry the socket for the next one.
                            self.connected = False
                            self.dropped_frames += 1
                            frame = None
                            await asyncio.sleep(_RECONNECT_DELAY)
                            break
                    try:
                        writer.write(_LENGTH.pack(len(frame)) + frame)
                        await writer.drain()
                        break
                    except (ConnectionError, OSError):
                        self.connected = False
                        try:
                            writer.close()
                        except Exception:  # pragma: no cover - best effort
                            pass
                        writer = None
        finally:
            if writer is not None:
                writer.close()

    async def close(self) -> None:
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):  # pragma: no cover
                pass


class LiveTransport:
    """Network-surface-compatible message fabric over Unix-domain sockets."""

    def __init__(
        self,
        worker: str,
        socket_path: str,
        endpoint_worker: dict[str, str],
        worker_sockets: dict[str, str],
        clock,
        default_latency: float = 0.0,
    ) -> None:
        self.worker = worker
        self.socket_path = socket_path
        self._endpoint_worker = dict(endpoint_worker)
        self._worker_sockets = dict(worker_sockets)
        self.clock = clock
        self.default_latency = default_latency
        self._loop = asyncio.get_event_loop()
        self._handlers: dict[str, MessageHandler] = {}
        self._links: dict[str, PeerLink] = {}
        self._server: asyncio.AbstractServer | None = None
        self._reader_tasks: set[asyncio.Task] = set()
        self.stats = NetworkStats()

    # ------------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        """Bind this worker's Unix socket and start accepting peer frames."""
        try:
            # A SIGKILLed predecessor leaves its socket file behind; the
            # respawned worker rebinds the same path.
            os.unlink(self.socket_path)
        except FileNotFoundError:
            pass
        self._server = await asyncio.start_unix_server(self._on_connection, path=self.socket_path)

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._reader_tasks):
            task.cancel()
        for link in self._links.values():
            await link.close()
        self._links.clear()

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.add(task)
            task.add_done_callback(self._reader_tasks.discard)
        try:
            while True:
                header = await reader.readexactly(_LENGTH.size)
                (length,) = _LENGTH.unpack(header)
                frame = await reader.readexactly(length)
                self._on_frame(frame)
        except (asyncio.IncompleteReadError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    def _on_frame(self, frame: bytes) -> None:
        try:
            sender, receiver, kind, payload = wire.decode_envelope(frame)
        except wire.WireError:
            self.stats.dropped += 1
            return
        self._deliver_local(Message(sender, receiver, kind, payload, sent_at=self.clock.now))

    # ------------------------------------------------------------------ topology
    def register(self, name: str, handler: MessageHandler) -> None:
        if name in self._handlers:
            raise NetworkError(f"endpoint {name!r} already registered")
        self._handlers[name] = handler

    def unregister(self, name: str) -> None:
        self._handlers.pop(name, None)

    def endpoints(self) -> list[str]:
        return sorted(self._endpoint_worker)

    def set_link_latency(self, sender: str, receiver: str, latency: float) -> None:
        """No-op: live links have real latency, not a configured one."""

    def latency(self, sender: str, receiver: str) -> float:
        return self.default_latency

    # ------------------------------------------------------------------ failures
    # Live failures are injected at the process level (SIGKILL) by the
    # supervisor; the transport has no partition or crash oracle.
    def partition(self, a: str, b: str) -> None:  # pragma: no cover - API parity
        raise NetworkError("live transport cannot inject partitions; SIGKILL a worker instead")

    def heal_partition(self, a: str, b: str) -> None:  # pragma: no cover - API parity
        pass

    def crash(self, name: str) -> None:
        """No-op: a live endpoint 'crashes' by its process dying."""

    def recover(self, name: str) -> None:
        """No-op: a live endpoint recovers by its process being respawned."""

    def is_partitioned(self, a: str, b: str) -> bool:
        return False

    def is_down(self, name: str) -> bool:
        return False

    def can_communicate(self, sender: str, receiver: str) -> bool:
        # The honest answer is "unknown until the socket says otherwise".
        # Optimistic True matches what a real deployment can know at send
        # time and lets the protocol's own failure detection do its job.
        return True

    # ------------------------------------------------------------------ messaging
    def send(self, sender: str, receiver: str, kind: str, payload: Any) -> bool:
        return bool(self.send_many(sender, (receiver,), kind, payload))

    def send_many(
        self, sender: str, receivers: Sequence[str], kind: str, payload: Any
    ) -> list[str]:
        for receiver in receivers:
            if receiver not in self._endpoint_worker:
                raise NetworkError(f"unknown endpoint {receiver!r}")
        now = self.clock.now
        on_the_wire: list[str] = []
        remote_frames: dict[str, bytes] = {}
        for receiver in receivers:
            self.stats.sent += 1
            self.stats.record(kind, "sent")
            target_worker = self._endpoint_worker[receiver]
            if target_worker == self.worker:
                message = Message(sender, receiver, kind, payload, sent_at=now)
                self._loop.call_soon(self._deliver_local, message)
            else:
                frame = remote_frames.get(receiver)
                if frame is None:
                    frame = wire.encode_envelope(sender, receiver, kind, payload)
                    remote_frames[receiver] = frame
                link = self._link_to(target_worker)
                link.enqueue(frame)
                if not link.connected:
                    # Mirror the simulator's crashed-endpoint semantics: a
                    # peer whose socket last refused us is not credited with
                    # delivery, so outputs stay buffered and source cursors
                    # hold until the respawned worker reconnects.
                    self.stats.dropped += 1
                    self.stats.record(kind, "dropped")
                    continue
            on_the_wire.append(receiver)
        return on_the_wire

    def broadcast(self, sender: str, receivers: list[str], kind: str, payload: Any) -> int:
        return len(self.send_many(sender, receivers, kind, payload))

    def _link_to(self, worker: str) -> PeerLink:
        link = self._links.get(worker)
        if link is None:
            link = PeerLink(self._worker_sockets[worker], self._loop)
            self._links[worker] = link
        return link

    def _deliver_local(self, message: Message) -> None:
        handler = self._handlers.get(message.receiver)
        if handler is None:
            self.stats.dropped += 1
            self.stats.record(message.kind, "dropped")
            return
        self.stats.delivered += 1
        self.stats.record(message.kind, "delivered")
        handler(message, self.clock.now)
