"""Asyncio transport presenting the simulated ``Network`` surface.

Each live worker owns one :class:`LiveTransport`.  Protocol components call
the same API the simulated :class:`~repro.sim.network.Network` exposes
(``register``/``send``/``send_many``/``can_communicate``/...), and the
transport routes each message either

* **locally** -- the receiver's handler lives in this process; delivery is
  deferred through ``loop.call_soon`` so a send never re-enters the protocol
  stack synchronously (the simulator likewise never delivers inside
  ``send``), or
* **remotely** -- the message is framed by :mod:`repro.live.wire`, wrapped in
  a transport header ``(frame type, sender generation, link sequence)`` and a
  4-byte big-endian length prefix, then queued on the outbound link to the
  worker hosting the receiver.  One Unix-domain-socket connection per worker
  pair keeps every link FIFO, matching the paper's reliable in-order
  assumption (TCP, Section 2.2).

**Fault injection** (:mod:`repro.live.faults`): an optional frozen
:class:`~repro.live.faults.FaultPlan` is enforced here.  *Window* rules
(disconnect/partition) deny delivery credit in :meth:`send_many` -- the
blocked receiver is left out of the returned list, so source cursors and
node output buffers hold exactly as they do for a crashed simulated
endpoint, and replay-on-heal falls out of the existing protocol.  *Wire*
rules (drop/delay/duplicate/reorder/throttle) act on the outbound link:
reorder swaps queued frames **before** sequence stamping (so receiver-side
FIFO checking still holds), duplicate rewrites the **same** stamped bytes
(so the receiver sheds the copy), drop consumes one bounded send retry, and
delay/throttle only stretch wall time.  Every probabilistic decision flows
through :meth:`FaultPlan.decision` -- a pure CRC-32 hash of (seed, rule,
link, counter) -- never a wall-clock RNG.

**Hardening.** Reconnects use capped exponential backoff with seeded jitter
(:func:`~repro.live.faults.backoff_delay`) instead of a fixed delay; writes
carry a per-send timeout and a bounded retry budget, with frames that
exhaust it counted as *dead letters* (frames shed while a peer's socket is
plainly down are ``dropped_frames`` -- the expected, replay-healed case).
Frames carry the sender's *generation* (bumped by the supervisor on every
respawn) and a per-link sequence number: receivers reject stale-generation
frames (a predecessor's zombie writes) and non-monotonic sequences
(injected duplicates).  Worker-to-worker heartbeat frames ride the same
fault pipeline, driving a typed ``ALIVE -> SUSPECT -> DOWN`` peer-liveness
state machine whose DOWN verdict feeds ``can_communicate`` -- the same
signal DPC's failure detection reads in the simulator.
"""

from __future__ import annotations

import asyncio
import os
import struct
from collections import Counter
from enum import Enum
from typing import Any, Callable, NamedTuple, Sequence

from ..errors import NetworkError
from ..sim.network import Message, NetworkStats
from . import wire
from .faults import (
    DELAY,
    DROP,
    DUPLICATE,
    PARTITION,
    REORDER,
    THROTTLE,
    FaultPlan,
    backoff_delay,
)

MessageHandler = Callable[[Message, float], None]

_LENGTH = struct.Struct(">I")
#: Transport frame header: frame type, sender generation, link sequence.
_HEADER = struct.Struct(">BIQ")
_FT_ENVELOPE = 0
_FT_HEARTBEAT = 1

#: Cap per-link buffered frames; beyond it the oldest frames are dropped.
#: Live mode has real backpressure on sockets; this bound only matters while
#: a peer is down, where dropping mirrors the simulator's crashed-endpoint
#: semantics.
_MAX_QUEUED_FRAMES = 20000

#: Reconnect backoff: first retry after ~_BACKOFF_BASE, doubling to _BACKOFF_CAP.
_BACKOFF_BASE = 0.05
_BACKOFF_CAP = 2.0

#: Per-send write timeout and bounded retry budget before dead-lettering.
_SEND_TIMEOUT = 5.0
_SEND_RETRIES = 4

#: Heartbeat cadence and liveness thresholds (seconds of silence).
_HEARTBEAT_INTERVAL = 0.25
_SUSPECT_AFTER = 0.75
_DOWN_AFTER = 2.5

#: Cap on the retained injected-fault event list (counts are unbounded).
_MAX_FAULT_EVENTS = 4000


class PeerState(str, Enum):
    """Typed liveness verdict for one peer worker."""

    ALIVE = "alive"
    SUSPECT = "suspect"
    DOWN = "down"


class _Entry(NamedTuple):
    """One queued outbound frame, pre-stamping (see reorder semantics)."""

    ftype: int
    sender: str
    receiver: str
    kind: str
    body: bytes


class PeerLink:
    """Outbound FIFO link to one peer worker (one socket, one writer task)."""

    def __init__(self, peer: str, path: str, transport: "LiveTransport") -> None:
        self.peer = peer
        self.path = path
        self._transport = transport
        self._loop = transport._loop
        self._queue: asyncio.Queue[_Entry] = asyncio.Queue()
        self._task: asyncio.Task | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._closed = False
        #: Next sequence number stamped on this link's frames.
        self._seq = 0
        self._connect_failures = 0
        self._next_connect_at = 0.0
        self._last_write = 0.0
        # ---- counters surfaced in worker stats -------------------------------
        self.frames_sent = 0
        self.dropped_frames = 0  # shed while the peer's socket was down
        self.dead_letters = 0  # exhausted the bounded retry budget
        self.retries = 0
        self.reconnect_attempts = 0
        self.reconnects = 0
        #: Optimistic until a connect/write fails; once False, senders treat
        #: the peer like a crashed simulated endpoint (outputs stay buffered,
        #: source cursors stop advancing) until a connect succeeds again.
        self.connected = True

    # ------------------------------------------------------------------ producer
    def enqueue(self, ftype: int, sender: str, receiver: str, kind: str, body: bytes) -> None:
        if self._closed:
            return
        while self._queue.qsize() >= _MAX_QUEUED_FRAMES:
            try:
                self._queue.get_nowait()
                self.dropped_frames += 1
            except asyncio.QueueEmpty:  # pragma: no cover - race-free in one loop
                break
        self._queue.put_nowait(_Entry(ftype, sender, receiver, kind, body))
        if self._task is None or self._task.done():
            self._task = self._loop.create_task(self._drain())

    # ------------------------------------------------------------------ writer task
    async def _drain(self) -> None:
        try:
            while not self._closed:
                entry = await self._queue.get()
                for item in self._maybe_reorder(entry):
                    await self._send_entry(item)
        finally:
            self._close_writer()

    def _maybe_reorder(self, entry: _Entry) -> list[_Entry]:
        """Swap with the next queued frame *before* sequence stamping.

        Stamping afterwards keeps on-wire sequences monotonic, so the
        receiver's duplicate check never misfires on an injected reorder --
        the reorder is real (a later-submitted frame travels first) but FIFO
        numbering is assigned at departure, like a retransmitting TCP stack.
        """
        plan = self._transport._plan
        if plan.is_empty or self._queue.empty():
            return [entry]
        now = self._transport.clock.now
        link = f"{entry.sender}>{entry.receiver}"
        for rule in plan.wire_rules(entry.sender, entry.receiver, now):
            if rule.kind != REORDER:
                continue
            if plan.decision(rule, link, self._transport._next_counter(REORDER)) < rule.probability:
                try:
                    swapped = self._queue.get_nowait()
                except asyncio.QueueEmpty:  # pragma: no cover - checked above
                    return [entry]
                self._transport._record_injected(REORDER, entry.sender, entry.receiver)
                return [swapped, entry]
        return [entry]

    async def _send_entry(self, entry: _Entry) -> None:
        transport = self._transport
        plan = transport._plan
        link = f"{entry.sender}>{entry.receiver}"
        rules = (
            plan.wire_rules(entry.sender, entry.receiver, transport.clock.now)
            if not plan.is_empty
            else ()
        )
        # Injected latency, then throttling, both before the frame departs.
        for rule in rules:
            if rule.kind == DELAY:
                roll = plan.decision(rule, link, transport._next_counter(DELAY))
                if roll < rule.probability:
                    extra = rule.delay + rule.jitter * plan.decision(
                        rule, link, transport._next_counter(DELAY)
                    )
                    transport._record_injected(DELAY, entry.sender, entry.receiver)
                    await asyncio.sleep(extra)
            elif rule.kind == THROTTLE and rule.min_interval > 0:
                wait = self._last_write + rule.min_interval - self._loop.time()
                if wait > 0:
                    transport._record_injected(THROTTLE, entry.sender, entry.receiver)
                    await asyncio.sleep(wait)
        seq = self._seq
        self._seq += 1
        frame = _HEADER.pack(entry.ftype, transport.generation, seq) + entry.body
        payload = _LENGTH.pack(len(frame)) + frame

        attempts = 0
        while not self._closed:
            # An injected drop is a lost write: it consumes one bounded retry,
            # so chaos-level drop rates are absorbed and only a pathological
            # streak dead-letters a frame.
            dropped = False
            for rule in rules:
                if rule.kind == DROP and plan.decision(
                    rule, link, transport._next_counter(DROP)
                ) < rule.probability:
                    dropped = True
                    break
            if dropped:
                transport._record_injected(DROP, entry.sender, entry.receiver)
                attempts += 1
                if attempts > _SEND_RETRIES:
                    self.dead_letters += 1
                    return
                self.retries += 1
                continue
            if not await self._ensure_connection():
                # Peer not up (yet / anymore).  Shed the frame -- the peer is
                # "crashed" from our point of view, delivery was never
                # credited, and resubscription replay heals the gap.
                self.dropped_frames += 1
                return
            try:
                assert self._writer is not None
                self._writer.write(payload)
                await asyncio.wait_for(self._writer.drain(), _SEND_TIMEOUT)
                self.frames_sent += 1
                self._last_write = self._loop.time()
                break
            except (ConnectionError, OSError, asyncio.TimeoutError):
                self._close_writer()
                self.connected = False
                attempts += 1
                if attempts > _SEND_RETRIES:
                    self.dead_letters += 1
                    return
                self.retries += 1
                await asyncio.sleep(
                    backoff_delay(
                        attempts - 1,
                        base=_BACKOFF_BASE,
                        cap=_BACKOFF_CAP,
                        seed=plan.seed,
                        link=self.peer,
                    )
                )
        else:
            return
        # Duplicate *after* stamping: the copy carries the same sequence
        # number, so the receiver's monotonic check sheds it -- the injection
        # proves the dedup path, not a delivery bug.
        for rule in rules:
            if rule.kind == DUPLICATE and plan.decision(
                rule, link, transport._next_counter(DUPLICATE)
            ) < rule.probability:
                transport._record_injected(DUPLICATE, entry.sender, entry.receiver)
                try:
                    assert self._writer is not None
                    self._writer.write(payload)
                    await asyncio.wait_for(self._writer.drain(), _SEND_TIMEOUT)
                except (ConnectionError, OSError, asyncio.TimeoutError):
                    self._close_writer()
                    self.connected = False
                break

    async def _ensure_connection(self) -> bool:
        """Connect if needed, honouring the capped-exponential backoff window."""
        if self._writer is not None:
            return True
        if self._loop.time() < self._next_connect_at:
            return False
        if not self.connected:
            self.reconnect_attempts += 1
        try:
            _, writer = await asyncio.wait_for(
                asyncio.open_unix_connection(self.path), _SEND_TIMEOUT
            )
        except (OSError, asyncio.TimeoutError):
            self.connected = False
            self._connect_failures += 1
            self._next_connect_at = self._loop.time() + backoff_delay(
                self._connect_failures - 1,
                base=_BACKOFF_BASE,
                cap=_BACKOFF_CAP,
                seed=self._transport._plan.seed,
                link=self.peer,
            )
            return False
        self._writer = writer
        if not self.connected:
            self.reconnects += 1
        self.connected = True
        self._connect_failures = 0
        self._next_connect_at = 0.0
        return True

    def _close_writer(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:  # pragma: no cover - best effort
                pass
            self._writer = None

    def stats(self) -> dict:
        return {
            "frames_sent": self.frames_sent,
            "dropped_frames": self.dropped_frames,
            "dead_letters": self.dead_letters,
            "retries": self.retries,
            "reconnect_attempts": self.reconnect_attempts,
            "reconnects": self.reconnects,
            "connected": self.connected,
        }

    async def close(self) -> None:
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):  # pragma: no cover
                pass
        self._close_writer()


class LiveTransport:
    """Network-surface-compatible message fabric over Unix-domain sockets."""

    def __init__(
        self,
        worker: str,
        socket_path: str,
        endpoint_worker: dict[str, str],
        worker_sockets: dict[str, str],
        clock,
        default_latency: float = 0.0,
        generation: int = 0,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.worker = worker
        self.socket_path = socket_path
        self.generation = generation
        self._endpoint_worker = dict(endpoint_worker)
        self._worker_sockets = dict(worker_sockets)
        self.clock = clock
        self.default_latency = default_latency
        self._plan = fault_plan if fault_plan is not None else FaultPlan()
        self._plan.validate()
        self._loop = asyncio.get_event_loop()
        self._handlers: dict[str, MessageHandler] = {}
        self._links: dict[str, PeerLink] = {}
        self._server: asyncio.AbstractServer | None = None
        self._reader_tasks: set[asyncio.Task] = set()
        self._heartbeat_task: asyncio.Task | None = None
        self._closed = False
        self.stats = NetworkStats()
        # ---- hosted-endpoint index (for worker-granular heartbeat blocking) --
        hosted: dict[str, list[str]] = {}
        for endpoint, owner in self._endpoint_worker.items():
            hosted.setdefault(owner, []).append(endpoint)
        self._hosted_by = {owner: tuple(sorted(names)) for owner, names in hosted.items()}
        # ---- receive-side frame hardening ------------------------------------
        self._peer_generation: dict[str, int] = {}
        self._peer_seq: dict[str, int] = {}
        self.stale_rejected = 0
        self.duplicates_rejected = 0
        # ---- peer liveness ---------------------------------------------------
        self._last_heard: dict[str, float] = {}
        self._peer_state: dict[str, PeerState] = {}
        self.peer_transitions: list[dict] = []
        self.suspicions = 0
        self.confirmations = 0
        self.heartbeats_sent = 0
        self.heartbeats_received = 0
        self.heartbeats_suppressed = 0
        # ---- injected-fault accounting ---------------------------------------
        self.injected: Counter = Counter()
        self.fault_events: list[dict] = []
        self._fault_events_dropped = 0
        self._decision_counters: Counter = Counter()

    # ------------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        """Bind this worker's Unix socket and start accepting peer frames."""
        try:
            # A SIGKILLed predecessor leaves its socket file behind; the
            # respawned worker rebinds the same path.
            os.unlink(self.socket_path)
        except FileNotFoundError:
            pass
        self._server = await asyncio.start_unix_server(self._on_connection, path=self.socket_path)
        if len(self._worker_sockets) > 1:
            self._heartbeat_task = self._loop.create_task(self._heartbeat_loop())

    async def close(self) -> None:
        self._closed = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except (asyncio.CancelledError, Exception):  # pragma: no cover
                pass
            self._heartbeat_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._reader_tasks):
            task.cancel()
        for link in self._links.values():
            await link.close()
        self._links.clear()

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.add(task)
            task.add_done_callback(self._reader_tasks.discard)
        try:
            while True:
                header = await reader.readexactly(_LENGTH.size)
                (length,) = _LENGTH.unpack(header)
                frame = await reader.readexactly(length)
                self._on_frame(frame)
        except (asyncio.IncompleteReadError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    # ------------------------------------------------------------------ receive path
    def _on_frame(self, frame: bytes) -> None:
        if len(frame) < _HEADER.size:
            self.stats.dropped += 1
            return
        ftype, generation, seq = _HEADER.unpack_from(frame)
        body = frame[_HEADER.size :]
        now = self.clock.now
        if ftype == _FT_HEARTBEAT:
            try:
                peer = body.decode("utf-8")
            except UnicodeDecodeError:  # pragma: no cover - corrupt frame
                self.stats.dropped += 1
                return
            if self._admit_frame(peer, generation, seq):
                self.heartbeats_received += 1
                self._note_alive(peer, now)
            return
        try:
            sender, receiver, kind, payload = wire.decode_envelope(body)
        except wire.WireError:
            self.stats.dropped += 1
            return
        peer = self._endpoint_worker.get(sender, sender)
        if not self._admit_frame(peer, generation, seq):
            self.stats.dropped += 1
            self.stats.record(kind, "dropped")
            return
        self._note_alive(peer, now)
        self._deliver_local(Message(sender, receiver, kind, payload, sent_at=now))

    def _admit_frame(self, peer: str, generation: int, seq: int) -> bool:
        """Stale-generation and duplicate-sequence rejection for one link.

        A respawned sender announces a higher generation (the supervisor
        bumps it), which resets the expected sequence; frames stamped with an
        older generation are a predecessor's leftovers and are rejected, as
        is any non-increasing sequence within a generation (injected or real
        duplicates -- each worker pair shares one FIFO socket).
        """
        known = self._peer_generation.get(peer)
        if known is not None and generation < known:
            self.stale_rejected += 1
            return False
        if known is None or generation > known:
            self._peer_generation[peer] = generation
            self._peer_seq[peer] = -1
        if seq <= self._peer_seq.get(peer, -1):
            self.duplicates_rejected += 1
            return False
        self._peer_seq[peer] = seq
        return True

    # ------------------------------------------------------------------ heartbeats
    async def _heartbeat_loop(self) -> None:
        while not self._closed:
            await asyncio.sleep(_HEARTBEAT_INTERVAL)
            self._heartbeat_tick(self.clock.now)

    def _heartbeat_tick(self, now: float) -> None:
        mine = self._hosted_by.get(self.worker, ())
        body = self.worker.encode("utf-8")
        for peer in self._worker_sockets:
            if peer == self.worker:
                continue
            if not self._plan.is_empty and self._plan.blocked_worker(
                mine, self._hosted_by.get(peer, ()), now
            ):
                # A partition isolating every endpoint pair between the two
                # workers silences the heartbeat too: the peer *should* start
                # suspecting us, exactly like a real network split.
                self.heartbeats_suppressed += 1
                continue
            self._link_to(peer).enqueue(_FT_HEARTBEAT, self.worker, peer, "heartbeat", body)
            self.heartbeats_sent += 1
        self._sweep_liveness(now)

    def _sweep_liveness(self, now: float) -> None:
        for peer in self._worker_sockets:
            if peer == self.worker:
                continue
            last = self._last_heard.get(peer)
            if last is None:
                # First sighting of the peer set: arm the silence clock now so
                # startup staggering never produces an instant suspicion.
                self._last_heard[peer] = now
                continue
            silence = now - last
            if silence >= _DOWN_AFTER:
                state = PeerState.DOWN
            elif silence >= _SUSPECT_AFTER:
                state = PeerState.SUSPECT
            else:
                state = PeerState.ALIVE
            self._set_peer_state(peer, state, now)

    def _note_alive(self, peer: str, now: float) -> None:
        if peer == self.worker or peer not in self._worker_sockets:
            return
        self._last_heard[peer] = now
        self._set_peer_state(peer, PeerState.ALIVE, now)

    def _set_peer_state(self, peer: str, state: PeerState, now: float) -> None:
        previous = self._peer_state.get(peer, PeerState.ALIVE)
        if state is previous:
            return
        self._peer_state[peer] = state
        self.peer_transitions.append(
            {"peer": peer, "from": previous.value, "to": state.value, "at": now}
        )
        if state is PeerState.SUSPECT:
            self.suspicions += 1
        elif state is PeerState.DOWN:
            self.confirmations += 1

    def peer_state(self, peer: str) -> PeerState:
        return self._peer_state.get(peer, PeerState.ALIVE)

    # ------------------------------------------------------------------ fault accounting
    def _next_counter(self, kind: str) -> int:
        value = self._decision_counters[kind]
        self._decision_counters[kind] = value + 1
        return value

    def _record_injected(self, kind: str, sender: str, receiver: str) -> None:
        self.injected[kind] += 1
        if len(self.fault_events) < _MAX_FAULT_EVENTS:
            self.fault_events.append(
                {"at": self.clock.now, "kind": kind, "sender": sender, "receiver": receiver}
            )
        else:
            self._fault_events_dropped += 1

    # ------------------------------------------------------------------ topology
    def register(self, name: str, handler: MessageHandler) -> None:
        if name in self._handlers:
            raise NetworkError(f"endpoint {name!r} already registered")
        self._handlers[name] = handler

    def unregister(self, name: str) -> None:
        self._handlers.pop(name, None)

    def endpoints(self) -> list[str]:
        return sorted(self._endpoint_worker)

    def set_link_latency(self, sender: str, receiver: str, latency: float) -> None:
        """No-op: live links have real latency, not a configured one."""

    def latency(self, sender: str, receiver: str) -> float:
        return self.default_latency

    # ------------------------------------------------------------------ failures
    # Live failures are scheduled, not imperative: crash windows become
    # supervisor SIGKILLs, disconnect/partition windows live in the FaultPlan
    # enforced on the send path.  The imperative oracle mutators therefore
    # stay unsupported.
    def partition(self, a: str, b: str) -> None:  # pragma: no cover - API parity
        raise NetworkError(
            "live transport cannot partition imperatively; schedule the window "
            "in a FaultPlan (repro.live.faults) and pass it to the deployment"
        )

    def heal_partition(self, a: str, b: str) -> None:  # pragma: no cover - API parity
        pass

    def crash(self, name: str) -> None:
        """No-op: a live endpoint 'crashes' by its process dying."""

    def recover(self, name: str) -> None:
        """No-op: a live endpoint recovers by its process being respawned."""

    def is_partitioned(self, a: str, b: str) -> bool:
        if self._plan.is_empty:
            return False
        now = self.clock.now
        for sender, receiver in ((a, b), (b, a)):
            rule = self._plan.blocked(sender, receiver, now)
            if rule is not None and rule.kind == PARTITION:
                return True
        return False

    def is_down(self, name: str) -> bool:
        owner = self._endpoint_worker.get(name)
        if owner is None or owner == self.worker:
            return False
        return self._peer_state.get(owner) is PeerState.DOWN

    def can_communicate(self, sender: str, receiver: str) -> bool:
        # Scheduled windows answer first (they are the experiment's oracle);
        # otherwise heartbeat-confirmed DOWN peers are unreachable, and the
        # rest is optimistic True -- what a real deployment can know at send
        # time, letting the protocol's own failure detection do its job.
        if not self._plan.is_empty and self._plan.blocked(sender, receiver, self.clock.now):
            return False
        return not (self.is_down(sender) or self.is_down(receiver))

    # ------------------------------------------------------------------ messaging
    def send(self, sender: str, receiver: str, kind: str, payload: Any) -> bool:
        return bool(self.send_many(sender, (receiver,), kind, payload))

    def send_many(
        self, sender: str, receivers: Sequence[str], kind: str, payload: Any
    ) -> list[str]:
        for receiver in receivers:
            if receiver not in self._endpoint_worker:
                raise NetworkError(f"unknown endpoint {receiver!r}")
        now = self.clock.now
        check_windows = not self._plan.is_empty
        on_the_wire: list[str] = []
        for receiver in receivers:
            self.stats.sent += 1
            self.stats.record(kind, "sent")
            if check_windows:
                rule = self._plan.blocked(sender, receiver, now)
                if rule is not None:
                    # Credit denial is the whole mechanism: the sender's
                    # cursors/buffers hold, exactly like the simulator
                    # skipping a crashed or partitioned endpoint.
                    self.stats.dropped += 1
                    self.stats.record(kind, "dropped")
                    self._record_injected(rule.kind, sender, receiver)
                    continue
            target_worker = self._endpoint_worker[receiver]
            if target_worker == self.worker:
                message = Message(sender, receiver, kind, payload, sent_at=now)
                self._loop.call_soon(self._deliver_local, message)
            else:
                body = wire.encode_envelope(sender, receiver, kind, payload)
                link = self._link_to(target_worker)
                link.enqueue(_FT_ENVELOPE, sender, receiver, kind, body)
                if not link.connected:
                    # Mirror the simulator's crashed-endpoint semantics: a
                    # peer whose socket last refused us is not credited with
                    # delivery, so outputs stay buffered and source cursors
                    # hold until the respawned worker reconnects.
                    self.stats.dropped += 1
                    self.stats.record(kind, "dropped")
                    continue
            on_the_wire.append(receiver)
        return on_the_wire

    def broadcast(self, sender: str, receivers: list[str], kind: str, payload: Any) -> int:
        return len(self.send_many(sender, receivers, kind, payload))

    def _link_to(self, worker: str) -> PeerLink:
        link = self._links.get(worker)
        if link is None:
            link = PeerLink(worker, self._worker_sockets[worker], self)
            self._links[worker] = link
        return link

    def _deliver_local(self, message: Message) -> None:
        handler = self._handlers.get(message.receiver)
        if handler is None:
            self.stats.dropped += 1
            self.stats.record(message.kind, "dropped")
            return
        self.stats.delivered += 1
        self.stats.record(message.kind, "delivered")
        handler(message, self.clock.now)

    # ------------------------------------------------------------------ reporting
    def transport_stats(self) -> dict:
        """Hardening + fault-injection counters for this worker's result."""
        return {
            "worker": self.worker,
            "generation": self.generation,
            "links": {peer: link.stats() for peer, link in sorted(self._links.items())},
            "stale_rejected": self.stale_rejected,
            "duplicates_rejected": self.duplicates_rejected,
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeats_received": self.heartbeats_received,
            "heartbeats_suppressed": self.heartbeats_suppressed,
            "suspicions": self.suspicions,
            "confirmations": self.confirmations,
            "peer_states": {
                peer: state.value for peer, state in sorted(self._peer_state.items())
            },
            "peer_transitions": list(self.peer_transitions),
            "injected": dict(self.injected),
            "fault_events": list(self.fault_events),
            "fault_events_dropped": self._fault_events_dropped,
        }
