"""Single-node experiments: Figure 11, Table III, and Figure 13."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..config import DelayPolicy, DPCConfig
from ..metrics.collector import TraceEntry
from ..runtime import FailureSpec, ScenarioSpec
from .harness import ExperimentResult, availability_run

#: The six delay-policy variants compared in Figure 13, in the paper's naming.
FIG13_POLICIES: dict[str, DelayPolicy] = {
    "Process & Process": DelayPolicy.process_process(),
    "Delay & Process": DelayPolicy.delay_process(),
    "Process & Delay": DelayPolicy.process_delay(),
    "Delay & Delay": DelayPolicy.delay_delay(),
    "Process & Suspend": DelayPolicy.process_suspend(),
    "Delay & Suspend": DelayPolicy.delay_suspend(),
}


@dataclass
class TraceResult:
    """Output trace of one eventual-consistency experiment (Figure 11)."""

    label: str
    trace: list[TraceEntry]
    eventually_consistent: bool
    n_tentative: int
    n_undos: int
    n_rec_done: int
    reconciliations: int = 0
    extra: dict = field(default_factory=dict)

    def series(self) -> list[tuple[float, object, str]]:
        """(time, sequence number, tuple type) points -- what Figure 11 plots.

        REC_DONE markers are reported with sequence number 0, matching the
        paper's presentation ("a tuple with identifier zero").
        """
        points: list[tuple[float, object, str]] = []
        for entry in self.trace:
            if entry.tuple_type in ("insertion", "tentative") and entry.sequence is not None:
                points.append((entry.time, entry.sequence, entry.tuple_type))
            elif entry.tuple_type == "rec_done":
                points.append((entry.time, 0, entry.tuple_type))
        return points


def eventual_consistency_trace(
    *,
    overlapping: bool,
    aggregate_rate: float = 150.0,
    max_incremental_latency: float = 2.0,
    first_failure_start: float = 5.0,
    first_failure_duration: float = 10.0,
    settle: float = 30.0,
    config: DPCConfig | None = None,
) -> TraceResult:
    """Reproduce Figure 11: a single unreplicated node and two failures.

    With ``overlapping=True`` the second failure (on input stream 3) starts
    while the first (on input stream 1) is still active -- Figure 11(a).  With
    ``overlapping=False`` the second failure starts exactly when the first one
    heals, i.e. during recovery -- Figure 11(b).
    """
    config = config or DPCConfig(max_incremental_latency=max_incremental_latency)
    if overlapping:
        second_start = first_failure_start + first_failure_duration / 2
    else:
        second_start = first_failure_start + first_failure_duration
    spec = ScenarioSpec.single_node(
        name="Figure 11(a) overlapping failures"
        if overlapping
        else "Figure 11(b) failure during recovery",
        replicated=False,
        aggregate_rate=aggregate_rate,
        join_state_size=None,
        config=config,
        warmup=first_failure_start,
        settle=settle,
        failures=(
            FailureSpec(
                kind="disconnect",
                start=first_failure_start,
                duration=first_failure_duration,
                stream_index=0,
            ),
            FailureSpec(
                kind="disconnect",
                start=second_start,
                duration=first_failure_duration,
                stream_index=2,
            ),
        ),
    )
    runtime = spec.run()
    client = runtime.client
    summary = client.summary()
    return TraceResult(
        label=spec.name,
        trace=list(client.metrics.trace),
        eventually_consistent=runtime.eventually_consistent(),
        n_tentative=summary["total_tentative"],
        n_undos=summary["total_undos"],
        n_rec_done=summary["total_rec_done"],
        reconciliations=sum(n.reconciliations_completed for n in runtime.nodes()),
        extra={"proc_new": summary["proc_new"]},
    )


def table3(
    failure_durations: Sequence[float] = (2, 4, 6, 8, 10, 12, 14, 16, 30, 45, 60),
    *,
    aggregate_rate: float = 150.0,
    max_incremental_latency: float = 3.0,
    settle: float = 30.0,
) -> list[ExperimentResult]:
    """Table III: Proc_new vs failure duration, one replicated node, X = 3 s."""
    results = []
    for duration in failure_durations:
        results.append(
            availability_run(
                failure_duration=float(duration),
                label="Table III",
                chain_depth=1,
                replicas_per_node=2,
                aggregate_rate=aggregate_rate,
                max_incremental_latency=max_incremental_latency,
                policy=DelayPolicy.process_process(),
                settle=settle + duration * 0.5,
            )
        )
    return results


def fig13(
    failure_durations: Sequence[float] = (2, 6, 10, 14, 30, 60),
    policies: dict[str, DelayPolicy] | None = None,
    *,
    aggregate_rate: float = 450.0,
    max_incremental_latency: float = 3.0,
    settle: float = 30.0,
) -> list[ExperimentResult]:
    """Figure 13: Proc_new and N_tentative for the six delay-policy variants."""
    policies = policies or FIG13_POLICIES
    results = []
    for name, policy in policies.items():
        for duration in failure_durations:
            results.append(
                availability_run(
                    failure_duration=float(duration),
                    label=name,
                    chain_depth=1,
                    replicas_per_node=2,
                    aggregate_rate=aggregate_rate,
                    max_incremental_latency=max_incremental_latency,
                    policy=policy,
                    settle=settle + duration * 0.5,
                )
            )
    return results
