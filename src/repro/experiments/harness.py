"""Shared experiment harness.

Every benchmark in ``benchmarks/`` (one per table / figure of the paper) is a
thin wrapper around the runners in this package, so the same code can be used
interactively::

    from repro.experiments import availability_run
    result = availability_run(failure_duration=10.0)
    print(result.proc_new, result.n_tentative)

Every runner describes its deployment as a
:class:`~repro.runtime.ScenarioSpec` and executes it through a
:class:`~repro.runtime.SimulationRuntime`; :func:`summarize_run` condenses a
completed runtime into an :class:`ExperimentResult`.

Scale note: the paper drives its prototype at 500-4500 tuples/s on real
hardware.  The default rates here are lower so that the full benchmark suite
completes in minutes on a laptop; every rate is a parameter and
``EXPERIMENTS.md`` records the values used for the reported numbers.  All
durations, delay bounds, and failure lengths are in *simulated seconds* and
match the paper exactly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Sequence

from ..config import DelayAssignment, DelayPolicy, DPCConfig, SimulationConfig
from ..runtime import FailureSpec, ScenarioSpec, SimulationRuntime, client_is_eventually_consistent


@dataclass(frozen=True)
class ExperimentResult:
    """Summary of one cluster run, in the units the paper reports."""

    label: str
    failure_duration: float
    chain_depth: int
    policy: str
    proc_new: float
    max_gap: float
    n_tentative: int
    n_stable: int
    n_undos: int
    n_rec_done: int
    eventually_consistent: bool
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return asdict(self)

    def row(self) -> str:
        """One formatted table row (used by the benchmark harness printout)."""
        return (
            f"{self.label:<28} failure={self.failure_duration:>5.1f}s depth={self.chain_depth} "
            f"Proc_new={self.proc_new:6.2f}s N_tentative={self.n_tentative:>7d} "
            f"consistent={'yes' if self.eventually_consistent else 'NO'}"
        )


def check_eventual_consistency(deployment) -> bool:
    """Final stable output must be gap-free, duplicate-free, and in order.

    Accepts anything with a ``client`` attribute (a
    :class:`~repro.runtime.SimulationRuntime` or a bare
    :class:`~repro.sim.cluster.Cluster`).
    """
    return client_is_eventually_consistent(deployment.client)


def availability_run(
    failure_duration: float,
    *,
    label: str = "",
    chain_depth: int = 1,
    replicas_per_node: int = 2,
    aggregate_rate: float = 150.0,
    max_incremental_latency: float = 3.0,
    policy: DelayPolicy | None = None,
    delay_assignment: DelayAssignment = DelayAssignment.UNIFORM,
    per_node_delay: float | None = None,
    failure_kind: str = "disconnect",
    failure_stream: int = 0,
    warmup: float = 5.0,
    settle: float = 30.0,
    redo_rate: float = 1200.0,
    join_state_size: int | None = 100,
    config: DPCConfig | None = None,
    sim_config: SimulationConfig | None = None,
    seed: int | None = None,
) -> ExperimentResult:
    """Run one failure scenario and summarize availability and consistency.

    This is the workhorse behind Table III and Figures 13, 15, 16, 18, 19,
    and 20: a (chain of) replicated node(s), a single input-stream failure of
    ``failure_duration`` seconds, and a client that measures Proc_new and
    counts tentative tuples.  Everything is expressed as a
    :class:`~repro.runtime.ScenarioSpec` and executed by a
    :class:`~repro.runtime.SimulationRuntime`.
    """
    policy = policy or DelayPolicy.process_process()
    config = config or DPCConfig(
        max_incremental_latency=max_incremental_latency,
        delay_policy=policy,
        delay_assignment=delay_assignment,
        redo_rate=redo_rate,
    )
    spec = ScenarioSpec(
        name=label or policy.name,
        chain_depth=chain_depth,
        replicas_per_node=replicas_per_node,
        aggregate_rate=aggregate_rate,
        join_state_size=join_state_size,
        config=config,
        sim_config=sim_config,
        per_node_delay=per_node_delay,
        warmup=warmup,
        settle=settle,
        failures=(
            FailureSpec(
                kind=failure_kind,
                start=warmup,
                duration=failure_duration,
                stream_index=failure_stream,
            ),
        ),
        seed=seed,
    )
    return summarize_run(spec.run(), failure_duration=failure_duration)


def group_output_counts(runtime: SimulationRuntime, group: str) -> dict:
    """Stable/tentative/undo totals across the replicas of logical node ``group``."""
    totals = {"stable": 0, "tentative": 0, "undos": 0}
    for node in runtime.node_group(group):
        for stats in node.statistics()["outputs"].values():
            for key in totals:
                totals[key] += stats[key]
    return totals


def summarize_run(
    runtime: SimulationRuntime,
    failure_duration: float | None = None,
    label: str | None = None,
) -> ExperimentResult:
    """Condense a completed runtime into the paper's reporting units.

    Metrics aggregate over *every* sink client of the deployment: counters
    (stable / tentative / undos / REC_DONE / switches) are summed and the
    latency figures (Proc_new, max gap) take the worst sink, so a fan-out
    deployment's secondary sinks are never silently dropped.  Single-sink
    deployments are unaffected.  Multi-sink runs additionally report each
    sink's own summary under ``extra["per_sink"]``.
    """
    spec = runtime.spec
    # One summary + consistency pass per sink; everything below derives
    # from it (the consistency verdict sorts the full stable ledger, so
    # recomputing it per aggregate would be O(n log n) per sink again).
    per_sink = runtime.sink_summaries()
    summaries = list(per_sink.values())
    if failure_duration is None:
        failure_duration = max((f.duration for f in spec.failures), default=0.0)
    total_stable = sum(s["total_stable"] for s in summaries)
    wall = runtime.wall_seconds
    extra = {
        "switches": sum(s["switches"] for s in summaries),
        "node_states": [n.state.value for n in runtime.nodes()],
        "reconciliations": sum(n.reconciliations_completed for n in runtime.nodes()),
        "events_fired": runtime.simulator.events_fired,
        # Host wall clock of the run (not deterministic; excluded from the
        # byte-identical summary digests, tracked warn-only by the bench CI).
        "wall_ms": round(wall * 1000, 3),
        "tuples_per_sec": round(total_stable / wall, 1) if wall > 0 else 0.0,
    }
    if len(summaries) > 1:
        extra["per_sink"] = per_sink
    return ExperimentResult(
        label=label or spec.name,
        failure_duration=failure_duration,
        chain_depth=spec.chain_depth,
        policy=spec.dpc_config().delay_policy.name,
        proc_new=max(s["proc_new"] for s in summaries),
        max_gap=max(s["max_gap"] for s in summaries),
        n_tentative=sum(s["total_tentative"] for s in summaries),
        n_stable=total_stable,
        n_undos=sum(s["total_undos"] for s in summaries),
        n_rec_done=sum(s["total_rec_done"] for s in summaries),
        eventually_consistent=all(s["eventually_consistent"] for s in summaries),
        extra=extra,
    )


def format_table(title: str, results: Sequence[ExperimentResult]) -> str:
    """Human-readable table used by the benchmark printouts."""
    lines = [title, "-" * len(title)]
    lines.extend(result.row() for result in results)
    return "\n".join(lines)
