"""Serialization-overhead experiments: Tables IV and V of the paper.

A single data source feeds a single processing node; the node's fragment is
either ``SUnion -> SOutput`` (the fault-tolerant configuration) or a plain
``Union -> SOutput`` with no boundary tuples (the baseline, the paper's
"0 ms" column).  The client records the latency of every tuple; the tables
report the minimum, maximum, average, and standard deviation as functions of
the SUnion bucket size (Table IV) and of the boundary interval (Table V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..config import DPCConfig, SimulationConfig
from ..metrics.latency import LatencySummary
from ..runtime import ScenarioSpec
from ..spe.operators import SOutput, Union
from ..spe.query_diagram import QueryDiagram


@dataclass(frozen=True)
class OverheadRow:
    """One column of Table IV / V (latencies in milliseconds)."""

    parameter_ms: float
    latency: LatencySummary

    def row(self, name: str) -> str:
        ms = self.latency.scaled(1000.0)
        return (
            f"{name}={self.parameter_ms:6.0f} ms  min={ms.minimum:7.1f}  max={ms.maximum:7.1f}  "
            f"avg={ms.average:7.1f}  std={ms.stddev:7.1f}  (n={ms.count})"
        )


def _union_diagram_factory(node_name: str, input_streams: Sequence[str], output_stream: str) -> QueryDiagram:
    """Baseline fragment: standard Union (arrival order, no serialization)."""
    diagram = QueryDiagram(name=node_name)
    union = Union(name=f"{node_name}.union", arity=len(input_streams))
    soutput = SOutput(name=f"{node_name}.soutput")
    diagram.add_operator(union)
    diagram.add_operator(soutput)
    diagram.connect(union, soutput)
    for port, stream in enumerate(input_streams):
        diagram.bind_input(stream, union, port)
    diagram.bind_output(output_stream, soutput)
    diagram.validate()
    return diagram


def serialization_overhead(
    *,
    bucket_size: float,
    boundary_interval: float,
    rate: float = 100.0,
    duration: float = 30.0,
    use_sunion: bool = True,
) -> OverheadRow:
    """Measure per-tuple latency for one (bucket size, boundary interval) point.

    With ``use_sunion=False`` the fragment uses a plain Union and the
    measured latency is the transport/batching floor (the paper's column with
    a standard Union and no boundary tuples).
    """
    config = DPCConfig(
        bucket_size=max(bucket_size, 1e-3),
        boundary_interval=max(boundary_interval, 1e-3),
        max_incremental_latency=10.0,
    )
    sim_config = SimulationConfig(batch_interval=0.01, network_latency=0.001, processing_latency=0.001)
    spec = ScenarioSpec.single_node(
        name="serialization-overhead",
        replicated=False,
        n_input_streams=1,
        aggregate_rate=rate,
        join_state_size=None,
        config=config,
        sim_config=sim_config,
        diagram_factory=None if use_sunion else _union_diagram_factory,
        duration=duration,
    )
    runtime = spec.run()
    latencies = [r.latency for r in runtime.client.metrics.latency.records]
    parameter = bucket_size if use_sunion else 0.0
    return OverheadRow(parameter_ms=parameter * 1000.0, latency=LatencySummary.from_values(latencies))


def table4(
    bucket_sizes: Sequence[float] = (0.01, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5),
    *,
    boundary_interval: float = 0.01,
    rate: float = 100.0,
    duration: float = 30.0,
    include_baseline: bool = True,
) -> list[OverheadRow]:
    """Table IV: latency overhead vs bucket size (boundary interval = 10 ms)."""
    rows: list[OverheadRow] = []
    if include_baseline:
        rows.append(
            serialization_overhead(
                bucket_size=0.0,
                boundary_interval=boundary_interval,
                rate=rate,
                duration=duration,
                use_sunion=False,
            )
        )
    for bucket_size in bucket_sizes:
        rows.append(
            serialization_overhead(
                bucket_size=bucket_size,
                boundary_interval=boundary_interval,
                rate=rate,
                duration=duration,
            )
        )
    return rows


def table5(
    boundary_intervals: Sequence[float] = (0.01, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5),
    *,
    bucket_size: float = 0.01,
    rate: float = 100.0,
    duration: float = 30.0,
    include_baseline: bool = True,
) -> list[OverheadRow]:
    """Table V: latency overhead vs boundary interval (bucket size = 10 ms)."""
    rows: list[OverheadRow] = []
    if include_baseline:
        rows.append(
            serialization_overhead(
                bucket_size=bucket_size,
                boundary_interval=0.0,
                rate=rate,
                duration=duration,
                use_sunion=False,
            )
        )
    for interval in boundary_intervals:
        row = serialization_overhead(
            bucket_size=bucket_size,
            boundary_interval=interval,
            rate=rate,
            duration=duration,
        )
        rows.append(OverheadRow(parameter_ms=interval * 1000.0, latency=row.latency))
    return rows
