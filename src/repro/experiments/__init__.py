"""Experiment runners: one entry point per table / figure of the paper.

See DESIGN.md for the experiment index and EXPERIMENTS.md for measured
results.
"""

from .harness import (
    ExperimentResult,
    availability_run,
    check_eventual_consistency,
    format_table,
    group_output_counts,
    summarize_run,
)
from .single_node import FIG13_POLICIES, TraceResult, eventual_consistency_trace, fig13, table3
from .chains import CHAIN_POLICIES, FIG19_VARIANTS, fig15, fig16, fig18, fig19_20
from .dags import (
    diamond_branch_failure,
    diamond_spec,
    diamond_sweep,
    fanin_branch_failure,
    fanin_spec,
    fanin_sweep,
)
from .shards import (
    autoscale_run,
    autoscale_sweep,
    chain_throughput_run,
    equivalent_chain_depth,
    rebalance_run,
    rebalance_sweep,
    shard_kill_failure,
    shard_kill_sweep,
    shard_spec,
    shard_throughput_run,
    shard_throughput_sweep,
)
from .overhead import OverheadRow, serialization_overhead, table4, table5
from .ablations import (
    BufferBoundResult,
    DetectionResult,
    RecoveryResult,
    buffer_bound_run,
    crash_failover,
    detection_sweep,
    granularity_run,
    recovery_run,
    recovery_time_sweep,
    replica_sweep,
    stable_ledger_rows,
)

__all__ = [
    "ExperimentResult",
    "availability_run",
    "check_eventual_consistency",
    "format_table",
    "group_output_counts",
    "summarize_run",
    "autoscale_run",
    "autoscale_sweep",
    "chain_throughput_run",
    "equivalent_chain_depth",
    "rebalance_run",
    "rebalance_sweep",
    "shard_kill_failure",
    "shard_kill_sweep",
    "shard_spec",
    "shard_throughput_run",
    "shard_throughput_sweep",
    "FIG13_POLICIES",
    "TraceResult",
    "eventual_consistency_trace",
    "fig13",
    "table3",
    "CHAIN_POLICIES",
    "FIG19_VARIANTS",
    "diamond_branch_failure",
    "diamond_spec",
    "diamond_sweep",
    "fanin_branch_failure",
    "fanin_spec",
    "fanin_sweep",
    "fig15",
    "fig16",
    "fig18",
    "fig19_20",
    "OverheadRow",
    "serialization_overhead",
    "table4",
    "table5",
    "BufferBoundResult",
    "DetectionResult",
    "RecoveryResult",
    "buffer_bound_run",
    "crash_failover",
    "detection_sweep",
    "granularity_run",
    "recovery_run",
    "recovery_time_sweep",
    "replica_sweep",
    "stable_ledger_rows",
]
