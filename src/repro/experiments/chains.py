"""Chain experiments: Figures 15, 16, 18, 19, and 20."""

from __future__ import annotations

from typing import Sequence

from ..config import DelayAssignment, DelayPolicy
from .harness import ExperimentResult, availability_run

#: The two policies compared throughout Section 6.2.
CHAIN_POLICIES: dict[str, DelayPolicy] = {
    "Process & Process": DelayPolicy.process_process(),
    "Delay & Delay": DelayPolicy.delay_delay(),
}


def _chain_run(
    depth: int,
    policy_name: str,
    policy: DelayPolicy,
    failure_duration: float,
    *,
    per_node_delay: float,
    aggregate_rate: float,
    settle: float,
    delay_assignment: DelayAssignment = DelayAssignment.UNIFORM,
) -> ExperimentResult:
    # Per Section 6.2 the chain experiments assign D per node explicitly; the
    # end-to-end availability requirement is therefore depth * D.
    return availability_run(
        failure_duration=failure_duration,
        label=f"{policy_name} (depth {depth})",
        chain_depth=depth,
        replicas_per_node=2,
        aggregate_rate=aggregate_rate,
        max_incremental_latency=per_node_delay * depth,
        policy=policy,
        delay_assignment=delay_assignment,
        per_node_delay=per_node_delay,
        failure_kind="silence",
        settle=settle + failure_duration * 0.5,
        join_state_size=None,
    )


def fig15(
    depths: Sequence[int] = (1, 2, 3, 4),
    *,
    failure_duration: float = 30.0,
    per_node_delay: float = 2.0,
    aggregate_rate: float = 150.0,
    settle: float = 30.0,
) -> list[ExperimentResult]:
    """Figure 15: Proc_new vs chain depth (D = 2 s per node, 30 s failure)."""
    results = []
    for name, policy in CHAIN_POLICIES.items():
        for depth in depths:
            results.append(
                _chain_run(
                    depth,
                    name,
                    policy,
                    failure_duration,
                    per_node_delay=per_node_delay,
                    aggregate_rate=aggregate_rate,
                    settle=settle,
                )
            )
    return results


def fig16(
    failure_durations: Sequence[float] = (5, 10, 15, 30),
    depths: Sequence[int] = (1, 2, 3, 4),
    *,
    per_node_delay: float = 2.0,
    aggregate_rate: float = 150.0,
    settle: float = 30.0,
) -> list[ExperimentResult]:
    """Figure 16: N_tentative vs chain depth for 5/10/15/30-second failures."""
    results = []
    for duration in failure_durations:
        for name, policy in CHAIN_POLICIES.items():
            for depth in depths:
                results.append(
                    _chain_run(
                        depth,
                        name,
                        policy,
                        float(duration),
                        per_node_delay=per_node_delay,
                        aggregate_rate=aggregate_rate,
                        settle=settle,
                    )
                )
    return results


def fig18(
    depths: Sequence[int] = (1, 2, 3, 4),
    *,
    failure_duration: float = 60.0,
    per_node_delay: float = 2.0,
    aggregate_rate: float = 150.0,
    settle: float = 40.0,
) -> list[ExperimentResult]:
    """Figure 18: N_tentative for a 60-second (long) failure."""
    results = []
    for name, policy in CHAIN_POLICIES.items():
        for depth in depths:
            results.append(
                _chain_run(
                    depth,
                    name,
                    policy,
                    failure_duration,
                    per_node_delay=per_node_delay,
                    aggregate_rate=aggregate_rate,
                    settle=settle,
                )
            )
    return results


#: The three delay-assignment variants compared in Figures 19 and 20.
FIG19_VARIANTS: dict[str, dict] = {
    "Delay & Delay, D=2s each": {
        "policy": DelayPolicy.delay_delay(),
        "per_node_delay": 2.0,
        "delay_assignment": DelayAssignment.UNIFORM,
    },
    "Process & Process, D=2s each": {
        "policy": DelayPolicy.process_process(),
        "per_node_delay": 2.0,
        "delay_assignment": DelayAssignment.UNIFORM,
    },
    "Process & Process, D=6.5s each": {
        "policy": DelayPolicy.process_process(),
        "per_node_delay": 6.5,
        "delay_assignment": DelayAssignment.FULL,
    },
}


def fig19_20(
    failure_durations: Sequence[float] = (5, 10, 15, 30),
    *,
    depth: int = 4,
    aggregate_rate: float = 150.0,
    settle: float = 30.0,
) -> list[ExperimentResult]:
    """Figures 19 and 20: delay assignment strategies on a chain of four nodes.

    The application budget is X = 8 s; the uniform assignment gives each node
    D = 2 s, while the full assignment gives each SUnion the whole budget
    minus a queuing allowance (6.5 s), as in Section 6.3.
    """
    results = []
    for name, variant in FIG19_VARIANTS.items():
        for duration in failure_durations:
            results.append(
                availability_run(
                    failure_duration=float(duration),
                    label=name,
                    chain_depth=depth,
                    replicas_per_node=2,
                    aggregate_rate=aggregate_rate,
                    max_incremental_latency=8.0,
                    policy=variant["policy"],
                    delay_assignment=variant["delay_assignment"],
                    per_node_delay=variant["per_node_delay"],
                    failure_kind="silence",
                    settle=settle + duration * 0.5,
                    join_state_size=None,
                )
            )
    return results
