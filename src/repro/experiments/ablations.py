"""Ablation experiments for the design decisions DESIGN.md calls out.

The paper's evaluation fixes several parameters (two replicas per node, a
100 ms keepalive, node-wide failure granularity, unbounded buffers).  The
runners in this module vary them one at a time so the effect of each design
choice can be measured:

* :func:`replica_sweep` -- how many replicas are needed to keep Proc_new flat
  (Section 5.2 relies on "at least two replicas").
* :func:`detection_sweep` -- keepalive period / detection timeout against the
  failure-to-new-data gap (the 140 ms figure of Section 5.1).
* :func:`crash_failover` -- fail-stop crash of the replica a client reads
  from; DPC must mask it by switching to the other replica (Section 4.5).
* :func:`buffer_bound_run` -- bounded output buffers with and without
  blocking back-pressure (Section 8.1).
* :func:`granularity_run` -- per-stream vs node-wide failure advertisement
  (Section 8.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..config import BufferPolicy, DelayPolicy, DPCConfig
from ..errors import BufferOverflowError
from ..runtime import ScenarioSpec
from .harness import ExperimentResult, availability_run, summarize_run


# --------------------------------------------------------------------------- replicas
def replica_sweep(
    replica_counts: Sequence[int] = (1, 2, 3),
    *,
    failure_duration: float = 10.0,
    aggregate_rate: float = 150.0,
    max_incremental_latency: float = 3.0,
    settle: float = 30.0,
) -> list[ExperimentResult]:
    """Proc_new and N_tentative as the number of replicas per node varies.

    With a single replica the node itself must reconcile, so new data stops
    flowing while it does and Proc_new grows with the failure duration; with
    two or more replicas the inter-replica protocol keeps one replica serving
    new data at all times.
    """
    results = []
    for replicas in replica_counts:
        results.append(
            availability_run(
                failure_duration=failure_duration,
                label=f"{replicas} replica{'s' if replicas != 1 else ''}",
                chain_depth=1,
                replicas_per_node=replicas,
                aggregate_rate=aggregate_rate,
                max_incremental_latency=max_incremental_latency,
                policy=DelayPolicy.process_process(),
                settle=settle + failure_duration * 0.5,
            )
        )
    return results


# --------------------------------------------------------------------------- failure detection
@dataclass(frozen=True)
class DetectionResult:
    """Outcome of one detection-parameter configuration."""

    keepalive_period: float
    detection_timeout: float
    proc_new: float
    max_gap: float
    n_tentative: int
    switches: int
    eventually_consistent: bool

    def row(self) -> str:
        return (
            f"keepalive={self.keepalive_period * 1000:5.0f} ms  "
            f"timeout={self.detection_timeout * 1000:5.0f} ms  "
            f"Proc_new={self.proc_new:5.2f} s  max_gap={self.max_gap:5.2f} s  "
            f"N_tentative={self.n_tentative:5d}  switches={self.switches}"
        )


def detection_sweep(
    keepalive_periods: Sequence[float] = (0.05, 0.1, 0.25, 0.5),
    *,
    failure_duration: float = 10.0,
    aggregate_rate: float = 150.0,
    max_incremental_latency: float = 3.0,
    settle: float = 30.0,
) -> list[DetectionResult]:
    """Vary the keepalive / detection parameters and measure their latency cost.

    The paper quotes ~40 ms to switch upstream replicas plus up to one
    keepalive period to detect the failure (~140 ms total with the default
    100 ms period).  In the reproduction the switch cost is a configuration
    constant, so the sweep shows the detection component: larger keepalive
    periods and timeouts delay the reaction to a failure, which shows up in
    the maximum gap between new tuples and, eventually, in tentative output.
    """
    results = []
    for period in keepalive_periods:
        config = DPCConfig(
            max_incremental_latency=max_incremental_latency,
            delay_policy=DelayPolicy.process_process(),
            keepalive_period=period,
            failure_detection_timeout=min(period * 2.5, max_incremental_latency * 0.5),
        )
        outcome = availability_run(
            failure_duration=failure_duration,
            label=f"keepalive {period * 1000:.0f} ms",
            chain_depth=1,
            replicas_per_node=2,
            aggregate_rate=aggregate_rate,
            config=config,
            settle=settle + failure_duration * 0.5,
        )
        results.append(
            DetectionResult(
                keepalive_period=period,
                detection_timeout=config.failure_detection_timeout,
                proc_new=outcome.proc_new,
                max_gap=outcome.max_gap,
                n_tentative=outcome.n_tentative,
                switches=int(outcome.extra.get("switches", 0)),
                eventually_consistent=outcome.eventually_consistent,
            )
        )
    return results


# --------------------------------------------------------------------------- crash failover
def crash_failover(
    *,
    crash_duration: float = 15.0,
    aggregate_rate: float = 150.0,
    max_incremental_latency: float = 3.0,
    warmup: float = 5.0,
    settle: float = 30.0,
) -> ExperimentResult:
    """Crash the replica the client reads from and let DPC fail over.

    The client initially subscribes to the first replica of the (single)
    processing node.  That replica fail-stops for ``crash_duration`` seconds;
    the client's consistency manager must detect the silence and switch to the
    second replica, so new results keep flowing within the availability bound
    and no inconsistency is introduced (both replicas are STABLE throughout).
    """
    config = DPCConfig(
        max_incremental_latency=max_incremental_latency,
        delay_policy=DelayPolicy.process_process(),
    )
    spec = ScenarioSpec.single_node(
        name="crash failover",
        aggregate_rate=aggregate_rate,
        join_state_size=100,
        config=config,
        warmup=warmup,
        settle=settle,
    ).with_failure("crash", start=warmup, duration=crash_duration, node_level=0, node_replica=0)
    runtime = spec.run()
    result = summarize_run(runtime, failure_duration=crash_duration)
    result.extra.pop("node_states", None)
    result.extra.update(
        crashed_replica=runtime.node(0, 0).name,
        surviving_replica=runtime.node(0, 1).name,
    )
    return result


# --------------------------------------------------------------------------- buffer bounds
@dataclass(frozen=True)
class BufferBoundResult:
    """Outcome of one buffer-policy configuration."""

    label: str
    max_output_tuples: int | None
    block_on_full: bool
    overflowed: bool
    buffered_tuples: int
    client_stable: int
    proc_new: float

    def row(self) -> str:
        bound = "unbounded" if self.max_output_tuples is None else str(self.max_output_tuples)
        return (
            f"{self.label:<24} bound={bound:>9}  block={'yes' if self.block_on_full else 'no '}  "
            f"overflowed={'yes' if self.overflowed else 'no '}  buffered={self.buffered_tuples:>6}  "
            f"stable@client={self.client_stable:>6}  Proc_new={self.proc_new:5.2f}s"
        )


def buffer_bound_run(
    *,
    max_output_tuples: int | None,
    block_on_full: bool,
    label: str | None = None,
    aggregate_rate: float = 150.0,
    duration: float = 30.0,
    truncate_period: float | None = None,
) -> BufferBoundResult:
    """Run a failure-free deployment under one output-buffer policy.

    With ``block_on_full=True`` a full buffer raises
    :class:`~repro.errors.BufferOverflowError` (the back-pressure signal of
    Section 8.1, which in a full deployment propagates to the sources); with
    ``block_on_full=False`` the oldest tuples are dropped, which is only safe
    for convergent-capable diagrams.  ``truncate_period`` enables the
    acknowledgment-driven truncation that keeps buffers small in the absence
    of failures.
    """
    policy = BufferPolicy(max_output_tuples=max_output_tuples, block_on_full=block_on_full)
    config = DPCConfig(buffer_policy=policy)
    runtime = ScenarioSpec.single_node(
        name="buffer-bounds",
        replicated=False,
        aggregate_rate=aggregate_rate,
        config=config,
        duration=duration,
    ).build()
    node = runtime.node(0, 0)
    if truncate_period is not None:
        runtime.simulator.schedule_periodic(
            truncate_period,
            lambda now: [m.truncate_delivered() for m in node.data_path.outputs()],
            description="truncate output buffers",
        )
    overflowed = False
    try:
        runtime.run()
    except BufferOverflowError:
        overflowed = True
    manager = node.data_path.outputs()[0]
    return BufferBoundResult(
        label=label or f"bound={max_output_tuples}, block={block_on_full}",
        max_output_tuples=max_output_tuples,
        block_on_full=block_on_full,
        overflowed=overflowed,
        buffered_tuples=manager.buffered_tuples,
        client_stable=runtime.client.metrics.consistency.total_stable,
        proc_new=runtime.client.proc_new,
    )


# --------------------------------------------------------------------------- checkpoint-shipped recovery
@dataclass(frozen=True)
class RecoveryResult:
    """Outcome of one crash-recovery run under one recovery mode."""

    label: str
    mode: str
    failure_duration: float
    recovery_s: float
    replayed: int
    shipped_items: int
    transfer_delay: float
    proc_new: float
    tuples_processed: int
    recovery_checkpoints: int
    eventually_consistent: bool
    ledger_rows: tuple = ()

    def row(self) -> str:
        return (
            f"{self.label:<16} fail={self.failure_duration:5.1f}s  mode={self.mode:<16} "
            f"recovery={self.recovery_s:6.3f}s  replayed={self.replayed:>5}  "
            f"shipped={self.shipped_items:>5}  Proc_new={self.proc_new:5.2f}s  "
            f"consistent={'yes' if self.eventually_consistent else 'NO'}"
        )


def stable_ledger_rows(client) -> tuple:
    """The client's stable ledger as replica-independent rows.

    Tuple ids are assigned per replica, so after a failure the ids in two
    otherwise identical runs differ; ``(stable_seq, stime, values)`` is the
    content the paper's eventual-consistency guarantee is about.
    """
    return tuple(
        (item.stable_seq, repr(item.stime), tuple(sorted(item.values.items())))
        for item in client.metrics.consistency.ledger
        if item.is_stable
    )


def recovery_run(
    *,
    checkpoint_interval: float | None,
    failure_duration: float = 8.0,
    chain_depth: int = 2,
    aggregate_rate: float = 90.0,
    seed: int = 1,
    warmup: float = 5.0,
    settle: float = 20.0,
    label: str | None = None,
) -> RecoveryResult:
    """Crash one replica for ``failure_duration`` and measure its rejoin.

    With ``checkpoint_interval`` set, the surviving partner keeps capturing
    recovery checkpoints during the outage, so the crashed replica rejoins
    from shipped state plus a short replay suffix (O(suffix since the last
    capture)); with ``None`` it rebuilds through full subscription replay of
    the whole outage (O(retained window)).  Both modes must converge to the
    same stable ledger -- compare :attr:`RecoveryResult.ledger_rows`.
    """
    if label is None:
        label = "full replay" if checkpoint_interval is None else (
            f"checkpoint@{checkpoint_interval:g}s"
        )
    spec = ScenarioSpec.chain(
        chain_depth,
        name=f"recovery-{label}",
        aggregate_rate=aggregate_rate,
        seed=seed,
        warmup=warmup,
        settle=settle + failure_duration * 0.5,
        checkpoint_interval=checkpoint_interval,
    ).with_failure(
        "crash", start=warmup, duration=failure_duration, node_level=0, node_replica=0
    )
    runtime = spec.run()
    node = runtime.node(0, 0)
    record = (
        node.recoveries[-1]
        if node.recoveries
        else {"mode": "none", "replayed": 0, "shipped_items": 0,
              "transfer_delay": 0.0, "recovery_s": 0.0}
    )
    return RecoveryResult(
        label=label,
        mode=record["mode"],
        failure_duration=failure_duration,
        recovery_s=record["recovery_s"],
        replayed=record["replayed"],
        shipped_items=record["shipped_items"],
        transfer_delay=record["transfer_delay"],
        proc_new=runtime.client.proc_new,
        tuples_processed=node.engine.tuples_processed,
        recovery_checkpoints=sum(
            n.recovery_checkpoints_taken for g in runtime.cluster.nodes for n in g
        ),
        eventually_consistent=runtime.eventually_consistent(),
        ledger_rows=stable_ledger_rows(runtime.client),
    )


def recovery_time_sweep(
    durations: Sequence[float] = (2.0, 4.0, 8.0, 16.0),
    *,
    checkpoint_interval: float = 2.0,
    **kwargs,
) -> list[tuple[RecoveryResult, RecoveryResult]]:
    """``(checkpoint-shipped, full-replay)`` result pair per failure duration."""
    return [
        (
            recovery_run(
                checkpoint_interval=checkpoint_interval, failure_duration=duration, **kwargs
            ),
            recovery_run(checkpoint_interval=None, failure_duration=duration, **kwargs),
        )
        for duration in durations
    ]


# --------------------------------------------------------------------------- failure granularity
def granularity_run(
    per_stream: bool,
    *,
    failure_duration: float = 10.0,
    aggregate_rate: float = 150.0,
    max_incremental_latency: float = 3.0,
    settle: float = 30.0,
) -> ExperimentResult:
    """One availability run with node-wide or per-stream failure advertisement."""
    config = DPCConfig(
        max_incremental_latency=max_incremental_latency,
        delay_policy=DelayPolicy.process_process(),
        per_stream_granularity=per_stream,
    )
    return availability_run(
        failure_duration=failure_duration,
        label=f"granularity={'per-stream' if per_stream else 'node-wide'}",
        aggregate_rate=aggregate_rate,
        config=config,
        settle=settle + failure_duration * 0.5,
    )
