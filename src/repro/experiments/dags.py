"""DAG-topology experiments: branch failures in reconvergent deployments.

The paper's evaluation deploys single nodes and chains, but its query
diagrams (and the Section 6.3 delay-assignment discussion around Figure 21)
are general DAGs.  These runners exercise the distributed-SUnion machinery on
the two shapes the chain experiments cannot express:

* ``diamond`` -- an ingest node fans out to two partitioned branches that a
  fan-in SUnion re-merges (reconvergent paths).  The failure schedule kills
  *every* replica of one branch, so the downstream merge cannot mask the
  failure by switching and must trade availability against consistency,
  while the sibling branch keeps producing stable output.
* ``fanin`` -- two independent ingest branches merged by one node; the
  failure silences one branch's source, which suspends only the SUnion ports
  fed by that branch.

Both runners express their deployments as :class:`~repro.runtime.ScenarioSpec`
topologies and report the standard :class:`ExperimentResult` units plus the
DAG-specific evidence (per-branch tentative counts and final states).
"""

from __future__ import annotations

from typing import Sequence

from ..config import DelayPolicy, DPCConfig
from ..runtime import ScenarioSpec, SimulationRuntime
from .harness import ExperimentResult, group_output_counts, summarize_run


def diamond_spec(
    failure_duration: float = 8.0,
    *,
    aggregate_rate: float = 120.0,
    replicas_per_node: int = 2,
    max_incremental_latency: float = 3.0,
    policy: DelayPolicy | None = None,
    warmup: float = 5.0,
    settle: float = 30.0,
    seed: int | None = None,
) -> ScenarioSpec:
    """The diamond branch-kill scenario (crash every replica of ``left``)."""
    config = DPCConfig(
        max_incremental_latency=max_incremental_latency,
        delay_policy=policy or DelayPolicy.process_process(),
    )
    return ScenarioSpec.diamond(
        name="diamond-branch-crash",
        replicas_per_node=replicas_per_node,
        aggregate_rate=aggregate_rate,
        config=config,
        warmup=warmup,
        settle=settle,
        seed=seed,
    ).with_branch_crash("left", duration=failure_duration)


def diamond_branch_failure(
    failure_duration: float = 8.0,
    *,
    aggregate_rate: float = 120.0,
    replicas_per_node: int = 2,
    max_incremental_latency: float = 3.0,
    policy: DelayPolicy | None = None,
    warmup: float = 5.0,
    settle: float = 30.0,
    seed: int | None = None,
) -> ExperimentResult:
    """Kill one branch of a diamond; measure the merge output and the survivor.

    The acceptance properties the benchmark asserts:

    * the unaffected branch (``right``) never produces a tentative tuple and
      ends STABLE -- its slice of the stream is never in doubt;
    * the client's Proc_new stays within the availability bound (the merge
      suspends for its delay budget, then processes the survivor's slice
      tentatively);
    * after the branch recovers, reconciliation converges: the client's
      stable ledger is gap-free, duplicate-free, and ordered.
    """
    spec = diamond_spec(
        failure_duration,
        aggregate_rate=aggregate_rate,
        replicas_per_node=replicas_per_node,
        max_incremental_latency=max_incremental_latency,
        policy=policy,
        warmup=warmup,
        settle=settle,
        seed=seed,
    )
    runtime = spec.run()
    result = summarize_run(runtime, failure_duration=failure_duration)
    result.extra["branches"] = {
        name: group_output_counts(runtime, name)
        for name in ("ingest", "left", "right", "merge")
    }
    result.extra["branch_states"] = {
        name: [replica.state.value for replica in runtime.node_group(name)]
        for name in runtime.topology.node_names
    }
    result.extra["availability_bound"] = spec.dpc_config().max_incremental_latency
    return result


def fanin_spec(
    failure_duration: float = 8.0,
    *,
    branches: int = 2,
    streams_per_branch: int = 2,
    aggregate_rate: float = 120.0,
    replicas_per_node: int = 2,
    max_incremental_latency: float = 3.0,
    policy: DelayPolicy | None = None,
    failure_kind: str = "silence",
    warmup: float = 5.0,
    settle: float = 30.0,
    seed: int | None = None,
) -> ScenarioSpec:
    """The fan-in scenario: one branch's source fails for ``failure_duration``."""
    config = DPCConfig(
        max_incremental_latency=max_incremental_latency,
        delay_policy=policy or DelayPolicy.process_process(),
    )
    return ScenarioSpec.fanin(
        name=f"fanin-{failure_kind}",
        branches=branches,
        streams_per_branch=streams_per_branch,
        replicas_per_node=replicas_per_node,
        aggregate_rate=aggregate_rate,
        config=config,
        warmup=warmup,
        settle=settle,
        seed=seed,
    ).with_failure(failure_kind, duration=failure_duration, stream_index=0)


def fanin_branch_failure(
    failure_duration: float = 8.0,
    *,
    branches: int = 2,
    streams_per_branch: int = 2,
    aggregate_rate: float = 120.0,
    replicas_per_node: int = 2,
    max_incremental_latency: float = 3.0,
    policy: DelayPolicy | None = None,
    failure_kind: str = "silence",
    warmup: float = 5.0,
    settle: float = 30.0,
    seed: int | None = None,
) -> ExperimentResult:
    """Fail one ingest branch of a fan-in deployment and measure the merge."""
    spec = fanin_spec(
        failure_duration,
        branches=branches,
        streams_per_branch=streams_per_branch,
        aggregate_rate=aggregate_rate,
        replicas_per_node=replicas_per_node,
        max_incremental_latency=max_incremental_latency,
        policy=policy,
        failure_kind=failure_kind,
        warmup=warmup,
        settle=settle,
        seed=seed,
    )
    runtime = spec.run()
    result = summarize_run(runtime, failure_duration=failure_duration)
    result.extra["branches"] = {
        name: group_output_counts(runtime, name) for name in runtime.topology.node_names
    }
    result.extra["availability_bound"] = spec.dpc_config().max_incremental_latency
    return result


def diamond_sweep(
    durations: Sequence[float] = (4.0, 8.0, 16.0), *, seed: int | None = None
) -> list[ExperimentResult]:
    """Diamond branch-kill across failure durations (the CLI table)."""
    return [diamond_branch_failure(float(d), seed=seed) for d in durations]


def fanin_sweep(
    durations: Sequence[float] = (4.0, 8.0, 16.0), *, seed: int | None = None
) -> list[ExperimentResult]:
    """Fan-in branch silence across failure durations (the CLI table)."""
    return [fanin_branch_failure(float(d), seed=seed) for d in durations]
