"""Sharded scale-out experiments: shard-kill recovery and throughput scaling.

The paper never deploys more than a chain, but its DPC machinery is
topology-agnostic; combined with the :mod:`repro.sharding` planner it gives
an N-way key-hash sharded deployment (``Topology.shard``: split -> N shard
fragments filtering their slice at the ingress -> fan-in SUnion merge).
These runners exercise the two questions that shape asks:

* **shard-kill** -- crash *every* replica of one shard, so the merge cannot
  mask the failure by switching.  The dead shard's key-hash slice goes
  missing; the surviving shards must keep producing stable output (their
  slices are never in doubt), the merge trades availability against
  consistency within its delay budget, and after the shard recovers the
  client's ledger must reconcile gap-free.
* **throughput** -- how many tuples per wall-clock second the simulated
  deployment sustains as the shard count grows, against a single chain with
  the *same total operator count*.  Sharding wins because each tuple crosses
  three fragment levels (split, its shard, merge) instead of every level of
  the chain, and per-shard serialization and output work is 1/N.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..config import DelayPolicy, DPCConfig
from ..runtime import ScenarioSpec
from ..sharding import bucket_loads_from_keys
from .harness import ExperimentResult, group_output_counts, summarize_run

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..deploy import AutoscalePolicy


def shard_operator_count(shards: int) -> int:
    """Operators in a sharded deployment.

    The split is a stateless router (SUnion + SOutput), each shard runs
    Filter + SUnion + SJoin + SOutput over its slice, and the merge is an
    N-way SUnion + SOutput: ``4N + 4`` operators in total.
    """
    return 4 * shards + 4


def equivalent_chain_depth(shards: int) -> int:
    """Depth of the single chain with the same operator count as ``shard(N)``.

    A chain deployment runs 3 operators on its entry node (SUnion + SJoin +
    SOutput) and 2 on every relay (SUnion + SOutput): ``2 * depth + 1``
    operators in total.  Solving ``2d + 1 = 4N + 4`` (rounding up) gives the
    equal-operator baseline the throughput benchmark compares against.
    """
    return max(1, -(-(shard_operator_count(shards) - 1) // 2))


def shard_spec(
    shards: int = 4,
    *,
    aggregate_rate: float = 120.0,
    replicas_per_node: int = 2,
    n_input_streams: int = 3,
    max_incremental_latency: float = 3.0,
    policy: DelayPolicy | None = None,
    warmup: float = 5.0,
    settle: float = 30.0,
    seed: int | None = None,
) -> ScenarioSpec:
    """The sharded deployment the experiments run (no failures scheduled)."""
    config = DPCConfig(
        max_incremental_latency=max_incremental_latency,
        delay_policy=policy or DelayPolicy.process_process(),
    )
    return ScenarioSpec.sharded(
        name=f"shard-{shards}",
        shards=shards,
        n_input_streams=n_input_streams,
        replicas_per_node=replicas_per_node,
        aggregate_rate=aggregate_rate,
        config=config,
        warmup=warmup,
        settle=settle,
        seed=seed,
    )


def shard_kill_failure(
    failure_duration: float = 8.0,
    *,
    shards: int = 4,
    kill_shard: int = 1,
    aggregate_rate: float = 120.0,
    replicas_per_node: int = 2,
    max_incremental_latency: float = 3.0,
    policy: DelayPolicy | None = None,
    warmup: float = 5.0,
    settle: float = 30.0,
    seed: int | None = None,
) -> ExperimentResult:
    """Kill both replicas of one shard; measure the survivors and the merge.

    The acceptance properties the benchmark asserts:

    * every *surviving* shard keeps its output stable (their key-hash slices
      are never in doubt) and ends STABLE;
    * the client's Proc_new stays within the availability bound X;
    * after the shard recovers, reconciliation converges: the merged ledger
      is gap-free, duplicate-free, and ordered.
    """
    spec = shard_spec(
        shards,
        aggregate_rate=aggregate_rate,
        replicas_per_node=replicas_per_node,
        max_incremental_latency=max_incremental_latency,
        policy=policy,
        warmup=warmup,
        settle=settle,
        seed=seed,
    ).with_shard_kill(kill_shard, duration=failure_duration)
    runtime = spec.run()
    result = summarize_run(runtime, failure_duration=failure_duration)
    killed = f"shard{kill_shard}"
    result.extra["killed_shard"] = killed
    result.extra["shards"] = {
        name: group_output_counts(runtime, name) for name in runtime.topology.node_names
    }
    result.extra["shard_states"] = {
        name: [replica.state.value for replica in runtime.node_group(name)]
        for name in runtime.topology.node_names
    }
    result.extra["survivors"] = [
        name
        for name in runtime.topology.node_names
        if name.startswith("shard") and name != killed
    ]
    result.extra["availability_bound"] = spec.dpc_config().max_incremental_latency
    assignment = runtime.topology.shard_assignment
    if assignment is not None:
        # Observed shard balance over the run, and whether the planner would
        # migrate buckets: the synthetic key space is near-uniform, so a
        # healthy run needs no moves.
        from ..sharding import ShardPlanner

        loads = bucket_loads_from_keys(
            assignment.spec, runtime.client.stable_sequence
        )
        plan = ShardPlanner(assignment.spec).rebalance(assignment, loads, tolerance=0.25)
        result.extra["rebalance"] = {
            "imbalance": plan.imbalance_before,
            "moves": len(plan.moves),
        }
    return result


def shard_kill_sweep(
    durations: Sequence[float] = (4.0, 8.0, 16.0),
    *,
    shards: int = 4,
    seed: int | None = None,
) -> list[ExperimentResult]:
    """Shard-kill across failure durations (the CLI table)."""
    return [
        shard_kill_failure(float(d), shards=shards, seed=seed) for d in durations
    ]


def shard_throughput_run(
    shards: int,
    *,
    aggregate_rate: float = 240.0,
    duration: float = 20.0,
    replicas_per_node: int = 1,
    seed: int | None = 1,
) -> dict:
    """Run a failure-free sharded deployment and measure sustained throughput.

    Reports wall-clock tuples/sec (stable tuples the client received per
    second of host time spent simulating), the deterministic simulator event
    count, and the consistency verdict.  ``replicas_per_node=1`` by default:
    the throughput axis is orthogonal to replication (replicating both sides
    scales both costs equally).
    """
    spec = shard_spec(
        shards,
        aggregate_rate=aggregate_rate,
        replicas_per_node=replicas_per_node,
        warmup=duration,
        settle=0.0,
        seed=seed,
    )
    return _measure_throughput(spec, label=f"shard({shards})")


def chain_throughput_run(
    depth: int,
    *,
    aggregate_rate: float = 240.0,
    duration: float = 20.0,
    replicas_per_node: int = 1,
    seed: int | None = 1,
) -> dict:
    """The equal-operator single-chain baseline of the throughput benchmark."""
    config = DPCConfig(delay_policy=DelayPolicy.process_process())
    spec = ScenarioSpec.chain(
        depth,
        replicas_per_node=replicas_per_node,
        aggregate_rate=aggregate_rate,
        config=config,
        warmup=duration,
        settle=0.0,
        seed=seed,
    )
    return _measure_throughput(spec, label=f"chain({depth})")


def _measure_throughput(spec: ScenarioSpec, label: str) -> dict:
    runtime = spec.build()
    runtime.run()
    # The runtime's own wall clock: one definition of "wall time for a run"
    # everywhere (harness extra["wall_ms"], bench baselines, this sweep).
    wall = runtime.wall_seconds
    stable = sum(c.summary()["total_stable"] for c in runtime.clients)
    return {
        "label": label,
        "scenario": spec.name,
        "duration": spec.total_duration(),
        "wall_seconds": wall,
        "stable_tuples": stable,
        "tuples_per_second": stable / wall if wall > 0 else float("inf"),
        "events_fired": runtime.simulator.events_fired,
        "events_per_tuple": runtime.simulator.events_fired / max(stable, 1),
        "proc_new": max(c.summary()["proc_new"] for c in runtime.clients),
        "eventually_consistent": runtime.eventually_consistent(),
        "operators": sum(
            len(node.diagram.operators) for group in runtime.cluster.nodes for node in group
        ),
    }


def rebalance_run(
    seed: int | None = 1,
    *,
    shards: int = 4,
    skew: float = 1.2,
    hot_keys: int = 64,
    aggregate_rate: float = 120.0,
    replicas_per_node: int = 2,
    rebalance_at: float = 20.0,
    tolerance: float = 0.10,
    settle: float = 20.0,
    max_incremental_latency: float = 3.0,
) -> ExperimentResult:
    """Skewed load, then a live rebalance: observed skew -> bucket handoff.

    The deployment runs the zipfian hot-key workload (the hot key
    concentrates load on a few hash buckets), and at ``rebalance_at`` the
    runtime asks the :class:`~repro.sharding.ShardPlanner` for a plan against
    the *observed* bucket loads and applies it to the live deployment
    (filter-epoch cut at a bucket boundary + SJoin state shipping).  The
    properties the benchmark asserts:

    * the plan has real moves and strictly improves the peak-to-mean shard
      imbalance;
    * the handoff completes (state shipped) and the run stays failure-free;
    * the merged ledger is gap-free, duplicate-free, and ordered -- the
      handoff loses and duplicates nothing.
    """
    config = DPCConfig(
        max_incremental_latency=max_incremental_latency,
        delay_policy=DelayPolicy.process_process(),
    )
    spec = ScenarioSpec.sharded(
        name=f"rebalance-{shards}",
        shards=shards,
        skew=skew,
        hot_keys=hot_keys,
        aggregate_rate=aggregate_rate,
        replicas_per_node=replicas_per_node,
        config=config,
        warmup=rebalance_at,
        settle=settle,
        seed=seed,
        rebalance_at=rebalance_at,
        rebalance_tolerance=tolerance,
    )
    runtime = spec.run()
    result = summarize_run(runtime, failure_duration=0.0)
    records = runtime.deployment.rebalances
    record = records[0] if records else {}
    result.extra["rebalance"] = {
        "applied_at": record.get("applied_at"),
        "moves": len(record.get("moves", [])),
        "imbalance_before": record.get("imbalance_before"),
        "imbalance_after": record.get("imbalance_after"),
        "cut_stime": record.get("cut_stime"),
        "completed": record.get("completed", False),
        "state_tuples_shipped": record.get("state_tuples_shipped", 0),
        "noop": record.get("noop", True),
    }
    result.extra["observed_imbalance_end"] = (
        runtime.deployment.current_assignment.imbalance(
            runtime.deployment.observed_bucket_loads()
        )
    )
    result.extra["shard_states"] = {
        name: [replica.state.value for replica in runtime.node_group(name)]
        for name in runtime.topology.node_names
    }
    return result


def autoscale_run(
    seed: int | None = 1,
    *,
    shards: int = 2,
    skew: float = 1.2,
    hot_keys: int = 64,
    base_rate: float = 120.0,
    surge_factor: float = 2.0,
    surge_start: float = 14.0,
    surge_end: float = 34.0,
    duration: float = 55.0,
    policy: "AutoscalePolicy | None" = None,
) -> ExperimentResult:
    """Elastic scale-out and scale-in driven by the autoscaler policy loop.

    The zipfian hot-key workload runs at ``base_rate`` until ``surge_start``,
    doubles (``surge_factor``) until ``surge_end``, then subsides.  The
    autoscaler watches per-shard processing rates and reacts: the surge
    pushes the mean past the high watermark (scale-out attaches fragments
    live, seeds their state, cuts buckets over with a priced handoff), the
    subsidence drops it below the low watermark (scale-in drains a shard and
    decommissions its fragment).  The properties the benchmark asserts:

    * the deployment actually scales out beyond its initial shard count and
      back down to it, within one run;
    * every handoff completes (no aborts on this failure-free schedule);
    * the merged ledger is gap-free, duplicate-free, and ordered across all
      of it -- elasticity loses and duplicates nothing.
    """
    from ..deploy import AutoscalePolicy
    from ..workloads.generators import step_rate

    config = DPCConfig(delay_policy=DelayPolicy.process_process())
    spec = ScenarioSpec.sharded(
        name=f"autoscale-{shards}",
        shards=shards,
        skew=skew,
        hot_keys=hot_keys,
        aggregate_rate=base_rate,
        replicas_per_node=2,
        config=config,
        warmup=surge_start,
        settle=duration - surge_start,
        duration=duration,
        seed=seed,
        rate_profile=step_rate(surge_start, surge_factor, until=surge_end),
        autoscale=policy
        or AutoscalePolicy(
            period=2.0,
            high_watermark=200.0,
            low_watermark=140.0,
            min_shards=shards,
            max_shards=shards + 2,
            cooldown=8.0,
            plan_budget=8,
        ),
    )
    runtime = spec.run()
    result = summarize_run(runtime, failure_duration=0.0)
    deployment = runtime.deployment
    aborts = sum(len(r.get("aborts", [])) for r in deployment.rebalances)
    completed = sum(1 for r in deployment.rebalances if r.get("completed"))
    result.extra["autoscale"] = {
        "actions": list(runtime.autoscaler.actions),
        "skipped": len(runtime.autoscaler.skipped),
        "scale_events": list(deployment.scale_events),
        "peak_shards": max(
            [event["shards"] for event in deployment.scale_events],
            default=deployment.active_shards(),
        ),
        "final_shards": deployment.active_shards(),
        "handoffs_completed": completed,
        "handoff_aborts": aborts,
        "state_tuples_shipped": sum(
            r.get("state_tuples_shipped", 0) for r in deployment.rebalances
        ),
        "state_tuples_trimmed": deployment.handoff_trimmed_total,
    }
    return result


def autoscale_sweep(
    seeds: Sequence[int] = (1, 2, 3), *, shards: int = 2, skew: float = 1.2
) -> list[ExperimentResult]:
    """The elastic surge-and-subside run across determinism seeds (the CLI table)."""
    return [autoscale_run(seed, shards=shards, skew=skew) for seed in seeds]


def rebalance_sweep(
    seeds: Sequence[int] = (1, 2, 3), *, shards: int = 4, skew: float = 1.2
) -> list[ExperimentResult]:
    """The mid-run rebalance across determinism seeds (the CLI table)."""
    return [rebalance_run(seed, shards=shards, skew=skew) for seed in seeds]


def shard_throughput_sweep(
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    *,
    aggregate_rate: float = 240.0,
    duration: float = 20.0,
    seed: int | None = 1,
) -> list[dict]:
    """Throughput for each shard count plus its equal-operator chain baseline."""
    rows: list[dict] = []
    for shards in shard_counts:
        rows.append(
            shard_throughput_run(
                int(shards), aggregate_rate=aggregate_rate, duration=duration, seed=seed
            )
        )
    rows.append(
        chain_throughput_run(
            equivalent_chain_depth(max(int(s) for s in shard_counts)),
            aggregate_rate=aggregate_rate,
            duration=duration,
            seed=seed,
        )
    )
    return rows
