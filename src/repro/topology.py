"""Deployment topologies: replicated processing nodes wired into a DAG.

The paper's query diagrams are general directed acyclic graphs -- the
Section 6.3 delay-assignment problem and the Figure 9 inter-replica protocol
are only interesting when a node has several upstream neighbors and several
downstream subscribers -- but the original experiments deploy only two
shapes: a single node and a linear chain.  This module is the reproduction's
topology vocabulary for everything else:

* a :class:`NodeSpec` declares one logical processing node: its name, the
  named input edges feeding it (source streams such as ``"s1"`` or the names
  of other nodes, whose output stream ``"<name>.out"`` it then consumes),
  and an optional per-node replication factor;
* a :class:`Topology` validates a set of node specs into a DAG, computes the
  topological order the cluster builder walks, enumerates entry-to-sink
  paths for delay planning, and offers the deployment shapes used by the
  experiments (:meth:`Topology.chain`, :meth:`Topology.diamond`,
  :meth:`Topology.fanin`).

The module is deliberately dependency-light (only :mod:`repro.errors`) so
that the simulation substrate, the DPC core, and the runtime layer can all
import it without cycles.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from .errors import ConfigurationError
from .sharding import DEFAULT_BUCKETS, ShardAssignment, ShardPlanner, ShardSpec

#: The conventional source-stream names; reserved, never valid as node names.
_SOURCE_NAME = re.compile(r"s\d+")

#: Deterministic tuple predicate applied by a node's fragment (see NodeSpec.select).
SelectPredicate = Callable[[Mapping[str, Any]], bool]

#: Where a node's ``select`` predicate runs (see NodeSpec.select_at).
SELECT_PLACEMENTS = ("egress", "ingress")


def modulo_partition(
    remainder: int, modulus: int = 2, attribute: str = "seq", group: int = 1
) -> SelectPredicate:
    """Predicate keeping tuples whose ``attribute // group`` is ``remainder`` mod ``modulus``.

    This is how the branch nodes of a fan-out deployment carve the upstream
    stream into disjoint slices (like a sharded dataflow): the fan-in SUnion
    downstream then reunites the slices into the original stream instead of
    duplicating it.  ``group`` keeps runs of consecutive values on the same
    branch -- deployments partitioning an interleaved multi-source workload
    set it to the source count so that tuples sharing an stime never straddle
    branches (the fan-in SUnion orders stime ties by input port, so a
    straddling tie-group would be reordered).
    """
    if modulus < 1:
        raise ConfigurationError("modulus must be >= 1")
    if group < 1:
        raise ConfigurationError("group must be >= 1")
    if not 0 <= remainder < modulus:
        raise ConfigurationError(f"remainder {remainder} out of range for modulus {modulus}")

    def select(values: Mapping[str, Any]) -> bool:
        return (int(values.get(attribute, 0)) // group) % modulus == remainder

    select.__name__ = f"{attribute}_div{group}_mod{modulus}_eq{remainder}"
    return select


@dataclass(frozen=True)
class NodeSpec:
    """One logical processing node of a deployment DAG.

    ``inputs`` name the edges feeding the node, in SUnion port order.  Each
    entry is either a *source stream* (any name that is not another node's
    name, conventionally ``"s1"``, ``"s2"``, ...) or the *name of another
    node*, meaning this node consumes that node's output stream
    ``"<name>.out"``.

    ``replicas`` overrides the deployment-wide replication factor for this
    node; ``None`` keeps the deployment default.

    ``select`` optionally filters the node's tuples with a deterministic
    ``Filter``.  ``select_at`` places the filter within the fragment:

    * ``"egress"`` (default) -- between the node's SUnion and its SOutput;
      branch nodes of reconvergent (diamond) deployments use this to emit
      disjoint partitions of the fanned-out stream.
    * ``"ingress"`` -- in front of the node's SUnion, so the fragment only
      serializes, buffers, and emits its own slice of the input.  This is
      the sharded scale-out placement (``Topology.shard``): per-shard work
      drops to 1/N while boundaries, undos, and REC_DONE markers still flow
      through untouched.  Only single-input internal nodes support it.

    ``stateful`` places the deployment's stateful operator (the SJoin whose
    state the checkpoints capture): ``None`` keeps the legacy placement
    (entry nodes run the join, downstream nodes are relays), ``True``/
    ``False`` overrides it per node.  Sharded deployments run the join *in
    the shards* -- partitioned state is the point of sharding -- and turn
    the split into a stateless router.
    """

    name: str
    inputs: tuple[str, ...]
    replicas: int | None = None
    select: SelectPredicate | None = None
    select_at: str = "egress"
    stateful: bool | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("node name cannot be empty")
        if not self.inputs:
            raise ConfigurationError(f"node {self.name!r} must have at least one input")
        object.__setattr__(self, "inputs", tuple(self.inputs))
        if len(set(self.inputs)) != len(self.inputs):
            raise ConfigurationError(f"node {self.name!r} lists a duplicate input edge")
        if self.name in self.inputs:
            raise ConfigurationError(f"node {self.name!r} cannot consume its own output")
        if self.replicas is not None and self.replicas < 1:
            raise ConfigurationError(f"node {self.name!r} must have replicas >= 1")
        if self.select_at not in SELECT_PLACEMENTS:
            raise ConfigurationError(
                f"node {self.name!r} has select_at {self.select_at!r}; "
                f"expected one of {SELECT_PLACEMENTS}"
            )
        if self.select is None and self.select_at != "egress":
            raise ConfigurationError(
                f"node {self.name!r} sets select_at={self.select_at!r} without a select"
            )

    @property
    def output_stream(self) -> str:
        """Name of the stream this node produces."""
        return f"{self.name}.out"


class Topology:
    """A validated DAG of :class:`NodeSpec`\\ s plus the graph queries DPC needs."""

    def __init__(self, nodes: Sequence[NodeSpec], name: str = "topology") -> None:
        self.name = name
        #: The planner-owned bucket assignment of a sharded topology (set by
        #: :meth:`Topology.shard`); None for every other shape.
        self.shard_assignment: ShardAssignment | None = None
        self._specs: dict[str, NodeSpec] = {}
        for spec in nodes:
            if spec.name in self._specs:
                raise ConfigurationError(f"duplicate node name {spec.name!r} in topology")
            self._specs[spec.name] = spec
        if not self._specs:
            raise ConfigurationError("topology must declare at least one node")
        #: node name -> names of the nodes consuming its output, declaration order.
        self._consumers: dict[str, list[str]] = {
            name: [
                spec.name for spec in self._specs.values() if name in spec.inputs
            ]
            for name in self._specs
        }
        self._order = self._topological_order()
        self._source_streams: list[str] = []
        for spec in self._order:
            for edge in spec.inputs:
                if edge not in self._specs and edge not in self._source_streams:
                    self._source_streams.append(edge)
        self._validate()

    # ------------------------------------------------------------------ construction helpers
    @classmethod
    def chain(cls, depth: int, n_input_streams: int = 3, name: str | None = None) -> "Topology":
        """The linear deployment of Figure 14: ``chain_depth`` compiled to a path graph."""
        if depth < 1:
            raise ConfigurationError("chain depth must be >= 1")
        if n_input_streams < 1:
            raise ConfigurationError("n_input_streams must be >= 1")
        sources = tuple(f"s{i + 1}" for i in range(n_input_streams))
        nodes = [NodeSpec(name="node1", inputs=sources)]
        for level in range(1, depth):
            nodes.append(NodeSpec(name=f"node{level + 1}", inputs=(f"node{level}",)))
        return cls(nodes, name=name or f"chain-{depth}")

    @classmethod
    def diamond(
        cls,
        n_input_streams: int = 3,
        partition_attribute: str = "seq",
        name: str = "diamond",
    ) -> "Topology":
        """Reconvergent dataflow: ingest fans out to two branches that re-merge.

        ``ingest`` merges the source streams and feeds both ``left`` and
        ``right`` (2-way fan-out via the multicast transport).  Each branch
        processes a disjoint partition of the stream (even vs odd
        ``partition_attribute``, the sharded-dataflow shape), and ``merge``
        reunites the partitions with a 2-way fan-in SUnion -- the Figure 21
        shape where paths reconverge.
        """
        sources = tuple(f"s{i + 1}" for i in range(n_input_streams))
        return cls(
            [
                NodeSpec(name="ingest", inputs=sources),
                NodeSpec(
                    name="left",
                    inputs=("ingest",),
                    select=modulo_partition(0, 2, partition_attribute, group=n_input_streams),
                ),
                NodeSpec(
                    name="right",
                    inputs=("ingest",),
                    select=modulo_partition(1, 2, partition_attribute, group=n_input_streams),
                ),
                NodeSpec(name="merge", inputs=("left", "right")),
            ],
            name=name,
        )

    @classmethod
    def fanin(
        cls, branches: int = 2, streams_per_branch: int = 2, name: str = "fanin"
    ) -> "Topology":
        """Cross-node fan-in: independent ingest branches merged by one node."""
        if branches < 2:
            raise ConfigurationError("fanin topology needs at least 2 branches")
        if streams_per_branch < 1:
            raise ConfigurationError("streams_per_branch must be >= 1")
        nodes = []
        stream = 0
        for branch in range(branches):
            inputs = tuple(f"s{stream + i + 1}" for i in range(streams_per_branch))
            stream += streams_per_branch
            nodes.append(NodeSpec(name=f"branch{branch + 1}", inputs=inputs))
        nodes.append(
            NodeSpec(name="merge", inputs=tuple(f"branch{b + 1}" for b in range(branches)))
        )
        return cls(nodes, name=name)

    @classmethod
    def shard(
        cls,
        shards: int,
        key: str = "seq",
        n_input_streams: int = 3,
        buckets: int = DEFAULT_BUCKETS,
        assignment: ShardAssignment | None = None,
        tie_group: int | None = None,
        name: str | None = None,
    ) -> "Topology":
        """N-way key-hash sharded scale-out: split -> N shards -> fan-in merge.

        ``split`` merges the source streams and multicasts its output to
        every shard; ``shard1`` ... ``shardN`` each keep only their slice of
        the key space (an *ingress* key-hash filter ahead of their SUnion,
        so per-shard serialization, buffering, and output work is 1/N); and
        ``merge`` reunites the slices with an N-way fan-in SUnion.

        The slice predicates are owned by a :class:`~repro.sharding.ShardPlanner`:
        pass ``assignment`` to deploy a rebalanced bucket map (e.g. the
        ``after`` of a :class:`~repro.sharding.RebalancePlan`); by default
        the planner's even contiguous-range assignment is used.  The
        predicates are disjoint and exhaustive by construction, so the merge
        reassembles exactly the original stream.

        The shard key is grouped by ``tie_group`` (default ``n_input_streams``)
        so tuples sharing an stime (one tick of the interleaved sources) stay
        on one shard -- the fan-in SUnion orders stime ties by input port, and
        a straddling tie group would be reordered (same rule as
        ``modulo_partition``).  Workloads whose key attribute is already
        constant across a tick (the hot-key generators stamp one key per
        tick) pass ``tie_group=1``.
        """
        if shards < 1:
            raise ConfigurationError("shard count must be >= 1")
        if n_input_streams < 1:
            raise ConfigurationError("n_input_streams must be >= 1")
        if tie_group is not None and tie_group < 1:
            raise ConfigurationError("tie_group must be >= 1 when given")
        spec = ShardSpec(
            shards=shards,
            key=key,
            buckets=buckets,
            group=n_input_streams if tie_group is None else tie_group,
        )
        if assignment is None:
            assignment = ShardPlanner(spec).plan()
        elif assignment.spec != spec:
            raise ConfigurationError(
                f"assignment was planned for {assignment.spec}, but the topology "
                f"declares {spec}"
            )
        sources = tuple(f"s{i + 1}" for i in range(n_input_streams))
        # The split is a stateless router; the deployment's stateful join
        # runs *inside* the shards, over each shard's slice of the key space.
        nodes = [NodeSpec(name="split", inputs=sources, stateful=False)]
        for index in range(shards):
            nodes.append(
                NodeSpec(
                    name=f"shard{index + 1}",
                    inputs=("split",),
                    select=assignment.predicate(index),
                    select_at="ingress",
                    stateful=True,
                )
            )
        nodes.append(
            NodeSpec(name="merge", inputs=tuple(f"shard{i + 1}" for i in range(shards)))
        )
        topology = cls(nodes, name=name or f"shard-{shards}")
        topology.shard_assignment = assignment
        return topology

    # ------------------------------------------------------------------ basic queries
    def __iter__(self) -> Iterator[NodeSpec]:
        """Iterate the node specs in topological order."""
        return iter(self._order)

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    @property
    def node_names(self) -> list[str]:
        """Node names in topological order."""
        return [spec.name for spec in self._order]

    def node(self, name: str) -> NodeSpec:
        try:
            return self._specs[name]
        except KeyError as exc:
            raise ConfigurationError(f"topology has no node {name!r}") from exc

    def is_node(self, name: str) -> bool:
        return name in self._specs

    @property
    def source_streams(self) -> list[str]:
        """Source streams referenced by any node, in first-use order."""
        return list(self._source_streams)

    def input_streams(self, spec: NodeSpec) -> list[str]:
        """The stream names feeding ``spec``, in port order."""
        return [
            self._specs[edge].output_stream if edge in self._specs else edge
            for edge in spec.inputs
        ]

    def upstream_nodes(self, spec: NodeSpec) -> list[NodeSpec]:
        """Node-typed inputs of ``spec``, in port order."""
        return [self._specs[edge] for edge in spec.inputs if edge in self._specs]

    def is_entry(self, spec: NodeSpec) -> bool:
        """True when every input of ``spec`` is a source stream."""
        return all(edge not in self._specs for edge in spec.inputs)

    def consumers_of(self, name: str) -> list[NodeSpec]:
        """Nodes consuming ``name`` (a node name or a source stream), topo order."""
        if name in self._specs:
            consumers = set(self._consumers[name])
            return [spec for spec in self._order if spec.name in consumers]
        return [spec for spec in self._order if name in spec.inputs]

    def sinks(self) -> list[NodeSpec]:
        """Nodes whose output no other node consumes (each gets a client)."""
        return [spec for spec in self._order if not self._consumers[spec.name]]

    def replicas_of(self, name: str, default: int) -> int:
        replicas = self.node(name).replicas
        return default if replicas is None else replicas

    # ------------------------------------------------------------------ path queries
    def paths(self) -> list[tuple[str, ...]]:
        """Every entry-to-sink path, as tuples of node names."""
        paths: list[tuple[str, ...]] = []

        def walk(name: str, prefix: tuple[str, ...]) -> None:
            prefix = prefix + (name,)
            downstream = self.consumers_of(name)
            if not downstream:
                paths.append(prefix)
                return
            for consumer in downstream:
                walk(consumer.name, prefix)

        for spec in self._order:
            if self.is_entry(spec):
                walk(spec.name, ())
        return paths

    def depth(self) -> int:
        """Number of nodes on the longest entry-to-sink path.

        This is the quantity the Section 6.3 delay assignment divides the
        end-to-end budget ``X`` by: with every node on the longest path given
        ``X / depth()``, no path can accumulate more than ``X`` of delay, and
        shorter branches simply under-use the budget instead of over-assigning.

        Computed by dynamic programming over the topological order (not by
        enumerating paths, whose count is exponential in reconvergent DAGs).
        """
        longest: dict[str, int] = {}
        for spec in self._order:
            upstream = [longest[edge] for edge in spec.inputs if edge in self._specs]
            longest[spec.name] = 1 + max(upstream, default=0)
        return max(longest.values())

    # ------------------------------------------------------------------ validation
    def _topological_order(self) -> list[NodeSpec]:
        indegree = {
            name: sum(1 for edge in spec.inputs if edge in self._specs)
            for name, spec in self._specs.items()
        }
        # Ties broken by declaration order so the builder's walk is stable.
        ready = [name for name in self._specs if indegree[name] == 0]
        order: list[NodeSpec] = []
        while ready:
            current = ready.pop(0)
            order.append(self._specs[current])
            for consumer in self._consumers[current]:
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(self._specs):
            cyclic = sorted(set(self._specs) - {spec.name for spec in order})
            raise ConfigurationError(f"topology has a cycle involving {cyclic}")
        return order

    def _validate(self) -> None:
        if not self.source_streams:  # pragma: no cover - unreachable once acyclic
            raise ConfigurationError("topology has no source streams feeding it")
        # An input edge that names a node always resolves to that node's
        # output, so a node named like a source stream would silently turn
        # other nodes' source edges into node edges.  The conventional
        # source names (s1, s2, ...) are therefore reserved.
        for spec in self._order:
            if _SOURCE_NAME.fullmatch(spec.name):
                raise ConfigurationError(
                    f"node name {spec.name!r} is reserved for source streams "
                    f"(s1, s2, ...); rename the node"
                )
            # Ingress filters slot in front of a relay fragment's single
            # SUnion; entry fragments (which merge several source streams)
            # and fan-in fragments have no single ingress point to filter.
            if spec.select_at == "ingress" and (
                len(spec.inputs) != 1 or self.is_entry(spec)
            ):
                raise ConfigurationError(
                    f"node {spec.name!r} uses an ingress select, which requires "
                    f"exactly one node-typed input (got inputs {spec.inputs!r})"
                )
        if not self.sinks():  # pragma: no cover - impossible once acyclic
            raise ConfigurationError("topology has no sink node")

    def validate_failure_target(self, node: str, replica: int, default_replicas: int) -> None:
        """Raise :class:`ConfigurationError` unless ``node``/``replica`` exist.

        ``replica = -1`` means "every replica" and is always in range.
        """
        if not self.is_node(node):
            raise ConfigurationError(
                f"failure targets node {node!r}, but the topology only has "
                f"{self.node_names}"
            )
        if replica == -1:
            return
        replicas = self.replicas_of(node, default_replicas)
        if not 0 <= replica < replicas:
            raise ConfigurationError(
                f"failure targets replica {replica} of node {node!r}, which has "
                f"{replicas} replica(s)"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Topology {self.name!r} nodes={self.node_names} "
            f"sources={self.source_streams}>"
        )


def as_topology(value: "Topology | Iterable[NodeSpec] | None", *, chain_depth: int = 1,
                n_input_streams: int = 3, name: str | None = None) -> Topology:
    """Normalize a ``ScenarioSpec.topology`` value into a :class:`Topology`.

    ``None`` compiles the legacy ``chain_depth`` sugar into a path graph; a
    sequence of :class:`NodeSpec` is validated into a fresh topology.
    """
    if value is None:
        return Topology.chain(chain_depth, n_input_streams=n_input_streams, name=name)
    if isinstance(value, Topology):
        return value
    return Topology(tuple(value), name=name or "topology")
