"""Command-line interface of the reproduction.

``python -m repro`` exposes the experiment runners so every table and figure
of the paper can be regenerated (and exported as text, Markdown, or CSV)
without writing any code::

    python -m repro list
    python -m repro run table3
    python -m repro run fig16 --scale quick --format markdown
    python -m repro run replicas --output replicas.csv --format csv
    python -m repro scenario --depth 2 --failure disconnect --failure-duration 10
    python -m repro scenario --topology diamond --failure crash --failure-node left
    python -m repro claims
    python -m repro profile shard --shards 4 --duration 15
    python -m repro plan-delays --depth 4 --budget 8 --strategy full
    python -m repro plan-delays --topology diamond --budget 9 --strategy uniform

The CLI is a thin layer over :mod:`repro.runtime`, :mod:`repro.experiments`,
and :mod:`repro.analysis`; everything it prints can also be produced
programmatically with the :class:`~repro.runtime.ScenarioSpec` API::

    from repro import ScenarioSpec

    runtime = ScenarioSpec.chain(2).with_failure("disconnect", duration=10.0).run()
    print(runtime.client.summary())
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from .analysis.paper import PAPER_CLAIMS
from .analysis.tables import (
    ResultTable,
    metric_by_duration,
    proc_new_by_depth,
    render_csv,
    render_markdown,
    render_text,
    tentative_by_depth,
)
from .config import DelayAssignment
from .core.delay_planner import DelayPlanner
from .experiments import ablations, chains, dags, overhead, shards, single_node
from .experiments.harness import ExperimentResult
from .topology import Topology

#: Renderers selectable with ``--format``.
_RENDERERS: dict[str, Callable[[ResultTable], str]] = {
    "text": render_text,
    "markdown": render_markdown,
    "csv": render_csv,
}


# --------------------------------------------------------------------------- experiment registry
class ExperimentCommand:
    """One runnable experiment: produces a list of tables."""

    def __init__(self, name: str, description: str, runner: Callable[[str], list[ResultTable]]):
        self.name = name
        self.description = description
        self.runner = runner

    def run(self, scale: str) -> list[ResultTable]:
        return self.runner(scale)


def _durations(scale: str, quick: Sequence[float], full: Sequence[float]) -> Sequence[float]:
    return full if scale == "full" else quick


def _results_to_tables(results: list[ExperimentResult], title: str, by: str) -> list[ResultTable]:
    if by == "depth":
        return [proc_new_by_depth(results, f"{title}: Proc_new (s)"),
                tentative_by_depth(results, f"{title}: N_tentative")]
    return [
        metric_by_duration(results, f"{title}: Proc_new (s)", lambda r: r.proc_new),
        metric_by_duration(results, f"{title}: N_tentative", lambda r: r.n_tentative),
    ]


def _run_table3(scale: str) -> list[ResultTable]:
    durations = _durations(scale, (2, 8, 16, 30, 60), (2, 4, 6, 8, 10, 12, 14, 16, 30, 45, 60))
    return _results_to_tables(single_node.table3(durations), "Table III", by="duration")


def _run_fig11(overlapping: bool) -> Callable[[str], list[ResultTable]]:
    def runner(scale: str) -> list[ResultTable]:
        result = single_node.eventual_consistency_trace(overlapping=overlapping)
        table = ResultTable(
            title=result.label, row_label="metric", column_label="value"
        )
        table.set("eventually consistent", "value", result.eventually_consistent)
        table.set("tentative tuples", "value", result.n_tentative)
        table.set("undo tuples", "value", result.n_undos)
        table.set("REC_DONE markers", "value", result.n_rec_done)
        table.set("reconciliations", "value", result.reconciliations)
        return [table]

    return runner


def _run_fig13(scale: str) -> list[ResultTable]:
    durations = _durations(scale, (2, 10, 30), (2, 6, 10, 14, 30, 60))
    return _results_to_tables(single_node.fig13(durations), "Figure 13", by="duration")


def _run_fig15(scale: str) -> list[ResultTable]:
    depths = _durations(scale, (1, 2, 4), (1, 2, 3, 4))
    return _results_to_tables(chains.fig15([int(d) for d in depths]), "Figure 15", by="depth")


def _run_fig16(scale: str) -> list[ResultTable]:
    durations = _durations(scale, (5, 30), (5, 10, 15, 30))
    depths = (1, 2, 4) if scale != "full" else (1, 2, 3, 4)
    results = chains.fig16([float(d) for d in durations], depths=[int(d) for d in depths])
    tables = []
    for duration in durations:
        subset = [r for r in results if r.failure_duration == duration]
        tables.extend(_results_to_tables(subset, f"Figure 16 ({duration:g} s failure)", by="depth"))
    return tables


def _run_fig18(scale: str) -> list[ResultTable]:
    depths = _durations(scale, (1, 2, 4), (1, 2, 3, 4))
    return _results_to_tables(chains.fig18([int(d) for d in depths]), "Figure 18", by="depth")


def _run_fig19_20(scale: str) -> list[ResultTable]:
    durations = _durations(scale, (5, 30), (5, 10, 15, 30))
    results = chains.fig19_20([float(d) for d in durations])
    return _results_to_tables(results, "Figures 19-20", by="duration")


def _overhead_table(rows, parameter: str, title: str) -> ResultTable:
    table = ResultTable(title=title, row_label=parameter, column_label="latency (ms)")
    for row in rows:
        ms = row.latency.scaled(1000.0)
        table.set(f"{row.parameter_ms:.0f} ms", "min", ms.minimum)
        table.set(f"{row.parameter_ms:.0f} ms", "max", ms.maximum)
        table.set(f"{row.parameter_ms:.0f} ms", "avg", ms.average)
        table.set(f"{row.parameter_ms:.0f} ms", "std", ms.stddev)
    return table


def _run_table4(scale: str) -> list[ResultTable]:
    sizes = (0.05, 0.1, 0.3) if scale != "full" else (0.01, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5)
    return [_overhead_table(overhead.table4(sizes), "bucket size", "Table IV: overhead vs bucket size")]


def _run_table5(scale: str) -> list[ResultTable]:
    intervals = (0.05, 0.1, 0.3) if scale != "full" else (0.01, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5)
    return [
        _overhead_table(
            overhead.table5(intervals), "boundary interval", "Table V: overhead vs boundary interval"
        )
    ]


def _run_replicas(scale: str) -> list[ResultTable]:
    counts = (1, 2) if scale != "full" else (1, 2, 3)
    results = ablations.replica_sweep(counts)
    return _results_to_tables(results, "Ablation: replicas per node", by="duration")


def _run_detection(scale: str) -> list[ResultTable]:
    periods = (0.1, 0.5) if scale != "full" else (0.05, 0.1, 0.25, 0.5)
    results = ablations.detection_sweep(periods)
    table = ResultTable(
        title="Ablation: failure detection parameters", row_label="keepalive", column_label="metric"
    )
    for result in results:
        key = f"{result.keepalive_period * 1000:.0f} ms"
        table.set(key, "Proc_new (s)", result.proc_new)
        table.set(key, "max gap (s)", result.max_gap)
        table.set(key, "N_tentative", result.n_tentative)
        table.set(key, "switches", result.switches)
    return [table]


def _run_crash(scale: str) -> list[ResultTable]:
    result = ablations.crash_failover()
    table = ResultTable(title="Ablation: crash failover", row_label="metric", column_label="value")
    table.set("Proc_new (s)", "value", result.proc_new)
    table.set("max gap (s)", "value", result.max_gap)
    table.set("N_tentative", "value", result.n_tentative)
    table.set("eventually consistent", "value", result.eventually_consistent)
    table.set("upstream switches", "value", result.extra.get("switches"))
    return [table]


def _run_recovery(scale: str) -> list[ResultTable]:
    durations = (4.0, 10.0) if scale != "full" else (2.0, 4.0, 10.0, 20.0)
    pairs = ablations.recovery_time_sweep(durations)
    table = ResultTable(
        title="Crash recovery: checkpoint-shipped rejoin vs full subscription replay",
        row_label="failure",
        column_label="metric",
    )
    for checkpointed, replay in pairs:
        key = f"{checkpointed.failure_duration:g} s"
        table.set(key, "ckpt mode", checkpointed.mode)
        table.set(key, "ckpt recovery (s)", round(checkpointed.recovery_s, 3))
        table.set(key, "replay recovery (s)", round(replay.recovery_s, 3))
        table.set(key, "ckpt suffix", checkpointed.replayed)
        table.set(key, "replay suffix", replay.replayed)
        table.set(key, "shipped items", checkpointed.shipped_items)
        table.set(key, "ledgers identical",
                  checkpointed.ledger_rows == replay.ledger_rows)
    return [table]


def _run_granularity(scale: str) -> list[ResultTable]:
    results = [ablations.granularity_run(False), ablations.granularity_run(True)]
    return _results_to_tables(results, "Ablation: failure granularity", by="duration")


def _dag_table(results: list[ExperimentResult], title: str) -> ResultTable:
    table = ResultTable(title=title, row_label="failure", column_label="metric")
    for result in results:
        key = f"{result.failure_duration:g} s"
        table.set(key, "Proc_new (s)", result.proc_new)
        table.set(key, "N_tentative", result.n_tentative)
        table.set(key, "consistent", result.eventually_consistent)
        branches = result.extra.get("branches", {})
        for name, counts in branches.items():
            table.set(key, f"{name} tentative", counts["tentative"])
    return table


def _run_diamond(scale: str) -> list[ResultTable]:
    durations = (4.0, 8.0) if scale != "full" else (4.0, 8.0, 16.0, 30.0)
    results = dags.diamond_sweep(durations, seed=1)
    return [_dag_table(results, "Diamond topology: branch crash (all replicas of 'left')")]


def _run_fanin(scale: str) -> list[ResultTable]:
    durations = (4.0, 8.0) if scale != "full" else (4.0, 8.0, 16.0, 30.0)
    results = dags.fanin_sweep(durations, seed=1)
    return [_dag_table(results, "Fan-in topology: boundary silence on one branch")]


def _run_shard(scale: str) -> list[ResultTable]:
    durations = (4.0, 8.0) if scale != "full" else (4.0, 8.0, 16.0, 30.0)
    results = shards.shard_kill_sweep(durations, shards=4, seed=1)
    table = ResultTable(
        title="Sharded topology: both replicas of 'shard1' crashed",
        row_label="failure",
        column_label="metric",
    )
    for result in results:
        key = f"{result.failure_duration:g} s"
        table.set(key, "Proc_new (s)", result.proc_new)
        table.set(key, "N_tentative", result.n_tentative)
        table.set(key, "consistent", result.eventually_consistent)
        for name, counts in result.extra.get("shards", {}).items():
            table.set(key, f"{name} tentative", counts["tentative"])
    return [table]


def _run_rebalance(scale: str) -> list[ResultTable]:
    seeds = (1, 2) if scale != "full" else (1, 2, 3, 4)
    results = shards.rebalance_sweep(seeds)
    table = ResultTable(
        title="Live rebalance: skewed hot-key load, mid-run Deployment.apply(plan)",
        row_label="seed",
        column_label="metric",
    )
    for seed, result in zip(seeds, results):
        key = f"seed {seed}"
        rebalance = result.extra["rebalance"]
        table.set(key, "bucket moves", rebalance["moves"])
        table.set(key, "imbalance before", round(rebalance["imbalance_before"] or 0.0, 3))
        table.set(key, "imbalance after", round(rebalance["imbalance_after"] or 0.0, 3))
        table.set(key, "state tuples shipped", rebalance["state_tuples_shipped"])
        table.set(key, "Proc_new (s)", result.proc_new)
        table.set(key, "consistent", result.eventually_consistent)
    return [table]


def _run_autoscale(scale: str) -> list[ResultTable]:
    seeds = (1, 2) if scale != "full" else (1, 2, 3, 4)
    results = shards.autoscale_sweep(seeds)
    table = ResultTable(
        title="Elastic autoscaling: load surge -> scale-out, subsidence -> scale-in",
        row_label="seed",
        column_label="metric",
    )
    for seed, result in zip(seeds, results):
        key = f"seed {seed}"
        autoscale = result.extra["autoscale"]
        table.set(key, "actions", len(autoscale["actions"]))
        table.set(key, "peak shards", autoscale["peak_shards"])
        table.set(key, "final shards", autoscale["final_shards"])
        table.set(key, "handoffs completed", autoscale["handoffs_completed"])
        table.set(key, "handoff aborts", autoscale["handoff_aborts"])
        table.set(key, "state tuples shipped", autoscale["state_tuples_shipped"])
        table.set(key, "Proc_new (s)", result.proc_new)
        table.set(key, "consistent", result.eventually_consistent)
    return [table]


def _run_shard_throughput(scale: str) -> list[ResultTable]:
    counts = (1, 2, 4) if scale != "full" else (1, 2, 4, 8)
    rows = shards.shard_throughput_sweep(counts, aggregate_rate=1200.0, duration=15.0)
    table = ResultTable(
        title="Sharded scale-out: sustained throughput vs the equal-operator chain",
        row_label="deployment",
        column_label="metric",
    )
    for row in rows:
        table.set(row["label"], "tuples/s (wall)", round(row["tuples_per_second"], 1))
        table.set(row["label"], "events fired", row["events_fired"])
        table.set(row["label"], "Proc_new (s)", round(row["proc_new"], 3))
        table.set(row["label"], "operators", row["operators"])
        table.set(row["label"], "consistent", row["eventually_consistent"])
    return [table]


def _run_live_throughput(scale: str) -> list[ResultTable]:
    """Wall-clock throughput of the live backend: chain vs shard fan-out.

    Unlike every other experiment this one spends real wall-clock seconds
    (worker processes over Unix sockets); the numbers are environment-bound
    trend metrics, not deterministic figures.
    """
    from .deploy.placement import compile as compile_topology
    from .live.supervisor import LiveBackendUnavailable, require_fork

    table = ResultTable(
        title="Live backend: wall-clock throughput, chain vs sharded fan-out",
        row_label="deployment",
        column_label="metric",
    )
    try:
        require_fork()
    except LiveBackendUnavailable as error:
        table.set("unavailable", "reason", str(error))
        return [table]
    stop = 4.0 if scale != "full" else 8.0
    rate = 240.0 if scale != "full" else 480.0
    for label, topology in (("chain-2", Topology.chain(2)), ("shard-4", Topology.shard(4))):
        placement = compile_topology(topology, replicas_per_node=2)
        live = placement.deploy(
            seed=1, aggregate_rate=rate, source_stop_time=stop, backend="live"
        )
        result = live.run(duration=stop + 1.0, drain_timeout=20.0)
        stable = result.total_stable
        table.set(label, "worker processes", len(result.nodes) + 1)
        table.set(label, "stable tuples", stable)
        table.set(label, "wall (s)", round(result.wall_seconds, 2))
        table.set(label, "tuples/s (wall)", round(stable / result.wall_seconds, 1))
        table.set(label, "consistent", result.eventually_consistent)
    return [table]


def _run_live_faults(scale: str) -> list[ResultTable]:
    """Network-fault parity: live runs under a compiled FaultPlan vs the sim.

    Each case builds one failure schedule from the shared ``FailureSpec``
    vocabulary, runs it on the simulator for the oracle ledger, compiles the
    same schedule into a deterministic wire-level :class:`FaultPlan`, and
    replays it on real worker processes.  "ledger matches sim" is the parity
    claim: byte-identical stable rows in replica-independent form.
    """
    from .deploy.placement import compile as compile_topology
    from .live.faults import compile_failures
    from .live.supervisor import LiveBackendUnavailable, require_fork
    from .live.worker import stable_ledger_rows
    from .workloads.scenarios import FailureSpec, Scenario

    table = ResultTable(
        title="Live fault injection: disconnect/partition parity with the simulator",
        row_label="scenario",
        column_label="metric",
    )
    try:
        require_fork()
    except LiveBackendUnavailable as error:
        table.set("unavailable", "reason", str(error))
        return [table]
    stop = 4.0 if scale != "full" else 8.0
    onset, outage = 1.5, 1.0
    cases = [
        ("chain-2 disconnect", Topology.chain(2), 90.0,
         [FailureSpec("disconnect", onset, outage)]),
        ("shard-4 partition", Topology.shard(4), 120.0,
         [FailureSpec("partition", onset, outage, node="shard1", node_replica=-1)]),
    ]
    for label, topology, rate, failures in cases:
        placement = compile_topology(topology, replicas_per_node=2)
        oracle = placement.deploy(seed=1, aggregate_rate=rate, source_stop_time=stop)
        Scenario(failures=failures).inject(oracle.cluster)
        oracle.start()
        oracle.run_for(stop + 6.0)
        sim_rows = stable_ledger_rows(oracle.clients[0])

        plan, kills = compile_failures(placement, failures, seed=1)
        live = placement.deploy(
            seed=1, aggregate_rate=rate, source_stop_time=stop, backend="live"
        )
        result = live.run(
            duration=stop + 1.5, kill=list(kills) or None, faults=plan,
            drain_timeout=20.0,
        )
        table.set(label, "stable tuples", result.total_stable)
        table.set(label, "tentative tuples", result.total_tentative)
        table.set(label, "injected faults", sum(result.injected_faults().values()))
        table.set(label, "dead letters", result.dead_letters)
        table.set(label, "reconnects", result.reconnects)
        table.set(label, "consistent", result.eventually_consistent)
        table.set(label, "ledger matches sim", result.stable_rows() == sim_rows)
    return [table]


EXPERIMENTS: dict[str, ExperimentCommand] = {
    "table3": ExperimentCommand("table3", "Table III: Proc_new vs failure duration", _run_table3),
    "fig11a": ExperimentCommand("fig11a", "Figure 11(a): overlapping failures", _run_fig11(True)),
    "fig11b": ExperimentCommand("fig11b", "Figure 11(b): failure during recovery", _run_fig11(False)),
    "fig13": ExperimentCommand("fig13", "Figure 13: six delay-policy variants", _run_fig13),
    "fig15": ExperimentCommand("fig15", "Figure 15: Proc_new vs chain depth", _run_fig15),
    "fig16": ExperimentCommand("fig16", "Figure 16: N_tentative vs depth, short failures", _run_fig16),
    "fig18": ExperimentCommand("fig18", "Figure 18: N_tentative, 60 s failure", _run_fig18),
    "fig19": ExperimentCommand("fig19", "Figures 19-20: delay assignment strategies", _run_fig19_20),
    "fig20": ExperimentCommand("fig20", "Figures 19-20: delay assignment strategies", _run_fig19_20),
    "table4": ExperimentCommand("table4", "Table IV: overhead vs bucket size", _run_table4),
    "table5": ExperimentCommand("table5", "Table V: overhead vs boundary interval", _run_table5),
    "diamond": ExperimentCommand(
        "diamond", "DAG: diamond (fan-out + fan-in) with one branch crashed", _run_diamond
    ),
    "fanin": ExperimentCommand(
        "fanin", "DAG: cross-node fan-in with one branch silenced", _run_fanin
    ),
    "shard": ExperimentCommand(
        "shard", "Sharded scale-out: both replicas of one shard crashed", _run_shard
    ),
    "shard-throughput": ExperimentCommand(
        "shard-throughput",
        "Sharded scale-out: throughput vs an equal-operator single chain",
        _run_shard_throughput,
    ),
    "rebalance": ExperimentCommand(
        "rebalance",
        "Live rebalance: skewed load, mid-run bucket handoff between shards",
        _run_rebalance,
    ),
    "autoscale": ExperimentCommand(
        "autoscale",
        "Elastic autoscaling: surge-driven scale-out, subsidence-driven scale-in",
        _run_autoscale,
    ),
    "replicas": ExperimentCommand("replicas", "Ablation: replicas per node", _run_replicas),
    "detection": ExperimentCommand("detection", "Ablation: detection parameters", _run_detection),
    "crash": ExperimentCommand("crash", "Ablation: crash failover", _run_crash),
    "granularity": ExperimentCommand("granularity", "Ablation: failure granularity", _run_granularity),
    "recovery": ExperimentCommand(
        "recovery",
        "State transfer: checkpoint-shipped vs full-replay crash recovery",
        _run_recovery,
    ),
    "live-throughput": ExperimentCommand(
        "live-throughput",
        "Live backend: wall-clock throughput over real processes and sockets",
        _run_live_throughput,
    ),
    "live-faults": ExperimentCommand(
        "live-faults",
        "Live fault injection: disconnect/partition parity against the sim oracle",
        _run_live_faults,
    ),
}


# --------------------------------------------------------------------------- commands
def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(name) for name in EXPERIMENTS)
    print("Available experiments:")
    for name, command in EXPERIMENTS.items():
        print(f"  {name:<{width}}  {command.description}")
    return 0


def _cmd_claims(_args: argparse.Namespace) -> int:
    for claim in PAPER_CLAIMS:
        print(f"{claim.experiment_id} (Section {claim.section}) -- {claim.title}")
        print(f"  {claim.claim}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        command = EXPERIMENTS[args.experiment]
    except KeyError:
        print(f"unknown experiment {args.experiment!r}; run 'python -m repro list'", file=sys.stderr)
        return 2
    renderer = _RENDERERS[args.format]
    tables = command.run(args.scale)
    rendered = "\n\n".join(renderer(table) for table in tables)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.output}")
    else:
        print(rendered)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.builders import build_quick_report

    print("running reduced sweeps of the headline experiments (a few minutes) ...")
    report = build_quick_report(aggregate_rate=args.rate)
    report.write(args.output)
    passed = sum(1 for section in report.sections if section.passed)
    print(f"wrote {args.output}: {passed}/{len(report.sections)} sections match the paper's shape")
    return 0 if report.all_passed else 1


def _cmd_scenario_live(args: argparse.Namespace) -> int:
    """Run a scenario on the live backend (real processes, wall-clock time).

    Crash failures SIGKILL a replica's worker process; disconnect and
    partition schedules compile into a deterministic
    :class:`~repro.live.faults.FaultPlan` enforced at the socket layer, so
    the same ``--failure``/``--disconnect-at``/``--partition-at`` flags run
    on either backend.  Boundary silence and the sharded control-plane
    extras (skew, rebalance, autoscale, surge) remain simulator-only.
    """
    from .config import DPCConfig
    from .deploy.placement import compile as compile_topology
    from .errors import ConfigurationError, SimulationError
    from .live.faults import compile_failures
    from .live.supervisor import LiveBackendUnavailable, LiveKill
    from .workloads.scenarios import FailureSpec

    for flag, value in (
        ("--skew", args.skew),
        ("--rebalance-at", args.rebalance_at),
        ("--autoscale", args.autoscale or None),
        ("--surge-at", args.surge_at),
    ):
        if value is not None:
            print(
                f"invalid scenario: {flag} is simulator-only (not supported "
                "with --backend live)",
                file=sys.stderr,
            )
            return 2
    if args.failure == "silence":
        print(
            "invalid scenario: --failure silence is simulator-only; the live "
            "backend injects crash (SIGKILL), disconnect, and partition "
            "failures",
            file=sys.stderr,
        )
        return 2
    streams = 3 if args.streams is None else args.streams
    if args.topology == "shard":
        topology = Topology.shard(args.shards, n_input_streams=streams)
    elif args.topology == "diamond":
        topology = Topology.diamond(n_input_streams=streams)
    elif args.topology == "fanin":
        topology = Topology.fanin()
    else:
        topology = Topology.chain(args.depth, n_input_streams=streams)
    config = None
    if args.checkpoint_interval is not None:
        config = DPCConfig(
            checkpoint_interval=(
                None if args.checkpoint_interval <= 0 else args.checkpoint_interval
            )
        )
    # Sources stop at warmup+settle; one extra wall second lets the last
    # boundary cross the pipeline before the drain poll takes over.
    stop = args.warmup + args.settle
    kill = None

    def _target_node(placement):
        if args.failure_node:
            return args.failure_node
        if not 0 <= args.failure_level < len(placement.nodes):
            raise ConfigurationError(
                f"--failure-level {args.failure_level} out of range for "
                f"{len(placement.nodes)} node(s)"
            )
        return placement.nodes[args.failure_level].name

    try:
        placement = compile_topology(topology, replicas_per_node=args.replicas)
        if args.failure == "crash":
            kill = LiveKill(
                node=_target_node(placement),
                replica=args.failure_replica,
                at=args.warmup,
                downtime=args.failure_duration,
            )
        failure_specs = []
        if args.failure == "disconnect":
            failure_specs.append(FailureSpec(
                "disconnect", args.warmup, args.failure_duration,
                stream_index=args.failure_stream,
            ))
        if args.disconnect_at is not None:
            failure_specs.append(FailureSpec(
                "disconnect", args.disconnect_at, args.failure_duration,
                stream_index=args.failure_stream,
            ))
        if args.failure == "partition":
            failure_specs.append(FailureSpec(
                "partition", args.warmup, args.failure_duration,
                node=_target_node(placement), node_replica=args.failure_replica,
            ))
        if args.partition_at is not None:
            failure_specs.append(FailureSpec(
                "partition", args.partition_at, args.failure_duration,
                node=_target_node(placement), node_replica=args.failure_replica,
            ))
        faults = None
        if failure_specs:
            faults, plan_kills = compile_failures(
                placement, failure_specs, seed=args.seed or 0
            )
            kill = kill or (plan_kills[0] if plan_kills else None)
        live = placement.deploy(
            config,
            seed=args.seed,
            aggregate_rate=args.rate,
            source_stop_time=stop,
            backend="live",
        )
        print(
            f"scenario {args.name!r} [live]: topology={topology.name} "
            f"nodes={','.join(topology.node_names)} replicas={args.replicas} "
            f"rate={args.rate:g} tuples/s seed={args.seed} "
            f"(~{stop + 1.0:g} wall seconds plus drain)"
        )
        if faults is not None:
            for rule in faults.describe():
                window = f"t={rule['start']:g}s..{rule['end']:g}s"
                print(f"  fault rule: {rule['kind']} on {rule['link']} {window}")
        result = live.run(
            duration=stop + 1.0, kill=kill, faults=faults, drain_timeout=15.0
        )
    except LiveBackendUnavailable as error:
        print(f"live backend unavailable: {error}", file=sys.stderr)
        return 2
    except (ConfigurationError, SimulationError) as error:
        print(f"invalid scenario: {error}", file=sys.stderr)
        return 2
    for record in result.kills:
        print(f"  SIGKILL: {record['endpoint']} (worker {record['worker']}) "
              f"at t={record['at']:.2f}s, respawned at t={record['respawned_at']:.2f}s")
    for record in result.recoveries():
        print(f"  recovery: {record['endpoint']} via {record['mode']}")
    injected = result.injected_faults()
    if injected:
        counts = ", ".join(f"{kind}={n}" for kind, n in sorted(injected.items()))
        print(f"  injected faults: {counts}")
    summary = result.client()["summary"]
    print(f"workers: {len(result.nodes) + 1} processes over Unix sockets, "
          f"{result.wall_seconds:.1f} s wall")
    print(f"Proc_new (max latency of new results): {summary['proc_new']:.3f} s")
    print(f"stable / tentative / undone:           {summary['total_stable']} / "
          f"{summary['total_tentative']} / {summary['total_undos']}")
    print(f"upstream switches:                     {summary['switches']}")
    print(f"frames dropped / dead-lettered:        {result.dropped_frames} / "
          f"{result.dead_letters}")
    print(f"reconnect attempts / reconnects:       {result.reconnect_attempts} / "
          f"{result.reconnects}")
    consistent = result.eventually_consistent
    print(f"eventually consistent:                 {consistent}")
    return 0 if consistent else 1


def _cmd_scenario(args: argparse.Namespace) -> int:
    from .errors import ConfigurationError, SimulationError
    from .runtime import ScenarioSpec

    if args.backend == "live":
        return _cmd_scenario_live(args)
    checkpoint_interval = "inherit"
    if args.checkpoint_interval is not None:
        # <= 0 disables recovery checkpoints (forces full-replay recovery).
        checkpoint_interval = (
            None if args.checkpoint_interval <= 0 else args.checkpoint_interval
        )
    common = dict(
        name=args.name,
        replicas_per_node=args.replicas,
        aggregate_rate=args.rate,
        warmup=args.warmup,
        settle=args.settle,
        seed=args.seed,
        checkpoint_interval=checkpoint_interval,
    )
    if (
        args.failure_node
        and args.failure not in ("crash", "partition")
        and args.partition_at is None
    ):
        print(
            "invalid scenario: --failure-node only applies to crash/partition "
            "failures (disconnect/silence target a source stream via "
            "--failure-stream)",
            file=sys.stderr,
        )
        return 2
    if args.topology != "shard":
        for flag, value in (
            ("--skew", args.skew),
            ("--rebalance-at", args.rebalance_at),
            ("--autoscale", args.autoscale or None),
        ):
            if value is not None:
                print(
                    f"invalid scenario: {flag} only applies to --topology shard",
                    file=sys.stderr,
                )
                return 2
    if args.rebalance_tolerance is not None and args.rebalance_at is None:
        print(
            "invalid scenario: --rebalance-tolerance only applies together with "
            "--rebalance-at",
            file=sys.stderr,
        )
        return 2
    if args.surge_until is not None and args.surge_at is None:
        print(
            "invalid scenario: --surge-until only applies together with --surge-at",
            file=sys.stderr,
        )
        return 2
    streams = args.streams
    try:
        if args.topology == "shard":
            spec = ScenarioSpec.sharded(
                shards=args.shards,
                n_input_streams=3 if streams is None else streams,
                skew=args.skew,
                **common,
            )
            if args.rebalance_at is not None:
                spec = spec.with_overrides(
                    rebalance_at=args.rebalance_at,
                    rebalance_tolerance=(
                        0.10
                        if args.rebalance_tolerance is None
                        else args.rebalance_tolerance
                    ),
                )
            if args.autoscale:
                from .deploy import AutoscalePolicy

                spec = spec.with_overrides(
                    autoscale=AutoscalePolicy(
                        high_watermark=args.autoscale_high,
                        low_watermark=args.autoscale_low,
                        min_shards=args.shards,
                        max_shards=args.shards + 2,
                    )
                )
        elif args.topology == "diamond":
            spec = ScenarioSpec.diamond(
                n_input_streams=3 if streams is None else streams, **common
            )
        elif args.topology == "fanin":
            if streams is None:
                spec = ScenarioSpec.fanin(**common)
            elif streams >= 2 and streams % 2 == 0:
                spec = ScenarioSpec.fanin(streams_per_branch=streams // 2, **common)
            else:
                print(
                    f"invalid scenario: --streams {streams} cannot be split across the "
                    "fanin topology's 2 branches (use an even count >= 2)",
                    file=sys.stderr,
                )
                return 2
        else:
            spec = ScenarioSpec(
                chain_depth=args.depth,
                n_input_streams=3 if streams is None else streams,
                **common,
            )
        if args.failure in ("crash", "partition"):
            if args.failure_node:
                spec = spec.with_failure(
                    args.failure,
                    duration=args.failure_duration,
                    node=args.failure_node,
                    node_replica=args.failure_replica,
                )
            else:
                spec = spec.with_failure(
                    args.failure,
                    duration=args.failure_duration,
                    node_level=args.failure_level,
                    node_replica=args.failure_replica,
                )
        elif args.failure:
            spec = spec.with_failure(
                args.failure, duration=args.failure_duration, stream_index=args.failure_stream
            )
        if args.disconnect_at is not None:
            spec = spec.with_failure(
                "disconnect",
                start=args.disconnect_at,
                duration=args.failure_duration,
                stream_index=args.failure_stream,
            )
        if args.partition_at is not None:
            spec = spec.with_partition(
                node=args.failure_node,
                node_level=args.failure_level,
                replica=args.failure_replica,
                start=args.partition_at,
                duration=args.failure_duration,
            )
        if args.surge_at is not None:
            from .workloads.generators import step_rate

            spec = spec.with_overrides(
                rate_profile=step_rate(
                    args.surge_at, args.surge_factor, until=args.surge_until
                )
            )
        runtime = spec.run()
    except (ConfigurationError, SimulationError) as error:
        # ConfigurationError: the spec was invalid up front.  SimulationError:
        # the run refused a scheduled action mid-simulation (e.g. a rebalance
        # colliding with failure handling that validation could not foresee).
        print(f"invalid scenario: {error}", file=sys.stderr)
        return 2
    summary = runtime.client.summary()
    topology = runtime.topology
    print(f"scenario {spec.name!r}: topology={topology.name} nodes={','.join(topology.node_names)} "
          f"replicas={spec.replicas_per_node} rate={spec.aggregate_rate:g} tuples/s seed={spec.seed}")
    for record in runtime.injected:
        print(f"  failure: {record.failure_type.value} on {record.target} "
              f"at t={record.start:g}s for {record.duration:g}s")
    for record in runtime.deployment.rebalances:
        if record.get("noop"):
            print(f"  rebalance at t={record['applied_at']:g}s: no-op (loads within tolerance)")
        else:
            print(f"  rebalance at t={record['applied_at']:g}s: "
                  f"{len(record['moves'])} bucket move(s), imbalance "
                  f"{record['imbalance_before']:.3f} -> {record['imbalance_after']:.3f}, "
                  f"{record.get('state_tuples_shipped', 0)} join-state tuple(s) shipped")
        for abort in record.get("aborts", ()):
            print(f"    handoff aborted at t={abort['at']:g}s ({abort['reason']}); "
                  f"{abort['restored_tuples']} tuple(s) restored to the old owner")
    if runtime.autoscaler is not None:
        for action in runtime.autoscaler.actions:
            print(f"  autoscale at t={action['at']:g}s: {action['action']} -> "
                  f"{action['shards']} shard(s) "
                  f"(mean {action['rate_per_shard']:.1f} tuples/s per shard)")
        print(f"  autoscale: {len(runtime.autoscaler.actions)} action(s), "
              f"{len(runtime.autoscaler.skipped)} skipped tick(s), final "
              f"{runtime.deployment.active_shards()} shard(s)")
    print(f"Proc_new (max latency of new results): {summary['proc_new']:.3f} s")
    print(f"stable / tentative / undone:           {summary['total_stable']} / "
          f"{summary['total_tentative']} / {summary['total_undos']}")
    print(f"upstream switches:                     {summary['switches']}")
    consistent = runtime.eventually_consistent()
    print(f"simulator events fired:                {runtime.simulator.events_fired}")
    print(f"eventually consistent:                 {consistent}")
    return 0 if consistent else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run one scenario under cProfile and print the hottest call sites.

    Future perf work should start from this data, not from guesses: the
    hot-path overhaul (slotted tuples, batch operator loops) was driven by
    exactly this view of a shard(4) run.
    """
    import cProfile
    import pstats

    from .runtime import ScenarioSpec

    common = dict(
        name=f"profile-{args.scenario}",
        aggregate_rate=args.rate,
        warmup=args.duration,
        settle=0.0,
        seed=args.seed,
        replicas_per_node=args.replicas,
    )
    if args.scenario == "shard":
        spec = ScenarioSpec.sharded(shards=args.shards, **common)
    elif args.scenario == "recovery":
        # Crash one replica mid-run so the profile covers capture, transfer,
        # adoption, and the post-rejoin replay suffix -- the statexfer path.
        common.update(
            replicas_per_node=max(args.replicas, 2),
            warmup=5.0,
            settle=max(args.duration - 5.0, 10.0),
        )
        spec = ScenarioSpec.chain(
            args.depth, checkpoint_interval=2.0, **common
        ).with_failure(
            "crash",
            start=5.0,
            duration=max(args.duration * 0.4, 4.0),
            node_level=0,
            node_replica=0,
        )
    elif args.scenario == "diamond":
        spec = ScenarioSpec.diamond(**common)
    elif args.scenario == "fanin":
        spec = ScenarioSpec.fanin(**common)
    elif args.scenario == "aggregate":
        spec = ScenarioSpec.windowed_aggregate(
            window_size=args.window_size, window_slide=args.window_slide, **common
        )
    else:
        spec = ScenarioSpec(chain_depth=args.depth, **common)
    runtime = spec.build()
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        runtime.run()
    finally:
        profiler.disable()
    stable = sum(c.summary()["total_stable"] for c in runtime.clients)
    wall = runtime.wall_seconds
    print(
        f"profiled scenario {spec.name!r}: {spec.total_duration():g} simulated s, "
        f"{runtime.simulator.events_fired} events, {stable} stable tuples delivered"
    )
    if wall > 0:
        print(f"wall time {wall * 1000:.1f} ms -> {stable / wall:,.0f} stable tuples/s")
    print(f"top {args.top} by {args.sort}:")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


def _cmd_plan_delays(args: argparse.Namespace) -> int:
    if args.topology == "diamond":
        topology = Topology.diamond()
    elif args.topology == "fanin":
        topology = Topology.fanin()
    elif args.topology == "shard":
        topology = Topology.shard(args.shards)
    else:
        topology = Topology.chain(args.depth)
    planner = DelayPlanner.for_topology(
        topology, total_budget=args.budget, queuing_allowance=args.queuing_allowance
    )
    strategy = DelayAssignment(args.strategy)
    plan = planner.plan(strategy)
    print(f"topology: {topology.name} (longest path: {topology.depth()} node(s))")
    print(f"strategy: {plan.strategy.value}")
    print(f"end-to-end budget X: {plan.total_budget:g} s")
    print(f"masked failure duration: {plan.masked_failure:g} s")
    for node, delay in plan.per_node.items():
        print(f"  {node}: D = {delay:g} s")
    for diagnostic in planner.diagnose(plan.per_node):
        status = "ok" if diagnostic.within_budget else "OVER BUDGET"
        print(f"path {' -> '.join(diagnostic.path)}: accumulated "
              f"{diagnostic.accumulated_delay:g} s [{status}]")
    for note in plan.notes:
        print(f"note: {note}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of DPC fault-tolerance in the Borealis stream processing engine",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the available experiments").set_defaults(func=_cmd_list)
    sub.add_parser("claims", help="print the paper claims behind each experiment").set_defaults(
        func=_cmd_claims
    )

    run = sub.add_parser("run", help="run one experiment and print its tables")
    run.add_argument("experiment", help="experiment id (see 'list')")
    run.add_argument("--scale", choices=("quick", "full"), default="quick",
                     help="quick runs a reduced sweep; full matches the paper's parameter grid")
    run.add_argument("--format", choices=sorted(_RENDERERS), default="text")
    run.add_argument("--output", help="write the rendered tables to this file instead of stdout")
    run.set_defaults(func=_cmd_run)

    report = sub.add_parser(
        "report", help="run reduced sweeps and write a paper-vs-measured Markdown report"
    )
    report.add_argument("--output", default="report.md", help="path of the Markdown report")
    report.add_argument("--rate", type=float, default=120.0,
                        help="aggregate tuple rate used by the reduced sweeps")
    report.set_defaults(func=_cmd_report)

    scenario = sub.add_parser(
        "scenario",
        help="describe and run one custom scenario (the ScenarioSpec API from the shell)",
        description="Build a ScenarioSpec from the flags below, compile it into a "
        "SimulationRuntime, run it, and print the client's view of the run.",
    )
    scenario.add_argument("--name", default="cli-scenario", help="label for the scenario")
    scenario.add_argument("--topology", choices=("chain", "diamond", "fanin", "shard"),
                          default="chain",
                          help="deployment shape; chain uses --depth, shard uses --shards, "
                               "other DAG shapes are preset")
    scenario.add_argument("--depth", type=int, default=1, help="number of chained nodes")
    scenario.add_argument("--shards", type=int, default=4,
                          help="shard count of the sharded topology (crash one with "
                               "--failure crash --failure-node shard1)")
    scenario.add_argument("--skew", type=float, default=None,
                          help="zipfian hot-key workload skew for the sharded topology "
                               "(shards on the skewed 'key' attribute)")
    scenario.add_argument("--rebalance-at", type=float, default=None,
                          help="apply a load-driven live rebalance (bucket handoff) "
                               "at this simulated time (sharded topology only)")
    scenario.add_argument("--rebalance-tolerance", type=float, default=None,
                          help="peak-to-mean shard-load tolerance of the mid-run "
                               "rebalance (default 0.10; requires --rebalance-at)")
    scenario.add_argument("--autoscale", action="store_true",
                          help="arm the elastic autoscaler loop on the sharded "
                               "topology (scale-out past the high watermark, "
                               "scale-in below the low one)")
    scenario.add_argument("--autoscale-high", type=float, default=200.0,
                          help="autoscaler high watermark in per-shard processed "
                               "tuples per simulated second (default 200)")
    scenario.add_argument("--autoscale-low", type=float, default=140.0,
                          help="autoscaler low watermark in per-shard processed "
                               "tuples per simulated second (default 140)")
    scenario.add_argument("--surge-at", type=float, default=None,
                          help="step every source to --surge-factor times its base "
                               "rate at this simulated time")
    scenario.add_argument("--surge-until", type=float, default=None,
                          help="step the rate back down at this simulated time "
                               "(requires --surge-at)")
    scenario.add_argument("--surge-factor", type=float, default=2.0,
                          help="rate multiplier of the surge window (default 2.0)")
    scenario.add_argument("--replicas", type=int, default=2, help="replicas per node")
    scenario.add_argument("--streams", type=int, default=None,
                          help="number of input streams (default 3; fanin splits them "
                               "across its 2 branches)")
    scenario.add_argument("--rate", type=float, default=150.0,
                          help="aggregate source rate in tuples per simulated second")
    scenario.add_argument("--warmup", type=float, default=5.0, help="seconds before the failure")
    scenario.add_argument("--settle", type=float, default=30.0, help="seconds after the failure")
    scenario.add_argument("--failure", choices=("disconnect", "silence", "crash", "partition"),
                          help="failure to inject at the end of the warmup (omit for none)")
    scenario.add_argument("--disconnect-at", type=float, default=None,
                          help="disconnect the --failure-stream source at this time for "
                               "--failure-duration seconds (both backends; shorthand for "
                               "--failure disconnect with an explicit start)")
    scenario.add_argument("--partition-at", type=float, default=None,
                          help="partition the --failure-node/--failure-level replicas "
                               "(--failure-replica, -1 for all) at this time for "
                               "--failure-duration seconds (both backends)")
    scenario.add_argument("--failure-duration", type=float, default=10.0,
                          help="failure length in simulated seconds")
    scenario.add_argument("--failure-stream", type=int, default=0,
                          help="input stream hit by a disconnect/silence failure")
    scenario.add_argument("--failure-node", default=None,
                          help="logical node name hit by a crash failure (DAG addressing)")
    scenario.add_argument("--failure-level", type=int, default=0,
                          help="chain level of the node hit by a crash failure")
    scenario.add_argument("--failure-replica", type=int, default=0,
                          help="replica index of the node hit by a crash failure")
    scenario.add_argument("--checkpoint-interval", type=float, default=None,
                          help="recovery-checkpoint capture cadence in simulated seconds "
                               "(default: the DPCConfig cadence; <= 0 disables checkpoints "
                               "and forces full-replay crash recovery)")
    scenario.add_argument("--seed", type=int, default=None,
                          help="determinism seed (same seed => identical run)")
    scenario.add_argument("--backend", choices=("sim", "live"), default="sim",
                          help="sim runs the deterministic simulator; live runs the same "
                               "compiled placement as real processes over Unix sockets "
                               "in wall-clock time (crash failures only)")
    scenario.set_defaults(func=_cmd_scenario)

    profile = sub.add_parser(
        "profile",
        help="run one scenario under cProfile and print the hottest call sites",
        description="Run a failure-free scenario of the given shape under "
        "cProfile and print the top-N hot spots, so perf PRs start from data "
        "instead of guesses.",
    )
    profile.add_argument("scenario",
                         choices=("chain", "diamond", "fanin", "shard", "aggregate", "recovery"),
                         help="deployment shape to profile ('recovery' crashes one replica "
                              "mid-run and profiles the checkpoint-shipped rejoin)")
    profile.add_argument("--depth", type=int, default=2, help="chain depth (chain only)")
    profile.add_argument("--shards", type=int, default=4, help="shard count (shard only)")
    profile.add_argument("--window-size", type=float, default=1.0,
                         help="window size in seconds (aggregate only)")
    profile.add_argument("--window-slide", type=float, default=0.25,
                         help="window slide in seconds (aggregate only)")
    profile.add_argument("--replicas", type=int, default=1,
                         help="replicas per node (1: profile the data plane, "
                              "not the replication factor)")
    profile.add_argument("--rate", type=float, default=1200.0,
                         help="aggregate source rate in tuples per simulated second")
    profile.add_argument("--duration", type=float, default=15.0,
                         help="simulated seconds to run")
    profile.add_argument("--seed", type=int, default=1, help="determinism seed")
    profile.add_argument("--top", type=int, default=25,
                         help="number of entries to print")
    profile.add_argument("--sort", choices=("cumulative", "tottime", "ncalls"),
                         default="cumulative", help="pstats sort order")
    profile.set_defaults(func=_cmd_profile)

    plan = sub.add_parser("plan-delays", help="plan per-node delay budgets for a deployment")
    plan.add_argument("--topology", choices=("chain", "diamond", "fanin", "shard"),
                      default="chain", help="deployment shape to plan over")
    plan.add_argument("--depth", type=int, default=4, help="number of nodes in the chain")
    plan.add_argument("--shards", type=int, default=4,
                      help="shard count of the sharded topology")
    plan.add_argument("--budget", type=float, default=8.0, help="end-to-end bound X in seconds")
    plan.add_argument("--queuing-allowance", type=float, default=1.5,
                      help="allowance subtracted by the FULL strategy")
    plan.add_argument("--strategy", choices=[s.value for s in DelayAssignment], default="full")
    plan.set_defaults(func=_cmd_plan_delays)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro`` (and by the CLI tests)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
