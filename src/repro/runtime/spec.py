"""Declarative scenario descriptions.

A :class:`ScenarioSpec` is the single way to describe a simulated DPC
deployment plus the experiment run on top of it: the topology (chain depth,
replication factor, sources and their aggregate rate), the DPC and simulation
configuration, the failure schedule, the run timing, and the determinism seed.
Compiling a spec (:meth:`ScenarioSpec.build`) produces a
:class:`~repro.runtime.runtime.SimulationRuntime` that owns the simulator,
cluster, failure injection, and metrics for one run.

Experiments, benchmarks, the CLI, and the examples all construct scenarios
through this layer instead of hand-assembling clusters (see DESIGN.md,
"Runtime layer").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Sequence

from ..config import DPCConfig, SimulationConfig
from ..deploy.autoscaler import AutoscalePolicy
from ..errors import ConfigurationError
from ..topology import NodeSpec, Topology, as_topology
from ..workloads.generators import PayloadFactory, default_payload_factory
from ..workloads.scenarios import FailureSpec, Scenario

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..spe.query_diagram import QueryDiagram
    from .runtime import SimulationRuntime

#: Builds a first-node fragment: (node_name, input_streams, output_stream).
DiagramFactory = Callable[[str, Sequence[str], str], "QueryDiagram"]


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, declarative scenario.

    The defaults reproduce the paper's workhorse deployment: one processing
    node replicated on two simulated machines, fed by three sources at an
    aggregate 150 tuples/s, with no failures scheduled.

    The deployment shape comes from ``topology`` -- a
    :class:`~repro.topology.Topology` (or a sequence of
    :class:`~repro.topology.NodeSpec`) describing an arbitrary replicated
    DAG.  When ``topology`` is ``None``, the legacy ``chain_depth`` /
    ``n_input_streams`` sugar compiles to an equivalent path topology.
    """

    name: str = "scenario"
    # --- topology -------------------------------------------------------------
    #: Deployment DAG; None compiles chain_depth into a path graph.
    topology: "Topology | tuple[NodeSpec, ...] | None" = None
    chain_depth: int = 1
    replicas_per_node: int = 2
    #: Source-stream count of the chain sugar; ignored when ``topology`` is
    #: given (the topology's own source streams are used instead).
    n_input_streams: int = 3
    aggregate_rate: float = 150.0
    join_state_size: int | None = 100
    #: Optional custom first-node fragment (e.g. the plain-Union baseline of
    #: the overhead experiments); downstream nodes always run relay fragments.
    diagram_factory: DiagramFactory | None = None
    payload_factory: PayloadFactory = default_payload_factory
    #: Optional rate profile (stime -> multiplier of the base rate) shared by
    #: every source -- see :func:`~repro.workloads.generators.bursty_rate` and
    #: :func:`~repro.workloads.generators.diurnal_rate`.  Pure functions of
    #: the emission stime, so sources stay mutually aligned.
    rate_profile: Callable[[float], float] | None = None
    # --- configuration --------------------------------------------------------
    config: DPCConfig | None = None
    sim_config: SimulationConfig | None = None
    #: Delay budget D assigned to every node; None derives it from the config.
    per_node_delay: float | None = None
    #: Recovery-checkpoint cadence override: the sentinel ``"inherit"`` keeps
    #: whatever ``config`` (or the default DPCConfig) says, ``None`` disables
    #: periodic capture (forcing full-replay recovery), and a float sets the
    #: cadence in simulated seconds.  A spec-level knob so recovery-mode
    #: comparisons don't have to rebuild the whole DPCConfig.
    checkpoint_interval: float | None | str = "inherit"
    # --- routing / reconfiguration --------------------------------------------
    #: Producer-side evaluation of ingress-select predicates (filtered
    #: subscriptions).  False restores the legacy multicast + ingress-Filter
    #: data path (kept for comparison benchmarks).
    filtered_routing: bool = True
    #: Apply a load-driven rebalance to the live deployment at this simulated
    #: time: observed bucket loads -> ShardPlanner.rebalance -> Deployment.apply.
    #: Requires a sharded topology and filtered routing.
    rebalance_at: float | None = None
    #: Peak-to-mean tolerance handed to the planner by the mid-run rebalance.
    rebalance_tolerance: float = 0.10
    #: Watermark policy of the elastic autoscaler loop (None disables it).
    #: The runtime arms an :class:`~repro.deploy.Autoscaler` on the deployment,
    #: which drives ``Deployment.scale_out`` / ``scale_in`` from per-shard
    #: processing rates.  Requires a sharded topology with filtered routing,
    #: and switches the DPC config to priced (non-instantaneous, abortable)
    #: bucket handoffs.
    autoscale: AutoscalePolicy | None = None
    #: Zipfian skew of the hot-key workload (set by ``sharded(skew=...)``).
    #: Resolved into a payload factory at build time so a later
    #: ``with_overrides(seed=...)`` re-seeds the key sequence too.
    hot_key_skew: float | None = None
    hot_key_count: int = 64
    # --- schedule -------------------------------------------------------------
    warmup: float = 5.0
    settle: float = 30.0
    failures: tuple[FailureSpec, ...] = ()
    #: Explicit total run length; None derives it from warmup/failures/settle.
    duration: float | None = None
    # --- determinism / measurement -------------------------------------------
    #: Seeds every RNG in the deployment; same spec + same seed => identical
    #: summaries, different seeds => different (statistically equivalent) runs.
    seed: int | None = None

    # ------------------------------------------------------------------ validation
    def validate(self) -> None:
        if self.chain_depth < 1:
            raise ConfigurationError("chain_depth must be >= 1")
        if self.replicas_per_node < 1:
            raise ConfigurationError("replicas_per_node must be >= 1")
        if self.n_input_streams < 1:
            raise ConfigurationError("n_input_streams must be >= 1")
        if self.aggregate_rate <= 0:
            raise ConfigurationError("aggregate_rate must be positive")
        if self.warmup < 0 or self.settle < 0:
            raise ConfigurationError("warmup and settle must be non-negative")
        if self.duration is not None and self.duration <= 0:
            raise ConfigurationError("duration must be positive when given")
        topology = self.resolved_topology()  # validates the graph itself
        n_sources = len(topology.source_streams)
        if self.rebalance_at is not None:
            if topology.shard_assignment is None:
                raise ConfigurationError(
                    "rebalance_at requires a sharded topology (Topology.shard); "
                    f"topology {topology.name!r} has no shard assignment"
                )
            if not self.filtered_routing:
                raise ConfigurationError(
                    "rebalance_at requires filtered_routing=True (live rebalance "
                    "rides on producer-side subscription filters)"
                )
            if self.rebalance_at <= 0:
                raise ConfigurationError("rebalance_at must be positive")
            if self.rebalance_at >= self.total_duration():
                raise ConfigurationError(
                    f"rebalance_at={self.rebalance_at:g}s lies beyond the run "
                    f"({self.total_duration():g}s); nothing would be rebalanced"
                )
            # The bucket handoff needs drain slack after the cut (at most one
            # bucket to reach the boundary, one bucket plus transport slack to
            # drain); a rebalance scheduled closer to the end of the run than
            # that would switch routing but never ship the join state.
            config = self.dpc_config()
            sim = self.simulation_config()
            handoff_slack = (
                2 * config.bucket_size
                + 2 * sim.batch_interval
                + 2 * sim.network_latency
            )
            if self.rebalance_at + handoff_slack >= self.total_duration():
                raise ConfigurationError(
                    f"rebalance_at={self.rebalance_at:g}s leaves less than the "
                    f"~{handoff_slack:g}s bucket-handoff drain slack before the "
                    f"run ends ({self.total_duration():g}s); the state handoff "
                    f"would never complete"
                )
            for failure in self._resolved_failures():
                # The live rebalance quiesces first and its handoff assumes
                # the drain window stays failure-free, so reject schedules
                # whose failure window overlaps [rebalance_at, rebalance_at +
                # handoff_slack] up front instead of dying (or endlessly
                # retrying the handoff) mid-simulation.
                if (
                    failure.start < self.rebalance_at + handoff_slack
                    and self.rebalance_at < failure.start + failure.duration
                ):
                    raise ConfigurationError(
                        f"rebalance_at={self.rebalance_at:g}s (plus "
                        f"~{handoff_slack:g}s of handoff drain) overlaps the "
                        f"{failure.kind!r} failure window "
                        f"[{failure.start:g}s, {failure.start + failure.duration:g}s); "
                        f"rebalance before the failure or after it heals"
                    )
        if self.rebalance_tolerance < 0:
            raise ConfigurationError("rebalance_tolerance cannot be negative")
        if self.autoscale is not None:
            self.autoscale.validate()
            if topology.shard_assignment is None:
                raise ConfigurationError(
                    "autoscale requires a sharded topology (Topology.shard); "
                    f"topology {topology.name!r} has no shard assignment"
                )
            if not self.filtered_routing:
                raise ConfigurationError(
                    "autoscale requires filtered_routing=True (elastic scale-out "
                    "rides on producer-side subscription filters)"
                )
            initial = topology.shard_assignment.spec.shards
            if initial < self.autoscale.min_shards:
                raise ConfigurationError(
                    f"autoscale min_shards={self.autoscale.min_shards} exceeds the "
                    f"deployed shard count ({initial}); the loop could never "
                    f"satisfy its own floor"
                )
        if self.hot_key_skew is not None and self.hot_key_skew <= 0:
            raise ConfigurationError("hot_key_skew must be positive when given")
        if self.hot_key_count < 1:
            raise ConfigurationError("hot_key_count must be >= 1")
        for spec in self._resolved_failures():
            if spec.start < 0 or spec.duration <= 0:
                raise ConfigurationError(
                    f"failure {spec.kind!r} must have start >= 0 and duration > 0"
                )
            if spec.kind in ("disconnect", "silence"):
                if not 0 <= spec.stream_index < n_sources:
                    raise ConfigurationError(
                        f"failure {spec.kind!r} targets stream {spec.stream_index}, but the "
                        f"scenario has {n_sources} input streams"
                    )
            elif spec.kind in ("crash", "partition"):
                if spec.node is not None:
                    target = spec.node
                else:
                    order = topology.node_names
                    if not 0 <= spec.node_level < len(order):
                        raise ConfigurationError(
                            f"{spec.kind} targets node level {spec.node_level}, but the "
                            f"topology has {len(order)} node(s)"
                        )
                    target = order[spec.node_level]
                topology.validate_failure_target(
                    target, spec.node_replica, self.replicas_per_node
                )
            else:
                raise ConfigurationError(f"unknown failure kind {spec.kind!r}")
            if self.duration is not None and spec.start + spec.duration > self.duration + 1e-9:
                # A failure that outlives an explicitly truncated run would end
                # with the deployment mid-failure: the ledger never reconciles
                # and every consistency assertion is vacuous.  Reject it at
                # build time instead of producing a silently inconclusive run.
                raise ConfigurationError(
                    f"failure {spec.kind!r} runs until t={spec.start + spec.duration:g}s "
                    f"but the scenario duration is only {self.duration:g}s"
                )
        if isinstance(self.checkpoint_interval, str) and self.checkpoint_interval != "inherit":
            raise ConfigurationError(
                f"checkpoint_interval must be a number, None, or 'inherit', "
                f"got {self.checkpoint_interval!r}"
            )
        self.dpc_config().validate()
        (self.sim_config or SimulationConfig()).validate()

    # ------------------------------------------------------------------ derived values
    def resolved_topology(self) -> Topology:
        """The deployment DAG this spec describes (chain sugar compiled)."""
        return as_topology(
            self.topology,
            chain_depth=self.chain_depth,
            n_input_streams=self.n_input_streams,
        )

    def resolved_payload_factory(self) -> PayloadFactory:
        """The workload factory, with the hot-key knob bound to the final seed."""
        if self.hot_key_skew is not None:
            from ..workloads.generators import hot_key_payload_factory

            return hot_key_payload_factory(
                skew=self.hot_key_skew, keys=self.hot_key_count, seed=self.seed or 0
            )
        return self.payload_factory

    def dpc_config(self) -> DPCConfig:
        config = self.config or DPCConfig()
        if self.checkpoint_interval != "inherit":
            config = config.with_(checkpoint_interval=self.checkpoint_interval)
        if self.autoscale is not None and not config.handoff_pricing:
            # Elastic runs always price their bucket handoffs: the transfer
            # takes simulated time and a crash mid-transfer aborts cleanly.
            config = config.with_(handoff_pricing=True)
        return config

    def simulation_config(self) -> SimulationConfig:
        return self.sim_config or SimulationConfig()

    def total_duration(self) -> float:
        """Run length: explicit ``duration`` or warmup + failures + settle."""
        if self.duration is not None:
            return self.duration
        return self.as_scenario().total_duration()

    def _resolved_failures(self) -> tuple[FailureSpec, ...]:
        """Failures with ``start=None`` resolved to the *current* warmup.

        Resolution is deferred to use time so that
        ``spec.with_failure("disconnect").with_overrides(warmup=15.0)``
        injects the failure at the overridden warmup, not at the warmup in
        effect when :meth:`with_failure` was called.
        """
        return tuple(
            replace(spec, start=self.warmup) if spec.start is None else spec
            for spec in self.failures
        )

    def as_scenario(self) -> Scenario:
        """The imperative failure schedule this spec describes."""
        return Scenario(
            warmup=self.warmup, settle=self.settle, failures=list(self._resolved_failures())
        )

    # ------------------------------------------------------------------ derivation helpers
    def with_failure(
        self,
        kind: str,
        start: float | None = None,
        duration: float = 10.0,
        stream_index: int = 0,
        node: str | None = None,
        node_level: int = 0,
        node_replica: int = 0,
    ) -> "ScenarioSpec":
        """A copy of this spec with one more scheduled failure.

        ``start=None`` means "at the end of the warmup" and is resolved
        lazily, so a later ``with_overrides(warmup=...)`` moves the failure
        with it.  A crash targets a logical node by ``node`` name (DAG
        topologies) or ``node_level`` (chain shim).
        """
        spec = FailureSpec(
            kind=kind,
            start=start,
            duration=duration,
            stream_index=stream_index,
            node=node,
            node_level=node_level,
            node_replica=node_replica,
        )
        return replace(self, failures=self.failures + (spec,))

    def with_branch_crash(
        self, node: str, duration: float = 10.0, start: float | None = None
    ) -> "ScenarioSpec":
        """Crash *every* replica of ``node`` for ``duration`` seconds.

        This is the branch-kill schedule of the DAG experiments: with all
        replicas of one logical node down, downstream consumers cannot mask
        the failure by switching and must fall back to tentative processing.
        The replica set is resolved at injection time (``node_replica = -1``),
        so a later ``with_overrides(replicas_per_node=...)`` still kills the
        whole branch.
        """
        return self.with_failure(
            "crash", start=start, duration=duration, node=node, node_replica=-1
        )

    def with_partition(
        self,
        node: str | None = None,
        replica: int = 0,
        duration: float = 10.0,
        start: float | None = None,
        node_level: int = 0,
    ) -> "ScenarioSpec":
        """Isolate one replica of ``node`` from the network for ``duration``.

        A network split, not a crash: the replica keeps processing but
        nothing crosses the partition in either direction until it heals
        (``replica=-1`` isolates every replica).  Both backends honour it --
        the simulator through ``FailureInjector.isolate_endpoint``, the live
        backend through the compiled :class:`~repro.live.faults.FaultPlan`.
        """
        return self.with_failure(
            "partition",
            start=start,
            duration=duration,
            node=node,
            node_level=node_level,
            node_replica=replica,
        )

    def with_shard_kill(
        self, shard: int | str = 1, duration: float = 10.0, start: float | None = None
    ) -> "ScenarioSpec":
        """Crash every replica of one shard of a sharded deployment.

        ``shard`` is the 1-based shard number (or the full node name, e.g.
        ``"shard2"``).  With both replicas of a shard down, the fan-in merge
        cannot mask the failure by switching: the dead shard's key-hash slice
        goes missing, the merge suspends for its delay budget and then
        processes the surviving shards' slices tentatively, and after the
        shard recovers reconciliation restores the gap-free ledger.
        """
        node = shard if isinstance(shard, str) else f"shard{shard}"
        return self.with_branch_crash(node, duration=duration, start=start)

    def with_overrides(self, **changes) -> "ScenarioSpec":
        """A copy of this spec with ``changes`` applied (dataclass replace)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ factories
    @classmethod
    def single_node(cls, replicated: bool = True, **changes) -> "ScenarioSpec":
        """The Figure 10/12 deployment: one node, optionally replicated."""
        return cls(
            name=changes.pop("name", "single-node"),
            chain_depth=1,
            replicas_per_node=2 if replicated else 1,
            **changes,
        )

    @classmethod
    def chain(cls, depth: int, **changes) -> "ScenarioSpec":
        """The Figure 14 deployment: a chain of replicated nodes."""
        return cls(name=changes.pop("name", f"chain-{depth}"), chain_depth=depth, **changes)

    @classmethod
    def diamond(cls, n_input_streams: int = 3, **changes) -> "ScenarioSpec":
        """Reconvergent DAG: ingest fans out to two partitioned branches that re-merge."""
        return cls(
            name=changes.pop("name", "diamond"),
            topology=Topology.diamond(n_input_streams=n_input_streams),
            n_input_streams=n_input_streams,
            **changes,
        )

    @classmethod
    def sharded(
        cls,
        shards: int = 4,
        key: str = "seq",
        n_input_streams: int = 3,
        buckets: int | None = None,
        skew: float | None = None,
        hot_keys: int = 64,
        **changes,
    ) -> "ScenarioSpec":
        """Key-hash sharded scale-out: split -> N shard fragments -> fan-in merge.

        The shard predicates come from a :class:`~repro.sharding.ShardPlanner`
        assignment (disjoint and exhaustive key-hash slices); pass a
        pre-built ``topology`` via :meth:`with_overrides` to deploy a
        rebalanced assignment.

        ``skew`` switches the workload to the zipfian hot-key generator
        (:func:`~repro.workloads.generators.hot_key_sequence`): tuples carry a
        skewed integer ``key`` attribute -- constant across each stime tie
        group -- and the deployment shards on it (``tie_group=1``), so
        per-bucket loads genuinely skew and a mid-run ``rebalance_at`` has
        real bucket moves to apply.  ``hot_keys`` sizes the key universe.
        """
        from ..sharding import DEFAULT_BUCKETS

        shard_key = key
        tie_group = None
        if skew is not None:
            shard_key = "key" if key == "seq" else key
            tie_group = 1
            if "payload_factory" not in changes:
                # Deferred: resolved_payload_factory() derives the generator
                # from the spec's *final* seed, so with_overrides(seed=...)
                # re-seeds the key sequence along with everything else.
                changes.setdefault("hot_key_skew", skew)
                changes.setdefault("hot_key_count", hot_keys)
        return cls(
            name=changes.pop("name", f"shard-{shards}"),
            topology=Topology.shard(
                shards,
                key=shard_key,
                n_input_streams=n_input_streams,
                buckets=DEFAULT_BUCKETS if buckets is None else buckets,
                tie_group=tie_group,
            ),
            n_input_streams=n_input_streams,
            **changes,
        )

    @classmethod
    def windowed_aggregate(
        cls,
        window_size: float = 1.0,
        window_slide: float | None = None,
        n_input_streams: int = 3,
        incremental: bool | None = None,
        **changes,
    ) -> "ScenarioSpec":
        """Windowed-aggregation exerciser: sliding rollup over the value stream.

        A single replicated node runs
        :func:`~repro.workloads.queries.windowed_rollup_diagram`
        (SUnion -> sliding Aggregate -> seq-stamping Map -> SOutput), so the
        pane-based aggregation path -- including its checkpoint/restore during
        failures -- flows through the standard harness and the client-side
        consistency ledger.  ``incremental=False`` pins the naive reference
        path for comparisons.
        """
        from ..workloads.queries import windowed_rollup_factory

        return cls(
            name=changes.pop("name", "windowed-aggregate"),
            chain_depth=1,
            n_input_streams=n_input_streams,
            diagram_factory=windowed_rollup_factory(
                size=window_size, slide=window_slide, incremental=incremental
            ),
            **changes,
        )

    @classmethod
    def fanin(cls, branches: int = 2, streams_per_branch: int = 2, **changes) -> "ScenarioSpec":
        """Cross-node fan-in: independent ingest branches merged by one node."""
        return cls(
            name=changes.pop("name", "fanin"),
            topology=Topology.fanin(branches=branches, streams_per_branch=streams_per_branch),
            n_input_streams=branches * streams_per_branch,
            **changes,
        )

    # ------------------------------------------------------------------ compilation
    def build(self) -> "SimulationRuntime":
        """Compile this spec into a runnable :class:`SimulationRuntime`."""
        from .runtime import SimulationRuntime

        return SimulationRuntime(self)

    def run(self) -> "SimulationRuntime":
        """Compile and run to completion (the one-liner most callers want)."""
        return self.build().run()
