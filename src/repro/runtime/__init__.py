"""Scenario layer: declarative specs compiled into runnable simulations.

This package is the single entry point for describing and running a DPC
scenario (see DESIGN.md, "Runtime layer"):

* :class:`ScenarioSpec` -- a declarative description of topology, replicas,
  sources, DPC policy, failure schedule, seed, and run timing;
* :class:`SimulationRuntime` -- the compiled form, owning the simulator,
  cluster, failure injection, and metrics of one run;
* :func:`run_scenario` -- compile-and-run convenience.

Every experiment module, benchmark, example, and CLI command builds its
deployments through this layer rather than assembling clusters by hand.
"""

from ..sharding import RebalancePlan, ShardAssignment, ShardPlanner, ShardSpec
from ..topology import NodeSpec, Topology, modulo_partition
from ..workloads.scenarios import FailureSpec
from .runtime import SimulationRuntime, client_is_eventually_consistent, run_scenario
from .spec import ScenarioSpec

__all__ = [
    "FailureSpec",
    "NodeSpec",
    "RebalancePlan",
    "ScenarioSpec",
    "ShardAssignment",
    "ShardPlanner",
    "ShardSpec",
    "SimulationRuntime",
    "Topology",
    "client_is_eventually_consistent",
    "modulo_partition",
    "run_scenario",
]
