"""Compiled scenario runtimes.

A :class:`SimulationRuntime` is the execution half of the runtime layer: it
owns everything one scenario run needs -- the deterministic simulator, the
network, the wired cluster (sources, replicated processing nodes, client),
the failure injector with the scenario's schedule, and the metrics the client
collects -- and exposes the handful of operations experiments perform (run,
inspect, summarize).

Typical use::

    from repro.runtime import ScenarioSpec

    spec = ScenarioSpec.single_node(aggregate_rate=150.0).with_failure(
        "disconnect", duration=10.0
    )
    runtime = spec.run()
    print(runtime.client.proc_new, runtime.eventually_consistent())
"""

from __future__ import annotations

import time

from ..deploy import Autoscaler, Deployment, compile as compile_topology
from ..errors import SimulationError
from ..metrics.consistency import duplicate_stable_values
from ..sim.client import ClientApplication
from ..sim.cluster import Cluster
from ..sim.event_loop import Simulator
from ..sim.events import EventKind
from ..sim.failures import FailureInjector, FailureRecord
from ..sim.network import Network
from ..sim.sources import DataSource
from .spec import ScenarioSpec


def client_is_eventually_consistent(client: ClientApplication) -> bool:
    """Final stable output must be gap-free, duplicate-free, and in order."""
    sequence = client.stable_sequence
    if not sequence:
        return False
    if sequence != sorted(sequence):
        return False
    ledger = client.metrics.consistency.ledger
    if duplicate_stable_values(ledger, client.metrics.sequence_attribute):
        return False
    missing = set(range(min(sequence), max(sequence) + 1)) - set(sequence)
    return not missing


class SimulationRuntime:
    """One compiled, runnable scenario (see :class:`ScenarioSpec`)."""

    def __init__(self, spec: ScenarioSpec) -> None:
        spec.validate()
        self.spec = spec
        self.topology = spec.resolved_topology()
        # Compile -> place -> deploy: the runtime owns the Deployment handle;
        # self.cluster stays as the familiar accessor for everything wired.
        self.placement = compile_topology(
            self.topology,
            replicas_per_node=spec.replicas_per_node,
            filtered_routing=spec.filtered_routing,
        )
        self.deployment: Deployment = self.placement.deploy(
            spec.dpc_config(),
            spec.sim_config,
            aggregate_rate=spec.aggregate_rate,
            payload_factory=spec.resolved_payload_factory(),
            join_state_size=spec.join_state_size,
            per_node_delay=spec.per_node_delay,
            diagram_factory=spec.diagram_factory,
            seed=spec.seed,
            rate_profile=spec.rate_profile,
        )
        self.cluster: Cluster = self.deployment.cluster
        self._scenario = spec.as_scenario()
        #: The elastic policy loop (armed at start when ``spec.autoscale``).
        self.autoscaler: Autoscaler | None = None
        self.injected: list[FailureRecord] = []
        self._started = False
        self._completed = False
        #: Host seconds spent inside :meth:`run` / :meth:`run_for` (wall
        #: clock, cumulative).  Reported by the experiment harness as
        #: ``extra["wall_ms"]`` but deliberately *not* part of
        #: :meth:`summary`, which must stay byte-identical across hosts.
        self.wall_seconds = 0.0

    # ------------------------------------------------------------------ owned components
    @property
    def simulator(self) -> Simulator:
        return self.cluster.simulator

    @property
    def network(self) -> Network:
        return self.cluster.network

    @property
    def failures(self) -> FailureInjector:
        return self.cluster.failures

    @property
    def client(self) -> ClientApplication:
        return self.cluster.client

    @property
    def sources(self) -> list[DataSource]:
        return self.cluster.sources

    @property
    def clients(self) -> list[ClientApplication]:
        return self.cluster.clients

    def nodes(self):
        return self.cluster.all_nodes()

    def node(self, key: str | int, replica: int = 0):
        """Replica of a logical node, by name (DAGs) or level (chain shim)."""
        return self.cluster.node(key, replica)

    def node_group(self, name: str):
        """All replicas of logical node ``name``."""
        return self.cluster.node_group(name)

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> "SimulationRuntime":
        """Schedule the failure plan and start every component (idempotent)."""
        if self._started:
            return self
        self._started = True
        self.injected = self._scenario.inject(self.cluster)
        if self.spec.rebalance_at is not None:
            self.simulator.schedule_at(
                self.spec.rebalance_at,
                lambda now: self.deployment.rebalance(
                    tolerance=self.spec.rebalance_tolerance
                ),
                kind=EventKind.INTERNAL,
                description=f"scheduled rebalance (tolerance {self.spec.rebalance_tolerance:g})",
            )
        if self.spec.autoscale is not None:
            self.autoscaler = Autoscaler(self.deployment, self.spec.autoscale)
            self.autoscaler.start()
        self.cluster.start()
        return self

    def run(self, duration: float | None = None) -> "SimulationRuntime":
        """Run the scenario to completion (or for an explicit ``duration``)."""
        if self._completed and duration is None:
            raise SimulationError(
                f"scenario {self.spec.name!r} already ran; build a new runtime to rerun it"
            )
        self.start()
        started = time.perf_counter()
        try:
            self.cluster.run_for(self.spec.total_duration() if duration is None else duration)
        finally:
            self.wall_seconds += time.perf_counter() - started
        if duration is None:
            self._completed = True
        return self

    def run_for(self, duration: float) -> "SimulationRuntime":
        """Advance the (started) simulation by ``duration`` seconds."""
        return self.run(duration=duration)

    # ------------------------------------------------------------------ results
    def eventually_consistent(self) -> bool:
        """True when *every* sink's stable ledger is gap-free, duplicate-free, and ordered.

        Single-sink deployments behave as before; a fan-out deployment is
        only consistent when each of its sinks is (a second sink silently
        dropping or reordering tuples must not hide behind the first).
        """
        return all(client_is_eventually_consistent(c) for c in self.clients)

    def sink_summaries(self) -> dict[str, dict]:
        """Per-sink client summaries plus each sink's own consistency verdict."""
        summaries: dict[str, dict] = {}
        for client in self.clients:
            summary = client.summary()
            summary["eventually_consistent"] = client_is_eventually_consistent(client)
            summaries[client.name] = summary
        return summaries

    def summary(self) -> dict:
        """Everything the run measured, keyed the way the experiments expect."""
        data = self.cluster.summary()
        data["scenario"] = self.spec.name
        data["seed"] = self.spec.seed
        data["topology"] = {
            "name": self.topology.name,
            "nodes": self.topology.node_names,
            "sources": self.topology.source_streams,
        }
        data["events_fired"] = self.simulator.events_fired
        verdicts = {
            client.name: client_is_eventually_consistent(client) for client in self.clients
        }
        data["eventually_consistent"] = all(verdicts.values())
        data["sinks_consistent"] = verdicts
        data["failures"] = [
            {
                "type": record.failure_type.value,
                "target": record.target,
                "start": record.start,
                "duration": record.duration,
            }
            for record in self.injected
        ]
        if self.deployment.rebalances:
            data["rebalances"] = [dict(record) for record in self.deployment.rebalances]
        # Only present on elastic runs, so legacy summaries (and the golden
        # digests pinning them) keep their exact shape.
        if self.autoscaler is not None:
            autoscale = self.autoscaler.summary()
            autoscale["scale_events"] = [
                dict(event) for event in self.deployment.scale_events
            ]
            autoscale["final_shards"] = self.deployment.active_shards()
            data["autoscale"] = autoscale
        recoveries = [
            dict(record, node=node.name)
            for group in self.cluster.nodes
            for node in group
            for record in node.recoveries
        ]
        # Only surfaced when a checkpoint-shipped (or fallback) recovery
        # actually happened: plain full-replay records would change the
        # summary shape -- and the golden digests -- of legacy scenarios.
        if any(record["mode"] != "replay" for record in recoveries):
            data["recoveries"] = recoveries
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimulationRuntime {self.spec.name!r} topology={self.topology.name!r} "
            f"now={self.simulator.now:.3f}>"
        )


def run_scenario(spec: ScenarioSpec) -> SimulationRuntime:
    """Compile ``spec`` and run it to completion."""
    return SimulationRuntime(spec).run()
