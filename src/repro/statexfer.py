"""Unified state-transfer layer.

Every path that moves operator or node state between replicas goes through
this module, so the shipping logic exists exactly once:

* **Crash recovery** (checkpoint-shipped): a STABLE replica periodically
  captures a :class:`RecoveryCheckpoint` of its whole fragment -- operator
  states, input-stream cursors, and output buffers -- and a recovering
  partner adopts it, then replays only the short suffix past the
  checkpoint's cursors instead of the entire retained window
  (:meth:`repro.core.node.ProcessingNode.recover`).
* **Rebalance bucket handoff**: live reconfiguration ships the moved
  buckets' SJoin tuples old owner -> new owner through
  :func:`extract_sjoin_state` / :func:`merge_sjoin_state`
  (:meth:`repro.deploy.Deployment.apply`).
* **Scale-out seeding**: attaching a new replica group to a running
  deployment seeds its input cursors from the same
  :class:`RecoveryCheckpoint` containers (:func:`seed_cursors`), so the
  fresh fragment subscribes from the donor's stable position instead of
  replaying the whole retained log
  (:meth:`repro.deploy.Deployment.scale_out`).

Transfers are modelled as non-instantaneous: :func:`transfer_delay` prices a
checkpoint by its item count (``checkpoint_cost`` fixed part plus
``checkpoint_transfer_cost`` per state item), so shipping state genuinely
races the subscription replay it replaces.

The module deliberately imports only the SPE layer (checkpoint containers and
operators); the node and deploy layers import *it*, never the reverse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from .errors import CheckpointError
from .spe.checkpoint import OperatorCheckpoint
from .spe.operators import SJoin, SOutput, SUnion

if TYPE_CHECKING:  # pragma: no cover - typing only (import cycle guard)
    from .config import DPCConfig
    from .core.node import ProcessingNode
    from .sim.sources import DataSource


# --------------------------------------------------------------------------- containers
@dataclass(frozen=True)
class StreamCursor:
    """Replayable position on one input stream at capture time.

    ``stable_received`` is the replica-independent stable count (used to
    resubscribe to upstream *nodes*); ``source_position`` is the last
    source-log tuple id processed (used to resubscribe to *data sources*,
    whose tuples carry no stable sequence numbers).
    """

    stable_received: int
    source_position: int


@dataclass(frozen=True)
class RecoveryCheckpoint:
    """Everything a recovering replica needs to rejoin from shipped state.

    Operator states are stored *positionally* (in the fragment's topological
    order): replica fragments are structurally identical but their operator
    names carry the replica's own name, so name-keyed restore would never
    match across replicas.
    """

    created_at: float
    owner: str
    operator_order: tuple[str, ...]
    operator_states: tuple[OperatorCheckpoint, ...]
    input_cursors: Mapping[str, StreamCursor]
    output_states: Mapping[str, Mapping[str, Any]]
    #: Number of shippable state items (buffered output tuples plus operator
    #: state entries); drives :func:`transfer_delay`.
    item_count: int


def transfer_delay(config: "DPCConfig", item_count: int) -> float:
    """Simulated seconds to ship a checkpoint of ``item_count`` state items."""
    return config.checkpoint_cost + item_count * config.checkpoint_transfer_cost


def _custom_items(state: Mapping[str, Any]) -> int:
    """Shippable item count of one operator's captured state (one level deep)."""
    custom = state.get("custom") or {}
    total = 0
    for value in custom.values():
        if isinstance(value, (list, tuple, set, dict)):
            total += len(value)
    return total


# --------------------------------------------------------------------------- capture / adopt
def capture_checkpoint(node: "ProcessingNode", now: float) -> RecoveryCheckpoint:
    """Capture a recovery checkpoint of ``node``'s entire fragment.

    Side-effect free: uses :meth:`Operator.checkpoint_state` (which, unlike
    ``Operator.checkpoint``, does not install a per-operator undo point), so
    periodic capture cannot perturb the reconciliation machinery.
    """
    order = tuple(node.diagram.topological_order())
    states = tuple(
        OperatorCheckpoint.capture(name, node.diagram.operator(name).checkpoint_state())
        for name in order
    )
    cursors = {
        stream: StreamCursor(
            stable_received=monitor.stable_received,
            source_position=monitor.source_position,
        )
        for stream, monitor in node.cm.monitors.items()
    }
    outputs = {
        manager.stream: manager.snapshot_state() for manager in node.data_path.outputs()
    }
    item_count = sum(len(state["buffer"]) for state in outputs.values()) + sum(
        _custom_items(checkpoint.state) for checkpoint in states
    )
    return RecoveryCheckpoint(
        created_at=now,
        owner=node.endpoint,
        operator_order=order,
        operator_states=states,
        input_cursors=cursors,
        output_states=outputs,
        item_count=item_count,
    )


def adopt_checkpoint(node: "ProcessingNode", checkpoint: RecoveryCheckpoint, now: float) -> None:
    """Reinitialize ``node`` from a partner replica's recovery checkpoint.

    Operators are restored positionally (see :class:`RecoveryCheckpoint`),
    including SOutputs: unlike checkpoint/redo reconciliation -- where the
    physical output stream must survive the rollback -- a recovering replica
    has no downstream continuity to preserve, so its whole output identity
    is adopted from the partner.  Transient failure-handling flags are then
    normalized: the partner captured while STABLE and clean, but the crashed
    node's operators may still carry pre-crash hold/downgrade state.
    """
    local_order = node.diagram.topological_order()
    if len(local_order) != len(checkpoint.operator_states):
        raise CheckpointError(
            f"recovery checkpoint of {checkpoint.owner!r} has "
            f"{len(checkpoint.operator_states)} operator states but the fragment "
            f"of {node.endpoint!r} has {len(local_order)} operators"
        )
    for name, partner_state in zip(local_order, checkpoint.operator_states):
        operator = node.diagram.operator(name)
        operator.restore(OperatorCheckpoint(operator_name=name, state=partner_state.state))
        if isinstance(operator, SOutput):
            operator.reset_recovery_flags()
        elif isinstance(operator, SUnion):
            operator.hold_buckets = False
    for stream, cursor in checkpoint.input_cursors.items():
        monitor = node.cm.monitors.get(stream)
        if monitor is None:
            continue
        monitor.stable_received = cursor.stable_received
        monitor.source_position = cursor.source_position
        monitor.clear_stable_buffer()
        monitor.tentative_since_stable = 0
        monitor.last_boundary_arrival = now
    for stream, state in checkpoint.output_states.items():
        node.data_path.output(stream).restore_state(state)


def seed_cursors(node: "ProcessingNode", checkpoint: RecoveryCheckpoint, now: float) -> None:
    """Seed a freshly attached node's input cursors from a donor's checkpoint.

    Scale-out's half of the adoption path: the new fragment has no state or
    downstream continuity to restore, it only needs to *subscribe from the
    donor's stable position* instead of replaying the whole retained log.
    Only streams the node actually consumes are touched; the boundary clock
    starts now so the startup grace applies from attach time.
    """
    for stream, cursor in checkpoint.input_cursors.items():
        monitor = node.cm.monitors.get(stream)
        if monitor is None:
            continue
        monitor.stable_received = cursor.stable_received
        monitor.source_position = cursor.source_position
        monitor.last_boundary_arrival = now


# --------------------------------------------------------------------------- peer discovery
class PeerRegistry:
    """Zero-message lookup of the live peers a transfer can involve.

    The deploy layer registers every node replica and every data source of a
    deployment; a recovering node uses the registry to *discover* whether a
    partner holds a usable checkpoint (and to price the replay suffix)
    without spending simulated network events on discovery.  The transfer
    itself still travels as messages with a size-proportional delay.
    """

    def __init__(self) -> None:
        self._nodes: dict[str, "ProcessingNode"] = {}
        self._sources: dict[str, "DataSource"] = {}

    def register_node(self, node: "ProcessingNode") -> None:
        self._nodes[node.endpoint] = node

    def unregister_node(self, endpoint: str) -> None:
        """Forget a decommissioned replica (scale-in retires its fragment)."""
        self._nodes.pop(endpoint, None)

    def register_source(self, source: "DataSource") -> None:
        self._sources[source.stream] = source

    def node_of(self, endpoint: str) -> "ProcessingNode | None":
        return self._nodes.get(endpoint)

    def source_of(self, stream: str) -> "DataSource | None":
        return self._sources.get(stream)


# --------------------------------------------------------------------------- SJoin bucket handoff
def extract_sjoin_state(
    node: "ProcessingNode", spec, buckets: set[int], cut_stime: float
) -> dict[int, list]:
    """Remove and return the moved buckets' tuples from each SJoin of ``node``.

    Keyed by the join's position within the fragment (replica names differ,
    positions align across replicas of one logical node).
    """
    extracted: dict[int, list] = {}
    joins = [op for op in node.diagram if isinstance(op, SJoin)]
    for position, join in enumerate(joins):
        state = join.checkpoint().state_copy()
        moved: list = []
        kept: list = []
        for item in state["custom"].get("state", ()):
            owned = (
                item.stime < cut_stime
                and spec.bucket_of(spec.key_of(item.values)) in buckets
            )
            (moved if owned else kept).append(item)
        extracted[position] = moved
        if moved:
            state["custom"]["state"] = kept
            join.restore(OperatorCheckpoint.capture(join.name, state))
    return extracted


def merge_sjoin_state(node: "ProcessingNode", canonical: dict[int, list]) -> int:
    """Merge the canonical moved-bucket tuples into each SJoin of ``node``.

    Returns the number of merged tuples the join's bounded state window
    trimmed away (oldest first).  Callers surface the count -- silent
    truncation of shipped bucket state is otherwise invisible.
    """
    joins = [op for op in node.diagram if isinstance(op, SJoin)]
    trimmed = 0
    for position, join in enumerate(joins):
        moved = canonical.get(position, [])
        if not moved:
            continue
        state = join.checkpoint().state_copy()
        merged = sorted(
            list(state["custom"].get("state", ())) + moved,
            key=lambda item: (item.stime, item.values.get("seq", item.tuple_id)),
        )
        if len(merged) > join.state_size:
            trimmed += len(merged) - join.state_size
            merged = merged[len(merged) - join.state_size:]
        state["custom"]["state"] = merged
        join.restore(OperatorCheckpoint.capture(join.name, state))
    return trimmed
