"""The deploy half of the deployment control plane.

:func:`deploy_placement` materializes a compiled
:class:`~repro.deploy.placement.Placement` onto a fresh simulator and wraps
the result in a :class:`Deployment`: the live handle owning the cluster
(simulator, network, sources, replica groups, clients) *and* the two
control-plane capabilities the one-shot builders could never express:

* **filtered subscriptions** -- the plan's filtered edges are wired through
  shared :class:`~repro.deploy.SubscriptionFilter` objects, so a shard
  fragment's key-hash slice is carved out at the *producer* and the split
  router no longer multicasts the full stream to every shard replica;

* **live reconfiguration** -- :meth:`Deployment.apply` takes a
  :class:`~repro.sharding.RebalancePlan` and performs the bucket handoff on
  the running deployment: the slice predicates are advanced at a bucket
  boundary of the serialization-time axis (so routing stays a pure function
  of each tuple and the merged ledger stays gap-free and duplicate-free
  across the handoff), and once the boundary has drained through the data
  path the moved buckets' SJoin state is shipped from the old owner to the
  new one through the existing checkpoint containers.
"""

from __future__ import annotations

import math
import random
from typing import TYPE_CHECKING, Callable, Sequence

from ..config import DPCConfig, SimulationConfig
from ..core.node import ProcessingNode
from ..core.states import NodeState
from ..errors import ConfigurationError, SimulationError
from ..sharding import RebalancePlan, ShardAssignment, ShardPlanner
from ..sim.client import ClientApplication
from ..sim.event_loop import Simulator
from ..sim.events import EventKind
from ..sim.failures import FailureInjector
from ..sim.network import Network
from ..sim.sources import DataSource
from ..statexfer import PeerRegistry, extract_sjoin_state, merge_sjoin_state
from ..workloads.generators import PayloadFactory, default_payload_factory
from .filters import SubscriptionFilter
from .placement import (
    FRAGMENT_ENTRY,
    FRAGMENT_INGRESS_FILTER,
    FRAGMENT_RELAY,
    Placement,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..spe.query_diagram import QueryDiagram


def deploy_placement(
    placement: Placement,
    config: DPCConfig | None = None,
    sim_config: SimulationConfig | None = None,
    *,
    aggregate_rate: float = 300.0,
    payload_factory: PayloadFactory = default_payload_factory,
    join_state_size: int | None = 100,
    per_node_delay: float | None = None,
    diagram_factory: "Callable[[str, Sequence[str], str], QueryDiagram] | None" = None,
    seed: int | None = None,
    rate_profile: Callable[[float], float] | None = None,
) -> "Deployment":
    """Instantiate ``placement`` on a fresh simulator.

    The walk mirrors the documented behaviour of the historical
    ``build_dag_cluster`` exactly (those builders now delegate here): one
    logging source per source stream, one replica group per node plan with
    the fragment shape the plan chose, multicast fan-out over the batch
    transport, push-based state advertisement whenever the keepalive cadence
    allows it, and one measuring client per sink.  ``seed`` reproduces the
    deployment's randomness; see the builder's docstring.

    What the plan adds: edges marked *filtered* share one
    :class:`SubscriptionFilter` per consumer fragment, registered both at
    every producer replica (build-time subscription) and in every consumer
    replica's input monitor (carried on later re-subscriptions), so the
    producer only ships each consumer its slice.
    """
    # Imported late: repro.sim.cluster imports this module's shims' home.
    from ..sim.cluster import (
        Cluster,
        _node_delay_budgets,
        merge_diagram,
        relay_diagram,
        shard_relay_diagram,
    )

    topology = placement.topology
    config = config or DPCConfig()
    sim_config = sim_config or SimulationConfig()
    config.validate()
    sim_config.validate()

    simulator = Simulator()
    network = Network(simulator, default_latency=sim_config.network_latency)
    failures = FailureInjector(simulator=simulator, network=network)
    cluster = Cluster(
        simulator=simulator, network=network, failures=failures, topology=topology
    )

    delay_budgets = _node_delay_budgets(topology, config, per_node_delay)
    # One offset for every source: the whole workload shifts in time (so runs
    # with different seeds genuinely differ) while the sources stay mutually
    # aligned, which the end-of-run consistency accounting relies on.
    start_offset = (
        random.Random(seed).uniform(0.0, sim_config.batch_interval * 0.5)
        if seed is not None
        else 0.0
    )

    # --- sources ---------------------------------------------------------------
    source_by_stream: dict[str, DataSource] = {}
    for plan in placement.sources:
        source = DataSource(
            name=plan.name,
            stream=plan.stream,
            simulator=simulator,
            network=network,
            # Divided, not multiplied by the (1/n) share: the historical
            # builder computed rate/n, and `a/n` vs `a*(1/n)` differ by an
            # ulp for some stream counts -- enough to shift every seeded
            # emission time and break cross-version reproducibility.
            rate=aggregate_rate / len(placement.sources),
            boundary_interval=config.boundary_interval,
            batch_interval=sim_config.batch_interval,
            payload=payload_factory(plan.payload_index, len(placement.sources)),
            start_time=start_offset,
            # The same profile object for every source: profiles are pure
            # functions of the emission stime, so shared use keeps the
            # interleaved sources aligned (tie groups stay intact).
            rate_profile=rate_profile,
        )
        cluster.sources.append(source)
        source_by_stream[plan.stream] = source

    # --- subscription filters (one shared object per filtered consumer) --------
    subscription_filters: dict[str, SubscriptionFilter] = {}
    for edge in placement.filtered_subscriptions():
        spec = topology.node(edge.consumer)
        if spec.select is None:  # pragma: no cover - placement guarantees it
            raise ConfigurationError(
                f"filtered subscription of {edge.consumer!r} has no predicate"
            )
        subscription_filters[edge.consumer] = SubscriptionFilter(
            spec.select, name=edge.filter_name or f"{edge.consumer}.slice"
        )

    # --- processing nodes --------------------------------------------------------
    for plan in placement.nodes:
        spec = topology.node(plan.name)
        group: list[ProcessingNode] = []
        node_join_state = join_state_size if plan.stateful else None
        for node_name in plan.replica_names:
            if plan.fragment == FRAGMENT_ENTRY:
                if diagram_factory is not None:
                    diagram = diagram_factory(node_name, plan.inputs, plan.output_stream)
                else:
                    diagram = merge_diagram(
                        node_name,
                        plan.inputs,
                        plan.output_stream,
                        bucket_size=config.bucket_size,
                        join_state_size=node_join_state,
                        select=spec.select,
                    )
            elif plan.fragment == FRAGMENT_INGRESS_FILTER:
                # Legacy multicast routing: the slice is dropped at the
                # fragment's ingress, after crossing the network.
                diagram = shard_relay_diagram(
                    node_name,
                    plan.inputs[0],
                    plan.output_stream,
                    bucket_size=config.bucket_size,
                    select=spec.select,
                    join_state_size=node_join_state,
                )
            elif plan.fragment == FRAGMENT_RELAY:
                # A filtered consumer's slice already arrives pre-cut (the
                # predicate ran at the producer): its fragment is a plain
                # relay and carries no select of its own.
                filtered = plan.name in subscription_filters
                diagram = relay_diagram(
                    node_name,
                    plan.inputs[0],
                    plan.output_stream,
                    bucket_size=config.bucket_size,
                    select=None if filtered else spec.select,
                    join_state_size=node_join_state,
                )
            else:  # FRAGMENT_FANIN
                diagram = merge_diagram(
                    node_name,
                    plan.inputs,
                    plan.output_stream,
                    bucket_size=config.bucket_size,
                    join_state_size=node_join_state,
                    select=spec.select,
                )
            partners = [other for other in plan.replica_names if other != node_name]
            node = ProcessingNode(
                name=node_name,
                diagram=diagram,
                simulator=simulator,
                network=network,
                config=config,
                sim_config=sim_config,
                assigned_delay=delay_budgets[plan.name],
                replica_partners=partners,
                rng_seed=seed,
            )
            group.append(node)
        cluster.nodes.append(group)
        cluster.node_groups[plan.name] = group

    # --- wiring: sources -> consuming node replicas -------------------------------
    for source in cluster.sources:
        consumers: list[ProcessingNode] = []
        for spec in topology.consumers_of(source.stream):
            for node in cluster.node_groups[spec.name]:
                source.subscribe(node.endpoint)
                consumers.append(node)
        cluster.stream_consumers[source.stream] = consumers
    for spec in topology:
        for node in cluster.node_groups[spec.name]:
            for stream in spec.inputs:
                if stream not in source_by_stream:
                    continue
                source = source_by_stream[stream]
                node.register_input_stream(
                    source.stream, producers=[source.name], source_producers=[source.name]
                )

    # --- wiring: node -> node edges ------------------------------------------------
    # Nodes push their DPC state to registered watchers every keepalive period
    # (replacing probe round trips) whenever the push cadence can keep up with
    # the configured keepalive; otherwise consumers fall back to probing.
    push_state = config.keepalive_period + 1e-12 >= sim_config.batch_interval
    for spec in topology:
        consumer_filter = subscription_filters.get(spec.name)
        for upstream_spec in topology.upstream_nodes(spec):
            upstream_group = cluster.node_groups[upstream_spec.name]
            upstream_stream = upstream_spec.output_stream
            upstream_names = [n.endpoint for n in upstream_group]
            for node in cluster.node_groups[spec.name]:
                node.register_input_stream(
                    upstream_stream,
                    producers=upstream_names,
                    push_producers=upstream_names if push_state else (),
                    subscription_filter=consumer_filter,
                )
                # Every downstream replica initially reads from the first
                # upstream replica; DPC switches it if that replica fails.
                upstream_group[0].register_subscriber(
                    upstream_stream, node.endpoint, subscription_filter=consumer_filter
                )
                if push_state:
                    for upstream in upstream_group:
                        upstream.add_state_watcher(node.endpoint)

    # --- clients: one per sink ------------------------------------------------------
    for plan in placement.clients:
        sink_group = cluster.node_groups[plan.sink]
        client = ClientApplication(
            name=plan.name,
            stream=plan.stream,
            simulator=simulator,
            network=network,
            config=config,
            rng_seed=seed,
        )
        sink_names = [n.endpoint for n in sink_group]
        client.register_upstream(
            producers=sink_names, push_producers=sink_names if push_state else ()
        )
        sink_group[0].register_subscriber(plan.stream, client.endpoint)
        if push_state:
            for node in sink_group:
                node.add_state_watcher(client.endpoint)
        cluster.clients.append(client)

    # --- state-transfer peer registry -----------------------------------------------
    # Checkpoint-shipped recovery discovers partners and prices replay
    # suffixes through this registry (zero simulated messages); nodes built
    # outside the deploy layer keep registry=None and fall back to full
    # subscription replay.
    registry = PeerRegistry()
    for source in cluster.sources:
        registry.register_source(source)
    for group in cluster.nodes:
        for node in group:
            registry.register_node(node)
            node.statexfer_registry = registry

    deployment = Deployment(
        placement=placement,
        cluster=cluster,
        config=config,
        sim_config=sim_config,
        subscription_filters=subscription_filters,
        join_state_size=join_state_size,
    )
    cluster.deployment = deployment
    return deployment


class Deployment:
    """A live deployment: the cluster plus its reconfiguration control plane."""

    def __init__(
        self,
        placement: Placement,
        cluster,
        config: DPCConfig,
        sim_config: SimulationConfig,
        subscription_filters: dict[str, SubscriptionFilter],
        join_state_size: int | None,
    ) -> None:
        self.placement = placement
        self.cluster = cluster
        self.config = config
        self.sim_config = sim_config
        #: Consumer node name -> the shared filter of its filtered subscription.
        self.subscription_filters = subscription_filters
        self.join_state_size = join_state_size
        #: The bucket assignment currently routing the shard fragments (None
        #: for unsharded deployments); advanced by :meth:`apply`.
        self.current_assignment: ShardAssignment | None = placement.topology.shard_assignment
        #: Completed and in-flight reconfigurations, for reporting.
        self.rebalances: list[dict] = []
        #: Names of shard fragments a drain plan has evacuated.  Shared with
        #: the cluster so failure injection can validate kill targets against
        #: the *current* deployment instead of the compile-time topology.
        self.drained: set[str] = cluster.drained_nodes

    # ------------------------------------------------------------------ delegation
    @property
    def simulator(self) -> Simulator:
        return self.cluster.simulator

    @property
    def network(self) -> Network:
        return self.cluster.network

    @property
    def topology(self):
        return self.placement.topology

    @property
    def clients(self) -> list[ClientApplication]:
        return self.cluster.clients

    def start(self) -> None:
        self.cluster.start()

    def run_for(self, duration: float) -> float:
        return self.cluster.run_for(duration)

    def run_until(self, end_time: float) -> float:
        return self.cluster.run_until(end_time)

    def summary(self) -> dict:
        return self.cluster.summary()

    def node(self, key, replica: int = 0) -> ProcessingNode:
        return self.cluster.node(key, replica)

    def node_group(self, key) -> list[ProcessingNode]:
        return self.cluster.node_group(key)

    # ------------------------------------------------------------------ load observation
    def observed_bucket_loads(self) -> dict[int, float]:
        """Per-hash-bucket tuple counts observed at the split router so far.

        Measured on the first split replica's output buffer (replicas produce
        identical stable streams), keyed by the deployment's shard spec.  This
        is the input :meth:`plan_rebalance` feeds to the planner.
        """
        assignment = self._require_sharded()
        producer = self.placement.shard_producer
        replica = self.cluster.node_group(producer)[0]
        stream = self.placement.node_plan(producer).output_stream
        spec = assignment.spec
        loads: dict[int, float] = {}
        for item in replica.data_path.output(stream).buffered_items():
            if not item.is_stable:
                continue
            bucket = spec.bucket_of(spec.key_of(item.values))
            loads[bucket] = loads.get(bucket, 0.0) + 1.0
        return loads

    def plan_rebalance(self, tolerance: float = 0.10) -> RebalancePlan:
        """Ask the planner for a plan against the *observed* bucket loads."""
        assignment = self._require_sharded()
        return ShardPlanner(assignment.spec).rebalance(
            assignment, self.observed_bucket_loads(), tolerance=tolerance
        )

    def plan_drain(self, shard: int) -> RebalancePlan:
        """Plan the evacuation of one shard (0-based index) under observed loads."""
        assignment = self._require_sharded()
        return ShardPlanner(assignment.spec).drain(
            assignment, shard, self.observed_bucket_loads()
        )

    # ------------------------------------------------------------------ live reconfiguration
    def apply(self, plan: RebalancePlan) -> dict:
        """Apply ``plan`` to the running deployment (bucket handoff).

        The handoff happens in two deterministic steps:

        1. **Cut.**  Every shard fragment's subscription filter is advanced
           to the plan's ``after`` predicate for tuples serialized at or
           beyond the next *bucket boundary* past everything the split has
           produced.  Routing stays a pure function of each tuple (old epoch
           below the cut, new epoch at or above it), so no tuple is ever
           duplicated or lost, no stime tie group straddles owners, and
           replays after later failures route exactly as the original
           delivery did.

        2. **State handoff.**  Once the cut has drained through the data
           path (one bucket plus transport slack later), the moved buckets'
           SJoin tuples are shipped from each old owner replica to the new
           owner through the operator checkpoint containers, keeping
           serialized-order within the target's bounded state.

        Returns the reconfiguration record (also appended to
        :attr:`rebalances`).  No-op plans return immediately.
        """
        assignment = self._require_sharded()
        if not self.placement.filtered_routing:
            raise ConfigurationError(
                "live rebalance needs filtered subscriptions; this deployment was "
                "compiled with filtered_routing=False (multicast routing)"
            )
        if plan.before != assignment:
            raise ConfigurationError(
                "rebalance plan was computed against a different assignment than "
                "the one currently deployed; re-plan against the live deployment"
            )
        now = self.simulator.now
        record: dict = {
            "applied_at": now,
            "moves": [
                {"bucket": m.bucket, "source": m.source, "target": m.target}
                for m in plan.moves
            ],
            "imbalance_before": plan.imbalance_before,
            "imbalance_after": plan.imbalance_after,
            "noop": plan.is_noop,
        }
        if plan.is_noop:
            self.rebalances.append(record)
            return record
        unstable = [
            node.name
            for node in self.cluster.all_nodes()
            if node.state is not NodeState.STABLE or node.fragment_dirty
        ]
        if unstable:
            raise SimulationError(
                f"cannot rebalance while the deployment is handling a failure "
                f"(non-stable replicas: {unstable})"
            )

        # --- 1. advance the slice predicates at a bucket boundary ------------
        cut_stime = self._next_bucket_boundary()
        shard_names = self.placement.shard_fragments
        for index, name in enumerate(shard_names):
            self.subscription_filters[name].advance(
                cut_stime, plan.after.predicate(index)
            )
        self.current_assignment = plan.after
        # Recomputed (not accumulated) from the new assignment: a later plan
        # may re-populate a previously drained shard, which must then be a
        # legal kill target again.  The set object is shared with the
        # cluster, so mutate it in place.
        drained = [shard_names[i] for i in plan.after.empty_shards()]
        self.drained.clear()
        self.drained.update(drained)

        # --- 2. ship the moved buckets' join state once the cut drains -------
        settle = (
            max(cut_stime - now, 0.0)
            + self.config.bucket_size
            + 2 * self.sim_config.batch_interval
            + 2 * self.sim_config.network_latency
        )
        record.update(
            {
                "cut_stime": cut_stime,
                "drained": drained,
                "state_handoff_at": now + settle,
                "completed": False,
            }
        )
        self.simulator.schedule_in(
            settle,
            lambda fire_time, p=plan, r=record, c=cut_stime: self._ship_join_state(
                p, c, r, fire_time
            ),
            kind=EventKind.INTERNAL,
            description=f"rebalance handoff ({len(plan.moves)} bucket(s))",
        )
        self.rebalances.append(record)
        return record

    def rebalance(self, tolerance: float = 0.10) -> dict:
        """Plan against observed loads and apply in one step (the mid-run hook)."""
        return self.apply(self.plan_rebalance(tolerance=tolerance))

    def _next_bucket_boundary(self) -> float:
        """First bucket boundary past everything the split has serialized."""
        producer = self.placement.shard_producer
        stream = self.placement.node_plan(producer).output_stream
        high = self.simulator.now
        for replica in self.cluster.node_group(producer):
            manager = replica.data_path.output(stream)
            high = max(high, manager.last_appended_stime)
        bucket = self.config.bucket_size
        return (math.floor(high / bucket) + 1) * bucket

    def _ship_join_state(
        self, plan: RebalancePlan, cut_stime: float, record: dict, now: float
    ) -> None:
        """Move the migrated buckets' SJoin tuples old owner -> new owner.

        Every source replica holds its own copy of the moved buckets' state;
        all copies are removed, and the first replica's copy becomes the
        canonical one merged into *every* target replica.  (Replica counts
        may differ per node, so index pairing would duplicate state into one
        target replica or leave another without it.)

        The quiesce assumption is re-checked at fire time: a failure that
        landed inside the drain window (possible for programmatic schedules;
        ScenarioSpec validation forbids it declaratively) would let a
        crashed-and-recovered old owner rebuild the shipped state from its
        subscription replay.  In that case the handoff is postponed until the
        deployment is stable again, keeping the no-duplication guarantee.
        """
        unstable = [
            node.name
            for node in self.cluster.all_nodes()
            if node.state is not NodeState.STABLE or node.fragment_dirty
        ]
        if unstable:
            record["handoff_retries"] = record.get("handoff_retries", 0) + 1
            self.simulator.schedule_in(
                max(self.config.bucket_size, self.sim_config.batch_interval),
                lambda fire_time, p=plan, r=record, c=cut_stime: self._ship_join_state(
                    p, c, r, fire_time
                ),
                kind=EventKind.INTERNAL,
                description="rebalance handoff retry (deployment unstable)",
            )
            return
        spec = plan.before.spec
        shard_names = self.placement.shard_fragments
        shipped = 0
        moves_by_pair: dict[tuple[int, int], set[int]] = {}
        for move in plan.moves:
            moves_by_pair.setdefault((move.source, move.target), set()).add(move.bucket)
        for (source, target), buckets in sorted(moves_by_pair.items()):
            source_group = self.cluster.node_group(shard_names[source])
            target_group = self.cluster.node_group(shard_names[target])
            canonical: dict[int, list] = {}
            for index, source_node in enumerate(source_group):
                extracted = extract_sjoin_state(source_node, spec, buckets, cut_stime)
                if index == 0:
                    canonical = extracted
            for target_node in target_group:
                merge_sjoin_state(target_node, canonical)
            shipped += sum(len(items) for items in canonical.values())
        record["completed"] = True
        record["completed_at"] = now
        record["state_tuples_shipped"] = shipped

    # ------------------------------------------------------------------ helpers
    def _require_sharded(self) -> ShardAssignment:
        if self.current_assignment is None:
            raise ConfigurationError(
                f"deployment of topology {self.topology.name!r} is not sharded; "
                f"rebalancing needs a Topology.shard deployment"
            )
        return self.current_assignment

    def is_drained(self, name: str) -> bool:
        return name in self.drained

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Deployment {self.topology.name!r} now={self.simulator.now:.3f} "
            f"rebalances={len(self.rebalances)} drained={sorted(self.drained)}>"
        )
