"""The deploy half of the deployment control plane.

:func:`deploy_placement` materializes a compiled
:class:`~repro.deploy.placement.Placement` onto a fresh simulator and wraps
the result in a :class:`Deployment`: the live handle owning the cluster
(simulator, network, sources, replica groups, clients) *and* the two
control-plane capabilities the one-shot builders could never express:

* **filtered subscriptions** -- the plan's filtered edges are wired through
  shared :class:`~repro.deploy.SubscriptionFilter` objects, so a shard
  fragment's key-hash slice is carved out at the *producer* and the split
  router no longer multicasts the full stream to every shard replica;

* **live reconfiguration** -- :meth:`Deployment.apply` takes a
  :class:`~repro.sharding.RebalancePlan` and performs the bucket handoff on
  the running deployment: the slice predicates are advanced at a bucket
  boundary of the serialization-time axis (so routing stays a pure function
  of each tuple and the merged ledger stays gap-free and duplicate-free
  across the handoff), and once the boundary has drained through the data
  path the moved buckets' SJoin state is shipped from the old owner to the
  new one through the existing checkpoint containers.
"""

from __future__ import annotations

import math
import random
from typing import TYPE_CHECKING, Callable, Sequence

import warnings
from dataclasses import replace as dataclass_replace

from ..config import DPCConfig, SimulationConfig
from ..core.node import ProcessingNode
from ..core.states import NodeState
from ..errors import ConfigurationError, SimulationError
from ..sharding import RebalancePlan, ShardAssignment, ShardPlanner
from ..sim.client import ClientApplication
from ..sim.event_loop import Simulator
from ..sim.events import EventKind
from ..sim.failures import FailureInjector
from ..sim.network import Network
from ..sim.sources import DataSource
from ..spe.query_diagram import InputBinding
from ..statexfer import (
    PeerRegistry,
    capture_checkpoint,
    extract_sjoin_state,
    merge_sjoin_state,
    seed_cursors,
    transfer_delay,
)
from ..workloads.generators import PayloadFactory, default_payload_factory
from .filters import SubscriptionFilter
from .placement import (
    FRAGMENT_ENTRY,
    FRAGMENT_INGRESS_FILTER,
    FRAGMENT_RELAY,
    NodePlan,
    Placement,
    SubscriptionPlan,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..spe.query_diagram import QueryDiagram


def deploy_placement(
    placement: Placement,
    config: DPCConfig | None = None,
    sim_config: SimulationConfig | None = None,
    *,
    aggregate_rate: float = 300.0,
    payload_factory: PayloadFactory = default_payload_factory,
    join_state_size: int | None = 100,
    per_node_delay: float | None = None,
    diagram_factory: "Callable[[str, Sequence[str], str], QueryDiagram] | None" = None,
    seed: int | None = None,
    rate_profile: Callable[[float], float] | None = None,
    source_stop_time: float | None = None,
) -> "Deployment":
    """Instantiate ``placement`` on a fresh simulator.

    The walk mirrors the documented behaviour of the historical
    ``build_dag_cluster`` exactly (those builders now delegate here): one
    logging source per source stream, one replica group per node plan with
    the fragment shape the plan chose, multicast fan-out over the batch
    transport, push-based state advertisement whenever the keepalive cadence
    allows it, and one measuring client per sink.  ``seed`` reproduces the
    deployment's randomness; see the builder's docstring.

    What the plan adds: edges marked *filtered* share one
    :class:`SubscriptionFilter` per consumer fragment, registered both at
    every producer replica (build-time subscription) and in every consumer
    replica's input monitor (carried on later re-subscriptions), so the
    producer only ships each consumer its slice.
    """
    # Imported late: repro.sim.cluster imports this module's shims' home.
    from ..sim.cluster import (
        Cluster,
        _node_delay_budgets,
        merge_diagram,
        relay_diagram,
        shard_relay_diagram,
    )

    topology = placement.topology
    config = config or DPCConfig()
    sim_config = sim_config or SimulationConfig()
    config.validate()
    sim_config.validate()

    simulator = Simulator()
    network = Network(simulator, default_latency=sim_config.network_latency)
    failures = FailureInjector(simulator=simulator, network=network)
    cluster = Cluster(
        simulator=simulator, network=network, failures=failures, topology=topology
    )

    delay_budgets = _node_delay_budgets(topology, config, per_node_delay)
    # One offset for every source: the whole workload shifts in time (so runs
    # with different seeds genuinely differ) while the sources stay mutually
    # aligned, which the end-of-run consistency accounting relies on.
    start_offset = (
        random.Random(seed).uniform(0.0, sim_config.batch_interval * 0.5)
        if seed is not None
        else 0.0
    )

    # --- sources ---------------------------------------------------------------
    source_by_stream: dict[str, DataSource] = {}
    for plan in placement.sources:
        source = DataSource(
            name=plan.name,
            stream=plan.stream,
            simulator=simulator,
            network=network,
            # Divided, not multiplied by the (1/n) share: the historical
            # builder computed rate/n, and `a/n` vs `a*(1/n)` differ by an
            # ulp for some stream counts -- enough to shift every seeded
            # emission time and break cross-version reproducibility.
            rate=aggregate_rate / len(placement.sources),
            boundary_interval=config.boundary_interval,
            batch_interval=sim_config.batch_interval,
            payload=payload_factory(plan.payload_index, len(placement.sources)),
            start_time=start_offset,
            stop_time=source_stop_time,
            # The same profile object for every source: profiles are pure
            # functions of the emission stime, so shared use keeps the
            # interleaved sources aligned (tie groups stay intact).
            rate_profile=rate_profile,
        )
        cluster.sources.append(source)
        source_by_stream[plan.stream] = source

    # --- subscription filters (one shared object per filtered consumer) --------
    subscription_filters: dict[str, SubscriptionFilter] = {}
    for edge in placement.filtered_subscriptions():
        spec = topology.node(edge.consumer)
        if spec.select is None:  # pragma: no cover - placement guarantees it
            raise ConfigurationError(
                f"filtered subscription of {edge.consumer!r} has no predicate"
            )
        subscription_filters[edge.consumer] = SubscriptionFilter(
            spec.select, name=edge.filter_name or f"{edge.consumer}.slice"
        )

    # --- processing nodes --------------------------------------------------------
    for plan in placement.nodes:
        spec = topology.node(plan.name)
        group: list[ProcessingNode] = []
        node_join_state = join_state_size if plan.stateful else None
        for node_name in plan.replica_names:
            if plan.fragment == FRAGMENT_ENTRY:
                if diagram_factory is not None:
                    diagram = diagram_factory(node_name, plan.inputs, plan.output_stream)
                else:
                    diagram = merge_diagram(
                        node_name,
                        plan.inputs,
                        plan.output_stream,
                        bucket_size=config.bucket_size,
                        join_state_size=node_join_state,
                        select=spec.select,
                    )
            elif plan.fragment == FRAGMENT_INGRESS_FILTER:
                # Legacy multicast routing: the slice is dropped at the
                # fragment's ingress, after crossing the network.
                diagram = shard_relay_diagram(
                    node_name,
                    plan.inputs[0],
                    plan.output_stream,
                    bucket_size=config.bucket_size,
                    select=spec.select,
                    join_state_size=node_join_state,
                )
            elif plan.fragment == FRAGMENT_RELAY:
                # A filtered consumer's slice already arrives pre-cut (the
                # predicate ran at the producer): its fragment is a plain
                # relay and carries no select of its own.
                filtered = plan.name in subscription_filters
                diagram = relay_diagram(
                    node_name,
                    plan.inputs[0],
                    plan.output_stream,
                    bucket_size=config.bucket_size,
                    select=None if filtered else spec.select,
                    join_state_size=node_join_state,
                )
            else:  # FRAGMENT_FANIN
                diagram = merge_diagram(
                    node_name,
                    plan.inputs,
                    plan.output_stream,
                    bucket_size=config.bucket_size,
                    join_state_size=node_join_state,
                    select=spec.select,
                )
            partners = [other for other in plan.replica_names if other != node_name]
            node = ProcessingNode(
                name=node_name,
                diagram=diagram,
                simulator=simulator,
                network=network,
                config=config,
                sim_config=sim_config,
                assigned_delay=delay_budgets[plan.name],
                replica_partners=partners,
                rng_seed=seed,
            )
            group.append(node)
        cluster.nodes.append(group)
        cluster.node_groups[plan.name] = group

    # --- wiring: sources -> consuming node replicas -------------------------------
    for source in cluster.sources:
        consumers: list[ProcessingNode] = []
        for spec in topology.consumers_of(source.stream):
            for node in cluster.node_groups[spec.name]:
                source.subscribe(node.endpoint)
                consumers.append(node)
        cluster.stream_consumers[source.stream] = consumers
    for spec in topology:
        for node in cluster.node_groups[spec.name]:
            for stream in spec.inputs:
                if stream not in source_by_stream:
                    continue
                source = source_by_stream[stream]
                node.register_input_stream(
                    source.stream, producers=[source.name], source_producers=[source.name]
                )

    # --- wiring: node -> node edges ------------------------------------------------
    # Nodes push their DPC state to registered watchers every keepalive period
    # (replacing probe round trips) whenever the push cadence can keep up with
    # the configured keepalive; otherwise consumers fall back to probing.
    push_state = config.keepalive_period + 1e-12 >= sim_config.batch_interval
    for spec in topology:
        consumer_filter = subscription_filters.get(spec.name)
        for upstream_spec in topology.upstream_nodes(spec):
            upstream_group = cluster.node_groups[upstream_spec.name]
            upstream_stream = upstream_spec.output_stream
            upstream_names = [n.endpoint for n in upstream_group]
            for node in cluster.node_groups[spec.name]:
                node.register_input_stream(
                    upstream_stream,
                    producers=upstream_names,
                    push_producers=upstream_names if push_state else (),
                    subscription_filter=consumer_filter,
                )
                # Every downstream replica initially reads from the first
                # upstream replica; DPC switches it if that replica fails.
                upstream_group[0].register_subscriber(
                    upstream_stream, node.endpoint, subscription_filter=consumer_filter
                )
                if push_state:
                    for upstream in upstream_group:
                        upstream.add_state_watcher(node.endpoint)

    # --- clients: one per sink ------------------------------------------------------
    for plan in placement.clients:
        sink_group = cluster.node_groups[plan.sink]
        client = ClientApplication(
            name=plan.name,
            stream=plan.stream,
            simulator=simulator,
            network=network,
            config=config,
            rng_seed=seed,
        )
        sink_names = [n.endpoint for n in sink_group]
        client.register_upstream(
            producers=sink_names, push_producers=sink_names if push_state else ()
        )
        sink_group[0].register_subscriber(plan.stream, client.endpoint)
        if push_state:
            for node in sink_group:
                node.add_state_watcher(client.endpoint)
        cluster.clients.append(client)

    # --- state-transfer peer registry -----------------------------------------------
    # Checkpoint-shipped recovery discovers partners and prices replay
    # suffixes through this registry (zero simulated messages); nodes built
    # outside the deploy layer keep registry=None and fall back to full
    # subscription replay.
    registry = PeerRegistry()
    for source in cluster.sources:
        registry.register_source(source)
    for group in cluster.nodes:
        for node in group:
            registry.register_node(node)
            node.statexfer_registry = registry

    deployment = Deployment(
        placement=placement,
        cluster=cluster,
        config=config,
        sim_config=sim_config,
        subscription_filters=subscription_filters,
        join_state_size=join_state_size,
        seed=seed,
        registry=registry,
        delay_budgets=delay_budgets,
        push_state=push_state,
    )
    cluster.deployment = deployment
    return deployment


class Deployment:
    """A live deployment: the cluster plus its reconfiguration control plane."""

    def __init__(
        self,
        placement: Placement,
        cluster,
        config: DPCConfig,
        sim_config: SimulationConfig,
        subscription_filters: dict[str, SubscriptionFilter],
        join_state_size: int | None,
        seed: int | None = None,
        registry: PeerRegistry | None = None,
        delay_budgets: dict[str, float] | None = None,
        push_state: bool = False,
    ) -> None:
        self.placement = placement
        self.cluster = cluster
        self.config = config
        self.sim_config = sim_config
        #: Consumer node name -> the shared filter of its filtered subscription.
        self.subscription_filters = subscription_filters
        self.join_state_size = join_state_size
        #: Deployment-construction context the elastic paths replay when they
        #: attach a fragment to the running cluster (None/empty when the
        #: deployment was hand-wired rather than built by deploy_placement).
        self.seed = seed
        self.registry = registry
        self.delay_budgets = dict(delay_budgets or {})
        self.push_state = push_state
        #: The bucket assignment currently routing the shard fragments (None
        #: for unsharded deployments); advanced by :meth:`apply`.
        self.current_assignment: ShardAssignment | None = placement.topology.shard_assignment
        #: Completed and in-flight reconfigurations, for reporting.
        self.rebalances: list[dict] = []
        #: Names of shard fragments a drain plan has evacuated.  Shared with
        #: the cluster so failure injection can validate kill targets against
        #: the *current* deployment instead of the compile-time topology.
        self.drained: set[str] = cluster.drained_nodes
        #: Shard-assignment indices whose fragments a scale-in retired.  The
        #: NodePlans stay in the placement (shard_fragments indexing must stay
        #: positional) but the slots never receive buckets again.
        self.decommissioned: set[int] = set()
        #: Retired replica groups, kept addressable for post-mortem assertions.
        self.retired_groups: dict[str, list[ProcessingNode]] = {}
        #: Scale-out / scale-in actions, for reporting.
        self.scale_events: list[dict] = []
        #: The reconfiguration record currently between cut and completed
        #: state handoff; a second apply() is rejected until it resolves.
        self._pending_handoff: dict | None = None
        #: Total shipped-state tuples the bounded join windows trimmed across
        #: every handoff (including legacy-path handoffs whose records cannot
        #: carry the count without perturbing pinned summaries).
        self.handoff_trimmed_total = 0

    # ------------------------------------------------------------------ delegation
    @property
    def simulator(self) -> Simulator:
        return self.cluster.simulator

    @property
    def network(self) -> Network:
        return self.cluster.network

    @property
    def topology(self):
        return self.placement.topology

    @property
    def clients(self) -> list[ClientApplication]:
        return self.cluster.clients

    def start(self) -> None:
        self.cluster.start()

    def run_for(self, duration: float) -> float:
        return self.cluster.run_for(duration)

    def run_until(self, end_time: float) -> float:
        return self.cluster.run_until(end_time)

    def summary(self) -> dict:
        return self.cluster.summary()

    def node(self, key, replica: int = 0) -> ProcessingNode:
        return self.cluster.node(key, replica)

    def node_group(self, key) -> list[ProcessingNode]:
        return self.cluster.node_group(key)

    # ------------------------------------------------------------------ load observation
    def observed_bucket_loads(self) -> dict[int, float]:
        """Per-hash-bucket tuple counts observed at the split router so far.

        Replicas produce identical stable streams, but their *retained*
        buffers can differ: a replica that recovered through checkpoint
        adoption holds only the suffix its partner's checkpoint shipped, so
        reading a fixed replica can badly undercount the load history.  The
        measurement therefore uses the live replica retaining the most stable
        tuples (ties resolve to the lowest replica index, which keeps the
        historical replica-0 behaviour whenever the buffers agree), keyed by
        the deployment's shard spec.  This is the input :meth:`plan_rebalance`
        feeds to the planner.
        """
        assignment = self._require_sharded()
        producer = self.placement.shard_producer
        group = self.cluster.node_group(producer)
        stream = self.placement.node_plan(producer).output_stream
        candidates = [replica for replica in group if not replica._crashed] or group
        buffers = [
            [item for item in r.data_path.output(stream).buffered_items() if item.is_stable]
            for r in candidates
        ]
        items = max(buffers, key=len)
        spec = assignment.spec
        loads: dict[int, float] = {}
        for item in items:
            bucket = spec.bucket_of(spec.key_of(item.values))
            loads[bucket] = loads.get(bucket, 0.0) + 1.0
        return loads

    def plan_rebalance(self, tolerance: float = 0.10) -> RebalancePlan:
        """Ask the planner for a plan against the *observed* bucket loads."""
        assignment = self._require_sharded()
        return ShardPlanner(assignment.spec).rebalance(
            assignment,
            self.observed_bucket_loads(),
            tolerance=tolerance,
            excluded=sorted(self.decommissioned),
        )

    def plan_drain(self, shard: int) -> RebalancePlan:
        """Plan the evacuation of one shard (0-based index) under observed loads."""
        assignment = self._require_sharded()
        return ShardPlanner(assignment.spec).drain(
            assignment,
            shard,
            self.observed_bucket_loads(),
            excluded=sorted(self.decommissioned),
        )

    # ------------------------------------------------------------------ live reconfiguration
    def apply(self, plan: RebalancePlan) -> dict:
        """Apply ``plan`` to the running deployment (bucket handoff).

        The handoff happens in two deterministic steps:

        1. **Cut.**  Every shard fragment's subscription filter is advanced
           to the plan's ``after`` predicate for tuples serialized at or
           beyond the next *bucket boundary* past everything the split has
           produced.  Routing stays a pure function of each tuple (old epoch
           below the cut, new epoch at or above it), so no tuple is ever
           duplicated or lost, no stime tie group straddles owners, and
           replays after later failures route exactly as the original
           delivery did.

        2. **State handoff.**  Once the cut has drained through the data
           path (one bucket plus transport slack later), the moved buckets'
           SJoin tuples are shipped from each old owner replica to the new
           owner through the operator checkpoint containers, keeping
           serialized-order within the target's bounded state.

        Returns the reconfiguration record (also appended to
        :attr:`rebalances`).  No-op plans return immediately.
        """
        assignment = self._require_sharded()
        if not self.placement.filtered_routing:
            raise ConfigurationError(
                "live rebalance needs filtered subscriptions; this deployment was "
                "compiled with filtered_routing=False (multicast routing)"
            )
        if plan.before != assignment:
            raise ConfigurationError(
                "rebalance plan was computed against a different assignment than "
                "the one currently deployed; re-plan against the live deployment"
            )
        if self._pending_handoff is not None:
            raise SimulationError(
                f"cannot apply a new reconfiguration while the handoff applied at "
                f"t={self._pending_handoff['applied_at']:.3f} is still pending "
                f"(completes or aborts at the scheduled state transfer)"
            )
        now = self.simulator.now
        record: dict = {
            "applied_at": now,
            "moves": [
                {"bucket": m.bucket, "source": m.source, "target": m.target}
                for m in plan.moves
            ],
            "imbalance_before": plan.imbalance_before,
            "imbalance_after": plan.imbalance_after,
            "noop": plan.is_noop,
        }
        if plan.is_noop:
            # Same record shape as an applied plan: nothing was cut and no
            # state moves, but downstream consumers of the record never have
            # to special-case missing keys.
            record.update(
                {
                    "cut_stime": None,
                    "drained": sorted(self.drained),
                    "state_handoff_at": None,
                    "completed": True,
                    "completed_at": now,
                    "state_tuples_shipped": 0,
                }
            )
            self.rebalances.append(record)
            return record
        unstable = self._unstable_replicas()
        if unstable:
            raise SimulationError(
                f"cannot rebalance while the deployment is handling a failure "
                f"(non-stable replicas: {unstable})"
            )

        # --- 1. advance the slice predicates at a bucket boundary ------------
        cut_stime = self._next_bucket_boundary()
        shard_names = self.placement.shard_fragments
        for index, name in enumerate(shard_names):
            if index in self.decommissioned:
                continue  # retired slot: no fragment carries its filter
            self.subscription_filters[name].advance(
                cut_stime, plan.after.predicate(index)
            )
        self.current_assignment = plan.after
        # Recomputed (not accumulated) from the new assignment: a later plan
        # may re-populate a previously drained shard, which must then be a
        # legal kill target again.  The set object is shared with the
        # cluster, so mutate it in place.
        drained = [shard_names[i] for i in plan.after.empty_shards()]
        self.drained.clear()
        self.drained.update(drained)

        # --- 2. ship the moved buckets' join state once the cut drains -------
        settle = (
            max(cut_stime - now, 0.0)
            + self.config.bucket_size
            + 2 * self.sim_config.batch_interval
            + 2 * self.sim_config.network_latency
        )
        record.update(
            {
                "cut_stime": cut_stime,
                "drained": drained,
                "state_handoff_at": now + settle,
                "completed": False,
            }
        )
        self.simulator.schedule_in(
            settle,
            lambda fire_time, p=plan, r=record, c=cut_stime: self._ship_join_state(
                p, c, r, fire_time
            ),
            kind=EventKind.INTERNAL,
            description=f"rebalance handoff ({len(plan.moves)} bucket(s))",
        )
        self.rebalances.append(record)
        self._pending_handoff = record
        return record

    def rebalance(self, tolerance: float = 0.10) -> dict:
        """Plan against observed loads and apply in one step (the mid-run hook)."""
        return self.apply(self.plan_rebalance(tolerance=tolerance))

    def _next_bucket_boundary(self) -> float:
        """First bucket boundary past everything the split has serialized."""
        producer = self.placement.shard_producer
        stream = self.placement.node_plan(producer).output_stream
        high = self.simulator.now
        for replica in self.cluster.node_group(producer):
            manager = replica.data_path.output(stream)
            high = max(high, manager.last_appended_stime)
        bucket = self.config.bucket_size
        return (math.floor(high / bucket) + 1) * bucket

    def _ship_join_state(
        self, plan: RebalancePlan, cut_stime: float, record: dict, now: float
    ) -> None:
        """Move the migrated buckets' SJoin tuples old owner -> new owner.

        Every source replica holds its own copy of the moved buckets' state;
        all copies are removed, and the first replica's copy becomes the
        canonical one merged into *every* target replica.  (Replica counts
        may differ per node, so index pairing would duplicate state into one
        target replica or leave another without it.)

        The quiesce assumption is re-checked at fire time: a failure that
        landed inside the drain window (possible for programmatic schedules;
        ScenarioSpec validation forbids it declaratively) would let a
        crashed-and-recovered old owner rebuild the shipped state from its
        subscription replay.  In that case the handoff is postponed until the
        deployment is stable again, keeping the no-duplication guarantee.

        With ``config.handoff_pricing`` the transfer is two-phase instead of
        instantaneous: the state is extracted here, priced through
        :func:`repro.statexfer.transfer_delay`, and merged into the targets
        only after the simulated transfer time has passed -- during which a
        crash *aborts* the handoff (see :meth:`_complete_priced_transfer`).
        """
        unstable = self._unstable_replicas()
        if unstable:
            record["handoff_retries"] = record.get("handoff_retries", 0) + 1
            self.simulator.schedule_in(
                max(self.config.bucket_size, self.sim_config.batch_interval),
                lambda fire_time, p=plan, r=record, c=cut_stime: self._ship_join_state(
                    p, c, r, fire_time
                ),
                kind=EventKind.INTERNAL,
                description="rebalance handoff retry (deployment unstable)",
            )
            return
        if self.config.handoff_pricing:
            self._begin_priced_transfer(plan, cut_stime, record, now)
            return
        transfers, shipped = self._extract_handoff_state(plan, cut_stime)
        trimmed = 0
        for _source, target, canonical in transfers:
            for target_node in self._live_replicas(target):
                trimmed += merge_sjoin_state(target_node, canonical)
        self._note_trimmed(trimmed, record, count_in_record=False)
        record["completed"] = True
        record["completed_at"] = now
        record["state_tuples_shipped"] = shipped
        self._finish_handoff(record)

    # ------------------------------------------------------------------ priced handoff
    def _extract_handoff_state(
        self, plan: RebalancePlan, cut_stime: float
    ) -> tuple[list[tuple[int, int, dict[int, list]]], int]:
        """Extract the moved buckets' state from every live old-owner replica.

        Returns ``([(source, target, canonical), ...], item_count)``.  The
        extraction invalidates the source replicas' recovery checkpoints: a
        checkpoint captured before the extraction would resurrect the shipped
        buckets if a partner adopted it later.
        """
        spec = plan.before.spec
        moves_by_pair: dict[tuple[int, int], set[int]] = {}
        for move in plan.moves:
            moves_by_pair.setdefault((move.source, move.target), set()).add(move.bucket)
        transfers: list[tuple[int, int, dict[int, list]]] = []
        shipped = 0
        for (source, target), buckets in sorted(moves_by_pair.items()):
            canonical: dict[int, list] = {}
            for index, source_node in enumerate(self._live_replicas(source)):
                extracted = extract_sjoin_state(source_node, spec, buckets, cut_stime)
                source_node.invalidate_recovery_checkpoint()
                if index == 0:
                    canonical = extracted
            transfers.append((source, target, canonical))
            shipped += sum(len(items) for items in canonical.values())
        return transfers, shipped

    def _begin_priced_transfer(
        self, plan: RebalancePlan, cut_stime: float, record: dict, now: float
    ) -> None:
        """Phase one of a priced handoff: extract, then ship for a priced delay."""
        transfers, shipped = self._extract_handoff_state(plan, cut_stime)
        delay = transfer_delay(self.config, shipped)
        record["transfer_started_at"] = now
        record["transfer_delay"] = delay
        self.simulator.schedule_in(
            delay,
            lambda fire_time, t=transfers, p=plan, r=record, c=cut_stime, s=shipped: (
                self._complete_priced_transfer(t, p, c, r, s, fire_time)
            ),
            kind=EventKind.INTERNAL,
            description=f"rebalance state transfer ({shipped} tuple(s))",
        )

    def _complete_priced_transfer(
        self,
        transfers: list[tuple[int, int, dict[int, list]]],
        plan: RebalancePlan,
        cut_stime: float,
        record: dict,
        shipped: int,
        now: float,
    ) -> None:
        """Phase two: merge into the new owners -- or abort if a crash landed.

        The abort path restores the extracted-but-unmerged state to the old
        owner's live replicas (their bounded join windows re-admit it in
        serialized order), invalidates their recovery checkpoints again, and
        re-arms the handoff from scratch once the deployment stabilizes.
        Without it, a crash between cut and merge would leave the moved
        buckets' state in limbo: extracted from the old owner, never merged
        into the new one.
        """
        shard_names = self.placement.shard_fragments
        crashed = [
            shard_names[index]
            for index, _target, _canonical in transfers
            if not self._live_replicas(index)
        ] + [
            shard_names[target]
            for _source, target, _canonical in transfers
            if not self._live_replicas(target)
        ]
        unstable = self._unstable_replicas()
        if unstable or crashed:
            restored = 0
            for source, _target, canonical in transfers:
                for source_node in self._live_replicas(source):
                    merge_sjoin_state(source_node, canonical)
                    source_node.invalidate_recovery_checkpoint()
                restored += sum(len(items) for items in canonical.values())
            reason = (
                f"target crashed mid-transfer: {sorted(set(crashed))}"
                if crashed
                else f"deployment unstable: {unstable}"
            )
            record.setdefault("aborts", []).append(
                {"at": now, "reason": reason, "restored_tuples": restored}
            )
            self.simulator.schedule_in(
                max(self.config.bucket_size, self.sim_config.batch_interval),
                lambda fire_time, p=plan, r=record, c=cut_stime: self._ship_join_state(
                    p, c, r, fire_time
                ),
                kind=EventKind.INTERNAL,
                description="rebalance handoff re-arm (transfer aborted)",
            )
            return
        trimmed = 0
        for _source, target, canonical in transfers:
            for target_node in self._live_replicas(target):
                trimmed += merge_sjoin_state(target_node, canonical)
                target_node.invalidate_recovery_checkpoint()
        self._note_trimmed(trimmed, record, count_in_record=True)
        record["completed"] = True
        record["completed_at"] = now
        record["state_tuples_shipped"] = shipped
        self._finish_handoff(record)

    def _live_replicas(self, shard_index: int) -> list[ProcessingNode]:
        """The non-crashed replicas of one shard fragment (possibly empty)."""
        name = self.placement.shard_fragments[shard_index]
        group = self.cluster.node_groups.get(name) or self.retired_groups.get(name, [])
        return [replica for replica in group if not replica._crashed]

    def _note_trimmed(self, trimmed: int, record: dict, count_in_record: bool) -> None:
        """Surface shipped-state tuples the bounded join windows dropped.

        Priced records carry the count directly; the legacy record shape is
        pinned by golden summaries, so there the count goes to the
        deployment-level total and a warning only.
        """
        self.handoff_trimmed_total += trimmed
        if count_in_record:
            record["state_tuples_trimmed"] = trimmed
        if trimmed:
            warnings.warn(
                f"bucket handoff at t={record['applied_at']:.3f}: the target "
                f"join's bounded state window trimmed {trimmed} shipped "
                f"tuple(s) (oldest first)",
                RuntimeWarning,
                stacklevel=2,
            )

    def _finish_handoff(self, record: dict) -> None:
        """Mark the in-flight handoff resolved and run any deferred scale-in."""
        if self._pending_handoff is record:
            self._pending_handoff = None
        decommission = record.get("decommission")
        if decommission is not None:
            self._decommission(decommission, record)

    # ------------------------------------------------------------------ elasticity
    def scale_out(self, count: int = 1, tolerance: float = 0.10) -> dict:
        """Attach ``count`` new shard fragments to the *running* deployment.

        The full scale-out protocol, in order:

        1. plan an incremental expansion (``ShardPlanner.expand``) against the
           observed bucket loads, skipping decommissioned slots;
        2. attach one relay fragment + replica group per new shard: build the
           diagrams, register the replicas in the :class:`PeerRegistry`, wire
           a fresh all-reject :class:`SubscriptionFilter` into the split's
           producer-side routing, seed the input cursors from a live donor
           shard's :class:`RecoveryCheckpoint` (``statexfer.seed_cursors``),
           and widen every merge replica's fan-in SUnion by one port;
        3. cut the moved buckets over with the existing epoch-advancing
           filter machinery (:meth:`apply`), which also schedules the state
           handoff old owner -> new owner.

        Returns the reconfiguration record of the expansion plan.
        """
        assignment = self._require_sharded()
        if not self.placement.filtered_routing:
            raise ConfigurationError(
                "scale-out needs filtered subscriptions; this deployment was "
                "compiled with filtered_routing=False (multicast routing)"
            )
        if self.registry is None or not self.delay_budgets:
            raise ConfigurationError(
                "scale-out needs a deployment built by deploy_placement (the "
                "attach path replays its wiring context)"
            )
        if self._pending_handoff is not None:
            raise SimulationError(
                "cannot scale out while a prior handoff is still pending"
            )
        unstable = self._unstable_replicas()
        if unstable:
            raise SimulationError(
                f"cannot scale out while the deployment is handling a failure "
                f"(non-stable replicas: {unstable})"
            )
        plan = ShardPlanner(assignment.spec).expand(
            assignment,
            count=count,
            bucket_loads=self.observed_bucket_loads(),
            tolerance=tolerance,
            excluded=sorted(self.decommissioned),
        )
        base = assignment.spec.shards
        added = [self._attach_shard_fragment(base + offset) for offset in range(count)]
        self.current_assignment = plan.before
        record = self.apply(plan)
        record["scale_out"] = {"added": added, "shards": self.active_shards()}
        self.scale_events.append(
            {
                "at": record["applied_at"],
                "action": "scale-out",
                "added": added,
                "shards": self.active_shards(),
            }
        )
        return record

    def scale_in(self, shard: int, tolerance: float = 0.10) -> dict:
        """Drain shard ``shard`` and decommission its fragment once it empties.

        The drain plan moves every bucket off the shard (:meth:`apply` cuts
        them over and ships the state); once the handoff completes, the
        fragment is *actually* retired: the merge's fan-in arity is rewired
        down one port, the split stops feeding the retired endpoints, and the
        replicas are unregistered from the network, the peer registry, and
        the cluster -- not left relaying punctuation as a ghost.
        """
        assignment = self._require_sharded()
        shard_names = self.placement.shard_fragments
        if not 0 <= shard < assignment.spec.shards:
            raise ConfigurationError(
                f"shard index {shard} out of range for {assignment.spec.shards} shards"
            )
        if shard in self.decommissioned:
            raise ConfigurationError(
                f"shard {shard_names[shard]!r} is already decommissioned"
            )
        if self.active_shards() <= 1:
            raise ConfigurationError("cannot scale in the last active shard")
        if self._pending_handoff is not None:
            raise SimulationError(
                "cannot scale in while a prior handoff is still pending"
            )
        plan = ShardPlanner(assignment.spec).drain(
            assignment,
            shard,
            self.observed_bucket_loads(),
            excluded=sorted(self.decommissioned),
        )
        record = self.apply(plan)
        record["scale_in"] = {
            "retired": shard_names[shard],
            "shards": self.active_shards() - 1,
        }
        if record["completed"]:
            # Already-empty shard: no handoff will fire, so schedule the
            # decommission after the relay pipeline drains its punctuation.
            settle = (
                self.config.bucket_size
                + 2 * self.sim_config.batch_interval
                + 2 * self.sim_config.network_latency
            )
            self.simulator.schedule_in(
                settle,
                lambda fire_time, s=shard, r=record: self._decommission(s, r),
                kind=EventKind.INTERNAL,
                description=f"decommission drained shard {shard_names[shard]!r}",
            )
        else:
            record["decommission"] = shard
        self.scale_events.append(
            {
                "at": record["applied_at"],
                "action": "scale-in",
                "retired": shard_names[shard],
                "shards": self.active_shards() - 1,
            }
        )
        return record

    def active_shards(self) -> int:
        """Number of shard slots currently backed by a live fragment."""
        assignment = self._require_sharded()
        return assignment.spec.shards - len(self.decommissioned)

    def _attach_shard_fragment(self, index: int) -> str:
        """Attach one new shard fragment (replica group + wiring) at ``index``."""
        from ..sim.cluster import relay_diagram

        shard_names = self.placement.shard_fragments
        split_name = self.placement.shard_producer
        split_plan = self.placement.node_plan(split_name)
        split_stream = split_plan.output_stream
        template = self.placement.node_plan(shard_names[0])
        merge_name = next(
            plan.consumer
            for plan in self.placement.subscriptions
            if plan.producer == shard_names[0] and plan.kind == "node->node"
        )
        name = f"shard{index + 1}"
        if name in self.cluster.node_groups or name in self.retired_groups:
            raise ConfigurationError(f"shard fragment {name!r} already exists")

        replica_names = tuple(name + "'" * r for r in range(len(template.replica_names)))
        node_plan = NodePlan(
            name=name,
            fragment=FRAGMENT_RELAY,
            inputs=(split_stream,),
            output_stream=f"{name}.out",
            replica_names=replica_names,
            stateful=template.stateful,
            has_select=True,
            select_at="ingress",
            is_sink=False,
            shard_index=index,
        )
        self.placement = dataclass_replace(
            self.placement,
            nodes=self.placement.nodes + (node_plan,),
            subscriptions=self.placement.subscriptions
            + (
                SubscriptionPlan(
                    stream=split_stream,
                    producer=split_name,
                    consumer=name,
                    kind="node->node",
                    filtered=True,
                    filter_name=f"{name}.slice",
                ),
                SubscriptionPlan(
                    stream=node_plan.output_stream,
                    producer=name,
                    consumer=merge_name,
                    kind="node->node",
                ),
            ),
        )
        # The fresh slice owns nothing until the cut installs its predicate.
        slice_filter = SubscriptionFilter(lambda values: False, name=f"{name}.slice")
        self.subscription_filters[name] = slice_filter

        budget = self.delay_budgets.get(name, self.delay_budgets[shard_names[0]])
        node_join = self.join_state_size if node_plan.stateful else None
        group: list[ProcessingNode] = []
        for node_name in replica_names:
            diagram = relay_diagram(
                node_name,
                split_stream,
                node_plan.output_stream,
                bucket_size=self.config.bucket_size,
                select=None,
                join_state_size=node_join,
            )
            partners = [other for other in replica_names if other != node_name]
            group.append(
                ProcessingNode(
                    name=node_name,
                    diagram=diagram,
                    simulator=self.simulator,
                    network=self.network,
                    config=self.config,
                    sim_config=self.sim_config,
                    assigned_delay=budget,
                    replica_partners=partners,
                    rng_seed=self.seed,
                )
            )
        self.cluster.nodes.append(group)
        self.cluster.node_groups[name] = group

        now = self.simulator.now
        split_group = self.cluster.node_group(split_name)
        split_endpoints = [replica.endpoint for replica in split_group]
        merge_group = self.cluster.node_group(merge_name)
        donor_index = next(
            i for i in range(len(shard_names)) if i not in self.decommissioned
        )
        donor = next(
            (r for r in self.cluster.node_group(shard_names[donor_index]) if not r._crashed),
            None,
        )
        for node in group:
            node.register_input_stream(
                split_stream,
                producers=split_endpoints,
                push_producers=split_endpoints if self.push_state else (),
                subscription_filter=slice_filter,
            )
            split_group[0].register_subscriber(
                split_stream, node.endpoint, subscription_filter=slice_filter
            )
            if self.push_state:
                for upstream in split_group:
                    upstream.add_state_watcher(node.endpoint)
            self.registry.register_node(node)
            node.statexfer_registry = self.registry
        if donor is not None:
            checkpoint = capture_checkpoint(donor, now)
            for node in group:
                seed_cursors(node, checkpoint, now)

        # Widen the merge's fan-in by one port, live.
        group_endpoints = [replica.endpoint for replica in group]
        for merge_node in merge_group:
            sunion_name = f"{merge_node.name}.sunion"
            port = merge_node.diagram.operator(sunion_name).add_port()
            merge_node.diagram.bind_input(node_plan.output_stream, sunion_name, port)
            merge_node.register_input_stream(
                node_plan.output_stream,
                producers=group_endpoints,
                push_producers=group_endpoints if self.push_state else (),
            )
            group[0].register_subscriber(node_plan.output_stream, merge_node.endpoint)
            if self.push_state:
                for node in group:
                    node.add_state_watcher(merge_node.endpoint)
            # The held checkpoint has the old port layout; adopting it after
            # the rewiring would restore a short port_boundaries list.
            merge_node.invalidate_recovery_checkpoint()
        for node in group:
            node.start()
        return name

    def _decommission(self, index: int, record: dict) -> None:
        """Retire a drained shard fragment: rewire, unsubscribe, unregister."""
        shard_names = self.placement.shard_fragments
        name = shard_names[index]
        group = self.cluster.node_groups.get(name)
        if group is None:
            return  # already decommissioned
        split_name = self.placement.shard_producer
        split_stream = self.placement.node_plan(split_name).output_stream
        shard_stream = self.placement.node_plan(name).output_stream
        merge_name = next(
            plan.consumer
            for plan in self.placement.subscriptions
            if plan.producer == name and plan.kind == "node->node"
        )
        merge_group = self.cluster.node_group(merge_name)
        endpoints = [replica.endpoint for replica in group]

        # 1. Stop feeding the retired fragment (unsubscribe *before* the
        #    endpoints leave the network: send_many rejects unknown receivers).
        for split_node in self.cluster.node_group(split_name):
            manager = split_node.data_path.output(split_stream)
            for endpoint in endpoints:
                manager.unsubscribe(endpoint)
                split_node.remove_state_watcher(endpoint)

        # 2. Rewire the merge's fan-in arity down one port, live.
        for merge_node in merge_group:
            binding = next(
                b for b in merge_node.diagram.inputs if b.stream == shard_stream
            )
            merge_node.diagram.operator(binding.operator).remove_port(binding.port)
            merge_node.diagram.inputs = [
                b
                if b.operator != binding.operator or b.port < binding.port
                else InputBinding(b.stream, b.operator, b.port - 1)
                for b in merge_node.diagram.inputs
                if b.stream != shard_stream
            ]
            merge_node.deregister_input_stream(shard_stream)
            merge_node.invalidate_recovery_checkpoint()

        # 3. Retire the replicas: cancel their timers, leave the network.
        for node in group:
            for merge_node in merge_group:
                node.data_path.output(shard_stream).unsubscribe(merge_node.endpoint)
                node.remove_state_watcher(merge_node.endpoint)
            if self.registry is not None:
                self.registry.unregister_node(node.endpoint)
            node.retire()

        # 4. Forget the group; the NodePlan stays (positional shard indexing).
        self.cluster.nodes.remove(group)
        del self.cluster.node_groups[name]
        self.retired_groups[name] = group
        self.decommissioned.add(index)
        self.drained.add(name)
        record["decommissioned_at"] = self.simulator.now

    # ------------------------------------------------------------------ helpers
    def _unstable_replicas(self) -> list[str]:
        """Names of replicas currently not cleanly STABLE (quiesce check)."""
        return [
            node.name
            for node in self.cluster.all_nodes()
            if node.state is not NodeState.STABLE or node.fragment_dirty
        ]

    def _require_sharded(self) -> ShardAssignment:
        if self.current_assignment is None:
            raise ConfigurationError(
                f"deployment of topology {self.topology.name!r} is not sharded; "
                f"rebalancing needs a Topology.shard deployment"
            )
        return self.current_assignment

    def is_drained(self, name: str) -> bool:
        return name in self.drained

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Deployment {self.topology.name!r} now={self.simulator.now:.3f} "
            f"rebalances={len(self.rebalances)} drained={sorted(self.drained)}>"
        )
