"""The compile half of the deployment control plane.

:func:`compile` turns a :class:`~repro.topology.Topology` into a
:class:`Placement`: a *pure plan* of the deployment -- which sources exist,
which replica processes run which fragment shape, and which subscriptions
(optionally content-filtered) wire them together.  Nothing is instantiated:
a placement can be printed, asserted against, and :meth:`diffed
<Placement.diff>` against another placement before anything runs.

:meth:`Placement.deploy` is the other half: it materializes the plan onto a
fresh simulator and returns a live :class:`~repro.deploy.Deployment` handle
(see :mod:`repro.deploy.deployment`).

The legacy one-shot builders (:func:`repro.sim.cluster.build_dag_cluster`
and :func:`~repro.sim.cluster.build_chain_cluster`) are thin shims over this
pipeline, so the two paths are the same code and produce identical
deployments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from ..errors import ConfigurationError
from ..topology import Topology
from ..workloads.generators import PayloadFactory, default_payload_factory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import DelayAssignment, DPCConfig, SimulationConfig
    from ..spe.query_diagram import QueryDiagram
    from .deployment import Deployment

#: Fragment shapes the deploy step knows how to instantiate.
FRAGMENT_ENTRY = "entry"  # SUnion over sources (+ optional SJoin / Filter) + SOutput
FRAGMENT_RELAY = "relay"  # 1-ary SUnion (+ optional SJoin / egress Filter) + SOutput
FRAGMENT_INGRESS_FILTER = "ingress-filter"  # ingress Filter -> SUnion (+ SJoin) + SOutput
FRAGMENT_FANIN = "fanin"  # SUnion over several upstream streams + SOutput


@dataclass(frozen=True)
class SourcePlan:
    """One data source feeding the deployment."""

    stream: str
    name: str
    #: Fraction of the deployment's aggregate rate this source produces.
    rate_share: float
    #: Index handed to the payload factory (stable across recompiles).
    payload_index: int


@dataclass(frozen=True)
class NodePlan:
    """One logical processing node: replicas, fragment shape, join placement."""

    name: str
    fragment: str
    #: Input stream names in SUnion port order.
    inputs: tuple[str, ...]
    output_stream: str
    replica_names: tuple[str, ...]
    #: Whether this node hosts the deployment's stateful SJoin.
    stateful: bool
    #: Whether the node's spec carries a select predicate (and where it runs).
    has_select: bool = False
    select_at: str = "egress"
    is_sink: bool = False
    #: Index into the shard assignment when this node is a shard fragment.
    shard_index: int | None = None

    @property
    def replicas(self) -> int:
        return len(self.replica_names)


@dataclass(frozen=True)
class SubscriptionPlan:
    """One logical edge: every replica of ``consumer`` subscribes to ``producer``.

    ``filtered`` marks a *filtered subscription*: the consumer's content
    predicate is evaluated at the producer (producer-side routing), so only
    the passing slice travels.  ``filter_name`` names the shared
    :class:`~repro.deploy.SubscriptionFilter` the deploy step creates.
    """

    stream: str
    producer: str
    consumer: str
    kind: str  # "source->node" | "node->node" | "node->client"
    filtered: bool = False
    filter_name: str | None = None


@dataclass(frozen=True)
class ClientPlan:
    """One measuring client attached to a sink node's output stream."""

    name: str
    sink: str
    stream: str


@dataclass(frozen=True)
class Placement:
    """A compiled deployment plan: inspectable, diffable, deployable."""

    topology: Topology
    replicas_per_node: int
    filtered_routing: bool
    sources: tuple[SourcePlan, ...]
    nodes: tuple[NodePlan, ...]
    subscriptions: tuple[SubscriptionPlan, ...]
    clients: tuple[ClientPlan, ...]

    # ------------------------------------------------------------------ queries
    def node_plan(self, name: str) -> NodePlan:
        for plan in self.nodes:
            if plan.name == name:
                return plan
        raise ConfigurationError(f"placement has no node {name!r}")

    @property
    def shard_fragments(self) -> tuple[str, ...]:
        """Names of the shard fragments, in shard-assignment index order."""
        indexed = [plan for plan in self.nodes if plan.shard_index is not None]
        return tuple(
            plan.name for plan in sorted(indexed, key=lambda plan: plan.shard_index)
        )

    @property
    def shard_producer(self) -> str | None:
        """The node whose output the shard fragments slice (the split router)."""
        for plan in self.nodes:
            if plan.shard_index is not None:
                return plan.inputs[0].removesuffix(".out")
        return None

    def filtered_subscriptions(self) -> list[SubscriptionPlan]:
        return [plan for plan in self.subscriptions if plan.filtered]

    # ------------------------------------------------------------------ inspection
    def describe(self) -> dict:
        """A plain-data rendering of the plan (stable across processes)."""
        return {
            "topology": self.topology.name,
            "replicas_per_node": self.replicas_per_node,
            "filtered_routing": self.filtered_routing,
            "sources": [
                {"stream": s.stream, "name": s.name, "rate_share": s.rate_share}
                for s in self.sources
            ],
            "nodes": [
                {
                    "name": n.name,
                    "fragment": n.fragment,
                    "inputs": list(n.inputs),
                    "output": n.output_stream,
                    "replicas": list(n.replica_names),
                    "stateful": n.stateful,
                    "select_at": n.select_at if n.has_select else None,
                    "sink": n.is_sink,
                    "shard_index": n.shard_index,
                }
                for n in self.nodes
            ],
            "subscriptions": [
                {
                    "stream": s.stream,
                    "producer": s.producer,
                    "consumer": s.consumer,
                    "kind": s.kind,
                    "filtered": s.filtered,
                    "filter": s.filter_name,
                }
                for s in self.subscriptions
            ],
            "clients": [
                {"name": c.name, "sink": c.sink, "stream": c.stream} for c in self.clients
            ],
        }

    def diff(self, other: "Placement") -> list[str]:
        """Human-readable differences ``self -> other`` (empty when identical)."""
        changes: list[str] = []
        mine = {plan.name: plan for plan in self.nodes}
        theirs = {plan.name: plan for plan in other.nodes}
        for name in sorted(set(mine) - set(theirs)):
            changes.append(f"node {name!r} removed")
        for name in sorted(set(theirs) - set(mine)):
            changes.append(f"node {name!r} added ({theirs[name].fragment})")
        for name in sorted(set(mine) & set(theirs)):
            a, b = mine[name], theirs[name]
            if a.fragment != b.fragment:
                changes.append(f"node {name!r}: fragment {a.fragment} -> {b.fragment}")
            if a.replicas != b.replicas:
                changes.append(f"node {name!r}: replicas {a.replicas} -> {b.replicas}")
            if a.stateful != b.stateful:
                changes.append(f"node {name!r}: stateful {a.stateful} -> {b.stateful}")
            if a.inputs != b.inputs:
                changes.append(f"node {name!r}: inputs {a.inputs} -> {b.inputs}")
            if (a.has_select, a.select_at) != (b.has_select, b.select_at):
                changes.append(
                    f"node {name!r}: select "
                    f"{a.select_at if a.has_select else None} -> "
                    f"{b.select_at if b.has_select else None}"
                )
            if a.is_sink != b.is_sink:
                changes.append(f"node {name!r}: sink {a.is_sink} -> {b.is_sink}")

        def edge_key(plan: SubscriptionPlan) -> tuple[str, str, str]:
            return (plan.producer, plan.consumer, plan.stream)

        my_edges = {edge_key(p): p for p in self.subscriptions}
        their_edges = {edge_key(p): p for p in other.subscriptions}
        for key in sorted(set(my_edges) - set(their_edges)):
            changes.append(f"subscription {key[0]} -> {key[1]} removed")
        for key in sorted(set(their_edges) - set(my_edges)):
            changes.append(f"subscription {key[0]} -> {key[1]} added")
        for key in sorted(set(my_edges) & set(their_edges)):
            a, b = my_edges[key], their_edges[key]
            if a.filtered != b.filtered:
                changes.append(
                    f"subscription {key[0]} -> {key[1]}: filtered {a.filtered} -> {b.filtered}"
                )
        if [c.name for c in self.clients] != [c.name for c in other.clients]:
            changes.append(
                f"clients {[c.name for c in self.clients]} -> {[c.name for c in other.clients]}"
            )
        return changes

    # ------------------------------------------------------------------ delay planning
    def delay_plan(self, config: "DPCConfig", strategy: "DelayAssignment | None" = None):
        """Per-node delay budgets for this plan's deployment graph.

        Builds a :class:`~repro.core.delay_planner.DelayPlanner` over the
        placement's topology and plans with ``strategy`` (defaulting to the
        config's ``delay_assignment``).  This is what ``plan-delays
        --strategy`` renders, and with ``accumulated`` it is the per-path
        Figure 21 assignment rather than the uniform longest-path split.
        """
        from ..core.delay_planner import DelayPlanner

        planner = DelayPlanner.for_topology(
            self.topology,
            total_budget=config.max_incremental_latency,
            queuing_allowance=config.queuing_allowance,
        )
        return planner.plan(strategy if strategy is not None else config.delay_assignment)

    # ------------------------------------------------------------------ deployment
    def deploy(
        self,
        config: "DPCConfig | None" = None,
        sim_config: "SimulationConfig | None" = None,
        *,
        aggregate_rate: float = 300.0,
        payload_factory: PayloadFactory = default_payload_factory,
        join_state_size: int | None = 100,
        per_node_delay: float | None = None,
        diagram_factory: "Callable[[str, Sequence[str], str], QueryDiagram] | None" = None,
        seed: int | None = None,
        rate_profile: "Callable[[float], float] | None" = None,
        backend: str = "sim",
        source_stop_time: float | None = None,
    ) -> "Deployment":
        """Materialize this plan on an execution backend.

        ``backend="sim"`` (the default) instantiates the plan on a fresh
        discrete-event simulator and returns a :class:`Deployment` --
        byte-identical to the historical behavior.  ``backend="live"``
        returns a :class:`repro.live.supervisor.LiveDeployment` that runs
        the same fragments as real OS processes over asyncio sockets in
        wall-clock time (raises
        :class:`~repro.live.supervisor.LiveBackendUnavailable` on platforms
        without the ``fork`` multiprocessing start method).

        ``source_stop_time`` bounds every source's production to stimes at
        or below it (both backends), which is how the live/sim parity
        harness pins a finite, backend-independent workload.
        """
        if backend == "live":
            from ..live.supervisor import deploy_live

            return deploy_live(
                self,
                config=config,
                sim_config=sim_config,
                aggregate_rate=aggregate_rate,
                payload_factory=payload_factory,
                join_state_size=join_state_size,
                per_node_delay=per_node_delay,
                diagram_factory=diagram_factory,
                seed=seed,
                rate_profile=rate_profile,
                source_stop_time=source_stop_time,
            )
        if backend != "sim":
            raise ConfigurationError(
                f"unknown deployment backend {backend!r}; expected 'sim' or 'live'"
            )
        from .deployment import deploy_placement

        return deploy_placement(
            self,
            config=config,
            sim_config=sim_config,
            aggregate_rate=aggregate_rate,
            payload_factory=payload_factory,
            join_state_size=join_state_size,
            per_node_delay=per_node_delay,
            diagram_factory=diagram_factory,
            seed=seed,
            rate_profile=rate_profile,
            source_stop_time=source_stop_time,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Placement {self.topology.name!r} nodes={len(self.nodes)} "
            f"subscriptions={len(self.subscriptions)} "
            f"filtered={len(self.filtered_subscriptions())}>"
        )


def compile(  # noqa: A001 - the control-plane verb, deliberately builtin-shadowing
    topology: Topology,
    replicas_per_node: int = 2,
    *,
    filtered_routing: bool = True,
) -> Placement:
    """Compile ``topology`` into a :class:`Placement`.

    The plan mirrors the walk the cluster builder has always performed --
    entry nodes run the Figure 12 merge fragment, single-input internal nodes
    relay, multi-input internal nodes fan in, and each sink feeds one client
    -- with one new decision: a node whose spec asks for an *ingress* select
    (the shard fragments of ``Topology.shard``) is planned as a **filtered
    subscription** when ``filtered_routing`` is on, so its slice predicate
    runs at the producer and the fragment itself is a plain relay.  With
    ``filtered_routing`` off the predicate stays in the fragment (an ingress
    Filter) and the producer multicasts the full stream -- the legacy
    data path, kept for comparison benchmarks.
    """
    if replicas_per_node < 1:
        raise ConfigurationError("replicas_per_node must be >= 1")

    source_streams = topology.source_streams
    sources = tuple(
        SourcePlan(
            stream=stream,
            name=f"source.{stream}",
            rate_share=1.0 / len(source_streams),
            payload_index=index,
        )
        for index, stream in enumerate(source_streams)
    )

    sink_names = {spec.name for spec in topology.sinks()}
    node_plans: list[NodePlan] = []
    subscription_plans: list[SubscriptionPlan] = []
    shard_index = 0
    for spec in topology:
        input_streams = tuple(topology.input_streams(spec))
        replicas = topology.replicas_of(spec.name, replicas_per_node)
        replica_names = tuple(
            spec.name + ("" if r == 0 else "'" * r) for r in range(replicas)
        )
        stateful = spec.stateful if spec.stateful is not None else topology.is_entry(spec)
        ingress_select = spec.select is not None and spec.select_at == "ingress"
        filtered = ingress_select and filtered_routing
        if topology.is_entry(spec):
            fragment = FRAGMENT_ENTRY
        elif len(input_streams) == 1:
            fragment = FRAGMENT_INGRESS_FILTER if ingress_select and not filtered else FRAGMENT_RELAY
        else:
            fragment = FRAGMENT_FANIN
        index: int | None = None
        if ingress_select and topology.shard_assignment is not None:
            index = shard_index
            shard_index += 1
        node_plans.append(
            NodePlan(
                name=spec.name,
                fragment=fragment,
                inputs=input_streams,
                output_stream=spec.output_stream,
                replica_names=replica_names,
                stateful=stateful,
                has_select=spec.select is not None,
                select_at=spec.select_at,
                is_sink=spec.name in sink_names,
                shard_index=index,
            )
        )
        for edge in spec.inputs:
            if edge in topology:
                subscription_plans.append(
                    SubscriptionPlan(
                        stream=topology.node(edge).output_stream,
                        producer=edge,
                        consumer=spec.name,
                        kind="node->node",
                        filtered=filtered,
                        filter_name=f"{spec.name}.slice" if filtered else None,
                    )
                )
            else:
                subscription_plans.append(
                    SubscriptionPlan(
                        stream=edge,
                        producer=f"source.{edge}",
                        consumer=spec.name,
                        kind="source->node",
                    )
                )

    client_plans: list[ClientPlan] = []
    for sink_index, sink in enumerate(topology.sinks()):
        name = "client" if sink_index == 0 else f"client{sink_index + 1}"
        client_plans.append(
            ClientPlan(name=name, sink=sink.name, stream=sink.output_stream)
        )
        subscription_plans.append(
            SubscriptionPlan(
                stream=sink.output_stream,
                producer=sink.name,
                consumer=name,
                kind="node->client",
            )
        )

    return Placement(
        topology=topology,
        replicas_per_node=replicas_per_node,
        filtered_routing=filtered_routing,
        sources=sources,
        nodes=tuple(node_plans),
        subscriptions=tuple(subscription_plans),
        clients=tuple(client_plans),
    )
