"""Autoscaler: the policy loop that closes the elasticity control plane.

:class:`Autoscaler` is a periodic simulator task watching the per-shard
processing rate of a sharded :class:`~repro.deploy.Deployment` and driving
its :meth:`~repro.deploy.Deployment.scale_out` / :meth:`scale_in` entry
points from a watermark policy:

* when the mean rate per active shard exceeds ``high_watermark`` tuples per
  simulated second, enough shards are attached to bring the mean back under
  the watermark (bounded by ``max_shards``);
* when it falls below ``low_watermark``, the lowest-loaded shard is drained
  and decommissioned (bounded by ``min_shards``);
* every action starts a ``cooldown`` during which the loop only measures
  (reconfigurations need time to show in the rates), and ``plan_budget``
  bounds the total number of reconfigurations one run may issue.

The loop never acts while the deployment is handling a failure or while a
prior bucket handoff is still in flight -- elasticity yields to fault
tolerance, not the other way around.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ConfigurationError
from ..sim.events import EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .deployment import Deployment


@dataclass(frozen=True)
class AutoscalePolicy:
    """Watermark policy of one autoscaler loop (rates in tuples/sim-second)."""

    period: float = 2.0
    high_watermark: float = 90.0
    low_watermark: float = 45.0
    min_shards: int = 2
    max_shards: int = 8
    cooldown: float = 6.0
    plan_budget: int = 8
    tolerance: float = 0.10

    def validate(self) -> None:
        if self.period <= 0:
            raise ConfigurationError("autoscale period must be positive")
        if self.low_watermark < 0 or self.high_watermark <= self.low_watermark:
            raise ConfigurationError(
                "autoscale watermarks need 0 <= low < high "
                f"(got low={self.low_watermark}, high={self.high_watermark})"
            )
        if self.min_shards < 1 or self.max_shards < self.min_shards:
            raise ConfigurationError(
                "autoscale shard bounds need 1 <= min_shards <= max_shards"
            )
        if self.cooldown < 0:
            raise ConfigurationError("autoscale cooldown cannot be negative")
        if self.plan_budget < 0:
            raise ConfigurationError("autoscale plan_budget cannot be negative")


class Autoscaler:
    """Periodic watermark loop driving a deployment's elastic entry points."""

    def __init__(self, deployment: "Deployment", policy: AutoscalePolicy) -> None:
        policy.validate()
        self.deployment = deployment
        self.policy = policy
        #: Scale decisions taken (and the measurements behind them).
        self.actions: list[dict] = []
        #: Ticks where a wanted action was skipped, with the reason.
        self.skipped: list[dict] = []
        self._last_counts: dict[str, int] = {}
        self._last_tick_at: float | None = None
        self._cooldown_until = float("-inf")
        self._plans_used = 0
        self._handle = None

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Arm the periodic policy tick on the deployment's simulator."""
        self._handle = self.deployment.simulator.schedule_periodic(
            self.policy.period,
            self._tick,
            kind=EventKind.INTERNAL,
            description="autoscaler policy tick",
        )

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # ------------------------------------------------------------------ measurement
    def _active_shard_names(self) -> list[str]:
        deployment = self.deployment
        names = deployment.placement.shard_fragments
        return [
            name
            for index, name in enumerate(names)
            if index not in deployment.decommissioned
        ]

    def shard_rates(self, now: float) -> dict[str, float]:
        """Per-shard processing rate since the previous tick (tuples/second).

        Measured as the delta of the first replica's engine counter.  Shards
        attached since the last tick have no baseline yet and are omitted --
        they enter the mean one period later, once a full window elapsed.
        """
        rates: dict[str, float] = {}
        elapsed = None if self._last_tick_at is None else now - self._last_tick_at
        counts: dict[str, int] = {}
        for name in self._active_shard_names():
            group = self.deployment.cluster.node_groups.get(name)
            if not group:
                continue
            counts[name] = group[0].engine.tuples_processed
            previous = self._last_counts.get(name)
            if previous is not None and elapsed and elapsed > 0:
                rates[name] = max(0.0, (counts[name] - previous) / elapsed)
        self._last_counts = counts
        self._last_tick_at = now
        return rates

    # ------------------------------------------------------------------ policy
    def _tick(self, now: float) -> None:
        deployment = self.deployment
        policy = self.policy
        rates = self.shard_rates(now)  # always refresh baselines, even when skipping
        if not rates:
            return
        if deployment.current_assignment is None:
            return
        active = deployment.active_shards()
        mean = sum(rates.values()) / active
        wants_out = mean > policy.high_watermark and active < policy.max_shards
        wants_in = mean < policy.low_watermark and active > policy.min_shards
        if not wants_out and not wants_in:
            return
        blocked = self._blocked(now)
        if blocked:
            self.skipped.append(
                {"at": now, "reason": blocked, "rate_per_shard": mean}
            )
            return
        if wants_out:
            total = sum(rates.values())
            needed = max(1, math.ceil(total / policy.high_watermark) - active)
            count = min(policy.max_shards - active, needed)
            record = deployment.scale_out(count=count, tolerance=policy.tolerance)
            self.actions.append(
                {
                    "at": now,
                    "action": "scale-out",
                    "count": count,
                    "shards": deployment.active_shards(),
                    "rate_per_shard": mean,
                }
            )
        else:
            victim = self._lowest_loaded_shard(rates)
            record = deployment.scale_in(victim, tolerance=policy.tolerance)
            self.actions.append(
                {
                    "at": now,
                    "action": "scale-in",
                    "retired": record["scale_in"]["retired"],
                    "shards": record["scale_in"]["shards"],
                    "rate_per_shard": mean,
                }
            )
        self._plans_used += 1
        self._cooldown_until = now + policy.cooldown
        # Reconfiguration shifts load between shards; drop the baselines so
        # the first post-action window is measured fresh.
        self._last_counts = {}

    def _blocked(self, now: float) -> str | None:
        deployment = self.deployment
        if now < self._cooldown_until:
            return "cooldown"
        if self._plans_used >= self.policy.plan_budget:
            return "plan budget exhausted"
        if deployment._pending_handoff is not None:
            return "handoff pending"
        if deployment._unstable_replicas():
            return "deployment unstable"
        return None

    def _lowest_loaded_shard(self, rates: dict[str, float]) -> int:
        names = self.deployment.placement.shard_fragments
        candidates = [
            (rates.get(name, 0.0), index)
            for index, name in enumerate(names)
            if index not in self.deployment.decommissioned
        ]
        return min(candidates)[1]

    # ------------------------------------------------------------------ reporting
    def summary(self) -> dict:
        return {
            "policy": {
                "period": self.policy.period,
                "high_watermark": self.policy.high_watermark,
                "low_watermark": self.policy.low_watermark,
                "min_shards": self.policy.min_shards,
                "max_shards": self.policy.max_shards,
                "cooldown": self.policy.cooldown,
                "plan_budget": self.policy.plan_budget,
            },
            "actions": self.actions,
            "skipped": len(self.skipped),
            "plans_used": self._plans_used,
        }
