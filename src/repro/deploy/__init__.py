"""The deployment control plane: compile -> place -> deploy -> reconfigure.

This package layers deployment into three explicit steps (replacing the
monolithic one-shot cluster builders):

* :func:`compile` -- turn a :class:`~repro.topology.Topology` into a
  :class:`Placement`: a pure, inspectable, diffable plan of sources, replica
  groups, fragment shapes, and (optionally content-filtered) subscriptions;
* :meth:`Placement.deploy` -- materialize the plan onto a fresh simulator,
  returning a live :class:`Deployment` handle that owns the cluster;
* :meth:`Deployment.apply` -- reconfigure the *running* deployment from a
  :class:`~repro.sharding.RebalancePlan`: bucket handoff between shard
  fragments with filter-epoch cuts and SJoin state shipping, closing the
  loop from observed skew to a re-deployed assignment.

See DESIGN.md, "Deployment control plane".
"""

from .autoscaler import AutoscalePolicy, Autoscaler
from .deployment import Deployment, deploy_placement
from .filters import SubscriptionFilter
from .placement import (
    FRAGMENT_ENTRY,
    FRAGMENT_FANIN,
    FRAGMENT_INGRESS_FILTER,
    FRAGMENT_RELAY,
    ClientPlan,
    NodePlan,
    Placement,
    SourcePlan,
    SubscriptionPlan,
    compile,
)

__all__ = [
    "AutoscalePolicy",
    "Autoscaler",
    "ClientPlan",
    "Deployment",
    "FRAGMENT_ENTRY",
    "FRAGMENT_FANIN",
    "FRAGMENT_INGRESS_FILTER",
    "FRAGMENT_RELAY",
    "NodePlan",
    "Placement",
    "SourcePlan",
    "SubscriptionFilter",
    "SubscriptionPlan",
    "compile",
    "deploy_placement",
]
